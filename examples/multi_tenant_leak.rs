//! The paper's §1 motivating scenario, made executable: a buggy function
//! caches request data in process memory. Alice's secret reaches Bob
//! under insecure container reuse — and never does under Groundhog.
//!
//! ```text
//! cargo run --release --example multi_tenant_leak
//! ```

use groundhog::core::GhError;
use groundhog::core::GroundhogConfig;
use groundhog::core::Manager;
use groundhog::functions::leaky::{BuggyCache, INIT_MARKER};
use groundhog::mem::RequestId;
use groundhog::proc::Kernel;
use groundhog::runtime::{FunctionProcess, RuntimeKind, RuntimeProfile};

fn scenario(isolate: bool) -> Result<(), GhError> {
    let label = if isolate { "GH  " } else { "BASE" };
    let mut kernel = Kernel::boot();
    let fproc = FunctionProcess::build(
        &mut kernel,
        "buggy-cache",
        RuntimeProfile::for_kind(RuntimeKind::Python),
        4_000,
    );
    let cache = BuggyCache::init(&mut kernel, &fproc);

    let mut manager = if isolate {
        let mut m = Manager::new(fproc.pid, GroundhogConfig::gh());
        m.snapshot_now(&mut kernel)?;
        Some(m)
    } else {
        None
    };

    // Alice's request carries her secret.
    if let Some(m) = manager.as_mut() {
        m.begin_request(&mut kernel, "alice")?;
    }
    let alice = cache.invoke(&mut kernel, &fproc, RequestId(1), 0xA11C_E5EC);
    if let Some(m) = manager.as_mut() {
        m.end_request(&mut kernel)?;
    }
    assert_eq!(
        alice.leaked_value, INIT_MARKER,
        "first caller sees only init data"
    );

    // Bob's request: what does the buggy cache hand him?
    if let Some(m) = manager.as_mut() {
        m.begin_request(&mut kernel, "bob")?;
    }
    let bob = cache.invoke(&mut kernel, &fproc, RequestId(2), 0xB0B0_B0B0);
    if let Some(m) = manager.as_mut() {
        m.end_request(&mut kernel)?;
    }

    let leaked = bob.leaked_value == 0xA11C_E5EC;
    println!(
        "[{label}] bob's response contains {:#010x} — {}",
        bob.leaked_value,
        if leaked {
            "ALICE'S SECRET LEAKED"
        } else {
            "clean (snapshot-time contents only)"
        },
    );
    assert_eq!(leaked, !isolate);
    Ok(())
}

fn main() -> Result<(), GhError> {
    println!("A buggy function caches request data in a global (§1's scenario):\n");
    scenario(false)?;
    scenario(true)?;
    println!("\nGroundhog's restore guarantees sequential request isolation by design (§4.5).");
    Ok(())
}
