//! Restoring the function process to its snapshot (§4.4).
//!
//! "The manager identifies all changes to the memory layout by consulting
//! /proc/pid/maps and pagemap; these changes are later reversed by
//! injecting syscalls using ptrace. The manager restores brk, removes
//! added memory regions, remaps removed memory regions, zeroes the stack,
//! restores memory contents of pages that have their SD-bit set, restores
//! registers of all threads, madvises newly paged pages, and finally
//! resets SD-bits."
//!
//! Every phase is timed against the virtual clock into the Fig. 8
//! [`Breakdown`].

use std::collections::BTreeSet;

use gh_mem::{PageRange, Taint, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession};
use gh_sim::clock::Stopwatch;
use gh_sim::Nanos;

use crate::breakdown::{Breakdown, RestorePhase};
use crate::config::GroundhogConfig;
use crate::error::GhError;
use crate::snapshot::Snapshot;
use crate::track::MemoryTracker;

/// Outcome of one restore operation.
#[derive(Clone, Debug)]
pub struct RestoreReport {
    /// Per-phase timing (Fig. 8).
    pub breakdown: Breakdown,
    /// Total restore duration.
    pub total: Nanos,
    /// Dirty pages the tracker reported.
    pub dirty_pages: u64,
    /// Pages whose contents were written back from the snapshot.
    pub pages_restored: u64,
    /// Contiguous runs those pages formed (coalescing units).
    pub runs: u64,
    /// Pages evicted because they became resident after the snapshot.
    pub newly_paged: u64,
    /// Stack pages zeroed.
    pub stack_zeroed: u64,
    /// Syscalls injected for layout restoration.
    pub syscalls_injected: usize,
}

/// Counts maximal runs of consecutive integers in a sorted slice.
fn count_runs(sorted: &[u64]) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[1] != w[0] + 1).count() as u64
}

/// Groups a sorted page list into contiguous [`PageRange`]s.
fn group_ranges(sorted: &[u64]) -> Vec<PageRange> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let start = sorted[i];
        let mut end = start + 1;
        i += 1;
        while i < sorted.len() && sorted[i] == end {
            end += 1;
            i += 1;
        }
        out.push(PageRange::new(Vpn(start), Vpn(end)));
    }
    out
}

/// The restore engine.
pub struct Restorer;

impl Restorer {
    /// Rolls `pid` back to `snapshot`, leaving tracking armed for the next
    /// request. Runs entirely *between* activations (the caller — the
    /// manager — guarantees no request is executing).
    pub fn restore(
        kernel: &mut Kernel,
        pid: Pid,
        snapshot: &Snapshot,
        tracker: &mut dyn MemoryTracker,
        cfg: &GroundhogConfig,
    ) -> Result<RestoreReport, GhError> {
        let mut bd = Breakdown::new();
        let mut sw = Stopwatch::start(&kernel.clock);
        let mut s = PtraceSession::attach(kernel, pid)?;

        // Phase 1: interrupt all threads.
        s.interrupt_all()?;
        bd.add(RestorePhase::Interrupting, sw.lap());

        // Phase 2: read /proc/pid/maps.
        let cur_maps = s.read_maps()?;
        bd.add(RestorePhase::ReadingMaps, sw.lap());

        // Phase 3: scan page metadata (tracker-dependent).
        let dirty_report = tracker.collect(&mut s)?;
        bd.add(RestorePhase::ScanningPageMetadata, sw.lap());

        // Phase 4: diff memory layouts.
        let cur_brk = s.kernel().process(pid)?.mem.brk();
        let diff =
            crate::diff::LayoutDiff::compute(&snapshot.vmas, snapshot.brk, &cur_maps, cur_brk);
        let diff_cost = s
            .kernel()
            .cost
            .diff_cost(cur_maps.len() + snapshot.vmas.len());
        s.kernel().charge(diff_cost);
        bd.add(RestorePhase::DiffingMemoryLayouts, sw.lap());

        // Phases 5–9: inject layout syscalls, attributing time per class.
        let plan = diff.plan();
        let syscalls_injected = plan.len();
        for sc in plan {
            let phase = match sc.mnemonic() {
                "brk" => RestorePhase::Brk,
                "mmap" => RestorePhase::Mmap,
                "munmap" => RestorePhase::Munmap,
                "madvise" => RestorePhase::Madvise,
                _ => RestorePhase::Mprotect,
            };
            s.inject(sc)?;
            bd.add(phase, sw.lap());
        }

        // Present-page bookkeeping from the scan (when the backend saw the
        // pagemap): remove pages our munmaps just dropped.
        let stack_ranges = snapshot.stack_ranges();
        let in_stack = |vpn: u64| stack_ranges.iter().any(|r| r.contains(Vpn(vpn)));
        let in_ranges =
            |ranges: &[PageRange], vpn: u64| ranges.iter().any(|r| r.contains(Vpn(vpn)));

        let mut newly_paged = 0u64;
        let mut stack_zeroed = 0u64;
        let mut present_after: Option<BTreeSet<u64>> = None;
        if let Some(entries) = &dirty_report.present {
            let mut present: BTreeSet<u64> = entries
                .iter()
                .map(|e| e.vpn.0)
                .filter(|&v| !in_ranges(&diff.to_munmap, v))
                .collect();

            // Phase 8 (continued) + stack zeroing: handle pages that became
            // resident after the snapshot.
            let fresh: Vec<u64> = present
                .iter()
                .copied()
                .filter(|&v| !snapshot.has_page(Vpn(v)))
                .collect();
            let mut evicted: Vec<u64> = Vec::new();
            for &v in &fresh {
                if in_stack(v) {
                    if cfg.zero_stack {
                        s.zero_page(Vpn(v))?;
                        stack_zeroed += 1;
                    }
                } else if cfg.madvise_new {
                    s.evict_page(Vpn(v))?;
                    evicted.push(v);
                }
            }
            newly_paged = evicted.len() as u64;
            let evict_runs = group_ranges(&evicted).len() as u64;
            let madvise_cost = s.kernel().cost.syscall_inject * evict_runs
                + s.kernel().cost.madvise_new_page * newly_paged;
            s.kernel().charge(madvise_cost);
            for v in &evicted {
                present.remove(v);
            }
            bd.add(RestorePhase::Madvise, sw.lap());

            // Stack zeroing is charged into the memory-restoration phase.
            let zero_cost = s.kernel().cost.zero_stack_page * stack_zeroed;
            s.kernel().charge(zero_cost);
            present_after = Some(present);
        }

        // Phase 10: restore memory contents. The restore set is
        //   (dirty ∩ snapshot) ∪ (snapshot \ currently-present),
        // the second term covering pages dropped by madvise/munmap+remap
        // churn. Without a pagemap view (UFFD), the second term is limited
        // to the regions we know we remapped.
        let mut restore_set: BTreeSet<u64> = dirty_report
            .dirty
            .iter()
            .map(|v| v.0)
            .filter(|&v| snapshot.has_page(Vpn(v)))
            .collect();
        match &present_after {
            Some(present) => {
                for v in snapshot.page_vpns() {
                    if !present.contains(&v) {
                        restore_set.insert(v);
                    }
                }
            }
            None => {
                let remapped: Vec<PageRange> = diff.to_remap.iter().map(|r| r.range).collect();
                for v in snapshot.page_vpns() {
                    if in_ranges(&remapped, v) {
                        restore_set.insert(v);
                    }
                }
            }
        }
        let sorted: Vec<u64> = restore_set.iter().copied().collect();
        let runs = count_runs(&sorted);
        let pages_restored = sorted.len() as u64;
        for &v in &sorted {
            let data = snapshot
                .page_data(Vpn(v), s.kernel().frames())
                .expect("restore set ⊆ snapshot");
            s.write_page(Vpn(v), &data, Taint::Clean)?;
        }
        let copy_cost = if cfg.coalesce {
            s.kernel().cost.restore_pages_cost(pages_restored, runs)
        } else {
            s.kernel()
                .cost
                .restore_pages_cost_uncoalesced(pages_restored)
        };
        s.kernel().charge(copy_cost);
        bd.add(RestorePhase::RestoringMemory, sw.lap());

        // Phase 11: reset soft-dirty bits / re-arm tracking.
        tracker.arm(&mut s)?;
        bd.add(RestorePhase::ClearingSoftDirtyBits, sw.lap());

        // Phase 12: restore registers of all threads.
        s.restore_regs_all(&snapshot.regs)?;
        bd.add(RestorePhase::RestoringRegisters, sw.lap());

        // Phase 13: detach (resumes the process).
        s.detach()?;
        bd.add(RestorePhase::Detaching, sw.lap());

        let total = bd.total();
        Ok(RestoreReport {
            breakdown: bd,
            total,
            dirty_pages: dirty_report.dirty.len() as u64,
            pages_restored,
            runs,
            newly_paged,
            stack_zeroed,
            syscalls_injected,
        })
    }
}

/// Verifies (for tests and debugging) that a process state matches a
/// snapshot bit-exactly: layout, brk, page contents, registers.
pub fn verify_matches_snapshot(
    kernel: &Kernel,
    pid: Pid,
    snapshot: &Snapshot,
) -> Result<(), String> {
    let proc = kernel.process(pid).map_err(|e| e.to_string())?;
    // Layout.
    let cur = proc.mem.maps();
    let d = crate::diff::LayoutDiff::compute(&snapshot.vmas, snapshot.brk, &cur, proc.mem.brk());
    if !d.is_empty() {
        return Err(format!("layout differs: {d:?}"));
    }
    // Registers.
    for (tid, regs) in &snapshot.regs {
        let t = proc
            .thread(*tid)
            .ok_or_else(|| format!("thread {tid:?} missing"))?;
        if &t.regs != regs {
            return Err(format!("registers of {tid:?} differ"));
        }
    }
    // Page contents: every snapshot page must be present-or-restorable
    // with identical logical contents; pages absent from the snapshot must
    // not be resident (modulo the stack, which is zeroed instead).
    let stacks = snapshot.stack_ranges();
    for (vpn, pte) in proc.mem.pagemap() {
        let data = kernel.frames().data(pte.frame);
        match snapshot.page_data(vpn, kernel.frames()) {
            Some(saved) => {
                if !saved.logical_eq(data) {
                    return Err(format!("contents of {vpn:?} differ from snapshot"));
                }
            }
            None => {
                let zero = gh_mem::FrameData::Zero;
                if stacks.iter().any(|r| r.contains(vpn)) {
                    if !data.logical_eq(&zero) {
                        return Err(format!("stack page {vpn:?} not zeroed"));
                    }
                } else {
                    return Err(format!("page {vpn:?} resident but not in snapshot"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrackerKind;
    use crate::snapshot::Snapshotter;
    use crate::track::make_tracker;
    use gh_mem::{Perms, RequestId, Touch, VmaKind};

    struct Rig {
        kernel: Kernel,
        pid: Pid,
        snapshot: Snapshot,
        tracker: Box<dyn MemoryTracker>,
        region: PageRange,
        cfg: GroundhogConfig,
    }

    fn rig_with(kind: TrackerKind, pages: u64) -> Rig {
        let mut kernel = Kernel::boot();
        let pid = kernel.spawn("f");
        let region = kernel
            .run_charged(pid, |p, frames| {
                let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
                for vpn in r.iter() {
                    p.mem
                        .touch(vpn, Touch::WriteWord(0x5EED), Taint::Clean, frames)
                        .unwrap();
                }
                r
            })
            .unwrap()
            .0;
        let mut tracker = make_tracker(kind);
        let (snapshot, _) = Snapshotter::take(&mut kernel, pid, tracker.as_mut()).unwrap();
        Rig {
            kernel,
            pid,
            snapshot,
            tracker,
            region,
            cfg: GroundhogConfig::gh(),
        }
    }

    fn rig() -> Rig {
        rig_with(TrackerKind::SoftDirty, 32)
    }

    fn taint_writes(rig: &mut Rig, offsets: &[u64], req: u64) {
        let region = rig.region;
        rig.kernel
            .run_charged(rig.pid, |p, frames| {
                for &off in offsets {
                    p.mem
                        .touch(
                            Vpn(region.start.0 + off),
                            Touch::WriteWord(0xDEAD_0000 | off),
                            Taint::One(RequestId(req)),
                            frames,
                        )
                        .unwrap();
                }
            })
            .unwrap();
    }

    fn restore(rig: &mut Rig) -> RestoreReport {
        Restorer::restore(
            &mut rig.kernel,
            rig.pid,
            &rig.snapshot,
            rig.tracker.as_mut(),
            &rig.cfg,
        )
        .unwrap()
    }

    #[test]
    fn restore_reverts_contents_exactly() {
        let mut r = rig();
        taint_writes(&mut r, &[1, 5, 9], 1);
        let report = restore(&mut r);
        assert_eq!(report.dirty_pages, 3);
        assert_eq!(report.pages_restored, 3);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        // No taint survives.
        let proc = r.kernel.process(r.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(1), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn restore_is_idempotent() {
        let mut r = rig();
        taint_writes(&mut r, &[0, 2], 1);
        restore(&mut r);
        let second = restore(&mut r);
        assert_eq!(second.dirty_pages, 0);
        assert_eq!(second.pages_restored, 0);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
    }

    #[test]
    fn repeated_request_restore_cycles() {
        let mut r = rig();
        for round in 0..5u64 {
            taint_writes(&mut r, &[round, round + 7, round + 13], round);
            let report = restore(&mut r);
            assert_eq!(report.dirty_pages, 3, "round {round}");
            verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        }
    }

    #[test]
    fn registers_are_restored() {
        let mut r = rig();
        r.kernel
            .process_mut(r.pid)
            .unwrap()
            .main_thread_mut()
            .regs
            .scramble(1234, Taint::One(RequestId(8)));
        restore(&mut r);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        let regs = &r.kernel.process(r.pid).unwrap().main_thread().regs;
        assert_eq!(regs.taint, Taint::Clean);
    }

    #[test]
    fn layout_churn_is_reversed() {
        let mut r = rig();
        // Function mmaps two regions, munmaps part of the original, moves brk.
        let heap_base = r.kernel.process(r.pid).unwrap().mem.config().heap_base;
        let region = r.region;
        r.kernel
            .run_charged(r.pid, |p, frames| {
                let a = p.mem.mmap(8, Perms::RW, VmaKind::Anon).unwrap();
                p.mem
                    .touch(
                        a.start,
                        Touch::WriteWord(1),
                        Taint::One(RequestId(1)),
                        frames,
                    )
                    .unwrap();
                p.mem
                    .munmap(PageRange::at(Vpn(region.start.0 + 4), 2), frames)
                    .unwrap();
                p.mem.set_brk(Vpn(heap_base.0 + 40), frames).unwrap();
                p.mem
                    .touch(
                        Vpn(heap_base.0 + 10),
                        Touch::WriteWord(2),
                        Taint::One(RequestId(1)),
                        frames,
                    )
                    .unwrap();
            })
            .unwrap();
        let report = restore(&mut r);
        assert!(
            report.syscalls_injected >= 3,
            "brk + munmap + mmap at least"
        );
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        assert!(r
            .kernel
            .process(r.pid)
            .unwrap()
            .mem
            .tainted_pages(RequestId(1), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn madvised_pages_are_rewritten() {
        // A function that drops snapshot pages (madvise) must get the
        // snapshot contents back, even though those pages are not dirty.
        let mut r = rig();
        let region = r.region;
        r.kernel
            .run_charged(r.pid, |p, frames| {
                p.mem
                    .madvise_dontneed(PageRange::at(Vpn(region.start.0 + 3), 2), frames)
                    .unwrap();
            })
            .unwrap();
        let report = restore(&mut r);
        assert!(report.pages_restored >= 2, "dropped pages rewritten");
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
    }

    #[test]
    fn newly_paged_pages_are_madvised_away() {
        let mut r = rig();
        // Map extra space before snapshot? No: make the *function* read
        // pages of a region that existed but was never resident.
        let extra = r
            .kernel
            .run_charged(r.pid, |p, _| {
                p.mem.mmap(16, Perms::RW, VmaKind::Anon).unwrap()
            })
            .unwrap()
            .0;
        // Re-snapshot with the new layout but nothing resident there.
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snapshot, _) = Snapshotter::take(&mut r.kernel, r.pid, tracker.as_mut()).unwrap();
        r.snapshot = snapshot;
        r.tracker = tracker;
        // Function reads (pages in) some of the extra region.
        r.kernel
            .run_charged(r.pid, |p, frames| {
                for vpn in extra.iter().take(5) {
                    p.mem.touch(vpn, Touch::Read, Taint::Clean, frames).unwrap();
                }
            })
            .unwrap();
        let report = restore(&mut r);
        assert_eq!(report.newly_paged, 5);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        // The pages are genuinely non-resident again.
        let present = r.kernel.process(r.pid).unwrap().mem.present_pages();
        assert_eq!(present, r.snapshot.present_pages());
    }

    #[test]
    fn stack_pages_are_zeroed() {
        let mut r = rig();
        let stack = r.snapshot.stack_ranges()[0];
        // Dirty a stack page that was not resident at snapshot time.
        r.kernel
            .run_charged(r.pid, |p, frames| {
                p.mem
                    .touch(
                        stack.start,
                        Touch::WriteWord(0x5EC2E7),
                        Taint::One(RequestId(2)),
                        frames,
                    )
                    .unwrap();
            })
            .unwrap();
        let report = restore(&mut r);
        assert_eq!(report.stack_zeroed, 1);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        let proc = r.kernel.process(r.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(2), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn uffd_backend_restores_too() {
        let mut r = rig_with(TrackerKind::Uffd, 32);
        taint_writes(&mut r, &[2, 4, 6], 5);
        let report = restore(&mut r);
        assert_eq!(report.dirty_pages, 3);
        // UFFD cannot see newly-paged pages, but contents must match for
        // everything it can see.
        let proc = r.kernel.process(r.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(5), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn coalescing_reduces_charged_time() {
        // Dense contiguous write set: coalesced restore must be cheaper
        // than the uncoalesced ablation.
        let offsets: Vec<u64> = (0..24).collect();

        let mut a = rig();
        taint_writes(&mut a, &offsets, 1);
        let t = restore(&mut a);
        assert_eq!(t.runs, 1, "contiguous set is one run");

        let mut b = rig();
        b.cfg.coalesce = false;
        taint_writes(&mut b, &offsets, 1);
        let u = restore(&mut b);

        let coalesced = t.breakdown.get(RestorePhase::RestoringMemory);
        let scattered = u.breakdown.get(RestorePhase::RestoringMemory);
        assert!(
            coalesced < scattered,
            "coalesced {coalesced} !< uncoalesced {scattered}"
        );
    }

    #[test]
    fn breakdown_phases_are_populated() {
        let mut r = rig();
        taint_writes(&mut r, &[1, 3], 1);
        let report = restore(&mut r);
        let bd = &report.breakdown;
        assert!(bd.get(RestorePhase::Interrupting) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::ReadingMaps) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::ScanningPageMetadata) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::RestoringMemory) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::ClearingSoftDirtyBits) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::RestoringRegisters) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::Detaching) > Nanos::ZERO);
        assert_eq!(report.total, bd.total());
    }

    #[test]
    fn run_counting() {
        assert_eq!(count_runs(&[]), 0);
        assert_eq!(count_runs(&[5]), 1);
        assert_eq!(count_runs(&[1, 2, 3]), 1);
        assert_eq!(count_runs(&[1, 3, 5]), 3);
        assert_eq!(count_runs(&[1, 2, 4, 5, 9]), 3);
        assert_eq!(
            group_ranges(&[1, 2, 4, 5, 9]),
            vec![
                PageRange::at(Vpn(1), 2),
                PageRange::at(Vpn(4), 2),
                PageRange::at(Vpn(9), 1)
            ]
        );
    }
}
