//! Fleet-level behaviour: the paper's "restores hide between
//! activations" claim, lifted from one container to a scheduled pool.
//!
//! These are the acceptance tests of the fleet refactor:
//!
//! 1. determinism — same seed ⇒ bit-identical results;
//! 2. restore hiding across a pool — at a load where a *single* GH
//!    container queues badly, a GH pool of 4 tracks a BASE pool of 4;
//! 3. policy ordering — the restore-aware router beats round-robin at
//!    high utilization;
//! 4. pooling beats partitioning — one fleet of N with the
//!    restore-aware router sustains higher goodput at no worse p99 than
//!    N independent single-container open loops at the same total
//!    offered load.

use groundhog::core::GroundhogConfig;
use groundhog::faas::fleet::{run_fleet, FleetConfig, FleetResult, RoutePolicy};
use groundhog::faas::openloop::open_loop_run;
use groundhog::functions::catalog::by_name;
use groundhog::isolation::StrategyKind;

fn fleet(
    kind: StrategyKind,
    pool: usize,
    policy: RoutePolicy,
    rps: f64,
    requests: usize,
    seed: u64,
) -> FleetResult {
    let spec = by_name("fannkuch (p)").unwrap();
    run_fleet(
        &spec,
        kind,
        GroundhogConfig::gh(),
        pool,
        FleetConfig::fixed(policy, rps, seed),
        requests,
    )
    .unwrap()
}

#[test]
fn same_seed_is_bit_identical() {
    let a = fleet(
        StrategyKind::Gh,
        3,
        RoutePolicy::RestoreAware,
        120.0,
        150,
        77,
    );
    let b = fleet(
        StrategyKind::Gh,
        3,
        RoutePolicy::RestoreAware,
        120.0,
        150,
        77,
    );
    // Every float, counter and per-container figure must match exactly.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(a.goodput_rps.to_bits(), b.goodput_rps.to_bits());
    assert_eq!(a.mean_ms.to_bits(), b.mean_ms.to_bits());
    assert_eq!(a.p99_ms.to_bits(), b.p99_ms.to_bits());

    let spec = by_name("fannkuch (p)").unwrap();
    let o1 = open_loop_run(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 60.0, 80, 5).unwrap();
    let o2 = open_loop_run(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 60.0, 80, 5).unwrap();
    assert_eq!(format!("{o1:?}"), format!("{o2:?}"));

    // And a different seed genuinely perturbs the run.
    let c = fleet(
        StrategyKind::Gh,
        3,
        RoutePolicy::RestoreAware,
        120.0,
        150,
        78,
    );
    assert_ne!(a.mean_ms.to_bits(), c.mean_ms.to_bits());
}

#[test]
fn pool_of_one_is_the_open_loop() {
    // The fleet with a pool of one must reproduce the *seed code's*
    // single-container open loop bit-for-bit. The reference below is a
    // line-for-line replication of the pre-fleet `open_loop_run`
    // algorithm (one container, arrivals queueing on its clock), driven
    // without the fleet's event queue — so a regression in the fleet's
    // event loop cannot hide behind the wrapper. Sojourn stats flow
    // through the same fixed-size `QuantileSketch` the fleet uses (the
    // store-every-sample `Vec` path is gone), so mean/p99 equality
    // checks both the timeline and the sketch arithmetic.
    use groundhog::faas::{Container, Request};
    use groundhog::sim::stats::throughput_rps;
    use groundhog::sim::{DetRng, Nanos, QuantileSketch};

    let spec = by_name("fannkuch (p)").unwrap();
    let (offered_rps, requests, seed) = (90.0, 100usize, 21u64);

    let mut container =
        Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), seed).unwrap();
    let mut rng = DetRng::new(seed ^ 0x09E4_100D);
    let t0 = container.now();
    let mut arrival = t0;
    let mut busy = Nanos::ZERO;
    let mut sojourns = QuantileSketch::new();
    for i in 0..requests {
        let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        let gap_s = -u.ln() / offered_rps;
        arrival += Nanos::from_millis_f64(gap_s * 1e3);
        container.kernel.clock.advance_to(arrival);
        let start = container.now();
        let out = container
            .invoke(&Request::new(i as u64 + 1, "client", spec.input_kb))
            .unwrap();
        busy += out.invoker_latency + out.off_path;
        sojourns.record_nanos((start - arrival) + out.invoker_latency);
    }
    let span = container.now() - t0;
    let ref_mean = sojourns.mean_ms();
    let ref_p99 = sojourns.quantile_ms(99.0);
    let ref_goodput = throughput_rps(requests, span);
    let ref_util = (busy.as_secs_f64() / span.as_secs_f64()).min(1.0);

    let via_fleet = open_loop_run(
        &spec,
        StrategyKind::Gh,
        GroundhogConfig::gh(),
        offered_rps,
        requests,
        seed,
    )
    .unwrap();
    assert_eq!(ref_goodput.to_bits(), via_fleet.goodput_rps.to_bits());
    assert_eq!(ref_mean.to_bits(), via_fleet.mean_ms.to_bits());
    assert_eq!(ref_p99.to_bits(), via_fleet.p99_ms.to_bits());
    assert_eq!(ref_util.to_bits(), via_fleet.utilization.to_bits());
}

#[test]
fn pool_hides_restores_that_choke_a_single_container() {
    // fannkuch: exec ≈ 4.6ms, restore ≈ 2ms. At 130 r/s one GH container
    // is near capacity and queues badly (see openloop tests); a pool of
    // 4 at the same *total* load sits at ~25% utilization and must track
    // a BASE pool of 4 closely — the restores hide across the pool.
    let gh4 = fleet(
        StrategyKind::Gh,
        4,
        RoutePolicy::RestoreAware,
        130.0,
        300,
        9,
    );
    let base4 = fleet(
        StrategyKind::Base,
        4,
        RoutePolicy::RestoreAware,
        130.0,
        300,
        9,
    );
    assert!(
        gh4.utilization < 0.45,
        "pool spreads the load: {:.2}",
        gh4.utilization
    );
    let rel = gh4.mean_ms / base4.mean_ms;
    assert!(
        rel < 1.2,
        "restores must hide across the pool: GH {:.2}ms vs BASE {:.2}ms ({rel:.2}x)",
        gh4.mean_ms,
        base4.mean_ms
    );
    assert!(
        gh4.stats.restore_overlap_ratio > 0.85,
        "most restore time overlaps idle gaps: {:.2}",
        gh4.stats.restore_overlap_ratio
    );
}

#[test]
fn restore_aware_beats_round_robin_at_high_utilization() {
    // §4.4's deferred-restore mode makes the routing decision matter
    // most: a rollback runs on the *critical path* whenever a container
    // last served a different principal. A restore-blind round-robin
    // scatters the four principals across the pool and pays that
    // rollback on most requests; the restore-aware router clusters
    // principals onto containers that can admit them without restoring.
    let spec = by_name("fannkuch (p)").unwrap();
    let gh = GroundhogConfig {
        skip_same_principal: true,
        ..GroundhogConfig::gh()
    };
    let run = |policy| {
        let cfg = FleetConfig::fixed(policy, 420.0, 33).with_principals(4);
        run_fleet(&spec, StrategyKind::Gh, gh.clone(), 4, cfg, 400).unwrap()
    };
    let rr = run(RoutePolicy::RoundRobin);
    let ra = run(RoutePolicy::RestoreAware);
    assert!(rr.utilization > 0.6, "high load: {:.2}", rr.utilization);
    assert!(
        ra.mean_ms < rr.mean_ms * 0.97,
        "restore-aware must cut mean sojourn: {:.2}ms vs {:.2}ms",
        ra.mean_ms,
        rr.mean_ms
    );
    assert!(
        ra.p99_ms < rr.p99_ms * 1.05,
        "without hurting the tail: {:.2}ms vs {:.2}ms",
        ra.p99_ms,
        rr.p99_ms
    );
    assert!(
        ra.utilization < rr.utilization - 0.02,
        "skipped rollbacks save real capacity: util {:.2} vs {:.2}",
        ra.utilization,
        rr.utilization
    );
}

#[test]
fn one_fleet_beats_n_independent_loops_at_equal_p99() {
    // The acceptance criterion: N GH containers scheduled as one fleet
    // sustain higher goodput *at equal p99 sojourn* than N independent
    // single-container open loops. Both systems pick the highest offered
    // load (from the same grid, same seeds) whose p99 stays inside the
    // SLO; the fleet's statistical multiplexing lets it run far closer
    // to capacity before the tail blows up.
    let spec = by_name("fannkuch (p)").unwrap();
    let n = 4;
    let slo_p99_ms = 25.0;

    // Independent loops: each container is its own queue, so per-loop
    // p99 is the system p99. Find the best per-loop load meeting the SLO.
    let mut best_independent = 0.0f64; // aggregate goodput over n loops
    for per_loop in [40.0, 60.0, 80.0, 100.0, 110.0] {
        let mut total = 0.0;
        let mut worst_p99: f64 = 0.0;
        for i in 0..n {
            let r = open_loop_run(
                &spec,
                StrategyKind::Gh,
                GroundhogConfig::gh(),
                per_loop,
                150,
                100 + i as u64,
            )
            .unwrap();
            total += r.goodput_rps;
            worst_p99 = worst_p99.max(r.p99_ms);
        }
        if worst_p99 <= slo_p99_ms {
            best_independent = best_independent.max(total);
        }
    }

    // The fleet: same total-load grid, restore-aware routing.
    let mut best_fleet = 0.0;
    let mut fleet_p99_at_best = 0.0;
    for total_rps in [160.0, 240.0, 320.0, 400.0, 440.0] {
        let r = fleet(
            StrategyKind::Gh,
            n,
            RoutePolicy::RestoreAware,
            total_rps,
            150 * n,
            100,
        );
        if r.p99_ms <= slo_p99_ms && r.goodput_rps > best_fleet {
            best_fleet = r.goodput_rps;
            fleet_p99_at_best = r.p99_ms;
        }
    }

    assert!(
        best_independent > 0.0,
        "independent loops meet the SLO somewhere"
    );
    assert!(
        best_fleet > 2.0 * best_independent,
        "at p99 ≤ {slo_p99_ms}ms the fleet must sustain >2x the goodput: \
         fleet {best_fleet:.1} r/s (p99 {fleet_p99_at_best:.1}ms) vs \
         {n} independent loops {best_independent:.1} r/s"
    );
}
