//! A minimal discrete-event queue.
//!
//! Most experiments in the paper run containers on dedicated cores with
//! sequential request streams, which this reproduction simulates directly.
//! The event queue exists for the open-loop / multi-container cases (the
//! saturating-throughput workload of §5.3 and the core-scaling experiment
//! of §5.3.4), where multiple container timelines and a client interleave.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// An event scheduled at a virtual time, carrying a payload.
#[derive(Clone, Debug)]
struct Scheduled<T> {
    at: Nanos,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest-first.
        // Ties break by insertion order for determinism.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic earliest-first event queue.
///
/// # Examples
///
/// ```
/// use gh_sim::event::EventQueue;
/// use gh_sim::Nanos;
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_millis(5), "b");
/// q.schedule(Nanos::from_millis(1), "a");
/// assert_eq!(q.pop().unwrap(), (Nanos::from_millis(1), "a"));
/// assert_eq!(q.pop().unwrap(), (Nanos::from_millis(5), "b"));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at virtual time `at`.
    pub fn schedule(&mut self, at: Nanos, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.schedule(Nanos::from_nanos(30), 3);
        q.schedule(Nanos::from_nanos(10), 1);
        q.schedule(Nanos::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Nanos::from_nanos(5);
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(t, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Nanos::from_nanos(9), ());
        q.schedule(Nanos::from_nanos(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(4)));
    }
}
