//! Per-language runtime parameters.

use gh_sim::Nanos;

/// The language runtimes evaluated in the paper (§5.1: "Python, Node.js,
/// and C functions").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum RuntimeKind {
    /// Natively compiled C (PolyBench, the microbenchmark).
    NativeC,
    /// CPython (pyperformance, FaaSProfiler-python).
    Python,
    /// Node.js / V8 (FaaSProfiler-node).
    NodeJs,
}

impl RuntimeKind {
    /// The paper's benchmark-name suffix: `(c)`, `(p)`, `(n)`.
    pub fn suffix(self) -> &'static str {
        match self {
            RuntimeKind::NativeC => "(c)",
            RuntimeKind::Python => "(p)",
            RuntimeKind::NodeJs => "(n)",
        }
    }
}

/// Memory-layout churn a runtime performs per request (observed in §5.4:
/// "Node.js's runtime maps memory and performs memory layout changes
/// aggressively").
#[derive(Clone, Copy, Debug, Default)]
pub struct LayoutChurn {
    /// Anonymous `mmap`s issued during a request.
    pub mmaps: u32,
    /// `munmap`s issued during a request (of regions mapped this request
    /// or earlier).
    pub munmaps: u32,
    /// Net `brk` growth in pages during a request.
    pub brk_growth: u64,
    /// Pages per churn mmap.
    pub mmap_pages: u64,
}

/// Time-driven garbage collection (Node.js; §5.3.1: "garbage collection
/// can be triggered by the passage of time").
#[derive(Clone, Copy, Debug)]
pub struct GcProfile {
    /// Minimum virtual time between collections.
    pub period: Nanos,
    /// CPU time one collection consumes.
    pub pause: Nanos,
    /// Pages the collector dirties (marking, compaction).
    pub pages_dirtied: u64,
}

/// Everything the simulation needs to know about a language runtime.
#[derive(Clone, Debug)]
pub struct RuntimeProfile {
    /// The language.
    pub kind: RuntimeKind,
    /// Threads the initialized runtime runs (V8 spawns helper + GC
    /// threads; CPython and C are effectively single-threaded plus one
    /// signal-handling helper for CPython).
    pub threads: usize,
    /// Fig. 1 "runtime initialization" duration (interpreter boot, JIT
    /// warmup). C: milliseconds; Python: hundreds of ms; Node: ~1 s.
    pub init_time: Nanos,
    /// Fraction of mapped pages resident after initialization + dummy
    /// request (C/Python images are mostly resident; Node maps a huge
    /// sparse space — Table 3 shows 156K+ mapped pages for trivial
    /// functions).
    pub resident_fraction: f64,
    /// Fraction of mapped pages that are file-backed (text, libraries).
    pub file_fraction: f64,
    /// Per-request layout churn.
    pub churn: LayoutChurn,
    /// Time-driven GC, if the runtime has one.
    pub gc: Option<GcProfile>,
    /// Uses the actionloop-proxy design natively (§5.1: Python/C do;
    /// Node.js was refactored, which makes Groundhog's input proxying
    /// dearer for it).
    pub native_actionloop: bool,
}

impl RuntimeProfile {
    /// The native-C profile.
    pub fn native_c() -> Self {
        RuntimeProfile {
            kind: RuntimeKind::NativeC,
            threads: 1,
            init_time: Nanos::from_millis(5),
            resident_fraction: 0.98,
            file_fraction: 0.10,
            churn: LayoutChurn::default(),
            gc: None,
            native_actionloop: true,
        }
    }

    /// The CPython profile.
    pub fn python() -> Self {
        RuntimeProfile {
            kind: RuntimeKind::Python,
            // Effectively single-threaded (the paper's FORK comparison
            // covers the Python benchmarks, which requires fork-able,
            // i.e. single-threaded, processes — §5.2.3).
            threads: 1,
            init_time: Nanos::from_millis(350),
            // Interpreter boot leaves much of the image unpaged: CPython
            // "heavily rel[ies] on lazy loading of classes and libraries"
            // (§4.1) — the dummy warm-up request pages the working set in.
            resident_fraction: 0.60,
            file_fraction: 0.25,
            churn: LayoutChurn {
                mmaps: 3,
                munmaps: 2,
                brk_growth: 4,
                mmap_pages: 16,
            },
            gc: None,
            native_actionloop: true,
        }
    }

    /// The Node.js / V8 profile.
    pub fn nodejs() -> Self {
        RuntimeProfile {
            kind: RuntimeKind::NodeJs,
            threads: 7,
            init_time: Nanos::from_millis(900),
            resident_fraction: 0.30,
            file_fraction: 0.15,
            churn: LayoutChurn {
                mmaps: 18,
                munmaps: 14,
                brk_growth: 0,
                mmap_pages: 32,
            },
            // A V8 full collection over a large image-processing heap:
            // rewinding the in-memory GC clock (restoration!) makes
            // GC-sensitive functions pay this almost every request
            // (§5.3.1, img-resize: GH invoker +62%).
            gc: Some(GcProfile {
                period: Nanos::from_secs(3),
                pause: Nanos::from_millis(180),
                pages_dirtied: 8_000,
            }),
            native_actionloop: false,
        }
    }

    /// Profile for a runtime kind.
    pub fn for_kind(kind: RuntimeKind) -> Self {
        match kind {
            RuntimeKind::NativeC => Self::native_c(),
            RuntimeKind::Python => Self::python(),
            RuntimeKind::NodeJs => Self::nodejs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_match_paper() {
        assert_eq!(RuntimeKind::NativeC.suffix(), "(c)");
        assert_eq!(RuntimeKind::Python.suffix(), "(p)");
        assert_eq!(RuntimeKind::NodeJs.suffix(), "(n)");
    }

    #[test]
    fn node_is_multithreaded_and_sparse() {
        let node = RuntimeProfile::nodejs();
        assert!(node.threads > 1, "fork-based isolation must be impossible");
        assert!(
            node.resident_fraction < 0.5,
            "Node maps far more than it touches"
        );
        assert!(node.gc.is_some());
        assert!(!node.native_actionloop);
    }

    #[test]
    fn c_is_minimal() {
        let c = RuntimeProfile::native_c();
        assert_eq!(c.threads, 1);
        assert!(c.gc.is_none());
        assert_eq!(c.churn.mmaps, 0);
        assert!(c.native_actionloop);
    }

    #[test]
    fn for_kind_dispatch() {
        assert_eq!(
            RuntimeProfile::for_kind(RuntimeKind::Python).kind,
            RuntimeKind::Python
        );
        assert_eq!(
            RuntimeProfile::for_kind(RuntimeKind::NodeJs).kind,
            RuntimeKind::NodeJs
        );
    }

    #[test]
    fn init_times_ordered_like_fig1() {
        // C boots fastest, Node slowest (Fig. 1: runtime init up to
        // seconds for managed runtimes).
        let c = RuntimeProfile::native_c().init_time;
        let p = RuntimeProfile::python().init_time;
        let n = RuntimeProfile::nodejs().init_time;
        assert!(c < p && p < n);
    }
}
