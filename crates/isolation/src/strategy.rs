//! The strategy state machines.

use std::collections::BTreeMap;

use gh_functions::FunctionSpec;
use gh_mem::{FrameData, StoreHandle, Taint};
use gh_proc::{Kernel, Pid};
use gh_runtime::FunctionProcess;
use gh_sim::Nanos;
use groundhog_core::restore::RestoreReport;
use groundhog_core::{GhError, GroundhogConfig, Manager};

/// Which isolation configuration a container runs (§5.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum StrategyKind {
    /// Insecure baseline: container + runtime state reused as-is.
    Base,
    /// Groundhog.
    Gh,
    /// Groundhog without restoration (same-trust optimization).
    GhNop,
    /// Fork-per-request copy-on-write isolation.
    Fork,
    /// WebAssembly (Faasm-style) heap remap isolation.
    Faasm,
    /// A fresh container per request (§2's trivial solution).
    Fresh,
}

impl StrategyKind {
    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Base => "base",
            StrategyKind::Gh => "GH",
            StrategyKind::GhNop => "GH-NOP",
            StrategyKind::Fork => "fork",
            StrategyKind::Faasm => "faasm",
            StrategyKind::Fresh => "fresh",
        }
    }

    /// True if sequential requests of different principals are isolated
    /// from each other under this strategy.
    pub fn provides_isolation(self) -> bool {
        matches!(
            self,
            StrategyKind::Gh | StrategyKind::Fork | StrategyKind::Faasm | StrategyKind::Fresh
        )
    }
}

/// Strategy-level failures.
#[derive(Debug)]
pub enum StrategyError {
    /// Groundhog engine error.
    Gh(GhError),
    /// Fork cannot isolate multi-threaded functions (§3.2).
    ForkNeedsSingleThread {
        /// Threads the runtime runs.
        threads: usize,
    },
    /// The function does not compile to WebAssembly (§5.3.3).
    NotWasmCompatible {
        /// Benchmark name.
        name: String,
    },
    /// Kernel/process failure.
    Proc(gh_proc::kernel::ProcError),
}

impl From<GhError> for StrategyError {
    fn from(e: GhError) -> Self {
        StrategyError::Gh(e)
    }
}
impl From<gh_proc::kernel::ProcError> for StrategyError {
    fn from(e: gh_proc::kernel::ProcError) -> Self {
        StrategyError::Proc(e)
    }
}

impl core::fmt::Display for StrategyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StrategyError::Gh(e) => write!(f, "groundhog: {e}"),
            StrategyError::ForkNeedsSingleThread { threads } => {
                write!(f, "fork isolation cannot snapshot {threads} threads")
            }
            StrategyError::NotWasmCompatible { name } => {
                write!(f, "{name} does not compile to WebAssembly")
            }
            StrategyError::Proc(e) => write!(f, "process: {e}"),
        }
    }
}
impl std::error::Error for StrategyError {}

/// Result of preparing a container (after init + dummy warm-up).
#[derive(Clone, Debug, Default)]
pub struct PrepareReport {
    /// One-time preparation time charged (snapshot cost for GH, heap
    /// checkpoint for Faasm).
    pub duration: Nanos,
    /// Pages captured, if a snapshot was taken.
    pub snapshot_pages: Option<u64>,
}

/// Where the request must execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunTarget {
    /// In the container's long-lived function process.
    Resident(Pid),
    /// In a fresh fork child (discarded afterwards).
    ForkChild(Pid),
}

impl RunTarget {
    /// The pid to execute in.
    pub fn pid(self) -> Pid {
        match self {
            RunTarget::Resident(p) | RunTarget::ForkChild(p) => p,
        }
    }
}

/// Result of concluding a request.
#[derive(Clone, Debug, Default)]
pub struct PostReport {
    /// Time the container stays busy *after* the response left
    /// (restoration / teardown / remap — §4's off-critical-path work).
    pub off_path: Nanos,
    /// Full Groundhog restore report, when one ran.
    pub restore: Option<RestoreReport>,
}

impl core::fmt::Debug for Strategy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Strategy::{}", self.kind().label())
    }
}

/// A container's isolation state machine.
pub enum Strategy {
    /// Insecure reuse.
    Base,
    /// Groundhog (GH or GHNOP depending on config).
    Gh(Box<Manager>),
    /// Fork-per-request: holds the live child while one executes.
    Fork {
        /// Child currently serving a request.
        active_child: Option<Pid>,
    },
    /// Faasm-style: checkpoint of the wasm heap taken at prepare time.
    Faasm {
        /// Saved (vpn → contents) of the managed heap regions.
        heap: BTreeMap<u64, FrameData>,
        /// Saved execution context (the Faaslet's register state).
        regs: Vec<(gh_proc::Tid, gh_proc::RegisterSet)>,
        /// Compute-time multiplier (wasm vs native).
        compute_scale: f64,
    },
    /// Fresh container per request (the platform rebuilds; this just
    /// remembers the kind).
    Fresh,
}

impl Strategy {
    /// Builds the strategy for `kind`, validating function compatibility.
    pub fn create(
        kind: StrategyKind,
        kernel: &Kernel,
        fproc: &FunctionProcess,
        spec: &FunctionSpec,
        gh_cfg: GroundhogConfig,
    ) -> Result<Strategy, StrategyError> {
        Self::create_with_store(kind, kernel, fproc, spec, gh_cfg, None)
    }

    /// Builds the strategy with an optional pool-shared snapshot store.
    /// GH/GHNOP managers intern their clean-state pages into the store
    /// under the function's name so an entire container pool dedups to
    /// one base image plus per-container deltas; other strategies ignore
    /// the store.
    pub fn create_with_store(
        kind: StrategyKind,
        kernel: &Kernel,
        fproc: &FunctionProcess,
        spec: &FunctionSpec,
        gh_cfg: GroundhogConfig,
        store: Option<StoreHandle>,
    ) -> Result<Strategy, StrategyError> {
        let shared = store.map(|s| (spec.name.to_string(), s));
        match kind {
            StrategyKind::Base => Ok(Strategy::Base),
            StrategyKind::Gh => Ok(Strategy::Gh(Box::new(Manager::with_shared_store(
                fproc.pid, gh_cfg, shared,
            )))),
            StrategyKind::GhNop => {
                let cfg = GroundhogConfig {
                    restore_enabled: false,
                    ..gh_cfg
                };
                Ok(Strategy::Gh(Box::new(Manager::with_shared_store(
                    fproc.pid, cfg, shared,
                ))))
            }
            StrategyKind::Fork => {
                let threads = kernel.process(fproc.pid)?.thread_count();
                if threads != 1 {
                    return Err(StrategyError::ForkNeedsSingleThread { threads });
                }
                Ok(Strategy::Fork { active_child: None })
            }
            StrategyKind::Faasm => {
                let Some(faasm) = spec.faasm else {
                    return Err(StrategyError::NotWasmCompatible {
                        name: spec.name.into(),
                    });
                };
                let compute_scale = if spec.base_invoker_ms > 0.0 {
                    (faasm.invoker_ms / spec.base_invoker_ms).max(0.05)
                } else {
                    1.0
                };
                Ok(Strategy::Faasm {
                    heap: BTreeMap::new(),
                    regs: Vec::new(),
                    compute_scale,
                })
            }
            StrategyKind::Fresh => Ok(Strategy::Fresh),
        }
    }

    /// The kind of this strategy.
    pub fn kind(&self) -> StrategyKind {
        match self {
            Strategy::Base => StrategyKind::Base,
            Strategy::Gh(m) => {
                if m.config().restore_enabled {
                    StrategyKind::Gh
                } else {
                    StrategyKind::GhNop
                }
            }
            Strategy::Fork { .. } => StrategyKind::Fork,
            Strategy::Faasm { .. } => StrategyKind::Faasm,
            Strategy::Fresh => StrategyKind::Fresh,
        }
    }

    /// True when a request may be forwarded without violating isolation
    /// (§4.5): the strategy either has the process provably clean or
    /// will roll it back during admission (§4.4's deferred mode).
    /// Non-Groundhog strategies have no restore gate and are always
    /// admissible; GH delegates to [`Manager::is_ready`], making
    /// restore completion a first-class readiness signal the fleet
    /// scheduler can route on. [`Strategy::admits_without_restore`]
    /// asks the stronger per-principal "clean right now" question.
    pub fn is_ready(&self) -> bool {
        match self {
            Strategy::Gh(mgr) => mgr.is_ready(),
            _ => true,
        }
    }

    /// True when admitting `principal` now puts no restore on the
    /// request's critical path (always for non-GH strategies; for GH,
    /// the process is clean or §4.4's same-principal skip applies).
    pub fn admits_without_restore(&self, principal: &str) -> bool {
        match self {
            Strategy::Gh(mgr) => mgr.admits_without_restore(principal),
            _ => true,
        }
    }

    /// Pages still awaiting on-demand restoration in the function
    /// process (GH under [`RestoreMode::Lazy`](groundhog_core::RestoreMode);
    /// zero for every other strategy or restore mode). Their stale
    /// frames are unobservable — any access faults the snapshot
    /// contents in first — but platforms that checkpoint or migrate
    /// containers drain them first.
    pub fn lazy_pending(&self, kernel: &Kernel) -> u64 {
        match self {
            Strategy::Gh(mgr) => mgr.lazy_pending(kernel),
            _ => 0,
        }
    }

    /// Forces the writeback of every still-pending lazily-restored page,
    /// charging the full writeback cost; no-op for other strategies.
    /// Returns the number of pages drained.
    pub fn drain_lazy_now(&mut self, kernel: &mut Kernel) -> Result<u64, StrategyError> {
        match self {
            Strategy::Gh(mgr) => Ok(mgr.drain_now(kernel)?),
            _ => Ok(0),
        }
    }

    /// Multiplier on the function's compute time (wasm vs native,
    /// §5.3.3); 1.0 for process-based strategies.
    pub fn compute_scale(&self) -> f64 {
        match self {
            Strategy::Faasm { compute_scale, .. } => *compute_scale,
            _ => 1.0,
        }
    }

    /// Prepares the container after initialization + dummy warm-up:
    /// GH takes its snapshot (§4.2); Faasm checkpoints the heap.
    pub fn prepare(
        &mut self,
        kernel: &mut Kernel,
        fproc: &FunctionProcess,
    ) -> Result<PrepareReport, StrategyError> {
        self.prepare_with(kernel, fproc, None)
    }

    /// Like [`Strategy::prepare`], with an optionally pre-locked pool
    /// store passed through to the GH snapshot (pool builds lock once
    /// for the whole fleet). Non-GH strategies ignore `locked`.
    pub fn prepare_with(
        &mut self,
        kernel: &mut Kernel,
        fproc: &FunctionProcess,
        locked: Option<&mut gh_mem::SnapshotStore>,
    ) -> Result<PrepareReport, StrategyError> {
        match self {
            Strategy::Gh(mgr) => {
                let report = mgr.snapshot_now_with(kernel, locked)?;
                Ok(PrepareReport {
                    duration: report.duration,
                    snapshot_pages: Some(report.present_pages),
                })
            }
            Strategy::Faasm { heap, regs, .. } => {
                let t0 = kernel.clock.now();
                let (proc, frames) = kernel.mem_ctx(fproc.pid)?;
                *regs = proc
                    .threads
                    .iter()
                    .map(|t| (t.tid, t.regs.clone()))
                    .collect();
                let mut saved = BTreeMap::new();
                for r in fproc.regions.dirtyable() {
                    for vpn in r.iter() {
                        if let Some(pte) = proc.mem.pte(vpn) {
                            saved.insert(vpn.0, frames.data(pte.frame).clone());
                        }
                    }
                }
                proc.mem.clear_soft_dirty();
                let pages = saved.len() as u64;
                *heap = saved;
                // Checkpointing the contiguous wasm heap is a remap, far
                // cheaper than a page-walk snapshot.
                let cost =
                    kernel.cost.faasm_remap_base + kernel.cost.snapshot_per_mapped_page * pages;
                kernel.charge(cost);
                Ok(PrepareReport {
                    duration: kernel.clock.now() - t0,
                    snapshot_pages: Some(pages),
                })
            }
            _ => Ok(PrepareReport::default()),
        }
    }

    /// Admits a request, returning where it must run. For FORK this is
    /// where the per-request `fork` happens — on the critical path.
    pub fn admit(
        &mut self,
        kernel: &mut Kernel,
        fproc: &FunctionProcess,
        principal: &str,
    ) -> Result<RunTarget, StrategyError> {
        match self {
            Strategy::Base | Strategy::Fresh | Strategy::Faasm { .. } => {
                Ok(RunTarget::Resident(fproc.pid))
            }
            Strategy::Gh(mgr) => {
                mgr.begin_request(kernel, principal)?;
                Ok(RunTarget::Resident(fproc.pid))
            }
            Strategy::Fork { active_child } => {
                debug_assert!(active_child.is_none(), "one request at a time");
                let child = kernel.fork(fproc.pid)?;
                *active_child = Some(child);
                Ok(RunTarget::ForkChild(child))
            }
        }
    }

    /// Concludes a request after the response has been forwarded: the
    /// off-critical-path cleanup (GH restore, fork teardown, Faasm remap).
    pub fn conclude(
        &mut self,
        kernel: &mut Kernel,
        fproc: &FunctionProcess,
    ) -> Result<PostReport, StrategyError> {
        match self {
            Strategy::Base | Strategy::Fresh => Ok(PostReport::default()),
            Strategy::Gh(mgr) => {
                let t0 = kernel.clock.now();
                let restore = mgr.end_request(kernel)?;
                // §5.3.1's proposed fix: virtualize time so the restored
                // process does not observe the clock rewind (prevents
                // re-triggering time-driven GC).
                if restore.is_some() && mgr.config().virtualize_time {
                    fproc.rebase_gc_clock(kernel);
                }
                Ok(PostReport {
                    off_path: kernel.clock.now() - t0,
                    restore,
                })
            }
            Strategy::Fork { active_child } => {
                let t0 = kernel.clock.now();
                if let Some(child) = active_child.take() {
                    kernel.exit(child)?;
                }
                Ok(PostReport {
                    off_path: kernel.clock.now() - t0,
                    restore: None,
                })
            }
            Strategy::Faasm { heap, regs, .. } => {
                // CoW remap of the contiguous wasm region: all dirty pages
                // revert; cost is the remap, not a per-page copy walk. The
                // Faaslet's execution context (registers) resets with it.
                let t0 = kernel.clock.now();
                let (proc, frames) = kernel.mem_ctx(fproc.pid)?;
                for (tid, saved_regs) in regs.iter() {
                    if let Some(t) = proc.thread_mut(*tid) {
                        t.regs.load(saved_regs);
                    }
                }
                let dirty = proc.mem.soft_dirty_pages();
                let mut reverted = 0u64;
                for vpn in &dirty {
                    match heap.get(&vpn.0) {
                        Some(data) => {
                            proc.mem
                                .restore_page(*vpn, data, Taint::Clean, frames)
                                .map_err(|_| {
                                    StrategyError::Proc(gh_proc::kernel::ProcError::NoSuchProcess(
                                        fproc.pid,
                                    ))
                                })?;
                            reverted += 1;
                        }
                        None => {
                            proc.mem.evict_page(*vpn, frames);
                            reverted += 1;
                        }
                    }
                }
                proc.mem.clear_soft_dirty();
                let cost = kernel.cost.faasm_reset_cost(reverted);
                kernel.charge(cost);
                Ok(PostReport {
                    off_path: kernel.clock.now() - t0,
                    restore: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_functions::behavior::{Executor, RequestCtx};
    use gh_functions::catalog::by_name;
    use gh_mem::RequestId;
    use gh_runtime::RuntimeProfile;

    fn build(name: &str) -> (Kernel, FunctionProcess, FunctionSpec) {
        let spec = by_name(name).unwrap();
        let mut kernel = Kernel::boot();
        let fproc = FunctionProcess::build(
            &mut kernel,
            spec.name,
            RuntimeProfile::for_kind(spec.runtime),
            spec.total_pages(),
        );
        (kernel, fproc, spec)
    }

    fn full_cycle(
        kind: StrategyKind,
        name: &str,
        requests: u64,
    ) -> (Kernel, FunctionProcess, Strategy) {
        let (mut kernel, mut fproc, spec) = build(name);
        // Dummy warm-up (§4.1), then prepare.
        Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::dummy(0));
        let mut strat =
            Strategy::create(kind, &kernel, &fproc, &spec, GroundhogConfig::gh()).unwrap();
        strat.prepare(&mut kernel, &fproc).unwrap();
        for i in 1..=requests {
            let target = strat.admit(&mut kernel, &fproc, "alice").unwrap();
            let mut view = fproc.with_pid(target.pid());
            let req = RequestCtx::new(i, "alice", i);
            Executor::invoke(&mut kernel, &mut view, &spec, &req);
            strat.conclude(&mut kernel, &fproc).unwrap();
        }
        (kernel, fproc, strat)
    }

    #[test]
    fn labels_and_isolation_flags() {
        assert_eq!(StrategyKind::Gh.label(), "GH");
        assert_eq!(StrategyKind::GhNop.label(), "GH-NOP");
        assert!(StrategyKind::Gh.provides_isolation());
        assert!(!StrategyKind::Base.provides_isolation());
        assert!(!StrategyKind::GhNop.provides_isolation());
        assert!(StrategyKind::Fork.provides_isolation());
    }

    #[test]
    fn gh_cycle_removes_taint() {
        let (kernel, fproc, strat) = full_cycle(StrategyKind::Gh, "telco (p)", 3);
        assert_eq!(strat.kind(), StrategyKind::Gh);
        let proc = kernel.process(fproc.pid).unwrap();
        for i in 1..=3 {
            assert!(
                proc.mem
                    .tainted_pages(RequestId(i), kernel.frames())
                    .is_empty(),
                "request {i} leaked"
            );
        }
    }

    #[test]
    fn base_cycle_retains_taint() {
        let (kernel, fproc, _) = full_cycle(StrategyKind::Base, "telco (p)", 2);
        let proc = kernel.process(fproc.pid).unwrap();
        assert!(!proc
            .mem
            .tainted_pages(RequestId(2), kernel.frames())
            .is_empty());
    }

    #[test]
    fn ghnop_retains_taint_but_tracks() {
        let (kernel, fproc, strat) = full_cycle(StrategyKind::GhNop, "telco (p)", 2);
        assert_eq!(strat.kind(), StrategyKind::GhNop);
        let proc = kernel.process(fproc.pid).unwrap();
        assert!(!proc
            .mem
            .tainted_pages(RequestId(1), kernel.frames())
            .is_empty());
    }

    #[test]
    fn fork_cycle_keeps_parent_clean() {
        let (kernel, fproc, _) = full_cycle(StrategyKind::Fork, "atax (c)", 3);
        let proc = kernel.process(fproc.pid).unwrap();
        for i in 1..=3 {
            assert!(
                proc.mem
                    .tainted_pages(RequestId(i), kernel.frames())
                    .is_empty(),
                "fork parent dirtied by request {i}"
            );
        }
        // Children were all reaped.
        assert_eq!(kernel.process_count(), 1);
    }

    #[test]
    fn fork_rejects_multithreaded_runtimes() {
        let (kernel, fproc, spec) = build("json (n)");
        let err = Strategy::create(
            StrategyKind::Fork,
            &kernel,
            &fproc,
            &spec,
            GroundhogConfig::gh(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            StrategyError::ForkNeedsSingleThread { threads: 7 }
        ));
    }

    #[test]
    fn faasm_requires_wasm_compatibility() {
        let (kernel, fproc, spec) = build("json (n)");
        let err = Strategy::create(
            StrategyKind::Faasm,
            &kernel,
            &fproc,
            &spec,
            GroundhogConfig::gh(),
        )
        .unwrap_err();
        assert!(matches!(err, StrategyError::NotWasmCompatible { .. }));
    }

    #[test]
    fn faasm_cycle_reverts_heap_and_scales_compute() {
        let (kernel, fproc, strat) = full_cycle(StrategyKind::Faasm, "pyaes (p)", 2);
        // pyaes under wasm is ~1.8x slower (Table 1: 8559 vs 4672).
        assert!(strat.compute_scale() > 1.5);
        let proc = kernel.process(fproc.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(1), kernel.frames())
            .is_empty());
        assert!(proc
            .mem
            .tainted_pages(RequestId(2), kernel.frames())
            .is_empty());
    }

    #[test]
    fn faasm_is_faster_than_native_on_polybench() {
        let (kernel, fproc, spec) = build("atax (c)");
        let strat = Strategy::create(
            StrategyKind::Faasm,
            &kernel,
            &fproc,
            &spec,
            GroundhogConfig::gh(),
        )
        .unwrap();
        assert!(
            strat.compute_scale() < 1.0,
            "wasm beats native on PolyBench (§5.3.3)"
        );
    }

    #[test]
    fn gh_lazy_cycle_defers_then_drains_clean() {
        let (mut kernel, mut fproc, spec) = build("telco (p)");
        Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::dummy(0));
        let mut strat = Strategy::create(
            StrategyKind::Gh,
            &kernel,
            &fproc,
            &spec,
            GroundhogConfig::lazy(),
        )
        .unwrap();
        strat.prepare(&mut kernel, &fproc).unwrap();
        strat.admit(&mut kernel, &fproc, "alice").unwrap();
        Executor::invoke(
            &mut kernel,
            &mut fproc,
            &spec,
            &RequestCtx::new(1, "alice", 1),
        );
        let post = strat.conclude(&mut kernel, &fproc).unwrap();
        let report = post.restore.expect("lazy GH still restores");
        assert!(report.pages_deferred > 0);
        assert_eq!(report.pages_restored, 0);
        assert!(strat.lazy_pending(&kernel) > 0);
        // Draining clears the pending set — and with it the last
        // (unobservable) traces of alice's request.
        let drained = strat.drain_lazy_now(&mut kernel).unwrap();
        assert_eq!(drained, report.pages_deferred);
        assert_eq!(strat.lazy_pending(&kernel), 0);
        let proc = kernel.process(fproc.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(1), kernel.frames())
            .is_empty());
        // Non-GH strategies report no pending pages.
        let base = Strategy::Base;
        assert_eq!(base.lazy_pending(&kernel), 0);
    }

    #[test]
    fn gh_strategies_share_a_pool_store() {
        let store = gh_mem::SnapshotStore::new_handle();
        let mut per_container = 0u64;
        for _ in 0..2 {
            let (mut kernel, mut fproc, spec) = build("telco (p)");
            Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::dummy(0));
            let mut strat = Strategy::create_with_store(
                StrategyKind::Gh,
                &kernel,
                &fproc,
                &spec,
                GroundhogConfig::gh(),
                Some(store.clone()),
            )
            .unwrap();
            let prep = strat.prepare(&mut kernel, &fproc).unwrap();
            per_container = prep.snapshot_pages.unwrap();
        }
        let st = store.lock().unwrap();
        assert_eq!(st.stats().logical_pages, per_container * 2);
        assert!(
            st.dedup_ratio() > 1.9,
            "identical containers dedup fully, got {:.2}",
            st.dedup_ratio()
        );
    }

    #[test]
    fn gh_off_path_work_reported() {
        let (mut kernel, mut fproc, spec) = build("float (p)");
        Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::dummy(0));
        let mut strat = Strategy::create(
            StrategyKind::Gh,
            &kernel,
            &fproc,
            &spec,
            GroundhogConfig::gh(),
        )
        .unwrap();
        let prep = strat.prepare(&mut kernel, &fproc).unwrap();
        assert!(prep.duration > Nanos::ZERO);
        assert!(prep.snapshot_pages.unwrap() > 0);
        strat.admit(&mut kernel, &fproc, "a").unwrap();
        Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::new(1, "a", 1));
        let post = strat.conclude(&mut kernel, &fproc).unwrap();
        assert!(
            post.off_path > Nanos::ZERO,
            "restore happens off the critical path"
        );
        assert!(post.restore.is_some());
    }

    #[test]
    fn base_has_no_off_path_work() {
        let (mut kernel, mut fproc, spec) = build("float (p)");
        Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::dummy(0));
        let mut strat = Strategy::create(
            StrategyKind::Base,
            &kernel,
            &fproc,
            &spec,
            GroundhogConfig::gh(),
        )
        .unwrap();
        strat.prepare(&mut kernel, &fproc).unwrap();
        strat.admit(&mut kernel, &fproc, "a").unwrap();
        Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::new(1, "a", 1));
        let post = strat.conclude(&mut kernel, &fproc).unwrap();
        assert_eq!(post.off_path, Nanos::ZERO);
    }
}
