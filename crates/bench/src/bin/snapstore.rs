//! Pool-shared snapshot store — dedup ratio and resident bytes vs pool
//! size (§5.5 taken fleet-wide).
//!
//! ```text
//! cargo run --release -p gh-bench --bin snapstore
//! ```
//!
//! For each pool size, builds a GH pool (every container interning its
//! clean-state snapshot into the shared store) and reports what the pool
//! actually holds versus what `pool_size ×` private eager snapshots
//! would cost. Each (benchmark, pool size) cell builds an independent
//! pool, so the grid fans out across threads via
//! `gh_bench::harness::run_cells` with a deterministic ordered merge
//! (`--serial` / `GH_SERIAL=1` forces one worker).

use gh_bench::harness::{run_cells, serial_requested};
use gh_bench::{smoke, write_csv};
use gh_faas::fleet::Pool;
use gh_functions::catalog::by_name;
use gh_isolation::StrategyKind;
use gh_mem::PAGE_SIZE;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

const SIZES: [usize; 5] = [1, 2, 4, 8, 16];
const FUNCTIONS: [&str; 3] = ["fannkuch (p)", "base64 (n)", "atax (c)"];

fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

fn main() {
    let sizes: &[usize] = if smoke() { &[1, 4] } else { &SIZES };
    let functions: &[&str] = if smoke() { &FUNCTIONS[..2] } else { &FUNCTIONS };
    println!("== snapstore — pool snapshot memory vs pool size ==\n");
    let headers = [
        "benchmark",
        "pool",
        "snapshot MiB",
        "naive MiB",
        "shared MiB",
        "per-ctr MiB",
        "dedup ratio",
        "hash hits",
        "saved %",
    ];
    let mut table = TextTable::new(&headers);
    let mut csv = TextTable::new(&headers);

    let cells: Vec<(&str, usize)> = functions
        .iter()
        .flat_map(|&name| sizes.iter().map(move |&size| (name, size)))
        .collect();
    let rows = run_cells(&cells, serial_requested(), |&(name, size)| {
        let spec = by_name(name).expect("catalog entry");
        let pool =
            Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), size, 42).expect("gh pool");
        let one = pool.slots[0]
            .container
            .stats
            .prepare
            .as_ref()
            .unwrap()
            .snapshot_pages
            .unwrap()
            * PAGE_SIZE;
        let naive = one * size as u64;
        let mem = pool.memory();
        let saved = 100.0 * (1.0 - mem.resident_bytes as f64 / naive.max(1) as f64);
        vec![
            spec.name.to_string(),
            size.to_string(),
            mib(one),
            mib(naive),
            mib(mem.resident_bytes),
            format!(
                "{:.2}",
                mem.resident_bytes_per_container / (1024.0 * 1024.0)
            ),
            format!("{:.2}", mem.dedup_ratio),
            mem.hash_hits.to_string(),
            format!("{saved:.1}%"),
        ]
    });
    for row in rows {
        table.row_owned(row.clone());
        csv.row_owned(row);
    }
    println!("{}", table.render());
    write_csv("snapstore", &csv);
    println!(
        "Pool snapshot memory is one base image plus per-container deltas (the \
         timeline-dependent runtime-state page), so resident bytes stay near one \
         snapshot while the naive cost grows linearly with the pool."
    );
}
