//! §5.3.4 in miniature, fleet edition: Groundhog goodput scales linearly
//! with pool size, because the fleet scheduler keeps every container's
//! restore off the critical path while the event queue interleaves the
//! per-container timelines.
//!
//! ```text
//! cargo run --release --example throughput_scaling
//! ```

use groundhog::core::GroundhogConfig;
use groundhog::faas::fleet::{run_fleet, FleetConfig, RoutePolicy};
use groundhog::functions::catalog;
use groundhog::isolation::StrategyKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = catalog::by_name("fannkuch (p)").ok_or("not in catalog")?;
    // Offered load tracks the pool: ~90% of one GH container's capacity
    // per slot, so every pool size runs at the same utilization.
    let per_slot_rps = 112.0;
    println!(
        "fleet throughput scaling for {} (exec ≈ {:.1}ms, restore ≈ {:.1}ms):\n",
        spec.name, spec.base_invoker_ms, spec.paper_restore_ms
    );
    println!(
        "{:>5} {:>12} {:>13} {:>13} {:>9} {:>9} {:>16}",
        "pool", "offered r/s", "base (r/s)", "GH (r/s)", "GH mean", "GH p99", "restore overlap"
    );
    let mut gh_goodput = Vec::new();
    for pool in 1..=4usize {
        let offered = per_slot_rps * pool as f64;
        let requests = 150 * pool;
        let base = run_fleet(
            &spec,
            StrategyKind::Base,
            GroundhogConfig::gh(),
            pool,
            FleetConfig::fixed(RoutePolicy::RestoreAware, offered, 7),
            requests,
        )?;
        let gh = run_fleet(
            &spec,
            StrategyKind::Gh,
            GroundhogConfig::gh(),
            pool,
            FleetConfig::fixed(RoutePolicy::RestoreAware, offered, 7),
            requests,
        )?;
        gh_goodput.push(gh.goodput_rps);
        println!(
            "{pool:>5} {offered:>12.0} {:>13.1} {:>13.1} {:>7.1}ms {:>7.1}ms {:>15.0}%",
            base.goodput_rps,
            gh.goodput_rps,
            gh.mean_ms,
            gh.p99_ms,
            gh.stats.restore_overlap_ratio * 100.0,
        );
    }
    let scaling = gh_goodput[3] / gh_goodput[0];
    println!("\nGH goodput scaling 1→4 containers: {scaling:.2}x (paper: nearly linear)");
    assert!(scaling > 3.5, "must be close to linear, got {scaling:.2}x");
    Ok(())
}
