//! Table 2 — relative overheads versus the insecure baseline, with
//! coefficients of variation, for all 58 benchmarks.
//!
//! ```text
//! cargo run --release -p gh-bench --bin table2
//! ```

use gh_bench::{
    latency_requests, run_latency, run_throughput, write_csv, xput_requests, ALL_KINDS,
};
use gh_functions::catalog::catalog;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use gh_sim::stats::overhead_percent;

fn fmt_over(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:+.2}%"),
        None => "-".into(),
    }
}

fn main() {
    let n = latency_requests();
    let reqs = xput_requests();
    println!("== Table 2 — relative overheads vs BASE ==\n");
    let mut table = TextTable::new(&[
        "benchmark",
        "base E2E ms",
        "±CoV%",
        "E2E GH-NOP",
        "E2E GH",
        "E2E fork",
        "E2E faasm",
        "xput GH-NOP",
        "xput GH",
        "xput fork",
        "inv GH",
        "GH restore ms",
    ]);
    for spec in catalog() {
        let base = run_latency(&spec, StrategyKind::Base, n, 20).expect("base");
        let base_e2e = base.e2e.summary_ms();
        let base_inv = base.invoker_mean_ms();
        let base_x = run_throughput(&spec, StrategyKind::Base, reqs, 20).expect("base x");

        let mut e2e_over = Vec::new();
        for kind in &ALL_KINDS[1..] {
            e2e_over.push(
                run_latency(&spec, *kind, n, 20)
                    .map(|r| overhead_percent(base_e2e.mean, r.e2e_mean_ms())),
            );
        }
        let x_over =
            |kind| run_throughput(&spec, kind, reqs, 20).map(|x| overhead_percent(base_x, x));
        let gh = run_latency(&spec, StrategyKind::Gh, n, 20).expect("gh");
        table.row_owned(vec![
            spec.name.to_string(),
            format!("{:.1}", base_e2e.mean),
            format!("{:.1}", base_e2e.cov_percent()),
            fmt_over(e2e_over[0]),
            fmt_over(e2e_over[1]),
            fmt_over(e2e_over[2]),
            fmt_over(e2e_over[3]),
            fmt_over(x_over(StrategyKind::GhNop)),
            fmt_over(x_over(StrategyKind::Gh)),
            fmt_over(x_over(StrategyKind::Fork)),
            fmt_over(Some(overhead_percent(base_inv, gh.invoker_mean_ms()))),
            format!("{:.2}", gh.restore_mean_ms()),
        ]);
    }
    println!("{}", table.render());
    write_csv("table2", &table);
    println!(
        "Headline claims to check (paper abstract): GH latency overhead median ≈ 1.5%, \
         95p ≈ 7%; throughput reduction median ≈ 2.5%, 95p ≈ 49.6%."
    );
}
