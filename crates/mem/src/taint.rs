//! Request taint tracking.
//!
//! The paper's security argument (§4.5) is that restoring the process to
//! its pre-request snapshot removes *all* data a request could have left
//! behind. Rather than assume this, the simulation labels every byte
//! written on behalf of a request with the request's identity and the test
//! suite scans the post-restore address space for surviving labels.

use core::fmt;

/// Identity of a request (activation), used as a taint label.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// The taint state of a memory frame (or register file).
///
/// Precision note: `Many` is a sound over-approximation — it reports a
/// frame as possibly containing data of *any* request. The isolation tests
/// treat `Many` as a leak of every request, so over-approximating cannot
/// hide a violation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Taint {
    /// No request data (initialization-time contents).
    #[default]
    Clean,
    /// Data written by exactly one request.
    One(RequestId),
    /// Data possibly derived from more than one request.
    Many,
}

impl Taint {
    /// Combines taints when data from two sources is mixed in one frame.
    #[must_use]
    pub fn merge(self, other: Taint) -> Taint {
        match (self, other) {
            (Taint::Clean, t) | (t, Taint::Clean) => t,
            (Taint::One(a), Taint::One(b)) if a == b => Taint::One(a),
            _ => Taint::Many,
        }
    }

    /// True if this taint may contain data of `req`.
    pub fn may_contain(self, req: RequestId) -> bool {
        match self {
            Taint::Clean => false,
            Taint::One(r) => r == req,
            Taint::Many => true,
        }
    }

    /// True if the value carries any request data at all.
    pub fn is_tainted(self) -> bool {
        !matches!(self, Taint::Clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_lattice() {
        let a = Taint::One(RequestId(1));
        let b = Taint::One(RequestId(2));
        assert_eq!(Taint::Clean.merge(Taint::Clean), Taint::Clean);
        assert_eq!(Taint::Clean.merge(a), a);
        assert_eq!(a.merge(Taint::Clean), a);
        assert_eq!(a.merge(a), a);
        assert_eq!(a.merge(b), Taint::Many);
        assert_eq!(Taint::Many.merge(a), Taint::Many);
    }

    #[test]
    fn containment() {
        let a = Taint::One(RequestId(1));
        assert!(a.may_contain(RequestId(1)));
        assert!(!a.may_contain(RequestId(2)));
        assert!(Taint::Many.may_contain(RequestId(7)));
        assert!(!Taint::Clean.may_contain(RequestId(7)));
        assert!(a.is_tainted());
        assert!(!Taint::Clean.is_tainted());
    }
}
