//! Fig. 6 — restoration duration (off the critical path) of GH and FAASM
//! per benchmark, for the wasm-compatible suites.
//!
//! ```text
//! cargo run --release -p gh-bench --bin fig6
//! ```

use gh_bench::{fmt_ms, latency_requests, run_latency, write_csv};
use gh_functions::catalog::catalog;
use gh_functions::Suite;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;

fn main() {
    let n = latency_requests();
    let mut csv = TextTable::new(&[
        "benchmark",
        "gh_restore_ms",
        "faasm_reset_ms",
        "paper_gh_restore_ms",
    ]);
    for suite in [Suite::PyPerformance, Suite::PolyBench] {
        println!("== Fig. 6 — restoration duration, {} ==\n", suite.label());
        let mut table = TextTable::new(&["benchmark", "GH (ms)", "faasm (ms)", "paper GH (ms)"]);
        for spec in catalog().iter().filter(|s| s.suite == suite) {
            let gh = run_latency(spec, StrategyKind::Gh, n, 4).expect("gh");
            let faasm = run_latency(spec, StrategyKind::Faasm, n, 4).expect("faasm");
            let row = vec![
                spec.name.to_string(),
                fmt_ms(gh.restore_mean_ms()),
                fmt_ms(faasm.restore_mean_ms()),
                fmt_ms(spec.paper_restore_ms),
            ];
            table.row_owned(row.clone());
            csv.row_owned(row);
        }
        println!("{}", table.render());
    }
    write_csv("fig6", &csv);
    println!(
        "Expected shapes (paper §5.3.3): GH and FAASM restoration are comparable on \
         pyperformance (few ms); FAASM's contiguous-region remap is cheaper on \
         PolyBench's sub-ms restores."
    );
}
