//! Randomized (property-style) tests of the virtual-memory substrate.
//!
//! These check the invariants Groundhog's correctness rests on:
//! soft-dirty tracking is *exact* (dirty set == written set), CoW never
//! leaks writes between fork relatives, frame refcounting is leak-free,
//! and page contents are representation-independent.
//!
//! Cases are generated with the workspace's own seeded [`DetRng`]
//! (crates.io is unavailable in the build environment, so `proptest`
//! cannot be used); every run replays the identical case set, and a
//! failing case is reproducible from the printed seed alone.

use gh_sim::DetRng;

use gh_mem::{
    AddressSpace, FrameData, FrameTable, PageRange, Perms, SpaceConfig, Taint, Touch, VmaKind, Vpn,
};

/// Ops the fuzzer may perform against an address space.
#[derive(Clone, Debug)]
enum Op {
    Mmap(u64),
    MunmapAt(usize, u64),
    Brk(i64),
    TouchWrite(usize),
    TouchRead(usize),
    MprotectRo(usize, u64),
    Madvise(usize, u64),
    ClearSd,
}

fn random_op(rng: &mut DetRng) -> Op {
    match rng.next_below(8) {
        0 => Op::Mmap(1 + rng.next_below(31)),
        1 => Op::MunmapAt(rng.next_u64() as usize, 1 + rng.next_below(7)),
        2 => Op::Brk(rng.next_below(80) as i64 - 16),
        3 => Op::TouchWrite(rng.next_u64() as usize),
        4 => Op::TouchRead(rng.next_u64() as usize),
        5 => Op::MprotectRo(rng.next_u64() as usize, 1 + rng.next_below(3)),
        6 => Op::Madvise(rng.next_u64() as usize, 1 + rng.next_below(7)),
        _ => Op::ClearSd,
    }
}

/// Picks an existing mapped page (if any) deterministically from an index.
fn pick_page(space: &AddressSpace, i: usize) -> Option<Vpn> {
    let maps = space.maps();
    if maps.is_empty() {
        return None;
    }
    let vma = &maps[i % maps.len()];
    let off = (i as u64 / maps.len().max(1) as u64) % vma.range.len();
    Some(Vpn(vma.range.start.0 + off))
}

/// Any op sequence preserves structural invariants and never leaks or
/// double-frees frames.
#[test]
fn invariants_hold_under_random_ops() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0xA11_0B5 ^ case);
        let n_ops = 1 + rng.next_below(119) as usize;
        let mut frames = FrameTable::new();
        let mut space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let heap_base = space.config().heap_base;
        for _ in 0..n_ops {
            match random_op(&mut rng) {
                Op::Mmap(len) => {
                    let _ = space.mmap(len, Perms::RW, VmaKind::Anon);
                }
                Op::MunmapAt(i, len) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.munmap(PageRange::at(vpn, len), &mut frames);
                    }
                }
                Op::Brk(delta) => {
                    let cur = space.brk().0 as i64;
                    let new = (cur + delta).max(heap_base.0 as i64) as u64;
                    let _ = space.set_brk(Vpn(new), &mut frames);
                }
                Op::TouchWrite(i) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ =
                            space.touch(vpn, Touch::WriteWord(i as u64), Taint::Clean, &mut frames);
                    }
                }
                Op::TouchRead(i) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.touch(vpn, Touch::Read, Taint::Clean, &mut frames);
                    }
                }
                Op::MprotectRo(i, len) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.mprotect(PageRange::at(vpn, len), Perms::R);
                    }
                }
                Op::Madvise(i, len) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.madvise_dontneed(PageRange::at(vpn, len), &mut frames);
                    }
                }
                Op::ClearSd => space.clear_soft_dirty(),
            }
            assert!(
                space.check_invariants().is_ok(),
                "case {case}: {:?}",
                space.check_invariants()
            );
        }
        // Every live frame is referenced exactly by the page table.
        assert_eq!(frames.live() as u64, space.present_pages(), "case {case}");
        space.release_all(&mut frames);
        assert_eq!(
            frames.live(),
            0,
            "case {case}: teardown must free all frames"
        );
    }
}

/// The extent/index invariants hold under every interleaving of VMA
/// churn, faults, tracking epochs, uffd arming, CoW marking and lazy
/// restore obligations: extents stay sorted/maximal, chunk occupancy
/// matches coverage, and the dirty/taint index bits agree bit-for-bit
/// with page state (`check_invariants_with_frames` verifies all of it).
#[test]
fn extent_and_index_invariants_hold_under_tracking_churn() {
    use gh_mem::{FrameData, LazyPageSource, RequestId};
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x00EC_7E17 ^ case);
        let n_ops = 1 + rng.next_below(119) as usize;
        let mut frames = FrameTable::new();
        let mut space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let heap_base = space.config().heap_base;
        for op in 0..n_ops {
            match rng.next_below(12) {
                0 => {
                    let _ = space.mmap(1 + rng.next_below(31), Perms::RW, VmaKind::Anon);
                }
                1 => {
                    if let Some(vpn) = pick_page(&space, rng.next_u64() as usize) {
                        let _ =
                            space.munmap(PageRange::at(vpn, 1 + rng.next_below(7)), &mut frames);
                    }
                }
                2 => {
                    let cur = space.brk().0 as i64;
                    let new = (cur + rng.next_below(80) as i64 - 16).max(heap_base.0 as i64);
                    let _ = space.set_brk(Vpn(new as u64), &mut frames);
                }
                3 | 4 => {
                    if let Some(vpn) = pick_page(&space, rng.next_u64() as usize) {
                        let taint = match rng.next_below(3) {
                            0 => Taint::Clean,
                            n => Taint::One(RequestId(n)),
                        };
                        let _ = space.touch(vpn, Touch::WriteWord(op as u64), taint, &mut frames);
                    }
                }
                5 => {
                    if let Some(vpn) = pick_page(&space, rng.next_u64() as usize) {
                        let _ = space.touch(vpn, Touch::Read, Taint::Clean, &mut frames);
                    }
                }
                6 => {
                    if let Some(vpn) = pick_page(&space, rng.next_u64() as usize) {
                        let _ = space.madvise_dontneed(
                            PageRange::at(vpn, 1 + rng.next_below(7)),
                            &mut frames,
                        );
                    }
                }
                7 => space.clear_soft_dirty(),
                8 => {
                    if space.uffd_armed() {
                        let _ = space.disarm_uffd();
                    } else {
                        space.arm_uffd_wp();
                    }
                }
                9 => {
                    if let Some(vpn) = pick_page(&space, rng.next_u64() as usize) {
                        let set: std::collections::BTreeMap<u64, LazyPageSource> =
                            PageRange::at(vpn, 1 + rng.next_below(6))
                                .iter()
                                .filter(|v| space.vma_at(*v).is_some())
                                .map(|v| (v.0, LazyPageSource::Data(FrameData::Pattern(v.0))))
                                .collect();
                        space.arm_lazy(set);
                    }
                }
                10 => {
                    if rng.next_below(2) == 0 {
                        let _ = space.drain_lazy(rng.next_below(5), &mut frames);
                    } else {
                        // Batched touches: a sorted mixed batch over a
                        // random window (may cross VMA holes, lazy
                        // obligations and permission boundaries — the
                        // batch skips or faults exactly like the loop;
                        // invariants must hold either way).
                        if let Some(vpn) = pick_page(&space, rng.next_u64() as usize) {
                            let mut batch = gh_mem::TouchBatch::new();
                            for v in PageRange::at(vpn, 1 + rng.next_below(24)).iter() {
                                let taint = match rng.next_below(3) {
                                    0 => Taint::Clean,
                                    n => Taint::One(RequestId(n)),
                                };
                                if rng.next_below(3) == 0 {
                                    batch.push(v, Touch::Read, Taint::Clean);
                                } else {
                                    batch.push(v, Touch::WriteWord(op as u64), taint);
                                }
                                if rng.next_below(4) == 0 {
                                    // Duplicate touch of the same page.
                                    batch.push(v, Touch::Read, Taint::Clean);
                                }
                            }
                            let _ = space.touch_batch(&batch, &mut frames);
                        }
                    }
                }
                _ => {
                    // Restore-path privileged write, then occasionally a
                    // fork/teardown round (the heaviest flag transform).
                    if let Some(vpn) = pick_page(&space, rng.next_u64() as usize) {
                        let _ = space.restore_page(
                            vpn,
                            &FrameData::Pattern(rng.next_u64()),
                            Taint::Clean,
                            &mut frames,
                        );
                    }
                    if rng.next_below(4) == 0 {
                        let mut child = space.fork(&mut frames);
                        if let Some(vpn) = pick_page(&child, rng.next_u64() as usize) {
                            let _ =
                                child.touch(vpn, Touch::WriteWord(1), Taint::Clean, &mut frames);
                        }
                        child
                            .check_invariants_with_frames(&frames)
                            .unwrap_or_else(|e| panic!("case {case} op {op} (child): {e}"));
                        child.release_all(&mut frames);
                    }
                }
            }
            space
                .check_invariants_with_frames(&frames)
                .unwrap_or_else(|e| panic!("case {case} op {op}: {e}"));
        }
        space.release_all(&mut frames);
        assert_eq!(frames.live(), 0, "case {case}: teardown leak");
    }
}

/// Soft-dirty tracking is exact: after a clear, the dirty set equals
/// precisely the set of pages written afterwards.
#[test]
fn soft_dirty_is_exact() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x50F7_D127 ^ case);
        let writes: std::collections::BTreeSet<u64> = (0..rng.next_below(32))
            .map(|_| rng.next_below(64))
            .collect();
        let reads: std::collections::BTreeSet<u64> = (0..rng.next_below(32))
            .map(|_| rng.next_below(64))
            .collect();
        let mut frames = FrameTable::new();
        let mut space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let r = space.mmap(64, Perms::RW, VmaKind::Anon).unwrap();
        // Page everything in first (mixed read/write history).
        for vpn in r.iter() {
            space
                .touch(vpn, Touch::WriteWord(1), Taint::Clean, &mut frames)
                .unwrap();
        }
        space.clear_soft_dirty();
        for &off in &reads {
            space
                .touch(Vpn(r.start.0 + off), Touch::Read, Taint::Clean, &mut frames)
                .unwrap();
        }
        for &off in &writes {
            space
                .touch(
                    Vpn(r.start.0 + off),
                    Touch::WriteWord(2),
                    Taint::Clean,
                    &mut frames,
                )
                .unwrap();
        }
        let dirty: Vec<u64> = space
            .soft_dirty_pages()
            .iter()
            .map(|v| v.0 - r.start.0)
            .collect();
        let expected: Vec<u64> = writes.iter().copied().collect();
        assert_eq!(dirty, expected, "case {case}");
    }
}

/// Writes in a forked child are never visible to the parent, and vice
/// versa, regardless of write order.
#[test]
fn fork_isolation() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0xF02C ^ case);
        let parent_writes: Vec<(u64, u64)> = (0..rng.next_below(32))
            .map(|_| (rng.next_below(32), rng.next_u64()))
            .collect();
        let child_writes: Vec<(u64, u64)> = (0..rng.next_below(32))
            .map(|_| (rng.next_below(32), rng.next_u64()))
            .collect();

        let mut frames = FrameTable::new();
        let mut parent = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let r = parent.mmap(32, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            parent
                .touch(vpn, Touch::WriteWord(0xBA5E), Taint::Clean, &mut frames)
                .unwrap();
        }
        let mut child = parent.fork(&mut frames);

        for &(off, val) in &child_writes {
            child
                .touch(
                    Vpn(r.start.0 + off),
                    Touch::WriteWord(val),
                    Taint::Clean,
                    &mut frames,
                )
                .unwrap();
        }
        for &(off, val) in &parent_writes {
            parent
                .touch(
                    Vpn(r.start.0 + off),
                    Touch::WriteWord(val | 1 << 63),
                    Taint::Clean,
                    &mut frames,
                )
                .unwrap();
        }

        // Replay expected values.
        for vpn in r.iter() {
            let off = vpn.0 - r.start.0;
            let expect_child = child_writes
                .iter()
                .rev()
                .find(|(o, _)| *o == off)
                .map(|&(_, v)| v)
                .unwrap_or(0xBA5E);
            let expect_parent = parent_writes
                .iter()
                .rev()
                .find(|(o, _)| *o == off)
                .map(|&(_, v)| v | 1 << 63)
                .unwrap_or(0xBA5E);
            assert_eq!(
                child.peek_word(vpn, 1, &frames).unwrap(),
                expect_child,
                "case {case}"
            );
            assert_eq!(
                parent.peek_word(vpn, 1, &frames).unwrap(),
                expect_parent,
                "case {case}"
            );
        }
        child.release_all(&mut frames);
        parent.release_all(&mut frames);
        assert_eq!(frames.live(), 0, "case {case}");
    }
}

/// FrameData representations are interchangeable: any write sequence
/// applied to a compact page and to a materialized literal page yields
/// logically equal contents.
#[test]
fn frame_representation_independence() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0xF4A3 ^ case);
        let seed = rng.next_u64();
        let writes: Vec<(usize, u64)> = (0..rng.next_below(40))
            .map(|_| (rng.next_below(512) as usize, rng.next_u64()))
            .collect();
        let mut compact = FrameData::Pattern(seed);
        let mut literal = FrameData::Literal(compact.materialize());
        for &(w, v) in &writes {
            compact.write_word(w, v);
            literal.write_word(w, v);
        }
        assert!(compact.logical_eq(&literal), "case {case}");
        for &(w, _) in &writes {
            assert_eq!(compact.read_word(w), literal.read_word(w), "case {case}");
        }
        // Materializing the compact page agrees byte-for-byte.
        let m = FrameData::Literal(compact.materialize());
        assert!(m.logical_eq(&literal), "case {case}");
    }
}

/// Byte-level writes round-trip across arbitrary offsets and lengths,
/// including page-crossing accesses.
#[test]
fn byte_rw_roundtrip() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0xB17E ^ case);
        let offset = rng.next_below(8192);
        let data: Vec<u8> = (0..1 + rng.next_below(255))
            .map(|_| rng.next_u64() as u8)
            .collect();
        let mut frames = FrameTable::new();
        let mut space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let r = space.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
        let addr = gh_mem::VirtAddr(r.start.addr().0 + offset % (2 * 4096));
        space
            .write_bytes(addr, &data, Taint::Clean, &mut frames)
            .unwrap();
        let mut buf = vec![0u8; data.len()];
        space.read_bytes(addr, &mut buf, &mut frames).unwrap();
        assert_eq!(buf, data, "case {case}");
    }
}
