//! A deliberately buggy function for security testing.
//!
//! §1's motivating scenario: "if the same function container is first
//! invoked to service Alice's request and then invoked again to service
//! Bob's request, there is a possibility that a bug ... causes some of
//! Alice's data from the first request to be retained and later leaked
//! into the response returned to Bob."
//!
//! [`BuggyCache`] is that bug, made concrete: it keeps an in-process
//! "cache" page where it stores each request's secret, and every response
//! includes whatever the cache held on entry. Under BASE/GHNOP the
//! previous caller's secret escapes; under GH the restore guarantees the
//! cache holds only snapshot-time (dummy) contents.

use gh_mem::{RequestId, Taint, Touch, Vpn};
use gh_proc::Kernel;
use gh_runtime::FunctionProcess;

/// Word index of the "cache" slot on the page.
const CACHE_WORD: usize = 4;
/// Marker stored by initialization (no secret).
pub const INIT_MARKER: u64 = 0x0707_0707_0707_0707;

/// What one buggy invocation returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuggyResponse {
    /// The value found in the cache on entry — leaked into the response.
    pub leaked_value: u64,
    /// Taint of the cache frame on entry (who the leak belongs to).
    pub leaked_from: Taint,
}

/// The buggy caching function.
pub struct BuggyCache {
    /// The cache page (first anon region page).
    pub cache_page: Vpn,
}

impl BuggyCache {
    /// Prepares the cache page during initialization (dummy phase): the
    /// marker is written with clean taint.
    pub fn init(kernel: &mut Kernel, fproc: &FunctionProcess) -> BuggyCache {
        let page = fproc
            .regions
            .anon
            .first()
            .map_or(fproc.regions.data.start, |r| r.start);
        kernel
            .run_charged(fproc.pid, |p, frames| {
                p.mem
                    .touch(page, Touch::Read, Taint::Clean, frames)
                    .expect("cache page mapped");
                let pte = p.mem.pte(page).expect("present");
                let _ = pte;
            })
            .expect("init");
        let (proc, frames) = kernel.mem_ctx(fproc.pid).expect("live");
        let pte = proc.mem.pte(page).expect("present");
        let (data, _) = frames.data_mut(pte.frame);
        data.write_word(CACHE_WORD, INIT_MARKER);
        BuggyCache { cache_page: page }
    }

    /// Services a request carrying `secret`: returns what the cache held
    /// (the bug), then stores this request's secret in the cache.
    pub fn invoke(
        &self,
        kernel: &mut Kernel,
        fproc: &FunctionProcess,
        req: RequestId,
        secret: u64,
    ) -> BuggyResponse {
        let page = self.cache_page;
        // Read the stale cache (leak) and its taint.
        let (leaked_value, leaked_from) = {
            let proc = kernel.process(fproc.pid).expect("live");
            let pte = proc.mem.pte(page).expect("cache resident");
            let frames = kernel.frames();
            (
                frames.data(pte.frame).read_word(CACHE_WORD),
                frames.taint(pte.frame),
            )
        };
        // Store this request's secret (tainted write).
        kernel
            .run_charged(fproc.pid, |p, frames| {
                p.mem
                    .touch(page, Touch::WriteWord(0), Taint::One(req), frames)
                    .expect("cache write");
                let pte = p.mem.pte(page).expect("present");
                let (data, _) = frames.data_mut(pte.frame);
                data.write_word(CACHE_WORD, secret);
            })
            .expect("invoke");
        BuggyResponse {
            leaked_value,
            leaked_from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_runtime::{RuntimeKind, RuntimeProfile};

    fn build() -> (Kernel, FunctionProcess, BuggyCache) {
        let mut k = Kernel::boot();
        let fp = FunctionProcess::build(
            &mut k,
            "buggy",
            RuntimeProfile::for_kind(RuntimeKind::Python),
            2_000,
        );
        let cache = BuggyCache::init(&mut k, &fp);
        (k, fp, cache)
    }

    #[test]
    fn init_leaves_marker_with_clean_taint() {
        let (mut k, fp, cache) = build();
        let r = cache.invoke(&mut k, &fp, RequestId(1), 0xA11CE);
        assert_eq!(r.leaked_value, INIT_MARKER);
        assert_eq!(r.leaked_from, Taint::Clean);
    }

    #[test]
    fn without_restore_the_secret_leaks_to_the_next_caller() {
        let (mut k, fp, cache) = build();
        cache.invoke(&mut k, &fp, RequestId(1), 0xA11CE);
        let bob = cache.invoke(&mut k, &fp, RequestId(2), 0xB0B);
        assert_eq!(bob.leaked_value, 0xA11CE, "Alice's secret reaches Bob");
        assert!(bob.leaked_from.may_contain(RequestId(1)));
    }
}
