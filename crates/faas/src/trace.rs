//! Trace-driven workload generation for cluster-scale runs.
//!
//! The single-fleet harness drives one function at a homogeneous
//! Poisson rate; a cloud serves *thousands* of functions whose traffic
//! is skewed, time-varying and bursty — and keep-alive / restore policy
//! conclusions flip with the arrival mix ("How Low Can You Go?",
//! PAPERS.md). [`TraceGen`] synthesizes such a workload on seeded
//! [`DetRng`] streams, as a pure iterator:
//!
//! - **Zipfian popularity** — function ids are popularity ranks; rank
//!   `r` is drawn with weight `1/(r+1)^s` via one precomputed CDF and a
//!   binary search per event;
//! - **diurnal envelope** — arrivals follow a non-homogeneous Poisson
//!   process with rate `base_rps · (1 + A·sin(2πt/period))`, realized
//!   by thinning a homogeneous process at the peak rate (a candidate at
//!   `t` survives with probability `rate(t)/rate_max`);
//! - **bursty principals** — after any normal event, with probability
//!   `burst_start_prob` one principal enters a burst: a geometric run
//!   of back-to-back requests to a single function at
//!   `burst_rps_factor ×` the base rate.
//!
//! Every stream draws from its own seed-derived [`DetRng`], so the
//! trace is a deterministic function of [`TraceConfig`] alone: two
//! iterators with the same config yield byte-identical event sequences
//! (pinned by the tests below), which is what lets every cluster node
//! re-run the generator locally and filter to its own arrivals instead
//! of shipping a materialized trace — O(1) trace memory at 10⁷
//! requests.
//!
//! [`synthetic_catalog`] pairs the generator with a deterministic
//! function population (page counts, write fractions, runtimes, compute
//! times all seeded) so cluster runs don't need hand-written specs per
//! function.

use gh_functions::{BehaviorFlags, FunctionSpec, Suite};
use gh_runtime::RuntimeKind;
use gh_sim::{DetRng, Nanos};

/// Configuration of one synthetic trace — the trace is a pure function
/// of this struct.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Distinct functions; ids are popularity ranks (0 = hottest).
    pub functions: u32,
    /// Total requests to emit.
    pub requests: u64,
    /// Zipf exponent `s` of the popularity distribution (0 = uniform;
    /// ~1 is the classic heavy skew).
    pub zipf_s: f64,
    /// Distinct principals issuing requests.
    pub principals: u32,
    /// Mean offered rate, requests/second, before the diurnal envelope.
    pub base_rps: f64,
    /// Diurnal amplitude `A` in `[0, 1)`: instantaneous rate swings
    /// between `(1−A)` and `(1+A)` times `base_rps`.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal envelope (a simulated "day").
    pub diurnal_period: Nanos,
    /// Probability that a normal event starts a burst.
    pub burst_start_prob: f64,
    /// Mean burst length, requests (geometric).
    pub mean_burst_len: f64,
    /// Rate multiplier inside a burst.
    pub burst_rps_factor: f64,
    /// Virtual time of the first possible arrival (set past the pool
    /// cold-start transient so measurements start warm).
    pub origin: Nanos,
    /// Fraction of requests flagged idempotent (result-cache eligible).
    pub idempotent_frac: f64,
    /// Distinct payloads per function: each request draws its payload
    /// uniformly from this universe, so a smaller universe means a
    /// higher potential cache hit ratio.
    pub payload_universe: u64,
    /// Seed; every internal stream derives from it.
    pub seed: u64,
}

impl TraceConfig {
    /// A skewed, mildly diurnal, mildly bursty default trace.
    pub fn new(functions: u32, requests: u64, base_rps: f64, seed: u64) -> TraceConfig {
        assert!(functions > 0, "need at least one function");
        assert!(base_rps > 0.0, "offered load must be positive");
        TraceConfig {
            functions,
            requests,
            zipf_s: 1.0,
            principals: 64,
            base_rps,
            diurnal_amplitude: 0.4,
            diurnal_period: Nanos::from_secs(120),
            burst_start_prob: 0.002,
            mean_burst_len: 32.0,
            burst_rps_factor: 8.0,
            origin: Nanos::from_secs(10),
            idempotent_frac: 0.25,
            payload_universe: 64,
            seed,
        }
    }
}

/// One trace event: request `seq` for function `fn_id` from
/// `principal`, arriving at virtual time `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival time at the cluster front-end.
    pub at: Nanos,
    /// Global request sequence number (1-based; doubles as taint id).
    pub seq: u64,
    /// Function popularity rank.
    pub fn_id: u32,
    /// Principal index.
    pub principal: u32,
    /// Canonical payload hash (well-mixed over the function's payload
    /// universe) — what the gateway's result cache keys on.
    pub payload_hash: u64,
    /// Whether the request is idempotent (result-cache eligible).
    pub idempotent: bool,
}

/// Burst state: a principal hammering one function.
struct Burst {
    fn_id: u32,
    principal: u32,
    left: u64,
}

/// The seeded trace generator. See the module docs for the model.
pub struct TraceGen {
    cfg: TraceConfig,
    /// Normalized Zipf CDF over ranks.
    cdf: Vec<f64>,
    gap_rng: DetRng,
    thin_rng: DetRng,
    fn_rng: DetRng,
    principal_rng: DetRng,
    burst_rng: DetRng,
    payload_rng: DetRng,
    now: Nanos,
    emitted: u64,
    burst: Option<Burst>,
}

impl TraceGen {
    /// Creates the generator for `cfg`.
    pub fn new(cfg: &TraceConfig) -> TraceGen {
        assert!(
            (0.0..1.0).contains(&cfg.diurnal_amplitude),
            "amplitude must be in [0, 1)"
        );
        assert!(cfg.burst_rps_factor >= 1.0, "bursts must not slow down");
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = (0..cfg.functions)
            .map(|r| {
                acc += 1.0 / ((r + 1) as f64).powf(cfg.zipf_s);
                acc
            })
            .collect();
        for w in cdf.iter_mut() {
            *w /= acc;
        }
        let seed = cfg.seed;
        TraceGen {
            cfg: cfg.clone(),
            cdf,
            // Independent streams per concern, like the fleet's
            // arrival/principal split: adding a draw to one stream
            // never perturbs the others.
            gap_rng: DetRng::new(seed ^ 0x7AC3_0001),
            thin_rng: DetRng::new(seed ^ 0x7AC3_0002),
            fn_rng: DetRng::new(seed ^ 0x7AC3_0003),
            principal_rng: DetRng::new(seed ^ 0x7AC3_0004),
            burst_rng: DetRng::new(seed ^ 0x7AC3_0005),
            payload_rng: DetRng::new(seed ^ 0x7AC3_0006),
            now: cfg.origin,
            emitted: 0,
            burst: None,
        }
    }

    /// Instantaneous arrival rate at virtual time `t`.
    fn rate_at(&self, t: Nanos) -> f64 {
        let phase = (t.saturating_sub(self.cfg.origin)).as_secs_f64()
            / self.cfg.diurnal_period.as_secs_f64();
        self.cfg.base_rps
            * (1.0 + self.cfg.diurnal_amplitude * (2.0 * std::f64::consts::PI * phase).sin())
    }

    /// One exponential gap at `rps`.
    fn exp_gap(rps: f64, rng: &mut DetRng) -> Nanos {
        let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        Nanos::from_millis_f64(-u.ln() / rps * 1e3)
    }

    /// Zipf rank draw: binary search of the precomputed CDF.
    fn draw_rank(&mut self) -> u32 {
        let u = self.fn_rng.next_f64();
        self.cdf.partition_point(|&c| c < u) as u32
    }

    /// Advances `now` past the next accepted (thinned) diurnal arrival.
    fn advance_diurnal(&mut self) {
        let rate_max = self.cfg.base_rps * (1.0 + self.cfg.diurnal_amplitude);
        loop {
            self.now += Self::exp_gap(rate_max, &mut self.gap_rng);
            let accept = self.rate_at(self.now) / rate_max;
            if self.thin_rng.next_f64() < accept {
                return;
            }
        }
    }
}

impl Iterator for TraceGen {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.emitted >= self.cfg.requests {
            return None;
        }
        let (fn_id, principal) = if let Some(b) = self.burst.as_mut() {
            // Burst mode: back-to-back requests at the boosted rate,
            // same function and principal for the whole run.
            self.now += Self::exp_gap(
                self.cfg.base_rps * self.cfg.burst_rps_factor,
                &mut self.gap_rng,
            );
            let ev = (b.fn_id, b.principal);
            b.left -= 1;
            if b.left == 0 {
                self.burst = None;
            }
            ev
        } else {
            self.advance_diurnal();
            let fn_id = self.draw_rank();
            let principal = self.principal_rng.next_below(self.cfg.principals as u64) as u32;
            if self.burst_rng.next_f64() < self.cfg.burst_start_prob {
                // Geometric-mean-length run, at least one more request.
                let u = (1.0 - self.burst_rng.next_f64()).max(f64::MIN_POSITIVE);
                let left = ((-self.cfg.mean_burst_len * u.ln()).ceil() as u64).max(1);
                self.burst = Some(Burst {
                    fn_id,
                    principal,
                    left,
                });
            }
            (fn_id, principal)
        };
        self.emitted += 1;
        // Payload identity rides its own stream (after every other
        // per-event draw), so traces generated before this stream
        // existed keep their at/fn/principal sequences bit for bit.
        let payload = self
            .payload_rng
            .next_below(self.cfg.payload_universe.max(1));
        let idempotent = self.payload_rng.next_f64() < self.cfg.idempotent_frac;
        Some(TraceEvent {
            at: self.now,
            seq: self.emitted,
            fn_id,
            principal,
            payload_hash: gh_gateway::cache::mix((fn_id as u64) << 32 | payload),
            idempotent,
        })
    }
}

/// The largest cluster-wide arrival rate (requests/second) that keeps
/// every function's expected pool utilization at or below `target`,
/// given `containers_per_fn` deployed containers per function and the
/// trace's Zipf exponent: rank `r` receives a `w_r` share of the total
/// rate, so the binding constraint is the rank minimizing
/// `capacity_r / w_r`. Sizing the offered load this way keeps
/// admission queues bounded over arbitrarily long traces — the
/// diurnal peak and burst factor ride on top as transient overload.
pub fn stable_rps(
    catalog: &[FunctionSpec],
    containers_per_fn: usize,
    zipf_s: f64,
    target: f64,
) -> f64 {
    assert!(!catalog.is_empty(), "need at least one function");
    assert!(target > 0.0, "utilization target must be positive");
    let h: f64 = (1..=catalog.len())
        .map(|r| 1.0 / (r as f64).powf(zipf_s))
        .sum();
    catalog
        .iter()
        .enumerate()
        .map(|(r, spec)| {
            let share = 1.0 / ((r + 1) as f64).powf(zipf_s) / h;
            let capacity = containers_per_fn as f64 * 1000.0 / spec.base_invoker_ms;
            target * capacity / share
        })
        .fold(f64::INFINITY, f64::min)
}

/// Builds a deterministic population of `n` synthetic functions for
/// cluster runs: small, skewed page counts (the simulator's per-request
/// cost scales with the touch set, so the population is sized for
/// 10⁶–10⁷-request runs), write fractions in the paper's "small write
/// set" regime (§3.1), and a runtime mix weighted toward native code
/// (cached write plans). `fn_id` indexes straight into the returned
/// catalog.
///
/// Names are interned (`Box::leak`) because [`FunctionSpec::name`] is
/// `&'static str` across the workspace; one catalog per process
/// configuration is the intended use, so the leak is bounded.
pub fn synthetic_catalog(n: u32, seed: u64) -> Vec<FunctionSpec> {
    let mut rng = DetRng::new(seed ^ 0x5F3C_7A70_0CA7_A106);
    (0..n)
        .map(|i| {
            let (runtime, suite, tag) = match rng.next_below(10) {
                0..=6 => (RuntimeKind::NativeC, Suite::PolyBench, "c"),
                7 | 8 => (RuntimeKind::Python, Suite::PyPerformance, "p"),
                _ => (RuntimeKind::NodeJs, Suite::FaaSProfiler, "n"),
            };
            // Log-uniform mapped sizes (96–1536 pages) and compute
            // times (2–80 ms): a skewed-but-small population.
            let total_pages = (96.0 * 16f64.powf(rng.next_f64())).round();
            let write_frac = rng.range_f64(0.02, 0.15);
            let written_pages = (total_pages * write_frac).round().max(4.0);
            let base_invoker_ms = 2.0 * 40f64.powf(rng.next_f64());
            let platform_ms = rng.range_f64(20.0, 40.0);
            // Restore cost ≈ proportional to the write set (§4.4's
            // restore-aware router reads this).
            let paper_restore_ms = 0.2 + written_pages * 0.004;
            let name: &'static str = Box::leak(format!("synth-{i:04} ({tag})").into_boxed_str());
            FunctionSpec {
                name,
                suite,
                runtime,
                base_invoker_ms,
                base_e2e_ms: base_invoker_ms + platform_ms,
                base_xput: 4000.0 / (base_invoker_ms + 3.0),
                total_kpages: total_pages / 1000.0,
                written_kpages: written_pages / 1000.0,
                input_kb: 1 + rng.next_below(8),
                output_kb: 1 + rng.next_below(8),
                paper_gh_invoker_ms: base_invoker_ms * 1.05,
                paper_restore_ms,
                paper_gh_xput: 4000.0 / (base_invoker_ms * 1.05 + 3.0),
                paper_faults_k: written_pages / 1000.0,
                faasm: None,
                behavior: BehaviorFlags::default(),
            }
        })
        .collect()
}

/// Deterministic redeploy schedule for gateway runs: `count` instants
/// spread over the trace's expected span (requests / base rate) after
/// its origin, each jittered inside its slot by the trace seed's
/// `0x7AC3_0007` stream. A pure function of `(cfg, count)`, so every
/// replay — serial, parallel, repeat — sees the identical redeploy
/// timeline (`gh_faas::gateway` bumps its cache generation at each
/// instant).
pub fn redeploy_schedule(cfg: &TraceConfig, count: usize) -> Vec<Nanos> {
    let mut rng = DetRng::new(cfg.seed ^ 0x7AC3_0007);
    let span_s = cfg.requests as f64 / cfg.base_rps;
    (0..count)
        .map(|i| {
            let slot = (i as f64 + rng.range_f64(0.25, 0.75)) / count.max(1) as f64;
            cfg.origin + Nanos::from_millis_f64(span_s * slot * 1e3)
        })
        .collect()
}

/// Deterministic redeploy schedule for *cluster* runs: like
/// [`redeploy_schedule`], but each instant also carries the function
/// being redeployed (drawn uniformly over the trace's function
/// population on the dedicated `0x7AC3_0009` stream). A pure function
/// of `(cfg, count)`, so every node's replay of the
/// [`crate::cluster::GatewayFront`] fold sees the identical
/// invalidation timeline.
pub fn cluster_redeploy_schedule(cfg: &TraceConfig, count: usize) -> Vec<(Nanos, u32)> {
    let mut rng = DetRng::new(cfg.seed ^ 0x7AC3_0009);
    let span_s = cfg.requests as f64 / cfg.base_rps;
    (0..count)
        .map(|i| {
            let slot = (i as f64 + rng.range_f64(0.25, 0.75)) / count.max(1) as f64;
            let at = cfg.origin + Nanos::from_millis_f64(span_s * slot * 1e3);
            (at, rng.next_below(cfg.functions as u64) as u32)
        })
        .collect()
}

/// One workflow arrival in a DAG-shaped workload: instance `workflow`
/// enters the cluster at `at`, with `shape_seed` feeding
/// [`crate::workflow::dag::random_dag_spec`] so each instance gets its
/// own (deterministic) DAG shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagArrival {
    /// Workflow instance index (0-based).
    pub workflow: u64,
    /// Arrival time of the workflow's first hop.
    pub at: Nanos,
    /// Seed of the instance's DAG shape.
    pub shape_seed: u64,
}

/// DAG-shaped workload stream: `workflows` Poisson arrivals at
/// `arrival_rps`, each carrying a per-instance shape seed, all on the
/// dedicated `0x7AC3_0008` stream. A pure function of its arguments —
/// the migration sim ([`crate::workflow::migrate`]) replays it for the
/// crash-equivalence and determinism oracles.
pub fn dag_workload(workflows: u64, arrival_rps: f64, seed: u64) -> Vec<DagArrival> {
    assert!(arrival_rps > 0.0, "workflow arrival rate must be positive");
    let mut rng = DetRng::new(seed ^ 0x7AC3_0008);
    let mut now = Nanos::ZERO;
    (0..workflows)
        .map(|workflow| {
            let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
            now += Nanos::from_millis_f64(-u.ln() / arrival_rps * 1e3);
            DagArrival {
                workflow,
                at: now,
                shape_seed: rng.next_u64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(cfg: &TraceConfig) -> Vec<TraceEvent> {
        TraceGen::new(cfg).collect()
    }

    #[test]
    fn seeded_determinism() {
        let cfg = TraceConfig::new(100, 5_000, 500.0, 42);
        let a = gen(&cfg);
        let b = gen(&cfg);
        assert_eq!(a, b, "same config must yield byte-identical traces");
        let other = gen(&TraceConfig::new(100, 5_000, 500.0, 43));
        assert_ne!(a, other, "different seeds must diverge");
    }

    #[test]
    fn redeploy_schedule_is_pure_ordered_and_in_span() {
        let cfg = TraceConfig::new(16, 10_000, 1_000.0, 99);
        let a = redeploy_schedule(&cfg, 4);
        let b = redeploy_schedule(&cfg, 4);
        assert_eq!(a, b, "schedule must be a pure function of the config");
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly ordered");
        let span_end = cfg.origin + Nanos::from_secs(10);
        assert!(a.iter().all(|&t| t >= cfg.origin && t <= span_end));
        assert_ne!(
            redeploy_schedule(&TraceConfig::new(16, 10_000, 1_000.0, 100), 4),
            a,
            "different seeds shift the schedule"
        );
    }

    #[test]
    fn cluster_redeploy_schedule_is_pure_and_targets_trace_functions() {
        let cfg = TraceConfig::new(16, 10_000, 1_000.0, 99);
        let a = cluster_redeploy_schedule(&cfg, 5);
        assert_eq!(a, cluster_redeploy_schedule(&cfg, 5), "pure in the config");
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "strictly ordered");
        assert!(a.iter().all(|&(t, f)| t >= cfg.origin && f < 16));
        assert_ne!(
            cluster_redeploy_schedule(&TraceConfig::new(16, 10_000, 1_000.0, 100), 5),
            a
        );
    }

    #[test]
    fn dag_workload_is_pure_ordered_and_seed_sensitive() {
        let a = dag_workload(200, 150.0, 7);
        assert_eq!(a, dag_workload(200, 150.0, 7), "pure in the arguments");
        assert_eq!(a.len(), 200);
        assert!(a.windows(2).all(|w| w[0].at < w[1].at), "strictly ordered");
        assert!(a.iter().enumerate().all(|(i, d)| d.workflow == i as u64));
        let b = dag_workload(200, 150.0, 8);
        assert_ne!(a, b, "different seeds shift arrivals and shapes");
        // Shape seeds are well spread (no accidental stream reuse).
        let distinct: std::collections::HashSet<u64> = a.iter().map(|d| d.shape_seed).collect();
        assert_eq!(distinct.len(), 200);
    }

    #[test]
    fn emits_exactly_requests_in_time_order() {
        let cfg = TraceConfig::new(32, 2_000, 800.0, 7);
        let evs = gen(&cfg);
        assert_eq!(evs.len(), 2_000);
        assert!(evs.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(evs[0].at >= cfg.origin);
        assert!(evs.iter().all(|e| e.fn_id < 32 && e.principal < 64));
        // seq is the 1-based global order.
        assert!(evs.iter().enumerate().all(|(i, e)| e.seq == i as u64 + 1));
    }

    #[test]
    fn zipf_orders_ranks_by_frequency() {
        let cfg = TraceConfig {
            burst_start_prob: 0.0, // isolate the popularity draw
            ..TraceConfig::new(50, 40_000, 1_000.0, 11)
        };
        let mut counts = vec![0u64; 50];
        for e in TraceGen::new(&cfg) {
            counts[e.fn_id as usize] += 1;
        }
        // Rank 0 is the hottest, and the head dominates the tail.
        assert!(counts[0] > counts[9] && counts[9] > counts[39]);
        let head: u64 = counts[..5].iter().sum();
        assert!(
            head as f64 > 0.35 * 40_000.0,
            "s=1 head underweighted: {head}"
        );
    }

    #[test]
    fn uniform_when_unskewed() {
        let cfg = TraceConfig {
            zipf_s: 0.0,
            burst_start_prob: 0.0,
            ..TraceConfig::new(10, 50_000, 1_000.0, 13)
        };
        let mut counts = vec![0u64; 10];
        for e in TraceGen::new(&cfg) {
            counts[e.fn_id as usize] += 1;
        }
        for &c in &counts {
            assert!((4_300..=5_700).contains(&c), "uniform draw skewed: {c}");
        }
    }

    #[test]
    fn diurnal_envelope_modulates_rate() {
        // One full period; compare the rising half-period's arrivals
        // against the falling half's.
        let period = Nanos::from_secs(40);
        let cfg = TraceConfig {
            diurnal_amplitude: 0.8,
            diurnal_period: period,
            burst_start_prob: 0.0,
            ..TraceConfig::new(10, 40_000, 1_000.0, 17)
        };
        let (mut peak, mut trough) = (0u64, 0u64);
        for e in TraceGen::new(&cfg) {
            let phase = (e.at.saturating_sub(cfg.origin)).as_secs_f64() % 40.0;
            if phase < 20.0 {
                peak += 1;
            } else if e.at.saturating_sub(cfg.origin) < period {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "sin>0 half must out-arrive sin<0 half: {peak} vs {trough}"
        );
    }

    #[test]
    fn bursts_repeat_function_and_principal() {
        let cfg = TraceConfig {
            burst_start_prob: 0.05,
            mean_burst_len: 16.0,
            ..TraceConfig::new(200, 20_000, 1_000.0, 23)
        };
        let evs = gen(&cfg);
        // Bursts produce runs of identical (fn, principal) pairs far
        // longer than iid draws over 200×64 combinations would.
        let mut longest = 1usize;
        let mut cur = 1usize;
        for w in evs.windows(2) {
            if w[0].fn_id == w[1].fn_id && w[0].principal == w[1].principal {
                cur += 1;
                longest = longest.max(cur);
            } else {
                cur = 1;
            }
        }
        assert!(longest >= 8, "expected a burst run, longest={longest}");
    }

    #[test]
    fn stable_rps_keeps_every_rank_under_target() {
        let cat = synthetic_catalog(40, 19);
        let s = 1.0;
        let rps = stable_rps(&cat, 4, s, 0.6);
        assert!(rps > 0.0 && rps.is_finite());
        let h: f64 = (1..=40).map(|r| 1.0 / r as f64).sum();
        for (r, spec) in cat.iter().enumerate() {
            let share = 1.0 / (r + 1) as f64 / h;
            let util = rps * share * spec.base_invoker_ms / (4.0 * 1000.0);
            assert!(util <= 0.6 * 1.0001, "rank {r} overloaded: {util:.3}");
        }
    }

    #[test]
    fn synthetic_catalog_is_deterministic_and_sane() {
        let a = synthetic_catalog(64, 5);
        let b = synthetic_catalog(64, 5);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.total_pages(), y.total_pages());
            assert_eq!(x.base_invoker_ms.to_bits(), y.base_invoker_ms.to_bits());
        }
        for s in &a {
            assert!((96.0..=1536.0).contains(&(s.total_pages() as f64)), "{s:?}");
            assert!(s.written_pages() >= 4);
            assert!(s.written_pages() <= s.total_pages());
            assert!((2.0..=80.0 * 1.001).contains(&s.base_invoker_ms));
            assert!(s.paper_restore_ms > 0.0);
        }
        // The runtime mix leans native.
        let native = a
            .iter()
            .filter(|s| s.runtime == RuntimeKind::NativeC)
            .count();
        assert!(native > 64 / 2, "native majority expected: {native}/64");
    }
}
