//! Differential oracle: host-parallel fleet execution must be
//! bit-identical to the serial reference.
//!
//! Serial mode is the ground truth; every parallel run — across seeds,
//! routing policies, pool sizes and thread counts — must reproduce the
//! exact same [`FleetResult`]: every counter, every per-container stat,
//! every percentile, and the CSV-style rendering byte for byte. Float
//! fields are compared through `{:?}` (shortest round-trip form), which
//! distinguishes any two different bit patterns.

use gh_faas::fleet::{run_fleet_with, ExecMode, FleetConfig, FleetResult, RoutePolicy};
use gh_functions::catalog::by_name;
use gh_isolation::StrategyKind;
use groundhog_core::GroundhogConfig;

fn run(pool_size: usize, cfg: &FleetConfig, requests: usize, mode: ExecMode) -> FleetResult {
    let spec = by_name("fannkuch (p)").unwrap();
    run_fleet_with(
        &spec,
        StrategyKind::Gh,
        GroundhogConfig::gh(),
        pool_size,
        cfg.clone(),
        requests,
        mode,
    )
    .unwrap()
}

/// A CSV-style line covering every scalar field of the result, the way
/// the bench binaries render them. Byte equality here is the
/// user-visible half of the oracle.
fn csv_line(r: &FleetResult) -> String {
    let s = &r.stats;
    format!(
        "{:?},{},{:?},{:?},{:?},{:?},{},{},{},{},{:?},{:?},{:?},{:?},{:?},{},{},{:?},{:?},{},{}",
        r.offered_rps,
        r.completed,
        r.goodput_rps,
        r.mean_ms,
        r.p99_ms,
        r.utilization,
        s.pool_size,
        s.active,
        s.spawned,
        s.retired,
        s.queue_mean,
        s.queue_p50,
        s.queue_p95,
        s.queue_p99,
        s.restore_total_ms,
        s.lazy_faults,
        s.lazy_drained_pages,
        s.restore_overlap_ratio,
        s.snapshot_dedup_ratio,
        s.snapshot_resident_bytes,
        s.snapshot_bytes_per_container,
    )
}

/// Full structural fingerprint: `{:?}` covers every field including the
/// per-container loads, and round-trips f64 exactly.
fn fingerprint(r: &FleetResult) -> String {
    format!("{r:?}")
}

fn assert_identical(label: &str, serial: &FleetResult, parallel: &FleetResult) {
    assert_eq!(
        fingerprint(serial),
        fingerprint(parallel),
        "{label}: parallel result diverged from the serial reference"
    );
    assert_eq!(
        csv_line(serial),
        csv_line(parallel),
        "{label}: CSV rendering diverged"
    );
}

#[test]
fn parallel_matches_serial_across_seeds_and_pools() {
    for &seed in &[7u64, 99] {
        for &pool in &[2usize, 5] {
            let cfg = FleetConfig::fixed(RoutePolicy::RoundRobin, 250.0, seed);
            let requests = 300;
            let serial = run(pool, &cfg, requests, ExecMode::Serial);
            assert_eq!(serial.completed, requests, "oracle baseline must serve all");
            for &threads in &[2usize, 8] {
                let par = run(pool, &cfg, requests, ExecMode::Parallel { threads });
                assert_identical(
                    &format!("seed={seed} pool={pool} threads={threads}"),
                    &serial,
                    &par,
                );
            }
        }
    }
}

#[test]
fn parallel_matches_serial_with_principals() {
    let cfg = FleetConfig::fixed(RoutePolicy::RoundRobin, 300.0, 1234).with_principals(4);
    let serial = run(4, &cfg, 400, ExecMode::Serial);
    let par = run(4, &cfg, 400, ExecMode::Parallel { threads: 4 });
    assert_identical("principals=4", &serial, &par);
}

#[test]
fn ineligible_policies_fall_back_to_serial() {
    // Non-round-robin routing depends on live container state, so the
    // parallel request must quietly take the serial path — and match.
    for policy in [RoutePolicy::LeastLoaded, RoutePolicy::RestoreAware] {
        let cfg = FleetConfig::fixed(policy, 250.0, 42);
        let serial = run(3, &cfg, 200, ExecMode::Serial);
        let par = run(3, &cfg, 200, ExecMode::Parallel { threads: 8 });
        assert_identical(policy.label(), &serial, &par);
    }
}

#[test]
fn single_container_pool_matches() {
    let cfg = FleetConfig::fixed(RoutePolicy::RoundRobin, 200.0, 5);
    let serial = run(1, &cfg, 150, ExecMode::Serial);
    let par = run(1, &cfg, 150, ExecMode::Parallel { threads: 8 });
    assert_identical("pool=1", &serial, &par);
}

#[test]
fn empty_run_is_mode_independent() {
    let cfg = FleetConfig::fixed(RoutePolicy::RoundRobin, 200.0, 5);
    let serial = run(3, &cfg, 0, ExecMode::Serial);
    let par = run(3, &cfg, 0, ExecMode::Parallel { threads: 4 });
    assert_eq!(serial.completed, 0);
    assert!(serial.mean_ms == 0.0 || serial.mean_ms.is_nan() == par.mean_ms.is_nan());
    assert_identical("requests=0", &serial, &par);
}
