//! The memory-management syscalls Groundhog injects during restore (§4.4).

use gh_mem::{PageRange, Perms, Vpn};

/// A syscall that can be injected into a traced process.
///
/// These are exactly the calls the paper lists: "The manager restores brk,
/// removes added memory regions, remaps removed memory regions, ...
/// madvises newly paged pages" by "injecting syscalls using ptrace".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Syscall {
    /// Set the program break.
    Brk(Vpn),
    /// Map `range` with `perms` (MAP_FIXED semantics).
    MmapFixed {
        /// Pages to map.
        range: PageRange,
        /// Protection bits.
        perms: Perms,
        /// Backing label (`None` = anonymous; `Some(name)` = file-backed).
        file: Option<String>,
    },
    /// Unmap `range`.
    Munmap(PageRange),
    /// `madvise(range, MADV_DONTNEED)`.
    MadviseDontneed(PageRange),
    /// Change protections of `range`.
    Mprotect(PageRange, Perms),
}

impl Syscall {
    /// Short mnemonic for breakdown reporting (matches Fig. 8's legend).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Syscall::Brk(_) => "brk",
            Syscall::MmapFixed { .. } => "mmap",
            Syscall::Munmap(_) => "munmap",
            Syscall::MadviseDontneed(_) => "madvise",
            Syscall::Mprotect(_, _) => "mprotect",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_match_fig8_legend() {
        let r = PageRange::at(Vpn(1), 1);
        assert_eq!(Syscall::Brk(Vpn(0)).mnemonic(), "brk");
        assert_eq!(
            Syscall::MmapFixed {
                range: r,
                perms: Perms::RW,
                file: None
            }
            .mnemonic(),
            "mmap"
        );
        assert_eq!(Syscall::Munmap(r).mnemonic(), "munmap");
        assert_eq!(Syscall::MadviseDontneed(r).mnemonic(), "madvise");
        assert_eq!(Syscall::Mprotect(r, Perms::R).mnemonic(), "mprotect");
    }
}
