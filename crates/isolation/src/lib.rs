//! Request-isolation strategies.
//!
//! The paper's experiment configurations (§5.1) plus the trivial
//! fresh-container baseline of §2, behind one dispatch type:
//!
//! | Strategy | Paper name | Mechanism |
//! |---|---|---|
//! | [`StrategyKind::Base`]  | `BASE`  | insecure container reuse, nothing restored |
//! | [`StrategyKind::Gh`]    | `GH`    | Groundhog snapshot/restore between requests |
//! | [`StrategyKind::GhNop`] | `GHNOP` | Groundhog tracking without restore |
//! | [`StrategyKind::Fork`]  | `FORK`  | fork-per-request CoW isolation (single-threaded only, §5.2.3) |
//! | [`StrategyKind::Faasm`] | `FAASM` | WebAssembly Faaslet with CoW heap remap (§5.3.3) |
//! | [`StrategyKind::Fresh`] | —       | cold-start a new container per request (§2's trivial solution) |
//!
//! A [`Strategy`] owns per-container state (the Groundhog manager, the
//! Faasm heap checkpoint, ...) and is driven by the platform through
//! `prepare` → (`admit` → execute → `conclude`)*.

pub mod strategy;

pub use strategy::{PostReport, PrepareReport, RunTarget, Strategy, StrategyError, StrategyKind};
