//! Host-side scaling of node-parallel cluster execution
//! (`run_cluster_with` fanning node timelines across worker threads)
//! vs the serial reference.
//!
//! The rig drives the same trace — [`NODES`] nodes, [`FUNCTIONS`]
//! Zipf-distributed synthetic functions, ≥10⁶ requests — twice,
//! [`ExecMode::Serial`] and [`ExecMode::Parallel`] at [`THREADS`]
//! workers, and times each whole run (pool construction is node-local
//! and parallelizes with the node, so it is part of the measured
//! region on both sides). Result equality is asserted after the
//! measurement through the `{:?}` fingerprint, making the rig double
//! as a release-mode oracle on top of `gh-faas`'s differential tests.
//! A second, much smaller run pins the sketch-bounded stats-memory
//! guarantee: `stats_bytes` must not depend on the request count.
//!
//! Gate design matches `fleet_scaling.rs`: the **speedup ratio** is a
//! same-machine quotient (machine-independent, gated, capped at 8);
//! raw ns per run is machine-dependent and published as gate-exempt
//! `info_` metrics plus `results/scaling_cluster.csv`.

use std::time::Instant;

use gh_faas::cluster::{run_cluster_with, ClusterConfig, PlacePolicy};
use gh_faas::fleet::ExecMode;
use gh_faas::trace::{stable_rps, synthetic_catalog, TraceConfig};
use gh_functions::FunctionSpec;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

/// Simulated worker nodes.
pub const NODES: usize = 8;
/// Synthetic functions in the trace.
pub const FUNCTIONS: u32 = 256;
/// Worker-thread target on the parallel side. The rig runs
/// `min(THREADS, cores)`: oversubscribing a smaller host measures
/// scheduler thrash, not node parallelism, and on a single-core host
/// the parallel side deliberately degenerates to the serial path so
/// the gated ratio is an honest ~1.0 (see bench_smoke's `--check`).
pub const THREADS: usize = 8;

/// Effective worker threads on this host.
pub fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(THREADS))
}
/// Seed of the whole rig (trace, deployment, containers).
const SEED: u64 = 42;

/// Requests per measured run (`GH_CLUSTER_REQUESTS` overrides;
/// default 10⁶ — the acceptance floor for the cluster rig).
pub fn requests() -> u64 {
    std::env::var("GH_CLUSTER_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Timing samples per mode (`GH_CLUSTER_ITERS` overrides; default 3).
/// The gated speedup is min(serial)/min(parallel): a single-shot
/// measurement of a ~50 s run on a noisy single-core host occasionally
/// swings past the perf gate's 10% band (the touch rig hit the same
/// problem and uses the same min-over-iters answer), while the
/// minimum converges to the undisturbed cost.
pub fn iters() -> u32 {
    std::env::var("GH_CLUSTER_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Wall-clock of the two execution modes over the same run.
pub struct ClusterScalingReport {
    /// Requests per measured run.
    pub requests: u64,
    /// Nodes simulated.
    pub nodes: usize,
    /// Worker threads on the parallel side.
    pub threads: usize,
    /// ns for the serial run.
    pub serial_ns: f64,
    /// ns for the parallel run.
    pub par_ns: f64,
    /// Percentile-tracking bytes of the run — constant in `requests`.
    pub stats_bytes: usize,
}

impl ClusterScalingReport {
    /// Serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ns / self.par_ns.max(1.0)
    }
}

fn config(catalog: &[FunctionSpec], requests: u64) -> (TraceConfig, ClusterConfig) {
    let ccfg = ClusterConfig::new(NODES, PlacePolicy::RoundRobin, StrategyKind::Gh, SEED);
    // Offered load sized so the hottest rank sits at ~60% of its pool
    // capacity — queues stay bounded over the whole 10⁶-request trace.
    let rps = stable_rps(catalog, ccfg.replicas * ccfg.slots_per_pool, 1.0, 0.6);
    let trace = TraceConfig {
        principals: 128,
        ..TraceConfig::new(FUNCTIONS, requests, rps, SEED)
    };
    (trace, ccfg)
}

fn timed_run(requests: u64, mode: ExecMode) -> (f64, String, usize) {
    let catalog = synthetic_catalog(FUNCTIONS, SEED);
    let (trace, ccfg) = config(&catalog, requests);
    let t0 = Instant::now();
    let result =
        run_cluster_with(&trace, &catalog, &ccfg, GroundhogConfig::gh(), mode).expect("run");
    let ns = t0.elapsed().as_nanos() as f64;
    assert_eq!(result.completed, requests, "cluster must drain the trace");
    (ns, format!("{result:?}"), result.stats_bytes)
}

/// Best-of-`iters` wrapper around [`timed_run`]: minimum wall-clock
/// over the samples, with repeat runs asserted bit-identical along the
/// way (every sample is also a determinism check for free).
fn timed_run_best(requests: u64, mode: ExecMode, iters: u32) -> (f64, String, usize) {
    let mut best = f64::INFINITY;
    let mut reference: Option<(String, usize)> = None;
    for _ in 0..iters {
        let (ns, fp, bytes) = timed_run(requests, mode);
        best = best.min(ns);
        match &reference {
            Some((ref_fp, _)) => assert_eq!(
                ref_fp, &fp,
                "repeat cluster run diverged from its own first sample"
            ),
            None => reference = Some((fp, bytes)),
        }
    }
    let (fp, bytes) = reference.expect("iters >= 1");
    (best, fp, bytes)
}

/// Measures both modes, asserts result equality and request-count-
/// independent stats memory.
pub fn run() -> ClusterScalingReport {
    let requests = requests();
    let threads = threads();
    let iters = iters();
    let (serial_ns, serial_fp, stats_bytes) = timed_run_best(requests, ExecMode::Serial, iters);
    let (par_ns, par_fp, _) = timed_run_best(requests, ExecMode::Parallel { threads }, iters);
    assert_eq!(
        serial_fp, par_fp,
        "node-parallel cluster run diverged from the serial reference"
    );
    // The bounded-memory acceptance: 50x fewer requests, same stats
    // footprint (two fixed-size sketches per node).
    let (_, _, small_bytes) = timed_run(requests.div_ceil(50), ExecMode::Serial);
    assert_eq!(
        stats_bytes, small_bytes,
        "stats memory must be independent of the request count"
    );
    ClusterScalingReport {
        requests,
        nodes: NODES,
        threads,
        serial_ns,
        par_ns,
        stats_bytes,
    }
}

/// Renders the report for the console and `results/scaling_cluster.csv`.
pub fn render(r: &ClusterScalingReport) -> TextTable {
    let mut t = TextTable::new(&[
        "nodes",
        "requests",
        "threads",
        "serial ms",
        "parallel ms",
        "speedup",
        "stats KiB",
    ]);
    t.row_owned(vec![
        r.nodes.to_string(),
        r.requests.to_string(),
        r.threads.to_string(),
        format!("{:.1}", r.serial_ns / 1e6),
        format!("{:.1}", r.par_ns / 1e6),
        format!("{:.2}x", r.speedup()),
        format!("{}", r.stats_bytes / 1024),
    ]);
    t
}
