//! Extension experiment (E21): dynamic workflow DAGs under crash/retry
//! schedules — goodput, hop overhead and migration accounting across
//! fan-out width × death rate × migration on/off over the migrating
//! cluster.
//!
//! Quantifies the robustness layer PR 10 adds: how much a Groundhog
//! cluster pays to keep dynamic fan-out/fan-in workflows *crash-exact*
//! (idempotent `(workflow, hop path)` commits converging to the
//! crash-free KV state) when containers die mid-hop and whole nodes
//! drop out, and what cross-node migration of orphaned hops buys over
//! waiting out the outage in place.
//!
//! ```text
//! cargo run --release -p gh-bench --bin dagsweep            # parallel cells
//! cargo run --release -p gh-bench --bin dagsweep -- --serial
//! ```
//!
//! Every cell is a pure function of its config — DAG shapes, arrivals
//! and fault draws are all stateless hashes — so cells fan out over OS
//! threads via [`run_cells`] with no cross-cell state. The CSV is
//! byte-identical to `--serial` and across repeats; the CI determinism
//! matrix diffs exactly that, pinning the whole DAG path (shape
//! generation, hop scheduling, fault injection, migration, the
//! idempotence ledger) as deterministic.

use gh_bench::harness::{run_cells, serial_requested};
use gh_bench::{smoke, write_csv};
use gh_faas::fault::{FaultConfig, RetryPolicy};
use gh_faas::trace::synthetic_catalog;
use gh_faas::workflow::migrate::{run_migrating_dags, MigrateConfig, MigrateResult};
use gh_functions::FunctionSpec;
use gh_sim::report::TextTable;
use gh_sim::Nanos;

const SEED: u64 = 46;
const NODES: usize = 5;

#[derive(Clone, Copy)]
struct Cell {
    max_width: u32,
    death_rate: f64,
    node_loss_rate: f64,
    migrate: bool,
}

fn run_cell(cell: &Cell, catalog: &[FunctionSpec], workflows: u64) -> MigrateResult {
    let mut cfg = MigrateConfig::new(NODES, workflows, SEED);
    cfg.max_width = cell.max_width;
    cfg.migrate = cell.migrate;
    let mut fc = FaultConfig::deaths(SEED, cell.death_rate);
    fc.node_loss_rate = cell.node_loss_rate;
    fc.node_loss_window = Nanos::from_millis(40);
    fc.retry = RetryPolicy {
        max_attempts: 10,
        ..RetryPolicy::bounded()
    };
    if fc.is_active() {
        cfg = cfg.with_faults(fc);
    }
    run_migrating_dags(catalog, &cfg)
}

fn main() {
    let workflows: u64 = if smoke() { 150 } else { 1_200 };
    let catalog = synthetic_catalog(12, SEED);
    let mut cells = Vec::new();
    for &max_width in &[2u32, 4, 8] {
        for &death_rate in &[0.0, 0.01, 0.05] {
            for &migrate in &[false, true] {
                // Node loss rides along with deaths so migration has
                // something to do; the zero-fault rows stay pure.
                let node_loss_rate = if death_rate > 0.0 { 0.15 } else { 0.0 };
                cells.push(Cell {
                    max_width,
                    death_rate,
                    node_loss_rate,
                    migrate,
                });
            }
        }
    }
    println!(
        "== E21 — DAG sweep: {NODES} nodes, {workflows} workflows, \
         fan-out width x death rate x migration grid, outage window 40ms ==\n"
    );
    let results = run_cells(&cells, serial_requested(), |c| {
        run_cell(c, &catalog, workflows)
    });
    let mut table = TextTable::new(&[
        "width",
        "death",
        "node loss",
        "migrate",
        "completed",
        "abandoned",
        "hops",
        "dup absorbed",
        "orphaned",
        "migrations",
        "kv fp",
        "span ms",
    ]);
    for (cell, r) in cells.iter().zip(&results) {
        table.row_owned(vec![
            format!("{}", cell.max_width),
            format!("{:.2}", cell.death_rate),
            format!("{:.2}", cell.node_loss_rate),
            if cell.migrate { "on" } else { "off" }.into(),
            format!("{}", r.completed),
            format!("{}", r.faults.abandoned),
            format!("{}", r.hops_executed),
            format!("{}", r.duplicates_suppressed),
            format!("{}", r.faults.orphaned_hops),
            format!("{}", r.faults.migrations),
            format!("{:016x}", r.kv_fingerprint),
            format!("{:.1}", r.span_ms),
        ]);
    }
    println!("{}", table.render());
    write_csv("dagsweep", &table);

    // In-sweep oracle: within a (width, rates) pair, the migrate-on and
    // migrate-off rows must land on the same final KV fingerprint when
    // neither abandoned a workflow — migration moves *where* hops run,
    // never what they commit.
    for pair in cells.chunks(2).zip(results.chunks(2)) {
        let ((a, b), (ra, rb)) = ((&pair.0[0], &pair.0[1]), (&pair.1[0], &pair.1[1]));
        assert_eq!((a.max_width, a.death_rate), (b.max_width, b.death_rate));
        if ra.faults.abandoned == 0 && rb.faults.abandoned == 0 {
            assert_eq!(
                ra.kv_fingerprint, rb.kv_fingerprint,
                "width={} death={}: migration changed the final state",
                a.max_width, a.death_rate
            );
        }
    }
    println!(
        "Expected shape: the zero-rate rows are byte-identical with migration \
         on or off (no orphans to move) and every fingerprint within a (width, \
         death) pair matches — migration changes placement, not state. Hops \
         grow with the death rate (each crash re-executes a hop) and with \
         width (more branch hops per workflow); duplicates absorbed track \
         post-commit deaths plus commits that raced a node loss. With \
         migration off, orphaned hops wait out the 40ms outage on the lost \
         node, stretching the span; with it on, they re-dispatch to the next \
         up replica immediately, so migrations rise and the span tightens \
         while abandonment stays at zero under the 10-attempt budget."
    );
}
