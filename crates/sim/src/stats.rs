//! Measurement statistics: summaries, percentiles, overhead computation.
//!
//! The paper reports means ± standard deviation (Table 1), coefficients of
//! variation (Table 2), medians/percentiles of overhead distributions
//! (abstract, §2), and sustained throughput. This module provides those
//! aggregations over virtual-time samples.

use crate::sketch::QuantileSketch;
use crate::time::Nanos;

/// Aggregate statistics over a set of samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary over raw `f64` samples. Returns a zeroed summary
    /// for an empty slice.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            count: samples.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Computes a summary over durations, in milliseconds.
    pub fn of_nanos_ms(samples: &[Nanos]) -> Summary {
        let ms: Vec<f64> = samples.iter().map(|n| n.as_millis_f64()).collect();
        Summary::of(&ms)
    }

    /// Coefficient of variation (σ/µ), in percent. Zero when the mean is 0.
    pub fn cov_percent(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            100.0 * self.std_dev / self.mean
        }
    }
}

/// Percentile over raw samples using linear interpolation between closest
/// ranks (the common "type 7" estimator).
///
/// `p` is in `[0, 100]`.
///
/// # Panics
///
/// Panics if `samples` is empty or `p` is outside `[0, 100]`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    percentile_of_sorted(&sorted, p)
}

/// Percentile over pre-sorted samples (ascending).
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile).
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Relative overhead of `measured` versus `baseline`, in percent.
/// `+10.0` means 10% slower than baseline.
pub fn overhead_percent(baseline: f64, measured: f64) -> f64 {
    if baseline.abs() < f64::EPSILON {
        return 0.0;
    }
    100.0 * (measured - baseline) / baseline
}

/// Relative value of `measured` versus `baseline` (1.0 = equal), used for
/// the normalized bar charts of Fig. 4 and Fig. 5.
pub fn relative(baseline: f64, measured: f64) -> f64 {
    if baseline.abs() < f64::EPSILON {
        return 1.0;
    }
    measured / baseline
}

/// An append-only collector of latency samples with convenience
/// accessors, used by clients and the invoker.
///
/// Backed by a [`QuantileSketch`], so memory is a fixed ~30 KiB however
/// many samples are recorded (the bounded-stats-memory guarantee the
/// fleet and cluster paths already carry). Means, std-devs and extremes
/// are exact; percentiles quantize by at most 1/[`crate::sketch::SUBBUCKETS`]
/// (≈ 1.6%). Two recorders compare equal iff they absorbed identical
/// sample multisets — the equality the platform determinism tests pin.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyRecorder {
    sketch: QuantileSketch,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Nanos) {
        self.sketch.record_nanos(sample);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.sketch.len() as usize
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Summary in milliseconds (mean/σ/min/max exact; zeroed when
    /// empty).
    pub fn summary_ms(&self) -> Summary {
        Summary {
            count: self.len(),
            mean: self.sketch.mean_ms(),
            std_dev: self.sketch.std_dev_ms(),
            min: self.sketch.min() as f64 / 1e6,
            max: self.sketch.max() as f64 / 1e6,
        }
    }

    /// Percentile in milliseconds (sketch-quantized; 0 when empty).
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.sketch.quantile_ms(p)
    }

    /// The underlying sketch, for exact merging into other collectors.
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }
}

/// Throughput over a measurement window: completed requests per second of
/// virtual time.
pub fn throughput_rps(completed: usize, window: Nanos) -> f64 {
    if window.is_zero() {
        return 0.0;
    }
    completed as f64 / window.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cov_percent(), 0.0);
    }

    #[test]
    fn cov_percent() {
        let s = Summary::of(&[9.0, 11.0]);
        assert!((s.cov_percent() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn overhead_math() {
        assert!((overhead_percent(100.0, 110.0) - 10.0).abs() < 1e-12);
        assert!((overhead_percent(100.0, 90.0) + 10.0).abs() < 1e-12);
        assert_eq!(overhead_percent(0.0, 5.0), 0.0);
        assert!((relative(4.0, 5.0) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn recorder_summary_and_percentiles() {
        let mut r = LatencyRecorder::new();
        for i in 1..=10u64 {
            r.record(Nanos::from_millis(i));
        }
        assert_eq!(r.len(), 10);
        let s = r.summary_ms();
        assert!((s.mean - 5.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        let exact = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert!((s.std_dev - exact.std_dev).abs() < 1e-6, "σ is exact");
        let p50 = r.percentile_ms(50.0);
        assert!((4.9..=5.2).contains(&p50), "sketch-quantized median: {p50}");
    }

    #[test]
    fn recorder_equality_tracks_sample_multiset() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        // Same multiset, different order: equal.
        for i in [3u64, 1, 2] {
            a.record(Nanos::from_millis(i));
        }
        for i in [1u64, 2, 3] {
            b.record(Nanos::from_millis(i));
        }
        assert_eq!(a, b);
        b.record(Nanos::from_millis(4));
        assert_ne!(a, b);
    }

    #[test]
    fn recorder_empty_is_zeroed() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.summary_ms(), Summary::of(&[]));
        assert_eq!(r.percentile_ms(99.0), 0.0);
    }

    #[test]
    fn throughput_computation() {
        let t = throughput_rps(150, Nanos::from_secs(30));
        assert!((t - 5.0).abs() < 1e-12);
        assert_eq!(throughput_rps(10, Nanos::ZERO), 0.0);
    }
}
