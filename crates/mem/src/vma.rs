//! Virtual memory areas (the units of `/proc/pid/maps`).

use core::fmt;

use crate::addr::PageRange;

/// Access permissions of a VMA.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perms {
    /// `rw-`
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// `r--`
    pub const R: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };
    /// `r-x`
    pub const RX: Perms = Perms {
        r: true,
        w: false,
        x: true,
    };
    /// `---` (guard pages)
    pub const NONE: Perms = Perms {
        r: false,
        w: false,
        x: false,
    };
}

impl fmt::Debug for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' },
        )
    }
}

/// What a VMA backs; mirrors the kinds Groundhog distinguishes when
/// restoring (heap via `brk`, stack zeroing, anonymous mmap removal,
/// file-backed remapping).
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum VmaKind {
    /// The program break region.
    Heap,
    /// The main (or a thread's) stack; zeroed on restore.
    Stack,
    /// Anonymous private mapping.
    Anon,
    /// File-backed mapping (program text, shared libraries, runtime
    /// images). The name stands in for the inode.
    File(String),
    /// Inaccessible guard region.
    Guard,
}

impl VmaKind {
    /// Short name used in maps rendering.
    pub fn label(&self) -> &str {
        match self {
            VmaKind::Heap => "[heap]",
            VmaKind::Stack => "[stack]",
            VmaKind::Anon => "",
            VmaKind::File(name) => name,
            VmaKind::Guard => "[guard]",
        }
    }
}

/// One contiguous mapping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Vma {
    /// Pages covered, `[start, end)`.
    pub range: PageRange,
    /// Access permissions.
    pub perms: Perms,
    /// Backing kind.
    pub kind: VmaKind,
}

impl Vma {
    /// Creates a VMA.
    pub fn new(range: PageRange, perms: Perms, kind: VmaKind) -> Vma {
        Vma { range, perms, kind }
    }

    /// True if `other` can merge with `self` when exactly adjacent:
    /// same permissions and both plain anonymous mappings (the kernel's
    /// `vma_merge` policy, simplified).
    pub fn can_merge_with(&self, other: &Vma) -> bool {
        self.perms == other.perms && self.kind == other.kind && matches!(self.kind, VmaKind::Anon)
    }

    /// A `/proc/pid/maps`-style line for this VMA.
    pub fn render(&self) -> String {
        format!(
            "{:012x}-{:012x} {:?}p {}",
            self.range.start.addr().0,
            self.range.end.addr().0,
            self.perms,
            self.kind.label(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Vpn;

    #[test]
    fn perms_render() {
        assert_eq!(format!("{:?}", Perms::RW), "rw-");
        assert_eq!(format!("{:?}", Perms::RX), "r-x");
        assert_eq!(format!("{:?}", Perms::NONE), "---");
    }

    #[test]
    fn merge_policy() {
        let a = Vma::new(PageRange::at(Vpn(0), 4), Perms::RW, VmaKind::Anon);
        let b = Vma::new(PageRange::at(Vpn(4), 4), Perms::RW, VmaKind::Anon);
        let c = Vma::new(PageRange::at(Vpn(8), 4), Perms::R, VmaKind::Anon);
        let d = Vma::new(PageRange::at(Vpn(12), 4), Perms::RW, VmaKind::Heap);
        assert!(a.can_merge_with(&b));
        assert!(!a.can_merge_with(&c), "different perms");
        assert!(!a.can_merge_with(&d), "non-anon never merges");
    }

    #[test]
    fn maps_line_rendering() {
        let v = Vma::new(
            PageRange::at(Vpn(0x1000), 2),
            Perms::RX,
            VmaKind::File("libc.so".into()),
        );
        let line = v.render();
        assert!(line.contains("r-xp"));
        assert!(line.contains("libc.so"));
        assert!(line.starts_with("000001000000-000001002000"));
    }
}
