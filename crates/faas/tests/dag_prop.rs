//! Property tests for DAG crash recovery, hand-rolled on [`DetRng`]
//! (no external proptest crate): each case draws a random DAG shape,
//! death rate, and retry policy from a seeded stream and checks the
//! recovery invariants. Failures print the offending draw, which —
//! everything being a pure function of the case seed — IS the shrunk
//! reproduction.
//!
//! Invariants per case:
//!
//! - **Commit idempotence.** Every suppressed re-commit is a
//!   post-commit death: `duplicates_suppressed == faults.duplicates`
//!   whenever no workflow was abandoned (an abandoned workflow may die
//!   before its re-commit, leaving a dangling duplicate count is still
//!   exact — the equality is asserted unconditionally on the KV side).
//! - **Crash-equivalence.** With zero abandonment the faulty run's
//!   outputs, KV fingerprint, and applied version count equal the
//!   crash-free run's.
//! - **Topological replay purity.** The applied-commit order fold
//!   (`replay_hash`) is a pure function of `(seed, spec)` — identical
//!   across the crash-free run, the faulty run, and a repeat.

use gh_faas::fault::{FaultConfig, RetryPolicy};
use gh_faas::workflow::dag::{random_dag_spec, run_dag_workflows};
use gh_faas::workflow::WorkflowConfig;
use gh_functions::catalog::by_name;
use gh_functions::FunctionSpec;
use gh_isolation::StrategyKind;
use gh_sim::DetRng;
use groundhog_core::GroundhogConfig;

fn funcs() -> Vec<FunctionSpec> {
    ["get-time (n)", "float (p)"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect()
}

const CASES: u64 = 12;

#[test]
fn random_dags_under_random_crash_schedules_recover_exactly() {
    let fs = funcs();
    let mut rng = DetRng::new(0xD46_9206);
    for case in 0..CASES {
        let shape_seed = rng.next_u64();
        let width = 2 + rng.next_below(3) as u32; // 2..=4
        let death_rate = 0.02 + rng.next_f64() * 0.13; // 2%..15%
        let reroute = rng.next_below(2) == 1;
        let spec = random_dag_spec(shape_seed, fs.len(), width);
        let run_seed = rng.next_u64();
        let tag = format!(
            "case={case} shape_seed={shape_seed:#x} width={width} \
             death_rate={death_rate:.3} reroute={reroute} run_seed={run_seed:#x}"
        );

        let cfg = WorkflowConfig::new(6, StrategyKind::Gh, run_seed);
        let clean = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &cfg).unwrap();
        assert_eq!(clean.completed, 6, "{tag}: crash-free run must complete");

        let mut fc = FaultConfig::deaths(run_seed ^ 0xFA, death_rate);
        fc.retry = RetryPolicy {
            max_attempts: 12,
            reroute,
            ..RetryPolicy::bounded()
        };
        let fcfg = cfg.clone().with_faults(fc);
        let faulty = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &fcfg).unwrap();

        // Commit idempotence: the KV-side suppression count is exactly
        // the post-commit deaths the fault layer injected.
        assert_eq!(
            faulty.duplicates_suppressed, faulty.faults.duplicates,
            "{tag}: idempotence ledger out of balance"
        );
        assert_eq!(
            faulty.completed + faulty.faults.abandoned,
            faulty.workflows,
            "{tag}: workflows must complete or abandon"
        );
        if faulty.faults.abandoned == 0 {
            assert_eq!(faulty.outputs, clean.outputs, "{tag}: outputs diverged");
            assert_eq!(
                faulty.kv_fingerprint, clean.kv_fingerprint,
                "{tag}: KV state diverged"
            );
            assert_eq!(
                faulty.kv_versions, clean.kv_versions,
                "{tag}: double-applied commit"
            );
            assert_eq!(
                faulty.replay_hash, clean.replay_hash,
                "{tag}: replay order is not pure in (seed, spec)"
            );
        }

        // Replay purity: the faulty run repeats bit-identically.
        let again = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &fcfg).unwrap();
        assert_eq!(
            format!("{faulty:?}"),
            format!("{again:?}"),
            "{tag}: faulty repeat diverged"
        );
    }
}

#[test]
fn replay_order_is_pure_in_seed_and_spec_and_sensitive_to_both() {
    let fs = funcs();
    let mut rng = DetRng::new(0x9E9_7A7);
    let mut hashes = Vec::new();
    for _ in 0..8 {
        let shape_seed = rng.next_u64();
        let run_seed = rng.next_u64();
        let spec = random_dag_spec(shape_seed, fs.len(), 3);
        let cfg = WorkflowConfig::new(4, StrategyKind::Gh, run_seed);
        let a = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &cfg).unwrap();
        let b = run_dag_workflows(&spec, &fs, GroundhogConfig::gh(), &cfg).unwrap();
        assert_eq!(a.replay_hash, b.replay_hash, "same (seed, spec) must agree");
        hashes.push(a.replay_hash);
    }
    hashes.sort_unstable();
    hashes.dedup();
    assert!(
        hashes.len() > 1,
        "different (seed, spec) draws must produce different replay orders"
    );
}
