//! Fig. 4 — relative end-to-end and invoker latency of GH-NOP, GH, FORK
//! and FAASM versus the insecure baseline, for all 58 benchmarks.
//!
//! ```text
//! cargo run --release -p gh-bench --bin fig4
//! ```

use gh_bench::{fmt_rel, latency_requests, run_latency, write_csv, ALL_KINDS};
use gh_functions::catalog::catalog;
use gh_functions::Suite;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use gh_sim::stats::relative;

fn main() {
    let n = latency_requests();
    let suites = [Suite::PyPerformance, Suite::PolyBench, Suite::FaaSProfiler];
    let mut csv = TextTable::new(&[
        "benchmark",
        "rel_e2e_ghnop",
        "rel_e2e_gh",
        "rel_e2e_fork",
        "rel_e2e_faasm",
        "rel_inv_ghnop",
        "rel_inv_gh",
        "rel_inv_fork",
        "rel_inv_faasm",
    ]);

    for suite in suites {
        println!(
            "== Fig. 4 — {} (relative to BASE; lower is better) ==\n",
            suite.label()
        );
        let mut table = TextTable::new(&[
            "benchmark",
            "E2E GH-NOP",
            "E2E GH",
            "E2E fork",
            "E2E faasm",
            "inv GH-NOP",
            "inv GH",
            "inv fork",
            "inv faasm",
        ]);
        for spec in catalog().iter().filter(|s| s.suite == suite) {
            let base = run_latency(spec, StrategyKind::Base, n, 1).expect("base runs");
            let base_e2e = base.e2e_mean_ms();
            let base_inv = base.invoker_mean_ms();
            let mut rel_e2e = Vec::new();
            let mut rel_inv = Vec::new();
            for kind in &ALL_KINDS[1..] {
                match run_latency(spec, *kind, n, 1) {
                    Some(run) => {
                        rel_e2e.push(Some(relative(base_e2e, run.e2e_mean_ms())));
                        rel_inv.push(Some(relative(base_inv, run.invoker_mean_ms())));
                    }
                    None => {
                        rel_e2e.push(None);
                        rel_inv.push(None);
                    }
                }
            }
            let mut row = vec![spec.name.to_string()];
            row.extend(rel_e2e.iter().map(|x| fmt_rel(*x)));
            row.extend(rel_inv.iter().map(|x| fmt_rel(*x)));
            table.row_owned(row.clone());
            csv.row_owned(row);
        }
        println!("{}", table.render());
    }
    write_csv("fig4", &csv);
    println!(
        "Expected shapes (paper §5.3.1): GH E2E overhead mostly within noise \
         (median ≈ 1.5%); GH invoker overhead pronounced only for short functions and \
         Node.js (proxying + GC rewind); FAASM ≫ native on pyperformance, ≤ native on \
         PolyBench; fork ≥ GH."
    );
}
