//! Criterion bench: one §5.2 microbenchmark request cycle per isolation
//! mode (implementation-level cost of the full pipeline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gh_bench::micro_harness::{MicroMode, MicroRig};

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_request_cycle");
    group.sample_size(10);
    for mode in [
        MicroMode::Base,
        MicroMode::GhNop,
        MicroMode::Gh,
        MicroMode::Fork,
    ] {
        let mut rig = MicroRig::build(16_384, mode);
        group.bench_with_input(BenchmarkId::from_parameter(mode.label()), &mode, |b, _| {
            b.iter(|| black_box(rig.request(0.2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
