//! bench-smoke — the CI perf summary and regression gate.
//!
//! Runs a seeded, small-N subset of the perf surface (restore latency
//! per restore mode, fleet goodput/sojourn, snapshot dedup) and writes
//! a consolidated flat-JSON summary to `results/BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p gh-bench --bin bench_smoke                   # summary only
//! cargo run --release -p gh-bench --bin bench_smoke -- --check [F]    # + gate vs baseline
//! cargo run --release -p gh-bench --bin bench_smoke -- --write-baseline
//! ```
//!
//! `--check` compares every metric against the checked-in baseline
//! (default `results/baseline.json`) and exits non-zero when any metric
//! regresses by more than [`THRESHOLD_PCT`] in its bad direction
//! (latencies up, goodput/dedup down). The simulator is deterministic,
//! so the gate is noise-free; the generous threshold absorbs deliberate
//! calibration adjustments. The gate is verified end-to-end by running
//! with `GH_COST_SCALE=2` (a uniform 2x kernel-primitive slowdown
//! injected through [`gh_sim::CostModel`]), which must trip it.
//!
//! The `scaling_*` family covers the extent-based bookkeeping: the
//! legacy/new capture+plan speedup at 1M pages / 1% dirty and the
//! O(dirty) scan-growth check are same-machine ratios (machine
//! independent, so gate-safe); the `sim` entries are deterministic
//! virtual costs. Raw host ns/page is machine-**dependent** and is
//! published under the `info_` prefix — written to the JSON and
//! `results/scaling.csv` but exempt from the gate, because comparing a
//! CI runner's absolute nanoseconds against a baseline written on a
//! different machine would fail spuriously in either direction.

use std::process::ExitCode;
use std::{env, fs};

use gh_bench::results_dir;
use gh_faas::fleet::{run_fleet, FleetConfig, RoutePolicy};
use gh_faas::{Container, Request};
use gh_functions::catalog::by_name;
use gh_isolation::StrategyKind;
use gh_sim::stats::percentile;
use groundhog_core::GroundhogConfig;

/// Allowed regression per metric, percent.
const THRESHOLD_PCT: f64 = 10.0;

struct Metric {
    key: &'static str,
    value: f64,
    higher_is_better: bool,
}

/// Per-request restore totals (µs) of one mode on fannkuch (p),
/// 12 measured requests after one warm-up.
fn restore_percentiles(cfg: GroundhogConfig) -> (f64, f64) {
    let spec = by_name("fannkuch (p)").expect("catalog");
    let mut c = Container::cold_start(&spec, StrategyKind::Gh, cfg, 42).expect("container");
    let mut totals_us = Vec::new();
    for i in 1..=13u64 {
        c.invoke(&Request::new(i, "client", spec.input_kb))
            .expect("invoke");
        if i == 1 {
            continue; // warm-up
        }
        let restore = c
            .stats
            .last_post
            .as_ref()
            .and_then(|p| p.restore.as_ref())
            .expect("GH restores every request");
        totals_us.push(restore.total.as_millis_f64() * 1e3);
    }
    (percentile(&totals_us, 50.0), percentile(&totals_us, 99.0))
}

fn collect() -> Vec<Metric> {
    let mut out = Vec::new();
    // Restore-latency percentiles for eager and lazy. The drain knob is
    // deliberately not a third row here: a closed-loop single container
    // has no idle gaps (its clock only advances under charge), so its
    // restore totals are byte-identical to plain lazy — the drain's
    // perf effect is gated through `fleet_lazy_p99_ms` below, where
    // idle gaps exist.
    for (cfg, k50, k99) in [
        (
            GroundhogConfig::gh(),
            "restore_p50_us_eager",
            "restore_p99_us_eager",
        ),
        (
            GroundhogConfig::lazy(),
            "restore_p50_us_lazy",
            "restore_p99_us_lazy",
        ),
    ] {
        let (p50, p99) = restore_percentiles(cfg);
        out.push(Metric {
            key: k50,
            value: p50,
            higher_is_better: false,
        });
        out.push(Metric {
            key: k99,
            value: p99,
            higher_is_better: false,
        });
    }

    let spec = by_name("fannkuch (p)").expect("catalog");
    let fleet = |cfg: GroundhogConfig| {
        run_fleet(
            &spec,
            StrategyKind::Gh,
            cfg,
            2,
            FleetConfig::fixed(RoutePolicy::RestoreAware, 200.0, 29),
            150,
        )
        .expect("fleet run")
    };
    let eager = fleet(GroundhogConfig::gh());
    let lazy = fleet(GroundhogConfig::lazy_drain());
    out.push(Metric {
        key: "fleet_goodput_rps",
        value: eager.goodput_rps,
        higher_is_better: true,
    });
    out.push(Metric {
        key: "fleet_p99_ms",
        value: eager.p99_ms,
        higher_is_better: false,
    });
    out.push(Metric {
        key: "fleet_lazy_p99_ms",
        value: lazy.p99_ms,
        higher_is_better: false,
    });

    let pool = gh_faas::fleet::Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 4, 42)
        .expect("pool");
    out.push(Metric {
        key: "snapshot_dedup_ratio",
        value: pool.memory().dedup_ratio,
        higher_is_better: true,
    });

    // Extent-bookkeeping scaling family (host wall-clock; see module
    // docs for the gate design). Speedups are capped at 8x before
    // gating: the acceptance floor is 5x, and capping keeps the gate
    // insensitive to jitter in the (much larger) typical ratio.
    let scaling = gh_bench::scaling::run();
    println!("\n== scaling — extent bookkeeping vs legacy per-page ==\n");
    let table = gh_bench::scaling::render(&scaling);
    println!("{}", table.render());
    gh_bench::write_csv("scaling", &table);
    println!(
        "capture+plan speedup at 1M pages / 1% dirty: {:.1}x (capture alone {:.1}x); \
         scan growth 64k→1M at fixed dirty: {:.2}x\n",
        scaling.capture_plan_speedup_1m(),
        scaling.capture_speedup_1m(),
        scaling.scan_growth_64k_to_1m()
    );
    out.push(Metric {
        key: "scaling_capture_plan_speedup_1m",
        value: scaling.capture_plan_speedup_1m().min(8.0),
        higher_is_better: true,
    });
    out.push(Metric {
        key: "scaling_capture_speedup_1m",
        value: scaling.capture_speedup_1m().min(8.0),
        higher_is_better: true,
    });
    // 1.0 = scan time is a function of the dirty set, not the mapped
    // size (growth ≤ 3x across a 16x size spread); 0.0 = an O(mapped)
    // walk crept back in. Binary so the gate is noise-free.
    out.push(Metric {
        key: "scaling_scan_o_dirty",
        value: f64::from(scaling.scan_growth_64k_to_1m() <= 3.0),
        higher_is_better: true,
    });
    out.push(Metric {
        key: "scaling_sim_scan_us_extent_1m",
        value: scaling.sim_scan_us_extent_1m,
        higher_is_better: false,
    });
    out.push(Metric {
        key: "scaling_sim_scan_us_paper_1m",
        value: scaling.sim_scan_us_paper_1m,
        higher_is_better: false,
    });
    for p in &scaling.points {
        // Machine-dependent: published, not gated.
        for (what, v) in [
            ("capture", p.capture_ns_per_page),
            ("scan", p.scan_ns_per_page),
            ("plan", p.plan_ns_per_page),
        ] {
            out.push(Metric {
                key: Box::leak(
                    format!("info_{}_ns_per_page_{}k", what, p.pages >> 10).into_boxed_str(),
                ),
                value: v,
                higher_is_better: false,
            });
        }
    }

    // Batched-touch scaling family: loop/batch wall-clock ratios of the
    // request executor's touch shape at a 64k-touch batch (tentpole
    // acceptance: ≥5x; capped at 8 like the other scaling ratios so the
    // gate tracks the floor, not jitter in the typical value). The rig
    // asserts counter equality between both paths, so a semantic
    // regression fails the run outright before the gate even looks.
    let touch = gh_bench::touch_scaling::run();
    println!("\n== scaling_touch — batched touch path vs per-page loop ==\n");
    let ttable = gh_bench::touch_scaling::render(&touch);
    println!("{}", ttable.render());
    gh_bench::write_csv("scaling_touch", &ttable);
    println!(
        "touch_batch speedup at {} touches: warm {:.1}x, re-armed {:.1}x\n",
        touch.touches,
        touch.warm_speedup(),
        touch.armed_speedup()
    );
    out.push(Metric {
        key: "scaling_touch_warm_speedup_64k",
        value: touch.warm_speedup().min(8.0),
        higher_is_better: true,
    });
    out.push(Metric {
        key: "scaling_touch_armed_speedup_64k",
        value: touch.armed_speedup().min(8.0),
        higher_is_better: true,
    });
    for (key, ns) in [
        ("info_touch_warm_loop_ns_per_touch", touch.warm_loop_ns),
        ("info_touch_warm_batch_ns_per_touch", touch.warm_batch_ns),
        ("info_touch_armed_loop_ns_per_touch", touch.armed_loop_ns),
        ("info_touch_armed_batch_ns_per_touch", touch.armed_batch_ns),
    ] {
        out.push(Metric {
            key,
            value: ns / touch.touches as f64,
            higher_is_better: false,
        });
    }

    // Host-parallel fleet execution: serial/parallel wall-clock ratio of
    // the 16-container 10⁵-request run (the rig asserts bit-identical
    // results before reporting). Same gate design as the other scaling
    // ratios: the speedup is gated (capped at 8, acceptance floor 2x at
    // 8 threads); raw ns per run is machine-dependent `info_`.
    let fleet_par = gh_bench::fleet_scaling::run();
    println!("\n== scaling_fleet — host-parallel fleet vs serial ==\n");
    let ftable = gh_bench::fleet_scaling::render(&fleet_par);
    println!("{}", ftable.render());
    gh_bench::write_csv("scaling_fleet", &ftable);
    println!(
        "fleet speedup at {} containers / {} requests / {} threads: {:.2}x\n",
        fleet_par.pool,
        fleet_par.requests,
        fleet_par.threads,
        fleet_par.speedup()
    );
    out.push(Metric {
        key: "scaling_fleet_par",
        value: fleet_par.speedup().min(8.0),
        higher_is_better: true,
    });
    out.push(Metric {
        key: "info_fleet_serial_ns",
        value: fleet_par.serial_ns,
        higher_is_better: false,
    });
    out.push(Metric {
        key: "info_fleet_par_ns",
        value: fleet_par.par_ns,
        higher_is_better: false,
    });

    // Cluster scaling: node-sharded event queues under the trace-driven
    // workload — serial/parallel wall-clock ratio of the 8-node
    // ≥10⁶-request run (bit-identity and request-count-independent
    // stats memory are asserted inside the rig, so a semantic break
    // aborts before the gate looks). Same gate design: the speedup
    // ratio is gated (capped at 8), raw ns per run is `info_`.
    let cluster = gh_bench::cluster_scaling::run();
    println!("\n== scaling_cluster — node-parallel cluster vs serial ==\n");
    let ctable = gh_bench::cluster_scaling::render(&cluster);
    println!("{}", ctable.render());
    gh_bench::write_csv("scaling_cluster", &ctable);
    println!(
        "cluster speedup at {} nodes / {} requests / {} threads: {:.2}x\n",
        cluster.nodes,
        cluster.requests,
        cluster.threads,
        cluster.speedup()
    );
    out.push(Metric {
        key: "scaling_cluster_par",
        value: cluster.speedup().min(8.0),
        higher_is_better: true,
    });
    out.push(Metric {
        key: "info_cluster_serial_ns",
        value: cluster.serial_ns,
        higher_is_better: false,
    });
    out.push(Metric {
        key: "info_cluster_par_ns",
        value: cluster.par_ns,
        higher_is_better: false,
    });
    // Gateway effectiveness: virtual-time (deterministic, machine-
    // independent) ratios, so the cache speedup is gated without the
    // single-core escape hatch. The rig itself asserts the cache-off
    // oracle, bounded stats memory, and that predictive pre-warming
    // does not lose the p99 race; the p99s land here as `info_`.
    let gateway = gh_bench::gateway_scaling::run();
    println!("\n== scaling_gateway — result cache + predictive pre-warm ==\n");
    let gtable = gh_bench::gateway_scaling::render(&gateway);
    println!("{}", gtable.render());
    gh_bench::write_csv("scaling_gateway", &gtable);
    println!(
        "cache speedup at {:.0}% hit ratio: {:.2}x; prewarm p99 {:.2}ms vs reactive {:.2}ms\n",
        gateway.hit_ratio * 100.0,
        gateway.cache_speedup(),
        gateway.prewarm_p99_ms,
        gateway.reactive_p99_ms
    );
    out.push(Metric {
        key: "gateway_cache_speedup",
        value: gateway.cache_speedup().min(8.0),
        higher_is_better: true,
    });
    out.push(Metric {
        key: "info_gateway_hit_ratio",
        value: gateway.hit_ratio,
        higher_is_better: true,
    });
    out.push(Metric {
        key: "info_gateway_prewarm_p99_ms",
        value: gateway.prewarm_p99_ms,
        higher_is_better: false,
    });
    out.push(Metric {
        key: "info_gateway_reactive_p99_ms",
        value: gateway.reactive_p99_ms,
        higher_is_better: false,
    });

    // Fault tolerance: goodput under 1% container death with bounded
    // retries, as a fraction of the fault-free run over the same
    // arrivals. Virtual-time quotient — deterministic and machine-
    // independent, so it is gated without an escape hatch. The raw
    // fault counters are published as `info_` (they are exact small
    // integers; the ratio is the regression surface). 600 requests so
    // several deaths land and the ratio averages over them instead of
    // hinging on one recovery's queue spike.
    let fault_pair = |faults: Option<gh_faas::fault::FaultConfig>| {
        let mut pool =
            gh_faas::fleet::Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 2, 29)
                .expect("pool");
        // 120 r/s on the 2-slot pool leaves headroom, so the ratio
        // measures the fault path's cost (backoff + recovery
        // cold-start), not a saturation collapse.
        let mut f =
            gh_faas::fleet::Fleet::new(FleetConfig::fixed(RoutePolicy::RestoreAware, 120.0, 29));
        if let Some(fc) = faults {
            f = f.with_faults(fc);
        }
        f.run(&mut pool, 600).expect("fleet run")
    };
    let fault_free = fault_pair(None);
    let faulty = {
        let mut fc = gh_faas::fault::FaultConfig::deaths(29, 0.01);
        fc.restore_failure_rate = 0.005;
        fault_pair(Some(fc))
    };
    println!(
        "fault smoke at 1% deaths: goodput {:.1}/{:.1} r/s, {} deaths, {} retries, \
         {} duplicate executions, {} abandoned\n",
        faulty.goodput_rps,
        fault_free.goodput_rps,
        faulty.stats.faults.deaths,
        faulty.stats.faults.retries,
        faulty.stats.faults.duplicates,
        faulty.stats.faults.abandoned
    );
    out.push(Metric {
        key: "fault_goodput_ratio_1pct",
        value: faulty.goodput_rps / fault_free.goodput_rps,
        higher_is_better: true,
    });
    for (key, v) in [
        ("info_fault_deaths", faulty.stats.faults.deaths),
        (
            "info_fault_restore_failures",
            faulty.stats.faults.restore_failures,
        ),
        ("info_fault_retries", faulty.stats.faults.retries),
        ("info_fault_duplicates", faulty.stats.faults.duplicates),
        ("info_fault_abandoned", faulty.stats.faults.abandoned),
    ] {
        out.push(Metric {
            key,
            value: v as f64,
            higher_is_better: false,
        });
    }

    // DAG recovery overhead: completed-workflows-per-hop-executed of a
    // faulty migrating DAG run at 1% container death + 10% node loss,
    // as a fraction of the crash-free run over the same workload. Every
    // crash re-executes a hop, so the ratio is (hops_clean /
    // hops_faulty) when both complete everything — a pure virtual-time
    // quotient, deterministic and machine-independent, gated without an
    // escape hatch. The ledger counters ride along as `info_`.
    let dag_pair = |faults: Option<gh_faas::fault::FaultConfig>| {
        let catalog = gh_faas::trace::synthetic_catalog(10, 67);
        let mut cfg = gh_faas::workflow::migrate::MigrateConfig::new(4, 200, 67);
        if let Some(fc) = faults {
            cfg = cfg.with_faults(fc);
        }
        gh_faas::workflow::migrate::run_migrating_dags(&catalog, &cfg)
    };
    let dag_clean = dag_pair(None);
    let dag_faulty = {
        let mut fc = gh_faas::fault::FaultConfig::deaths(67, 0.01);
        fc.node_loss_rate = 0.1;
        fc.node_loss_window = gh_sim::Nanos::from_millis(40);
        fc.retry = gh_faas::fault::RetryPolicy {
            max_attempts: 10,
            ..gh_faas::fault::RetryPolicy::bounded()
        };
        dag_pair(Some(fc))
    };
    assert_eq!(
        dag_faulty.kv_fingerprint, dag_clean.kv_fingerprint,
        "faulty DAG run must converge to the crash-free KV state"
    );
    let goodput = |r: &gh_faas::workflow::migrate::MigrateResult| {
        r.completed as f64 / (r.hops_executed as f64).max(1.0)
    };
    println!(
        "dag smoke at 1% deaths + 10% node loss: {}/{} hops, {} orphaned, \
         {} migrations, {} duplicates absorbed, {} abandoned\n",
        dag_faulty.hops_executed,
        dag_clean.hops_executed,
        dag_faulty.faults.orphaned_hops,
        dag_faulty.faults.migrations,
        dag_faulty.duplicates_suppressed,
        dag_faulty.faults.abandoned
    );
    out.push(Metric {
        key: "dag_goodput_ratio_1pct",
        value: goodput(&dag_faulty) / goodput(&dag_clean),
        higher_is_better: true,
    });
    for (key, v) in [
        ("info_dag_hops_faulty", dag_faulty.hops_executed),
        ("info_dag_orphaned_hops", dag_faulty.faults.orphaned_hops),
        ("info_dag_migrations", dag_faulty.faults.migrations),
        (
            "info_dag_duplicates_absorbed",
            dag_faulty.duplicates_suppressed,
        ),
        ("info_dag_abandoned", dag_faulty.faults.abandoned),
    ] {
        out.push(Metric {
            key,
            value: v as f64,
            higher_is_better: false,
        });
    }

    // Cores of the measuring host — records which environment the
    // `scaling_*_par` ratios in a baseline were taken on, and lets the
    // gate recognize a single-core runner (see `--check`).
    out.push(Metric {
        key: "info_cores",
        value: cores() as f64,
        higher_is_better: true,
    });
    out
}

/// Host cores as seen by the harness (what `ExecMode::Auto` sizes to).
fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Host-parallel speedup ratios whose baseline value assumes a
/// multicore host. On a single-core runner the honest expectation is
/// ~1.0 — the parallel path degrades to one worker — so `--check`
/// gates these at 1.0 there instead of the checked-in multicore ratio.
const PAR_RATIO_KEYS: [&str; 2] = ["scaling_fleet_par", "scaling_cluster_par"];

fn render(metrics: &[Metric]) -> String {
    let mut s = String::from("{\n");
    for (i, m) in metrics.iter().enumerate() {
        let sep = if i + 1 == metrics.len() { "" } else { "," };
        s.push_str(&format!("  \"{}\": {:.4}{}\n", m.key, m.value, sep));
    }
    s.push_str("}\n");
    s
}

/// Parses the flat `"key": number` JSON this binary writes. Tolerant of
/// whitespace and trailing commas; anything else is a baseline bug.
fn parse(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, rest)) = rest.split_once('"') else {
            continue;
        };
        let Some((_, value)) = rest.split_once(':') else {
            continue;
        };
        if let Ok(v) = value.trim().trim_end_matches(',').parse::<f64>() {
            out.push((key.to_string(), v));
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let metrics = collect();

    println!("== bench-smoke — consolidated perf summary ==\n");
    for m in &metrics {
        println!(
            "  {:28} {:>12.2}  ({} is worse)",
            m.key,
            m.value,
            if m.higher_is_better {
                "lower"
            } else {
                "higher"
            }
        );
    }
    let json = render(&metrics);
    let out_path = results_dir().join("BENCH_fleet.json");
    fs::write(&out_path, &json).expect("write summary");
    println!("\n[written {}]", out_path.display());

    if args.iter().any(|a| a == "--write-baseline") {
        let base_path = results_dir().join("baseline.json");
        fs::write(&base_path, &json).expect("write baseline");
        println!("[written {}]", base_path.display());
    }

    if let Some(i) = args.iter().position(|a| a == "--check") {
        let base_path = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| results_dir().join("baseline.json").display().to_string());
        let baseline = match fs::read_to_string(&base_path) {
            Ok(s) => parse(&s),
            Err(e) => {
                eprintln!("cannot read baseline {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("\n== regression gate vs {base_path} (>{THRESHOLD_PCT:.0}% fails) ==\n");
        let cores = cores();
        let mut failures = 0;
        for (key, base) in &baseline {
            if key.starts_with("info_") {
                continue; // published for humans, machine-dependent, ungated
            }
            let Some(m) = metrics.iter().find(|m| m.key == key) else {
                eprintln!("  MISSING  {key}: in baseline but not measured");
                failures += 1;
                continue;
            };
            let base = if cores == 1 && PAR_RATIO_KEYS.contains(&key.as_str()) {
                println!(
                    "  note     {key}: single-core host, gating at 1.0 \
                     (baseline {base:.2} assumes multicore)"
                );
                &1.0
            } else {
                base
            };
            let delta_pct = if *base != 0.0 {
                (m.value - base) / base * 100.0
            } else {
                0.0
            };
            let bad = if m.higher_is_better {
                delta_pct < -THRESHOLD_PCT
            } else {
                delta_pct > THRESHOLD_PCT
            };
            if bad {
                eprintln!(
                    "  FAIL     {key}: {:.2} vs baseline {:.2} ({:+.1}%)",
                    m.value, base, delta_pct
                );
                failures += 1;
            } else {
                println!(
                    "  ok       {key}: {:.2} vs baseline {:.2} ({:+.1}%)",
                    m.value, base, delta_pct
                );
            }
        }
        // The reverse direction: a metric measured here but absent from
        // the baseline would otherwise never be gated — adding a metric
        // to collect() requires refreshing the checked-in baseline.
        for m in &metrics {
            if m.key.starts_with("info_") {
                continue;
            }
            if !baseline.iter().any(|(k, _)| k == m.key) {
                eprintln!(
                    "  UNGATED  {}: measured but missing from the baseline \
                     (run --write-baseline and commit it)",
                    m.key
                );
                failures += 1;
            }
        }
        if failures > 0 {
            eprintln!("\n{failures} metric(s) regressed beyond {THRESHOLD_PCT:.0}%");
            return ExitCode::FAILURE;
        }
        println!("\nall metrics within threshold");
    }
    ExitCode::SUCCESS
}
