//! Admission queues and queue-depth instrumentation.
//!
//! Requests the router has assigned to a container wait here until the
//! container is provably clean (§4.5: "inputs are buffered until
//! restoration completes"). The [`DepthTracker`] samples aggregate depth
//! at every scheduling event so the fleet can report queue-depth
//! percentiles — the early-warning signal the autoscaler acts on.
//!
//! Depth samples feed a fixed-size [`QuantileSketch`] rather than a
//! per-event `Vec`, so tracker memory is constant in the request count
//! (the 10⁶–10⁷-request cluster runs depend on this) and per-node
//! trackers merge exactly into cluster-wide percentiles. Depths below
//! the sketch's identity range (64) are exact order statistics.

use std::collections::VecDeque;

use gh_sim::{Nanos, QuantileSketch};

/// A request waiting in a container's admission queue.
#[derive(Clone, Debug)]
pub struct Pending {
    /// Globally unique request id (also the taint label).
    pub id: u64,
    /// The authenticated caller.
    pub principal: String,
    /// Input payload size, KiB.
    pub input_kb: u64,
    /// Virtual time the request arrived at the router.
    pub arrival: Nanos,
    /// Canonical content hash of the request payload (0 when the
    /// workload carries no payload identity). The gateway keys its
    /// result cache on `(function, payload_hash)`.
    pub payload_hash: u64,
    /// Whether the request is idempotent — only idempotent responses
    /// are eligible for result caching.
    pub idempotent: bool,
    /// Execution attempt, 1-based. Attempts above 1 are retries after a
    /// fault ([`crate::fault`]); the id stays stable across attempts so
    /// fault draws and idempotence keys follow the request, not the
    /// attempt.
    pub attempt: u32,
}

/// A FIFO admission queue in front of one container.
#[derive(Clone, Debug, Default)]
pub struct AdmissionQueue {
    items: VecDeque<Pending>,
}

impl AdmissionQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a request (router-assigned arrival order is preserved).
    pub fn push(&mut self, p: Pending) {
        self.items.push_back(p);
    }

    /// Removes the oldest waiting request.
    pub fn pop(&mut self) -> Option<Pending> {
        self.items.pop_front()
    }

    /// The oldest waiting request, without removing it — the fault
    /// layer peeks here to decide whether the next dispatch crashes.
    pub fn peek(&self) -> Option<&Pending> {
        self.items.front()
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Records aggregate queue-depth samples at scheduling events and
/// reports percentiles over them, in constant memory.
#[derive(Clone, Debug, Default)]
pub struct DepthTracker {
    sketch: QuantileSketch,
}

impl DepthTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one depth observation.
    pub fn record(&mut self, depth: usize) {
        self.sketch.record(depth as u64);
    }

    /// Number of observations taken.
    pub fn len(&self) -> usize {
        self.sketch.len() as usize
    }

    /// True when no observations were taken.
    pub fn is_empty(&self) -> bool {
        self.sketch.is_empty()
    }

    /// Depth percentile over all observations; 0 with no observations.
    /// Exact for depths below 64, within 1.6% above.
    pub fn percentile(&self, p: f64) -> f64 {
        self.sketch.quantile(p) as f64
    }

    /// Several depth percentiles at once; zeros with no observations.
    pub fn percentiles(&self, ps: &[f64]) -> Vec<f64> {
        ps.iter().map(|&p| self.percentile(p)).collect()
    }

    /// Mean observed depth (exact); 0 with no observations.
    pub fn mean(&self) -> f64 {
        self.sketch.mean()
    }

    /// Folds another tracker's observations in — exact, so per-node
    /// depth trackers merge into a cluster-wide one deterministically.
    pub fn merge(&mut self, other: &DepthTracker) {
        self.sketch.merge(&other.sketch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(id: u64, at: u64) -> Pending {
        Pending {
            id,
            principal: "p".into(),
            input_kb: 1,
            arrival: Nanos::from_millis(at),
            payload_hash: 0,
            idempotent: false,
            attempt: 1,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = AdmissionQueue::new();
        q.push(pending(1, 0));
        q.push(pending(2, 1));
        q.push(pending(3, 2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek().unwrap().id, 1, "peek does not consume");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert_eq!(q.pop().unwrap().id, 3);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn depth_percentiles() {
        let mut d = DepthTracker::new();
        for depth in [0usize, 0, 1, 2, 4, 8] {
            d.record(depth);
        }
        assert_eq!(d.len(), 6);
        assert_eq!(d.percentile(100.0), 8.0);
        assert!(d.percentile(50.0) <= 2.0);
        assert!((d.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_single_tracker() {
        let mut a = DepthTracker::new();
        let mut b = DepthTracker::new();
        let mut whole = DepthTracker::new();
        for depth in [0usize, 3, 7, 1] {
            a.record(depth);
            whole.record(depth);
        }
        for depth in [2usize, 2, 9] {
            b.record(depth);
            whole.record(depth);
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        assert_eq!(a.percentile(50.0), whole.percentile(50.0));
        assert_eq!(a.percentile(99.0), whole.percentile(99.0));
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let d = DepthTracker::new();
        assert!(d.is_empty());
        assert_eq!(d.percentile(99.0), 0.0);
        assert_eq!(d.mean(), 0.0);
    }
}
