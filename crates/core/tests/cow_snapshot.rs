//! §5.5's copy-on-write snapshot variant: manager memory proportional to
//! the modified working set, one extra on-critical-path CoW fault per
//! unique modified page, identical restore correctness.

use gh_mem::{Perms, RequestId, Taint, Touch, VmaKind, Vpn};
use gh_proc::Kernel;
use groundhog_core::restore::verify_matches_snapshot;
use groundhog_core::{GroundhogConfig, Manager};

const PAGES: u64 = 64;

fn rig(cow: bool) -> (Kernel, Manager, Vpn) {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("f");
    let start = kernel
        .run_charged(pid, |p, frames| {
            let r = p.mem.mmap(PAGES, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(0xC0C0), Taint::Clean, frames)
                    .unwrap();
            }
            r.start
        })
        .unwrap()
        .0;
    let cfg = GroundhogConfig {
        cow_snapshot: cow,
        ..GroundhogConfig::gh()
    };
    let mut mgr = Manager::new(pid, cfg);
    mgr.snapshot_now(&mut kernel).unwrap();
    (kernel, mgr, start)
}

fn run_request(kernel: &mut Kernel, mgr: &mut Manager, start: Vpn, req: u64, writes: u64) {
    mgr.begin_request(kernel, "caller").unwrap();
    let pid = mgr.pid();
    kernel
        .run_charged(pid, |p, frames| {
            for i in 0..writes {
                p.mem
                    .touch(
                        Vpn(start.0 + i),
                        Touch::WriteWord(req * 1000 + i),
                        Taint::One(RequestId(req)),
                        frames,
                    )
                    .unwrap();
            }
        })
        .unwrap();
    mgr.end_request(kernel).unwrap();
}

#[test]
fn cow_snapshot_memory_is_proportional_to_references_not_pages() {
    let (_, eager, _) = rig(false);
    let (_, cow, _) = rig(true);
    let eager_bytes = eager.snapshot().unwrap().memory_bytes();
    let cow_bytes = cow.snapshot().unwrap().memory_bytes();
    assert!(eager_bytes >= PAGES * 4096);
    assert!(
        cow_bytes < eager_bytes / 50,
        "CoW snapshot {cow_bytes}B vs eager {eager_bytes}B"
    );
}

#[test]
fn cow_snapshot_is_cheaper_to_take() {
    let (_, eager, _) = rig(false);
    let (_, cow, _) = rig(true);
    let e = eager.stats.snapshot.unwrap().duration;
    let c = cow.stats.snapshot.unwrap().duration;
    assert!(c < e, "CoW snapshot {c} must beat eager {e}");
}

#[test]
fn cow_snapshot_restores_bit_exactly() {
    let (mut kernel, mut mgr, start) = rig(true);
    let snapshot = mgr.snapshot().unwrap().clone();
    for req in 1..=4 {
        run_request(&mut kernel, &mut mgr, start, req, 16);
        verify_matches_snapshot(&kernel, mgr.pid(), &snapshot)
            .unwrap_or_else(|e| panic!("request {req}: {e}"));
        let proc = kernel.process(mgr.pid()).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(req), kernel.frames())
            .is_empty());
    }
}

#[test]
fn cow_faults_fire_once_per_unique_page() {
    // §5.5: "a one-time on-critical-path copy-on-write per unique
    // modified page in the function's life-cycle".
    let (mut kernel, mut mgr, start) = rig(true);
    kernel.take_fault_accum();
    run_request(&mut kernel, &mut mgr, start, 1, 16);
    let first = kernel.take_fault_accum();
    assert_eq!(first.cow, 16, "first touches CoW-copy");

    // The same pages again: the process's frames are already private
    // (restore rewrote them in place), so no further CoW faults.
    run_request(&mut kernel, &mut mgr, start, 2, 16);
    let second = kernel.take_fault_accum();
    assert_eq!(second.cow, 0, "one-time cost only");
    assert_eq!(second.sd_wp, 16, "normal tracking faults remain");
}

#[test]
fn eager_snapshot_never_cow_faults() {
    let (mut kernel, mut mgr, start) = rig(false);
    kernel.take_fault_accum();
    run_request(&mut kernel, &mut mgr, start, 1, 16);
    let faults = kernel.take_fault_accum();
    assert_eq!(faults.cow, 0);
    assert_eq!(faults.sd_wp, 16);
}

#[test]
fn cow_snapshot_release_frees_references() {
    let (mut kernel, mut mgr, start) = rig(true);
    run_request(&mut kernel, &mut mgr, start, 1, 8);
    let pid = mgr.pid();
    // Clones of a CoW snapshot share the same (non-owning) references;
    // exactly one holder may release them.
    let mut snapshot = mgr.snapshot().unwrap().clone();
    // Kill the process: its own frames go away...
    let (proc, frames) = kernel.mem_ctx(pid).unwrap();
    proc.mem.release_all(frames);
    assert!(
        kernel.frames().live() > 0,
        "the manager's CoW snapshot still pins the clean-state frames"
    );
    // ...and releasing the snapshot references frees the rest.
    {
        let (_, frames) = kernel.mem_ctx(pid).unwrap();
        snapshot.release(frames);
    }
    assert_eq!(kernel.frames().live(), 0, "no frame leaks after release");
}
