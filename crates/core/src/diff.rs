//! Diffing memory layouts between snapshot and post-activation state
//! (§4.4: "identifies all changes to the memory layout by consulting
//! /proc/pid/maps and pagemap (e.g. grown, shrunk, merged, split,
//! deleted, new memory regions)").
//!
//! The diff is computed with a boundary sweep over the two VMA lists and
//! compiled into the syscall plan the restorer injects via ptrace.

use gh_mem::{PageRange, Perms, Vma, VmaKind, Vpn};
use gh_proc::Syscall;

/// A region to re-create, with its snapshot-time attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemapRegion {
    /// Pages to map.
    pub range: PageRange,
    /// Snapshot-time permissions.
    pub perms: Perms,
    /// Snapshot-time backing.
    pub kind: VmaKind,
}

/// The layout delta between snapshot and current state.
#[derive(Clone, Debug, Default)]
pub struct LayoutDiff {
    /// Regions mapped now but absent from the snapshot → `munmap`.
    pub to_munmap: Vec<PageRange>,
    /// Regions in the snapshot but unmapped now → `mmap(MAP_FIXED)`.
    pub to_remap: Vec<RemapRegion>,
    /// Regions whose permissions changed → `mprotect` back.
    pub to_mprotect: Vec<(PageRange, Perms)>,
    /// `(current, snapshot)` program break, when they differ → `brk`.
    pub brk: Option<(Vpn, Vpn)>,
}

/// One side's attributes over an elementary interval.
type Attrs = (Perms, VmaKind);

/// Flattens a VMA list (minus the heap, which `brk` owns) into sorted
/// disjoint `(range, attrs)` segments.
fn segments(vmas: &[Vma]) -> Vec<(PageRange, Attrs)> {
    let mut v: Vec<(PageRange, Attrs)> = vmas
        .iter()
        .filter(|m| !matches!(m.kind, VmaKind::Heap))
        .map(|m| (m.range, (m.perms, m.kind.clone())))
        .collect();
    v.sort_by_key(|(r, _)| r.start.0);
    v
}

/// Attribute lookup at a point, advancing a cursor over sorted segments.
fn attrs_at(segs: &[(PageRange, Attrs)], cursor: &mut usize, page: Vpn) -> Option<Attrs> {
    while *cursor < segs.len() && segs[*cursor].0.end.0 <= page.0 {
        *cursor += 1;
    }
    segs.get(*cursor)
        .filter(|(r, _)| r.contains(page))
        .map(|(_, a)| a.clone())
}

impl LayoutDiff {
    /// Computes the delta from `current` back to the snapshot layout.
    pub fn compute(snap_vmas: &[Vma], snap_brk: Vpn, cur_vmas: &[Vma], cur_brk: Vpn) -> LayoutDiff {
        let snap = segments(snap_vmas);
        let cur = segments(cur_vmas);

        // Boundary sweep.
        let mut bounds: Vec<u64> = snap
            .iter()
            .chain(cur.iter())
            .flat_map(|(r, _)| [r.start.0, r.end.0])
            .collect();
        bounds.sort_unstable();
        bounds.dedup();

        let mut diff = LayoutDiff::default();
        let (mut ci, mut si) = (0usize, 0usize);
        for w in bounds.windows(2) {
            let range = PageRange::new(Vpn(w[0]), Vpn(w[1]));
            if range.is_empty() {
                continue;
            }
            let s = attrs_at(&snap, &mut si, range.start);
            let c = attrs_at(&cur, &mut ci, range.start);
            match (s, c) {
                (None, None) => {}
                (None, Some(_)) => push_coalesced(&mut diff.to_munmap, range),
                (Some((perms, kind)), None) => {
                    push_remap(&mut diff.to_remap, RemapRegion { range, perms, kind })
                }
                (Some((sp, _)), Some((cp, _))) => {
                    if sp != cp {
                        push_protect(&mut diff.to_mprotect, range, sp);
                    }
                }
            }
        }

        if snap_brk != cur_brk {
            diff.brk = Some((cur_brk, snap_brk));
        }
        diff
    }

    /// True when the layout is unchanged.
    pub fn is_empty(&self) -> bool {
        self.to_munmap.is_empty()
            && self.to_remap.is_empty()
            && self.to_mprotect.is_empty()
            && self.brk.is_none()
    }

    /// Compiles the delta into the syscall injection plan, in the §4.4
    /// order: restore `brk`, remove added regions, remap removed regions,
    /// restore protections.
    pub fn plan(&self) -> Vec<Syscall> {
        let mut plan = Vec::new();
        if let Some((_cur, snap)) = self.brk {
            plan.push(Syscall::Brk(snap));
        }
        for r in &self.to_munmap {
            plan.push(Syscall::Munmap(*r));
        }
        for r in &self.to_remap {
            let file = match &r.kind {
                VmaKind::File(name) => Some(name.clone()),
                _ => None,
            };
            plan.push(Syscall::MmapFixed {
                range: r.range,
                perms: r.perms,
                file,
            });
        }
        for (range, perms) in &self.to_mprotect {
            plan.push(Syscall::Mprotect(*range, *perms));
        }
        plan
    }

    /// Total number of syscalls the plan will inject.
    pub fn syscall_count(&self) -> usize {
        self.to_munmap.len()
            + self.to_remap.len()
            + self.to_mprotect.len()
            + usize::from(self.brk.is_some())
    }
}

fn push_coalesced(v: &mut Vec<PageRange>, r: PageRange) {
    if let Some(last) = v.last_mut() {
        if last.end == r.start {
            last.end = r.end;
            return;
        }
    }
    v.push(r);
}

fn push_remap(v: &mut Vec<RemapRegion>, r: RemapRegion) {
    if let Some(last) = v.last_mut() {
        if last.range.end == r.range.start && last.perms == r.perms && last.kind == r.kind {
            last.range.end = r.range.end;
            return;
        }
    }
    v.push(r);
}

fn push_protect(v: &mut Vec<(PageRange, Perms)>, r: PageRange, p: Perms) {
    if let Some((last, lp)) = v.last_mut() {
        if last.end == r.start && *lp == p {
            last.end = r.end;
            return;
        }
    }
    v.push((r, p));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma(start: u64, len: u64, perms: Perms, kind: VmaKind) -> Vma {
        Vma::new(PageRange::at(Vpn(start), len), perms, kind)
    }

    fn anon(start: u64, len: u64) -> Vma {
        vma(start, len, Perms::RW, VmaKind::Anon)
    }

    #[test]
    fn identical_layouts_diff_empty() {
        let vs = vec![
            anon(100, 10),
            vma(200, 5, Perms::RX, VmaKind::File("x".into())),
        ];
        let d = LayoutDiff::compute(&vs, Vpn(50), &vs, Vpn(50));
        assert!(d.is_empty());
        assert!(d.plan().is_empty());
        assert_eq!(d.syscall_count(), 0);
    }

    #[test]
    fn added_region_is_munmapped() {
        let snap = vec![anon(100, 10)];
        let cur = vec![anon(100, 10), anon(300, 4)];
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        assert_eq!(d.to_munmap, vec![PageRange::at(Vpn(300), 4)]);
        assert!(d.to_remap.is_empty());
        assert_eq!(d.plan(), vec![Syscall::Munmap(PageRange::at(Vpn(300), 4))]);
    }

    #[test]
    fn removed_region_is_remapped_with_attrs() {
        let snap = vec![
            anon(100, 10),
            vma(200, 6, Perms::RX, VmaKind::File("lib".into())),
        ];
        let cur = vec![anon(100, 10)];
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        assert_eq!(d.to_remap.len(), 1);
        let r = &d.to_remap[0];
        assert_eq!(r.range, PageRange::at(Vpn(200), 6));
        assert_eq!(r.perms, Perms::RX);
        assert_eq!(r.kind, VmaKind::File("lib".into()));
        match &d.plan()[0] {
            Syscall::MmapFixed { range, perms, file } => {
                assert_eq!(*range, PageRange::at(Vpn(200), 6));
                assert_eq!(*perms, Perms::RX);
                assert_eq!(file.as_deref(), Some("lib"));
            }
            other => panic!("expected mmap, got {other:?}"),
        }
    }

    #[test]
    fn grown_region_unmaps_only_the_growth() {
        let snap = vec![anon(100, 10)];
        let cur = vec![anon(100, 16)]; // grew by 6 pages
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        assert_eq!(d.to_munmap, vec![PageRange::at(Vpn(110), 6)]);
        assert!(d.to_remap.is_empty());
    }

    #[test]
    fn shrunk_region_remaps_only_the_loss() {
        let snap = vec![anon(100, 16)];
        let cur = vec![anon(100, 10)];
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        assert_eq!(d.to_remap.len(), 1);
        assert_eq!(d.to_remap[0].range, PageRange::at(Vpn(110), 6));
    }

    #[test]
    fn split_region_remaps_the_hole() {
        let snap = vec![anon(100, 10)];
        // Middle two pages were munmapped by the function.
        let cur = vec![anon(100, 4), anon(106, 4)];
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        assert_eq!(d.to_remap.len(), 1);
        assert_eq!(d.to_remap[0].range, PageRange::at(Vpn(104), 2));
        assert!(d.to_munmap.is_empty());
    }

    #[test]
    fn merged_regions_are_equivalent_not_diffed() {
        // Two adjacent anon VMAs merging into one is not a semantic change.
        let snap = vec![anon(100, 4), anon(104, 4)];
        let cur = vec![anon(100, 8)];
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn perm_change_restores_protection() {
        let snap = vec![anon(100, 8)];
        let mut cur_vma = anon(100, 8);
        cur_vma.perms = Perms::R;
        let d = LayoutDiff::compute(&snap, Vpn(50), &[cur_vma], Vpn(50));
        assert_eq!(d.to_mprotect, vec![(PageRange::at(Vpn(100), 8), Perms::RW)]);
        assert_eq!(
            d.plan(),
            vec![Syscall::Mprotect(PageRange::at(Vpn(100), 8), Perms::RW)]
        );
    }

    #[test]
    fn partial_perm_change_is_ranged() {
        let snap = vec![anon(100, 8)];
        let cur = vec![
            anon(100, 2),
            vma(102, 3, Perms::R, VmaKind::Anon),
            anon(105, 3),
        ];
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        assert_eq!(d.to_mprotect, vec![(PageRange::at(Vpn(102), 3), Perms::RW)]);
    }

    #[test]
    fn brk_restored_first() {
        let snap = vec![anon(100, 4)];
        let cur = vec![anon(100, 4), anon(300, 2)];
        let d = LayoutDiff::compute(&snap, Vpn(60), &cur, Vpn(80));
        assert_eq!(d.brk, Some((Vpn(80), Vpn(60))));
        let plan = d.plan();
        assert_eq!(plan[0], Syscall::Brk(Vpn(60)));
        assert_eq!(plan.len(), 2);
        assert_eq!(d.syscall_count(), 2);
    }

    #[test]
    fn heap_vmas_are_excluded_from_mapping_plan() {
        // The heap is restored via brk, not munmap/mmap.
        let snap = vec![vma(50, 10, Perms::RW, VmaKind::Heap)];
        let cur = vec![vma(50, 30, Perms::RW, VmaKind::Heap)];
        let d = LayoutDiff::compute(&snap, Vpn(60), &cur, Vpn(80));
        assert!(d.to_munmap.is_empty());
        assert!(d.to_remap.is_empty());
        assert_eq!(d.brk, Some((Vpn(80), Vpn(60))));
    }

    #[test]
    fn adjacent_changes_coalesce_into_single_syscalls() {
        let snap = vec![anon(100, 4)];
        // Two adjacent added regions with different kinds cannot merge in
        // the VMA list but coalesce into one munmap range.
        let cur = vec![
            anon(100, 4),
            anon(200, 4),
            vma(204, 4, Perms::R, VmaKind::Anon),
        ];
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        assert_eq!(d.to_munmap, vec![PageRange::at(Vpn(200), 8)]);
    }

    #[test]
    fn complex_churn_round_trips() {
        // Snapshot: three regions. Current: one grew, one vanished, a new
        // one appeared, perms flipped on part of the third.
        let snap = vec![
            anon(100, 10),
            vma(200, 8, Perms::RX, VmaKind::File("lib".into())),
            anon(400, 6),
        ];
        let cur = vec![
            anon(100, 14),                        // grew
            vma(400, 3, Perms::R, VmaKind::Anon), // shrank + perms changed
            anon(600, 5),                         // new
        ];
        let d = LayoutDiff::compute(&snap, Vpn(50), &cur, Vpn(50));
        // Growth + new region unmapped.
        assert!(d.to_munmap.contains(&PageRange::at(Vpn(110), 4)));
        assert!(d.to_munmap.contains(&PageRange::at(Vpn(600), 5)));
        // Vanished file region + shrunk tail remapped.
        assert!(d
            .to_remap
            .iter()
            .any(|r| r.range == PageRange::at(Vpn(200), 8)));
        assert!(d
            .to_remap
            .iter()
            .any(|r| r.range == PageRange::at(Vpn(403), 3)));
        // Perms restored on the surviving overlap.
        assert_eq!(d.to_mprotect, vec![(PageRange::at(Vpn(400), 3), Perms::RW)]);
    }
}
