//! Restoring the function process to its snapshot (§4.4).
//!
//! "The manager identifies all changes to the memory layout by consulting
//! /proc/pid/maps and pagemap; these changes are later reversed by
//! injecting syscalls using ptrace. The manager restores brk, removes
//! added memory regions, remaps removed memory regions, zeroes the stack,
//! restores memory contents of pages that have their SD-bit set, restores
//! registers of all threads, madvises newly paged pages, and finally
//! resets SD-bits."
//!
//! The restore is a two-stage pipeline:
//!
//! ```text
//!  attach ─ interrupt ─ read maps ─ scan ─ diff          (collection)
//!     └──▶ RestorePlanner::build ──▶ RestorePlan         (crate::plan)
//!             └──▶ execute_plan: LayoutFixup → Madvise → StackZero
//!                  → PageWriteback (N copy lanes) → TrackerRearm
//!                  → RegsReset                           (this module)
//!                      └──▶ detach ──▶ RestoreReport + Breakdown
//! ```
//!
//! Every pass is timed against the virtual clock into the Fig. 8
//! [`Breakdown`]. With `restore_lanes = 1` the executor charges exactly
//! what the paper's serial implementation would — the breakdown and
//! report are bit-for-bit identical to the pre-pipeline monolith (pinned
//! by `tests/prop_plan.rs`). With more lanes, only the page-writeback
//! pass parallelizes; the ptrace-serialized passes stay serial.

use gh_mem::Taint;
use gh_proc::{Kernel, Pid, PtraceSession};
use gh_sim::clock::Stopwatch;
use gh_sim::Nanos;

use crate::breakdown::{Breakdown, RestorePhase};
use crate::config::GroundhogConfig;
use crate::error::GhError;
use crate::plan::{RestorePass, RestorePlan, RestorePlanner};
use crate::snapshot::Snapshot;
use crate::track::MemoryTracker;

/// Outcome of one restore operation.
#[derive(Clone, Debug)]
pub struct RestoreReport {
    /// Per-phase timing (Fig. 8).
    pub breakdown: Breakdown,
    /// Total restore duration.
    pub total: Nanos,
    /// Dirty pages the tracker reported.
    pub dirty_pages: u64,
    /// Pages whose contents were written back from the snapshot.
    pub pages_restored: u64,
    /// Pages armed for on-demand fault-in instead of written back (lazy
    /// restore mode; zero under eager restoration).
    pub pages_deferred: u64,
    /// Contiguous runs those pages formed (coalescing units).
    pub runs: u64,
    /// Pages evicted because they became resident after the snapshot.
    pub newly_paged: u64,
    /// Stack pages zeroed.
    pub stack_zeroed: u64,
    /// Syscalls injected for layout restoration.
    pub syscalls_injected: usize,
}

/// The restore engine: plans, then executes.
pub struct Restorer;

impl Restorer {
    /// Rolls `pid` back to `snapshot`, leaving tracking armed for the next
    /// request. Runs entirely *between* activations (the caller — the
    /// manager — guarantees no request is executing).
    pub fn restore(
        kernel: &mut Kernel,
        pid: Pid,
        snapshot: &Snapshot,
        tracker: &mut dyn MemoryTracker,
        cfg: &GroundhogConfig,
    ) -> Result<RestoreReport, GhError> {
        let mut bd = Breakdown::new();
        let mut sw = Stopwatch::start(&kernel.clock);
        let mut s = PtraceSession::attach(kernel, pid)?;

        // Collection: interrupt all threads, read /proc/pid/maps, scan
        // page metadata (tracker-dependent), diff the memory layouts.
        s.interrupt_all()?;
        bd.add(RestorePhase::Interrupting, sw.lap());

        let cur_maps = s.read_maps()?;
        bd.add(RestorePhase::ReadingMaps, sw.lap());

        let dirty_report = tracker.collect(&mut s)?;
        bd.add(RestorePhase::ScanningPageMetadata, sw.lap());

        let cur_brk = s.kernel().process(pid)?.mem.brk();
        let diff =
            crate::diff::LayoutDiff::compute(&snapshot.vmas, snapshot.brk, &cur_maps, cur_brk);
        let diff_cost = s
            .kernel()
            .cost
            .diff_cost(cur_maps.len() + snapshot.vmas.len());
        s.kernel().charge(diff_cost);
        bd.add(RestorePhase::DiffingMemoryLayouts, sw.lap());

        // Plan (pure), then execute pass by pass.
        let plan = RestorePlanner::build(snapshot, &dirty_report, &diff, cfg);
        Self::execute_plan(&mut s, &plan, snapshot, tracker, &mut bd, &mut sw)?;

        s.detach()?;
        bd.add(RestorePhase::Detaching, sw.lap());

        let total = bd.total();
        Ok(RestoreReport {
            breakdown: bd,
            total,
            dirty_pages: plan.dirty_pages,
            pages_restored: plan.pages_restored,
            pages_deferred: plan.pages_deferred,
            runs: plan.runs,
            newly_paged: plan.newly_paged,
            stack_zeroed: plan.stack_zeroed,
            syscalls_injected: plan.syscalls_injected,
        })
    }

    /// Runs every pass of `plan` under the virtual-clock cost model,
    /// attributing each pass to its Fig. 8 phase.
    fn execute_plan(
        s: &mut PtraceSession<'_>,
        plan: &RestorePlan,
        snapshot: &Snapshot,
        tracker: &mut dyn MemoryTracker,
        bd: &mut Breakdown,
        sw: &mut Stopwatch,
    ) -> Result<(), GhError> {
        for pass in &plan.passes {
            match pass {
                RestorePass::LayoutFixup { batches } => {
                    // Batched injection: one trap round per syscall
                    // (charged inside `inject`), one breakdown lap per
                    // class batch.
                    for batch in batches {
                        for sc in &batch.calls {
                            s.inject(sc.clone())?;
                        }
                        bd.add(batch.phase, sw.lap());
                    }
                }
                RestorePass::Madvise { evict } => {
                    for range in evict {
                        for vpn in range.iter() {
                            s.evict_page(vpn)?;
                        }
                    }
                    let pages: u64 = evict.iter().map(|r| r.len()).sum();
                    let cost = s.kernel().cost.syscall_inject * evict.len() as u64
                        + s.kernel().cost.madvise_new_page * pages;
                    s.kernel().charge(cost);
                    bd.add(RestorePhase::Madvise, sw.lap());
                }
                RestorePass::StackZero { pages } => {
                    for &vpn in pages {
                        s.zero_page(vpn)?;
                    }
                    // Stack zeroing is charged into the memory-restoration
                    // phase: no lap here, the writeback pass's lap absorbs
                    // it.
                    let cost = s.kernel().cost.zero_stack_page * pages.len() as u64;
                    s.kernel().charge(cost);
                }
                RestorePass::PageWriteback { lanes, coalesce } => {
                    // One scratch buffer reused across every run of every
                    // lane: no per-run Vec churn, one store lock per
                    // coalesced run — and the whole run lands through one
                    // batched `write_run` (one page-table walk per run)
                    // instead of a probe-and-splice per page.
                    let mut scratch: Vec<gh_mem::FrameData> = Vec::new();
                    for lane in lanes {
                        for run in &lane.runs {
                            snapshot.run_data_into(*run, s.kernel().frames(), &mut scratch);
                            s.write_run(*run, &scratch, Taint::Clean)?;
                        }
                    }
                    let lane_costs: Vec<(u64, u64)> = lanes
                        .iter()
                        .map(|l| (l.pages(), l.runs.len() as u64))
                        .collect();
                    let cost = s.kernel().cost.restore_lanes_cost(&lane_costs, *coalesce);
                    s.kernel().charge(cost);
                    bd.add(RestorePhase::RestoringMemory, sw.lap());
                }
                RestorePass::DeferArm { runs } => {
                    // Lazy mode: register the restore set with the fault
                    // handler instead of copying it. Charged like the
                    // ioctl walk it models; attributed to the same Fig. 8
                    // phase the writeback would have filled, so
                    // eager-vs-lazy comparisons read off one column.
                    let set = snapshot.lazy_sources(runs, s.kernel().frames());
                    s.arm_lazy(set)?;
                    let pages: u64 = runs.iter().map(|r| r.len()).sum();
                    let cost = s.kernel().cost.defer_arm_cost(pages, runs.len() as u64);
                    s.kernel().charge(cost);
                    bd.add(RestorePhase::RestoringMemory, sw.lap());
                }
                RestorePass::TrackerRearm => {
                    tracker.arm(s)?;
                    bd.add(RestorePhase::ClearingSoftDirtyBits, sw.lap());
                }
                RestorePass::RegsReset => {
                    s.restore_regs_all(&snapshot.regs)?;
                    bd.add(RestorePhase::RestoringRegisters, sw.lap());
                }
            }
        }
        Ok(())
    }
}

/// Verifies (for tests and debugging) that a process state matches a
/// snapshot bit-exactly: layout, brk, page contents, registers.
pub fn verify_matches_snapshot(
    kernel: &Kernel,
    pid: Pid,
    snapshot: &Snapshot,
) -> Result<(), String> {
    let proc = kernel.process(pid).map_err(|e| e.to_string())?;
    // Layout.
    let cur = proc.mem.maps();
    let d = crate::diff::LayoutDiff::compute(&snapshot.vmas, snapshot.brk, &cur, proc.mem.brk());
    if !d.is_empty() {
        return Err(format!("layout differs: {d:?}"));
    }
    // Registers.
    for (tid, regs) in &snapshot.regs {
        let t = proc
            .thread(*tid)
            .ok_or_else(|| format!("thread {tid:?} missing"))?;
        if &t.regs != regs {
            return Err(format!("registers of {tid:?} differ"));
        }
    }
    // Page contents: every snapshot page must be present-or-restorable
    // with identical logical contents; pages absent from the snapshot must
    // not be resident (modulo the stack, which is zeroed instead).
    let stacks = snapshot.stack_ranges();
    for (vpn, pte) in proc.mem.pagemap() {
        let data = kernel.frames().data(pte.frame);
        match snapshot.page_data(vpn, kernel.frames()) {
            Some(saved) => {
                if !saved.logical_eq(data) {
                    return Err(format!("contents of {vpn:?} differ from snapshot"));
                }
            }
            None => {
                let zero = gh_mem::FrameData::Zero;
                if stacks.iter().any(|r| r.contains(vpn)) {
                    if !data.logical_eq(&zero) {
                        return Err(format!("stack page {vpn:?} not zeroed"));
                    }
                } else {
                    return Err(format!("page {vpn:?} resident but not in snapshot"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrackerKind;
    use crate::snapshot::Snapshotter;
    use crate::track::make_tracker;
    use gh_mem::{PageRange, Perms, RequestId, Taint, Touch, VmaKind, Vpn};

    struct Rig {
        kernel: Kernel,
        pid: Pid,
        snapshot: Snapshot,
        tracker: Box<dyn MemoryTracker>,
        region: PageRange,
        cfg: GroundhogConfig,
    }

    fn rig_with(kind: TrackerKind, pages: u64) -> Rig {
        let mut kernel = Kernel::boot();
        let pid = kernel.spawn("f");
        let region = kernel
            .run_charged(pid, |p, frames| {
                let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
                for vpn in r.iter() {
                    p.mem
                        .touch(vpn, Touch::WriteWord(0x5EED), Taint::Clean, frames)
                        .unwrap();
                }
                r
            })
            .unwrap()
            .0;
        let mut tracker = make_tracker(kind);
        let (snapshot, _) = Snapshotter::take(&mut kernel, pid, tracker.as_mut()).unwrap();
        Rig {
            kernel,
            pid,
            snapshot,
            tracker,
            region,
            cfg: GroundhogConfig::gh(),
        }
    }

    fn rig() -> Rig {
        rig_with(TrackerKind::SoftDirty, 32)
    }

    fn taint_writes(rig: &mut Rig, offsets: &[u64], req: u64) {
        let region = rig.region;
        rig.kernel
            .run_charged(rig.pid, |p, frames| {
                for &off in offsets {
                    p.mem
                        .touch(
                            Vpn(region.start.0 + off),
                            Touch::WriteWord(0xDEAD_0000 | off),
                            Taint::One(RequestId(req)),
                            frames,
                        )
                        .unwrap();
                }
            })
            .unwrap();
    }

    fn restore(rig: &mut Rig) -> RestoreReport {
        Restorer::restore(
            &mut rig.kernel,
            rig.pid,
            &rig.snapshot,
            rig.tracker.as_mut(),
            &rig.cfg,
        )
        .unwrap()
    }

    #[test]
    fn restore_reverts_contents_exactly() {
        let mut r = rig();
        taint_writes(&mut r, &[1, 5, 9], 1);
        let report = restore(&mut r);
        assert_eq!(report.dirty_pages, 3);
        assert_eq!(report.pages_restored, 3);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        // No taint survives.
        let proc = r.kernel.process(r.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(1), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn restore_is_idempotent() {
        let mut r = rig();
        taint_writes(&mut r, &[0, 2], 1);
        restore(&mut r);
        let second = restore(&mut r);
        assert_eq!(second.dirty_pages, 0);
        assert_eq!(second.pages_restored, 0);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
    }

    #[test]
    fn repeated_request_restore_cycles() {
        let mut r = rig();
        for round in 0..5u64 {
            taint_writes(&mut r, &[round, round + 7, round + 13], round);
            let report = restore(&mut r);
            assert_eq!(report.dirty_pages, 3, "round {round}");
            verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        }
    }

    #[test]
    fn registers_are_restored() {
        let mut r = rig();
        r.kernel
            .process_mut(r.pid)
            .unwrap()
            .main_thread_mut()
            .regs
            .scramble(1234, Taint::One(RequestId(8)));
        restore(&mut r);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        let regs = &r.kernel.process(r.pid).unwrap().main_thread().regs;
        assert_eq!(regs.taint, Taint::Clean);
    }

    #[test]
    fn layout_churn_is_reversed() {
        let mut r = rig();
        // Function mmaps two regions, munmaps part of the original, moves brk.
        let heap_base = r.kernel.process(r.pid).unwrap().mem.config().heap_base;
        let region = r.region;
        r.kernel
            .run_charged(r.pid, |p, frames| {
                let a = p.mem.mmap(8, Perms::RW, VmaKind::Anon).unwrap();
                p.mem
                    .touch(
                        a.start,
                        Touch::WriteWord(1),
                        Taint::One(RequestId(1)),
                        frames,
                    )
                    .unwrap();
                p.mem
                    .munmap(PageRange::at(Vpn(region.start.0 + 4), 2), frames)
                    .unwrap();
                p.mem.set_brk(Vpn(heap_base.0 + 40), frames).unwrap();
                p.mem
                    .touch(
                        Vpn(heap_base.0 + 10),
                        Touch::WriteWord(2),
                        Taint::One(RequestId(1)),
                        frames,
                    )
                    .unwrap();
            })
            .unwrap();
        let report = restore(&mut r);
        assert!(
            report.syscalls_injected >= 3,
            "brk + munmap + mmap at least"
        );
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        assert!(r
            .kernel
            .process(r.pid)
            .unwrap()
            .mem
            .tainted_pages(RequestId(1), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn madvised_pages_are_rewritten() {
        // A function that drops snapshot pages (madvise) must get the
        // snapshot contents back, even though those pages are not dirty.
        let mut r = rig();
        let region = r.region;
        r.kernel
            .run_charged(r.pid, |p, frames| {
                p.mem
                    .madvise_dontneed(PageRange::at(Vpn(region.start.0 + 3), 2), frames)
                    .unwrap();
            })
            .unwrap();
        let report = restore(&mut r);
        assert!(report.pages_restored >= 2, "dropped pages rewritten");
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
    }

    #[test]
    fn newly_paged_pages_are_madvised_away() {
        let mut r = rig();
        // Map extra space before snapshot? No: make the *function* read
        // pages of a region that existed but was never resident.
        let extra = r
            .kernel
            .run_charged(r.pid, |p, _| {
                p.mem.mmap(16, Perms::RW, VmaKind::Anon).unwrap()
            })
            .unwrap()
            .0;
        // Re-snapshot with the new layout but nothing resident there.
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snapshot, _) = Snapshotter::take(&mut r.kernel, r.pid, tracker.as_mut()).unwrap();
        r.snapshot = snapshot;
        r.tracker = tracker;
        // Function reads (pages in) some of the extra region.
        r.kernel
            .run_charged(r.pid, |p, frames| {
                for vpn in extra.iter().take(5) {
                    p.mem.touch(vpn, Touch::Read, Taint::Clean, frames).unwrap();
                }
            })
            .unwrap();
        let report = restore(&mut r);
        assert_eq!(report.newly_paged, 5);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        // The pages are genuinely non-resident again.
        let present = r.kernel.process(r.pid).unwrap().mem.present_pages();
        assert_eq!(present, r.snapshot.present_pages());
    }

    #[test]
    fn stack_pages_are_zeroed() {
        let mut r = rig();
        let stack = r.snapshot.stack_ranges()[0];
        // Dirty a stack page that was not resident at snapshot time.
        r.kernel
            .run_charged(r.pid, |p, frames| {
                p.mem
                    .touch(
                        stack.start,
                        Touch::WriteWord(0x5EC2E7),
                        Taint::One(RequestId(2)),
                        frames,
                    )
                    .unwrap();
            })
            .unwrap();
        let report = restore(&mut r);
        assert_eq!(report.stack_zeroed, 1);
        verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot).unwrap();
        let proc = r.kernel.process(r.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(2), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn uffd_backend_restores_too() {
        let mut r = rig_with(TrackerKind::Uffd, 32);
        taint_writes(&mut r, &[2, 4, 6], 5);
        let report = restore(&mut r);
        assert_eq!(report.dirty_pages, 3);
        // UFFD cannot see newly-paged pages, but contents must match for
        // everything it can see.
        let proc = r.kernel.process(r.pid).unwrap();
        assert!(proc
            .mem
            .tainted_pages(RequestId(5), r.kernel.frames())
            .is_empty());
    }

    #[test]
    fn coalescing_reduces_charged_time() {
        // Dense contiguous write set: coalesced restore must be cheaper
        // than the uncoalesced ablation.
        let offsets: Vec<u64> = (0..24).collect();

        let mut a = rig();
        taint_writes(&mut a, &offsets, 1);
        let t = restore(&mut a);
        assert_eq!(t.runs, 1, "contiguous set is one run");

        let mut b = rig();
        b.cfg.coalesce = false;
        taint_writes(&mut b, &offsets, 1);
        let u = restore(&mut b);

        let coalesced = t.breakdown.get(RestorePhase::RestoringMemory);
        let scattered = u.breakdown.get(RestorePhase::RestoringMemory);
        assert!(
            coalesced < scattered,
            "coalesced {coalesced} !< uncoalesced {scattered}"
        );
    }

    #[test]
    fn more_lanes_cut_writeback_time() {
        // The same dense write set restored on 1 vs 4 copy lanes: the
        // parallel writeback must be strictly faster, and everything else
        // identical.
        let offsets: Vec<u64> = (0..24).collect();

        let mut serial = rig();
        taint_writes(&mut serial, &offsets, 1);
        let one = restore(&mut serial);

        let mut wide = rig();
        wide.cfg.restore_lanes = 4;
        taint_writes(&mut wide, &offsets, 1);
        let four = restore(&mut wide);

        assert_eq!(one.pages_restored, four.pages_restored);
        assert_eq!(one.runs, four.runs, "report runs are pre-split");
        assert!(
            four.breakdown.get(RestorePhase::RestoringMemory)
                < one.breakdown.get(RestorePhase::RestoringMemory),
            "4 lanes {} !< 1 lane {}",
            four.breakdown.get(RestorePhase::RestoringMemory),
            one.breakdown.get(RestorePhase::RestoringMemory)
        );
        assert!(four.total < one.total);
        verify_matches_snapshot(&wide.kernel, wide.pid, &wide.snapshot).unwrap();
    }

    #[test]
    fn lanes_do_not_change_restored_state() {
        for lanes in [1usize, 2, 4, 8] {
            let mut r = rig();
            r.cfg.restore_lanes = lanes;
            taint_writes(&mut r, &[0, 3, 4, 5, 9, 20, 21], 1);
            let report = restore(&mut r);
            assert_eq!(report.pages_restored, 7, "lanes={lanes}");
            verify_matches_snapshot(&r.kernel, r.pid, &r.snapshot)
                .unwrap_or_else(|e| panic!("lanes={lanes}: {e}"));
        }
    }

    #[test]
    fn breakdown_phases_are_populated() {
        let mut r = rig();
        taint_writes(&mut r, &[1, 3], 1);
        let report = restore(&mut r);
        let bd = &report.breakdown;
        assert!(bd.get(RestorePhase::Interrupting) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::ReadingMaps) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::ScanningPageMetadata) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::RestoringMemory) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::ClearingSoftDirtyBits) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::RestoringRegisters) > Nanos::ZERO);
        assert!(bd.get(RestorePhase::Detaching) > Nanos::ZERO);
        assert_eq!(report.total, bd.total());
    }
}
