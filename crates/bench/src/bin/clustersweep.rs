//! Extension experiment (E18): cluster placement — sojourn time,
//! goodput and balance across node count × placement policy under a
//! skewed trace-driven workload.
//!
//! Quantifies the cluster-level question PR 7 opens: with thousands of
//! requests to Zipf-popular functions, how much does the front-end's
//! placement policy matter? Function-affinity maximizes per-node
//! locality but rides the skew straight into imbalance; round-robin
//! and least-loaded trade locality for balance.
//!
//! ```text
//! cargo run --release -p gh-bench --bin clustersweep            # node-parallel
//! cargo run --release -p gh-bench --bin clustersweep -- --serial
//! ```
//!
//! Cells run one after another; the *nodes inside each run* are what
//! parallelizes (`run_cluster` honors `--serial` / `GH_SERIAL=1` /
//! `GH_THREADS` through `gh_faas::fleet::ExecMode::Auto`). Results are
//! bit-identical
//! across modes (the cluster differential oracle), so the CSV is
//! byte-stable under the CI determinism matrix.

use gh_bench::{smoke, write_csv};
use gh_faas::cluster::{run_cluster, ClusterConfig, PlacePolicy};
use gh_faas::trace::{stable_rps, synthetic_catalog, TraceConfig};
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

fn main() {
    let seed = 29u64;
    let functions: u32 = if smoke() { 64 } else { 128 };
    let requests: u64 = if smoke() { 10_000 } else { 60_000 };
    let node_counts: &[usize] = if smoke() { &[2, 4] } else { &[2, 4, 8] };
    let catalog = synthetic_catalog(functions, seed);
    // One shared trace for every cell, rated so the hottest Zipf rank
    // sits near 70% of its pool capacity: hot enough that placement
    // policy moves the tail, bounded enough that queues stay finite.
    let rps = stable_rps(&catalog, 4, 1.0, 0.7);
    let trace = TraceConfig {
        principals: 64,
        ..TraceConfig::new(functions, requests, rps, seed)
    };
    println!(
        "== E18 — cluster sweep: {functions} functions, {requests} requests, \
         Zipf s={:.1}, diurnal A={:.1}, bursts p={:.3} ==\n",
        trace.zipf_s, trace.diurnal_amplitude, trace.burst_start_prob
    );
    let mut table = TextTable::new(&[
        "nodes",
        "policy",
        "completed",
        "goodput r/s",
        "mean ms",
        "p99 ms",
        "queue p99",
        "imbalance",
        "util",
        "restore overlap",
    ]);
    for &nodes in node_counts {
        for policy in PlacePolicy::ALL {
            let ccfg = ClusterConfig::new(nodes, policy, StrategyKind::Gh, seed);
            let r =
                run_cluster(&trace, &catalog, &ccfg, GroundhogConfig::gh()).expect("cluster run");
            table.row_owned(vec![
                format!("{nodes}"),
                policy.label().to_string(),
                format!("{}", r.completed),
                format!("{:.1}", r.goodput_rps),
                format!("{:.2}", r.mean_ms),
                format!("{:.2}", r.p99_ms),
                format!("{:.0}", r.queue_p99),
                format!("{:.2}", r.imbalance),
                format!("{:.2}", r.utilization),
                format!("{:.2}", r.restore_overlap_ratio),
            ]);
        }
    }
    println!("{}", table.render());
    write_csv("clustersweep", &table);
    println!(
        "Expected shape: function-affinity shows the largest imbalance (the Zipf \
         head lands whole on single nodes) and the worst p99 at high node counts; \
         least-loaded tracks round-robin on balance while placing hot functions \
         across both replicas. Adding nodes at fixed offered load cuts queueing \
         for every policy — the cluster-level form of the fleet's pooling win."
    );
}
