//! The restore planner: compiling one rollback into typed passes.
//!
//! §4.4's restore is a *sequence of distinct phases* — layout fixup via
//! injected syscalls, madvise of newly paged pages, stack zeroing, page
//! writeback, tracker re-arm, register reset. The monolithic loop that
//! used to interleave "decide what to do" with "do it" is split here into
//! an explicit, inspectable [`RestorePlan`]:
//!
//! ```text
//!  DirtyReport ─┐
//!  Snapshot    ─┼─▶ RestorePlanner::build ─▶ RestorePlan ─▶ executor
//!  LayoutDiff  ─┘        (pure)              (typed passes)  (restore.rs)
//! ```
//!
//! Planning is **pure**: it consumes the collected scan (`DirtyReport`),
//! the snapshot, and the layout diff, and produces passes without
//! touching the process or the virtual clock. That makes the plan
//! unit-testable in isolation and lets the executor charge every pass
//! against the cost model exactly once.
//!
//! The page-writeback pass carries its coalesced runs pre-split across
//! [`GroundhogConfig::restore_lanes`] parallel copy lanes; all other
//! passes are inherently serialized (ptrace syscall injection, clear_refs,
//! SETREGS) and stay serial.

use gh_mem::{runs_intersect, runs_len, runs_subtract, runs_union, PageRange, Vpn};
use gh_proc::Syscall;

use crate::breakdown::RestorePhase;
use crate::config::GroundhogConfig;
use crate::snapshot::Snapshot;
use crate::track::DirtyReport;

/// A batch of layout-fixup syscalls of one class, injected back-to-back
/// and attributed to one Fig. 8 phase.
#[derive(Clone, Debug)]
pub struct SyscallBatch {
    /// The Fig. 8 phase this batch's injection time is charged to.
    pub phase: RestorePhase,
    /// The syscalls, in §4.4 order.
    pub calls: Vec<Syscall>,
}

/// One parallel copy lane of the page-writeback pass.
#[derive(Clone, Debug, Default)]
pub struct WritebackLane {
    /// Coalesced contiguous runs assigned to this lane, in address order.
    pub runs: Vec<PageRange>,
}

impl WritebackLane {
    /// Pages this lane copies.
    pub fn pages(&self) -> u64 {
        self.runs.iter().map(|r| r.len()).sum()
    }
}

/// One pass of the restore pipeline, in execution order.
#[derive(Clone, Debug)]
pub enum RestorePass {
    /// Inject the layout-fixup syscalls (brk / munmap / mmap / mprotect),
    /// batched per syscall class.
    LayoutFixup {
        /// The batches, in §4.4 injection order.
        batches: Vec<SyscallBatch>,
    },
    /// `madvise(DONTNEED)` pages that became resident after the snapshot,
    /// coalesced into ranges. Present only when the tracker's collection
    /// walked the pagemap (soft-dirty does; userfaultfd cannot see
    /// newly paged pages).
    Madvise {
        /// Ranges to evict.
        evict: Vec<PageRange>,
    },
    /// Zero stack pages that paged in after the snapshot (§4.4 restores
    /// the stack by zeroing, not by content copy).
    StackZero {
        /// The pages to zero, ascending.
        pages: Vec<Vpn>,
    },
    /// Write snapshot contents back over the restore set, split across
    /// parallel copy lanes.
    PageWriteback {
        /// Lane assignment (one lane = the paper's serial copy loop).
        lanes: Vec<WritebackLane>,
        /// Whether runs are charged as coalesced bulk copies.
        coalesce: bool,
    },
    /// Lazy restore mode's replacement for [`RestorePass::PageWriteback`]:
    /// write-protect/unmap the restore set against the snapshot image so
    /// each page is faulted in on first touch during the next request.
    /// Cost is one registration per coalesced run plus a per-page PTE
    /// walk — far below the writeback it replaces.
    DeferArm {
        /// The coalesced runs of the deferred set.
        runs: Vec<PageRange>,
    },
    /// Re-arm memory tracking (clear soft-dirty bits / re-protect).
    TrackerRearm,
    /// Restore the register files of all threads.
    RegsReset,
}

/// An executable restore plan: the typed passes plus the counters the
/// [`RestoreReport`](crate::restore::RestoreReport) surfaces.
#[derive(Clone, Debug, Default)]
pub struct RestorePlan {
    /// Passes in execution order.
    pub passes: Vec<RestorePass>,
    /// Dirty pages the tracker reported.
    pub dirty_pages: u64,
    /// Pages whose contents the writeback pass restores.
    pub pages_restored: u64,
    /// Pages whose restoration the `DeferArm` pass defers to first-touch
    /// faults (lazy mode; zero for eager plans).
    pub pages_deferred: u64,
    /// Contiguous runs those pages form (before lane splitting).
    pub runs: u64,
    /// Pages the madvise pass evicts.
    pub newly_paged: u64,
    /// Stack pages the stack-zero pass zeroes.
    pub stack_zeroed: u64,
    /// Layout-fixup syscalls injected.
    pub syscalls_injected: usize,
}

/// Groups a sorted page list into contiguous [`PageRange`]s — the
/// coalescing primitive. Run counts are derived from the grouped ranges
/// (`group_ranges(..).len()`), never recomputed separately.
pub fn group_ranges(sorted: &[u64]) -> Vec<PageRange> {
    gh_mem::runs_from_sorted(sorted.iter().copied())
}

/// Splits coalesced runs across `lanes` copy lanes, balancing by page
/// count. Runs are walked in address order and split at lane boundaries,
/// so one lane gets at most `⌈pages/lanes⌉` pages (+ the extra run setup
/// a split introduces). With `lanes == 1` the input runs pass through
/// untouched.
pub fn split_lanes(runs: &[PageRange], lanes: usize) -> Vec<WritebackLane> {
    let total: u64 = runs.iter().map(|r| r.len()).sum();
    if total == 0 {
        return Vec::new();
    }
    let lanes = lanes.max(1);
    let per = total.div_ceil(lanes as u64);
    let mut out: Vec<WritebackLane> = Vec::new();
    let mut cur = WritebackLane::default();
    let mut cur_pages = 0u64;
    for &run in runs {
        let mut rest = run;
        while cur_pages + rest.len() > per && out.len() + 1 < lanes {
            let take = per - cur_pages;
            if take > 0 {
                cur.runs.push(PageRange::at(rest.start, take));
                rest = PageRange::new(Vpn(rest.start.0 + take), rest.end);
            }
            out.push(std::mem::take(&mut cur));
            cur_pages = 0;
        }
        if !rest.is_empty() {
            cur_pages += rest.len();
            cur.runs.push(rest);
        }
    }
    if !cur.runs.is_empty() {
        out.push(cur);
    }
    out
}

/// Builds [`RestorePlan`]s.
pub struct RestorePlanner;

impl RestorePlanner {
    /// Compiles one restore into typed passes. Pure: no process access,
    /// no clock charges — the executor pays for every pass exactly once.
    pub fn build(
        snapshot: &Snapshot,
        dirty: &DirtyReport,
        diff: &crate::diff::LayoutDiff,
        cfg: &GroundhogConfig,
    ) -> RestorePlan {
        let mut plan = RestorePlan {
            dirty_pages: dirty.dirty.len() as u64,
            ..RestorePlan::default()
        };

        // Pass 1: layout fixup, batched per syscall class. `diff.plan()`
        // already emits §4.4 order (brk, munmaps, mmaps, mprotects), so
        // consecutive grouping yields one batch per class.
        let mut batches: Vec<SyscallBatch> = Vec::new();
        for sc in diff.plan() {
            let phase = match sc.mnemonic() {
                "brk" => RestorePhase::Brk,
                "mmap" => RestorePhase::Mmap,
                "munmap" => RestorePhase::Munmap,
                "madvise" => RestorePhase::Madvise,
                _ => RestorePhase::Mprotect,
            };
            plan.syscalls_injected += 1;
            match batches.last_mut() {
                Some(b) if b.phase == phase => b.calls.push(sc),
                _ => batches.push(SyscallBatch {
                    phase,
                    calls: vec![sc],
                }),
            }
        }
        plan.passes.push(RestorePass::LayoutFixup { batches });

        // Passes 2+3: newly paged pages (pagemap view required). Stack
        // pages are zeroed; everything else is madvised away. All set
        // work is run algebra over sorted run lists — `O(dirty + runs)`,
        // never a per-page walk.
        let stacks = snapshot.stack_ranges();
        let snap_runs = snapshot.page_runs();

        let mut present_after: Option<Vec<PageRange>> = None;
        let mut stack_zero: Vec<Vpn> = Vec::new();
        if let Some(present_runs) = &dirty.present_runs {
            // Pages munmap will drop are not present for restore math.
            let present = runs_subtract(present_runs, &diff.to_munmap);
            // Fresh = resident now but absent from the snapshot.
            let fresh = runs_subtract(&present, &snap_runs);
            if cfg.zero_stack {
                stack_zero = runs_intersect(&fresh, stacks)
                    .iter()
                    .flat_map(|r| r.iter())
                    .collect();
            }
            let evict = if cfg.madvise_new {
                runs_subtract(&fresh, stacks)
            } else {
                Vec::new()
            };
            plan.newly_paged = runs_len(&evict);
            plan.stack_zeroed = stack_zero.len() as u64;
            let present = runs_subtract(&present, &evict);
            plan.passes.push(RestorePass::Madvise { evict });
            present_after = Some(present);
        }
        if !stack_zero.is_empty() {
            plan.passes
                .push(RestorePass::StackZero { pages: stack_zero });
        }

        // Pass 4: page writeback. The restore set is
        //   (dirty ∩ snapshot) ∪ (snapshot \ currently-present),
        // the second term covering pages dropped by madvise/munmap+remap
        // churn. Without a pagemap view (UFFD), the second term is
        // limited to the regions we know we remapped.
        let dirty_runs = group_ranges(&dirty.dirty.iter().map(|v| v.0).collect::<Vec<u64>>());
        let term1 = runs_intersect(&dirty_runs, &snap_runs);
        let runs = match &present_after {
            Some(present) => runs_union(&term1, &runs_subtract(&snap_runs, present)),
            None => {
                let remapped: Vec<PageRange> = diff.to_remap.iter().map(|r| r.range).collect();
                runs_union(&term1, &runs_intersect(&snap_runs, &remapped))
            }
        };
        plan.runs = runs.len() as u64;
        let pages = runs_len(&runs);
        if cfg.restore_mode.is_lazy() {
            // Lazy mode: the same restore set, armed for first-touch
            // fault-in instead of written back. Pages already pending
            // from an earlier arming are untouched-and-clean, so they
            // never re-enter this set; the address space keeps their
            // obligation alive across epochs.
            plan.pages_deferred = pages;
            plan.passes.push(RestorePass::DeferArm { runs });
        } else {
            plan.pages_restored = pages;
            plan.passes.push(RestorePass::PageWriteback {
                lanes: split_lanes(&runs, cfg.restore_lanes),
                coalesce: cfg.coalesce,
            });
        }

        // Passes 5+6: re-arm tracking, then reset registers (§4.4 order;
        // the executor keeps both serial).
        plan.passes.push(RestorePass::TrackerRearm);
        plan.passes.push(RestorePass::RegsReset);
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(start: u64, len: u64) -> PageRange {
        PageRange::at(Vpn(start), len)
    }

    #[test]
    fn grouping_coalesces_contiguous_pages() {
        assert!(group_ranges(&[]).is_empty());
        assert_eq!(group_ranges(&[5]), vec![range(5, 1)]);
        assert_eq!(group_ranges(&[1, 2, 3]), vec![range(1, 3)]);
        assert_eq!(
            group_ranges(&[1, 2, 4, 5, 9]),
            vec![range(1, 2), range(4, 2), range(9, 1)]
        );
        // Run counts derive from the grouped ranges.
        assert_eq!(group_ranges(&[1, 3, 5]).len(), 3);
    }

    #[test]
    fn one_lane_passes_runs_through() {
        let runs = vec![range(0, 10), range(20, 5)];
        let lanes = split_lanes(&runs, 1);
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].runs, runs);
        assert_eq!(lanes[0].pages(), 15);
    }

    #[test]
    fn lanes_balance_pages_and_split_large_runs() {
        let runs = vec![range(0, 64)];
        let lanes = split_lanes(&runs, 4);
        assert_eq!(lanes.len(), 4);
        for lane in &lanes {
            assert_eq!(lane.pages(), 16, "even split of one big run");
        }
        // Lanes cover the original set exactly, in order.
        let pages: Vec<u64> = lanes
            .iter()
            .flat_map(|l| l.runs.iter().flat_map(|r| r.iter().map(|v| v.0)))
            .collect();
        assert_eq!(pages, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn lanes_never_exceed_request_and_skip_empty() {
        assert!(split_lanes(&[], 4).is_empty());
        let lanes = split_lanes(&[range(0, 2)], 8);
        assert!(lanes.len() <= 2, "2 pages cannot fill 8 lanes");
        let total: u64 = lanes.iter().map(|l| l.pages()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn scattered_runs_distribute_across_lanes() {
        let runs: Vec<PageRange> = (0..16).map(|i| range(i * 10, 2)).collect();
        let lanes = split_lanes(&runs, 4);
        assert_eq!(lanes.len(), 4);
        let total: u64 = lanes.iter().map(|l| l.pages()).sum();
        assert_eq!(total, 32);
        for lane in &lanes {
            assert!(lane.pages() <= 8 + 1, "balanced: {}", lane.pages());
        }
    }
}
