//! Parallel sweep harness for the figure/table binaries.
//!
//! Sweep binaries evaluate grids of independent cells (pool size ×
//! offered load × routing policy, write-set densities, …) where each
//! cell builds its own `Kernel` and seeds its own `DetRng` — no state is
//! shared, so cells can run on OS threads with no effect on results.
//! [`run_cells`] shards the cells across `std::thread::scope` workers
//! (nothing beyond `std` — crates.io is unreachable in this
//! environment) and performs a **deterministic ordered merge**: results
//! come back in input order regardless of scheduling, so the rendered
//! tables and CSVs are byte-identical to a serial run. The CI
//! determinism job asserts exactly that by diffing `--serial` against
//! parallel output, across a `GH_THREADS` matrix.
//!
//! Knobs (shared with `gh_faas::fleet`'s host-parallel execution):
//! `--serial` or `GH_SERIAL=1` forces one worker; `GH_THREADS=n` pins
//! the worker count, defaulting to the host's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// True when the caller asked for the serial fallback (`--serial` on
/// the command line, or `GH_SERIAL=1` in the environment).
pub fn serial_requested() -> bool {
    std::env::args().any(|a| a == "--serial") || std::env::var("GH_SERIAL").is_ok_and(|v| v != "0")
}

/// Worker count for a parallel sweep: `GH_THREADS=n` when set, else the
/// host's available parallelism.
pub fn configured_workers() -> usize {
    match std::env::var("GH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Evaluates `f` over every cell, in parallel unless `serial`, and
/// returns the results **in input order**.
///
/// Each worker claims cells from a shared counter (dynamic load
/// balancing: fleet cells at different pool sizes differ wildly in
/// cost) and tags results with their index; the merge sorts by index.
/// Determinism therefore requires only that `f` itself is a pure
/// function of its cell — which every sweep cell is, by construction
/// (own kernel, own seed).
pub fn run_cells<C, R, F>(cells: &[C], serial: bool, f: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    let workers = if serial {
        1
    } else {
        configured_workers().min(cells.len().max(1))
    };
    if workers <= 1 {
        return cells.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(cells.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    local.push((i, f(&cells[i])));
                }
                collected.lock().expect("worker panicked").extend(local);
            });
        }
    });
    let mut tagged = collected.into_inner().expect("worker panicked");
    tagged.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), cells.len());
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_merge_preserves_input_order() {
        let cells: Vec<u64> = (0..257).collect();
        let f = |&c: &u64| {
            // Uneven per-cell cost to scramble completion order.
            let mut acc = c;
            for i in 0..(c % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (c, acc)
        };
        let serial = run_cells(&cells, true, f);
        let parallel = run_cells(&cells, false, f);
        assert_eq!(serial, parallel, "ordered merge must hide scheduling");
        assert_eq!(serial.len(), cells.len());
        assert!(serial.iter().enumerate().all(|(i, &(c, _))| c == i as u64));
    }

    #[test]
    fn empty_and_single_cell_grids() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_cells(&empty, false, |&c: &u32| c).is_empty());
        assert_eq!(run_cells(&[7u32], false, |&c| c * 2), vec![14]);
    }
}
