//! The virtual clock that all simulated components charge time to.
//!
//! A [`VirtualClock`] is shared (cheaply, via [`VirtualClock::clone`])
//! between the simulated kernel, the Groundhog manager and the FaaS
//! platform. Components *advance* the clock when they perform work; readers
//! observe a monotonically non-decreasing `now`.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::Nanos;

/// A shared, monotonically advancing virtual clock.
///
/// Cloning produces a handle to the *same* underlying clock. The clock
/// is `Send`/`Sync` (`Arc<AtomicU64>`) so independent per-container
/// timelines can be driven from different host threads (the fleet's
/// sharded execution; §5.3.4 of the paper shows containers scale
/// independently per core) — but any *one* timeline is still advanced
/// by exactly one thread at a time, so relaxed ordering suffices and
/// the simulation stays deterministic.
///
/// # Examples
///
/// ```
/// use gh_sim::{Nanos, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let observer = clock.clone();
/// clock.advance(Nanos::from_micros(10));
/// assert_eq!(observer.now(), Nanos::from_micros(10));
/// ```
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at the epoch (t = 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start`.
    pub fn starting_at(start: Nanos) -> Self {
        let c = Self::new();
        c.now.store(start.as_nanos(), Ordering::Relaxed);
        c
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Nanos {
        Nanos::from_nanos(self.now.load(Ordering::Relaxed))
    }

    /// Advances the clock by `dt` and returns the new time.
    ///
    /// A timeline is advanced by exactly one thread at a time (the shard
    /// worker that owns the container), so a plain load/store — rather
    /// than an RMW — is sufficient.
    #[inline]
    pub fn advance(&self, dt: Nanos) -> Nanos {
        let t = self
            .now
            .load(Ordering::Relaxed)
            .saturating_add(dt.as_nanos());
        self.now.store(t, Ordering::Relaxed);
        Nanos::from_nanos(t)
    }

    /// Moves the clock forward *to* `t` if `t` is in the future; a no-op
    /// otherwise (the clock never goes backwards).
    #[inline]
    pub fn advance_to(&self, t: Nanos) -> Nanos {
        self.now.fetch_max(t.as_nanos(), Ordering::Relaxed);
        self.now()
    }

    /// Measures the virtual time consumed by `f`.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, Nanos) {
        let t0 = self.now();
        let r = f();
        (r, self.now() - t0)
    }
}

/// A stopwatch over a [`VirtualClock`], for phase-by-phase breakdowns
/// (e.g. the thirteen restore phases of Fig. 8).
#[derive(Clone, Debug)]
pub struct Stopwatch {
    clock: VirtualClock,
    last: Nanos,
}

impl Stopwatch {
    /// Starts a stopwatch at the clock's current time.
    pub fn start(clock: &VirtualClock) -> Self {
        Self {
            clock: clock.clone(),
            last: clock.now(),
        }
    }

    /// Returns the time elapsed since start or the previous `lap`, and
    /// resets the lap origin.
    pub fn lap(&mut self) -> Nanos {
        let now = self.clock.now();
        let dt = now - self.last;
        self.last = now;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(Nanos::from_nanos(7));
        b.advance(Nanos::from_nanos(3));
        assert_eq!(a.now().as_nanos(), 10);
        assert_eq!(b.now().as_nanos(), 10);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = VirtualClock::new();
        c.advance_to(Nanos::from_nanos(100));
        assert_eq!(c.now().as_nanos(), 100);
        c.advance_to(Nanos::from_nanos(50)); // must not go backwards
        assert_eq!(c.now().as_nanos(), 100);
    }

    #[test]
    fn starting_at_offsets_epoch() {
        let c = VirtualClock::starting_at(Nanos::from_secs(5));
        assert_eq!(c.now(), Nanos::from_secs(5));
    }

    #[test]
    fn measure_captures_elapsed() {
        let c = VirtualClock::new();
        let (val, dt) = c.measure(|| {
            c.advance(Nanos::from_micros(42));
            "done"
        });
        assert_eq!(val, "done");
        assert_eq!(dt, Nanos::from_micros(42));
    }

    #[test]
    fn stopwatch_laps() {
        let c = VirtualClock::new();
        let mut sw = Stopwatch::start(&c);
        c.advance(Nanos::from_nanos(10));
        assert_eq!(sw.lap().as_nanos(), 10);
        c.advance(Nanos::from_nanos(5));
        assert_eq!(sw.lap().as_nanos(), 5);
        assert_eq!(sw.lap().as_nanos(), 0);
    }
}
