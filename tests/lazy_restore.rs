//! Fleet- and container-level behaviour of the lazy restore mode.
//!
//! The tentpole claim, at platform altitude: deferring the page
//! writeback takes the restore off the inter-request critical path, so
//! a lazily-restored container reports readiness almost immediately and
//! a pool under high load queues less — provided the function is a
//! sparse writer (most deferred pages are drained in idle gaps or never
//! touched, rather than faulted back one-by-one at `lazy_fault` rates).

use groundhog::core::GroundhogConfig;
use groundhog::faas::fleet::{run_fleet, FleetConfig, RoutePolicy};
use groundhog::faas::{Container, Request};
use groundhog::functions::catalog::by_name;
use groundhog::isolation::StrategyKind;

#[test]
fn lazily_restored_container_is_ready_almost_immediately() {
    let spec = by_name("fannkuch (p)").unwrap();
    let mut eager =
        Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 42).unwrap();
    let mut lazy =
        Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::lazy(), 42).unwrap();
    let e = eager
        .invoke(&Request::new(1, "alice", spec.input_kb))
        .unwrap();
    let l = lazy
        .invoke(&Request::new(1, "alice", spec.input_kb))
        .unwrap();
    let e_gap = e.ready_at - e.response.completed_at;
    let l_gap = l.ready_at - l.response.completed_at;
    assert!(l_gap < e_gap, "lazy readiness gap {l_gap} !< eager {e_gap}");
    // The deferred writeback is the dominant share of the saved time
    // for a writeback-heavy cycle; at minimum the lazy report must show
    // deferral happened and nothing was copied eagerly.
    let lr = match &lazy.strategy {
        groundhog::isolation::Strategy::Gh(m) => m.stats.last_restore.clone().unwrap(),
        _ => unreachable!(),
    };
    assert!(lr.pages_deferred > 0);
    assert_eq!(lr.pages_restored, 0);
}

#[test]
fn lazy_drain_reduces_queueing_at_high_load_for_sparse_writers() {
    // fannkuch (p) writes ~100 of its ~6.2K mapped pages per request
    // (1.6% — a sparse writer). At 80% of pooled capacity the pool has
    // idle gaps the background drain can hide the writeback in, while
    // queueing is heavy enough that the shorter critical-path restore
    // shows up in sojourn times.
    let spec = by_name("fannkuch (p)").unwrap();
    let pool = 2usize;
    let offered = 125.0 * pool as f64 * 0.8;
    let requests = 300;
    let run = |cfg: GroundhogConfig| {
        run_fleet(
            &spec,
            StrategyKind::Gh,
            cfg,
            pool,
            FleetConfig::fixed(RoutePolicy::RestoreAware, offered, 29),
            requests,
        )
        .unwrap()
    };
    let eager = run(GroundhogConfig::gh());
    let lazy = run(GroundhogConfig::lazy_drain());
    println!(
        "eager: mean {:.3}ms p99 {:.3}ms q99 {} restore {:.1}ms overlap {:.2}",
        eager.mean_ms,
        eager.p99_ms,
        eager.stats.queue_p99,
        eager.stats.restore_total_ms,
        eager.stats.restore_overlap_ratio
    );
    println!(
        "lazy:  mean {:.3}ms p99 {:.3}ms q99 {} restore {:.1}ms faults {} drained {}",
        lazy.mean_ms,
        lazy.p99_ms,
        lazy.stats.queue_p99,
        lazy.stats.restore_total_ms,
        lazy.stats.lazy_faults,
        lazy.stats.lazy_drained_pages
    );
    assert_eq!(lazy.completed, requests);
    // The critical-path restore component must collapse...
    assert!(
        lazy.stats.restore_total_ms < eager.stats.restore_total_ms,
        "lazy critical-path restore {:.2}ms !< eager {:.2}ms",
        lazy.stats.restore_total_ms,
        eager.stats.restore_total_ms
    );
    // ...with the amortized half resolved by first-touch faults and/or
    // the idle-gap drain (at 80% load, gaps usually drain everything
    // before the next touch)...
    assert!(lazy.stats.lazy_faults + lazy.stats.lazy_drained_pages > 0);
    assert!(
        lazy.stats.lazy_drained_pages > 0,
        "idle gaps at 80% load must feed the background drain"
    );
    // ...and queueing strictly reduced.
    assert!(
        lazy.mean_ms < eager.mean_ms,
        "lazy mean sojourn {:.3}ms !< eager {:.3}ms",
        lazy.mean_ms,
        eager.mean_ms
    );
    assert!(
        lazy.p99_ms < eager.p99_ms,
        "lazy p99 sojourn {:.3}ms !< eager {:.3}ms",
        lazy.p99_ms,
        eager.p99_ms
    );
    assert!(lazy.stats.queue_p99 <= eager.stats.queue_p99);
}

#[test]
fn dense_writers_do_not_benefit_without_idle() {
    // The honest other half of the trade-off: when nearly every
    // deferred page is touched again before any idle gap can drain it,
    // the per-fault price exceeds the writeback it replaced and lazy
    // mode buys readiness at the cost of in-request latency. base64 (n)
    // rewrites a dense ~40K-page set every request.
    let spec = by_name("base64 (n)").unwrap();
    let mut eager =
        Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 7).unwrap();
    let mut lazy =
        Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::lazy(), 7).unwrap();
    let mut e_lat = 0.0;
    let mut l_lat = 0.0;
    for i in 1..=3u64 {
        let e = eager.invoke(&Request::new(i, "a", spec.input_kb)).unwrap();
        let l = lazy.invoke(&Request::new(i, "a", spec.input_kb)).unwrap();
        if i > 1 {
            e_lat += e.invoker_latency.as_millis_f64();
            l_lat += l.invoker_latency.as_millis_f64();
        }
    }
    assert!(
        l_lat > e_lat,
        "dense writer: lazy in-request latency {l_lat:.1}ms should exceed eager {e_lat:.1}ms"
    );
}
