//! Cross-node workflow migration: in-flight DAG hops re-dispatched
//! along [`Placer`] replica order when their node is lost.
//!
//! [`super::dag`] proves hop-level crash recovery on one node with real
//! containers; this module lifts the same commit discipline to a
//! *cluster* of virtual-time nodes so node loss — not just container
//! death — is survivable. The key property being modeled: a migrated
//! hop carries **only the workflow's KV state** (its pinned snapshot
//! version and the durable hop commits), never container memory. Hop
//! values are pure functions of `(workflow, hop path, upstream value)`
//! (`dag::hop_value`), so any replica can re-derive a lost
//! hop bit-for-bit from the KV alone; container state is disposable by
//! construction (Groundhog rolls it back after every request anyway).
//!
//! The simulator is a single deterministic event loop
//! ([`gh_sim::event::EventQueue`]) over a Poisson workflow stream
//! ([`crate::trace::dag_workload`]), with per-instance DAG shapes from
//! [`super::dag::random_dag_spec`]. Hops cost their function's
//! `base_e2e_ms` in virtual time; fan-out branches run concurrently;
//! joins fire when the last branch commits. Faults come from the same
//! pure [`FaultPlan`] streams as everywhere else, so a fault-disabled
//! run is byte-identical to a plain run and repeats are bit-identical.
//!
//! **The migration ledger** ([`crate::fault::FaultStats`]):
//!
//! - `orphaned_hops` — hops whose executing node was down at
//!   completion time (the response is lost with the node);
//! - `migrations` — orphaned hops re-dispatched to a *different* node
//!   (the next up replica in [`Placer::candidates`] order) when
//!   [`MigrateConfig::migrate`] is on; with it off, retries wait out
//!   the outage in place;
//! - `duplicate_commits_absorbed` — orphaned hops whose commit had
//!   already landed before the node vanished: the re-dispatched
//!   execution re-commits, idempotence suppresses it, and the ledger
//!   proves it (`kv.duplicates_suppressed == faults.duplicates +
//!   faults.duplicate_commits_absorbed`).
//!
//! Because every hop (the sink included) commits under a per-workflow
//! key, the final KV state is independent of commit *order*, and a
//! faulty run with zero abandonment converges to exactly the
//! crash-free fingerprint, outputs, and version count regardless of
//! how migration interleaved the timeline (`tests/dag_oracle.rs`).
//!
//! With [`MigrateConfig::autoscale`] set, the failure-aware
//! [`NodeScaler`] folds over hop dispatches: pressure grows the active
//! set, quiet windows cordon the top node (new hops redirect to other
//! replicas — `scale.redirects`) and remove it once drained.

use gh_functions::FunctionSpec;
use gh_sim::event::EventQueue;
use gh_sim::Nanos;

use crate::cluster::place::{PlacePolicy, Placer};
use crate::cluster::scale::{NodeScaleConfig, NodeScaler, ScaleStats};
use crate::fault::{FaultConfig, FaultPlan, FaultStats};
use crate::trace::dag_workload;

use super::dag::{dag_key, hop_path, hop_value, join_merge, random_dag_spec, DagOp, DagSpec};
use super::{mix, VersionedKv};

/// Configuration of one migration run.
#[derive(Clone, Debug)]
pub struct MigrateConfig {
    /// Provisioned cluster nodes.
    pub nodes: usize,
    /// Replicas per function (`1..=nodes`): the candidate set a hop can
    /// execute — and migrate — across.
    pub replicas: usize,
    /// Workflow instances to run.
    pub workflows: u64,
    /// Poisson arrival rate of workflow instances, per second.
    pub arrival_rps: f64,
    /// Largest fan-out width the per-instance DAG shapes draw.
    pub max_width: u32,
    /// Seed for arrivals, shapes, and placement homes.
    pub seed: u64,
    /// Fault injection, if armed (inert configs are dropped).
    pub faults: Option<FaultConfig>,
    /// Re-dispatch orphaned hops to the next up replica (`true`) or
    /// retry them in place, waiting out the outage (`false`).
    pub migrate: bool,
    /// Failure-aware node autoscaling, if armed.
    pub autoscale: Option<NodeScaleConfig>,
}

impl MigrateConfig {
    /// `nodes` nodes, two replicas (one on a single node), migration
    /// on, no faults, no autoscaling.
    pub fn new(nodes: usize, workflows: u64, seed: u64) -> MigrateConfig {
        assert!(nodes > 0, "need at least one node");
        MigrateConfig {
            nodes,
            replicas: 2.min(nodes),
            workflows,
            arrival_rps: 200.0,
            max_width: 4,
            seed,
            faults: None,
            migrate: true,
            autoscale: None,
        }
    }

    /// Arms fault injection (inert configs are dropped, keeping the
    /// run byte-identical to the fault-free reference).
    pub fn with_faults(mut self, cfg: FaultConfig) -> MigrateConfig {
        self.faults = cfg.is_active().then_some(cfg);
        self
    }

    /// Arms the failure-aware autoscaler.
    pub fn with_autoscale(mut self, cfg: NodeScaleConfig) -> MigrateConfig {
        self.autoscale = Some(cfg);
        self
    }
}

/// What a migration run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct MigrateResult {
    /// Workflow instances started.
    pub workflows: u64,
    /// Instances whose every hop committed.
    pub completed: u64,
    /// Sink output per workflow (`None` for abandoned instances).
    pub outputs: Vec<Option<u64>>,
    /// Fingerprint of the final KV state — commit-order independent
    /// (per-workflow keys), so faulty and crash-free runs agree.
    pub kv_fingerprint: u64,
    /// Total KV versions applied.
    pub kv_versions: u64,
    /// Re-commits absorbed by idempotence.
    pub duplicates_suppressed: u64,
    /// Hop executions dispatched, retries and migrations included.
    pub hops_executed: u64,
    /// Virtual time of the last commit, ms.
    pub span_ms: f64,
    /// Fault + migration ledger.
    pub faults: FaultStats,
    /// Autoscaler counters, when armed.
    pub scale: Option<ScaleStats>,
}

/// One hop execution in flight: workflow `w`, DAG node `node`, branch
/// `branch`, running on cluster node `exec`, attempt number, and
/// whether an earlier attempt's commit already landed (and if so,
/// whether it landed on a node that was then lost — the
/// `duplicate_commits_absorbed` attribution).
#[derive(Clone, Copy, Debug)]
struct Hop {
    w: usize,
    node: u32,
    branch: u32,
    exec: u32,
    attempt: u32,
    pre_committed: bool,
    orphan_commit: bool,
}

/// Events of the migration timeline.
enum MigEv {
    /// Workflow `w` arrives; dispatch its source hop.
    Start(usize),
    /// A hop execution reaches its nominal completion time.
    Done(Hop),
}

/// Per-workflow live state.
struct Wf {
    spec: DagSpec,
    input: u64,
    out: Vec<u64>,
    branches_left: u32,
    alive: bool,
}

/// The run's mutable spine, shared by the event handlers.
struct Sim<'a> {
    catalog: &'a [FunctionSpec],
    cfg: &'a MigrateConfig,
    placer: Placer,
    plan: Option<FaultPlan>,
    scaler: Option<NodeScaler>,
    kv: VersionedKv,
    faults: FaultStats,
    events: EventQueue<MigEv>,
    hops_executed: u64,
    span_end: Nanos,
}

impl Sim<'_> {
    /// Stable per-(workflow, hop path) fault id: the schedule must not
    /// depend on attempt counts or placement.
    fn fault_id(w: usize, path: u64) -> u64 {
        mix(w as u64 ^ 0x0DA6_0F17) ^ mix(path)
    }

    /// The value feeding DAG node `node` of workflow `w`: the workflow
    /// input at the source, the durable branch commits' merge at a
    /// join, the upstream node's output otherwise. Pure — recovery on
    /// any replica re-derives it from the KV alone.
    fn input_of(&self, wf: &Wf, w: usize, node: usize) -> u64 {
        if node == 0 {
            return wf.input;
        }
        let src = wf.spec.nodes[node].input;
        if matches!(wf.spec.nodes[node].op, DagOp::Join { .. }) {
            let branches: Vec<u64> = (0..wf.spec.width_of(src))
                .map(|b| {
                    self.kv
                        .latest(dag_key(w as u64, hop_path(src, b)))
                        .expect("branch commits are durable before the join dispatches")
                })
                .collect();
            join_merge(&branches)
        } else {
            wf.out[src]
        }
    }

    /// Picks the cluster node a hop executes on: replica candidates of
    /// its function, rotated by branch index (so fan-out branches
    /// spread), first up-and-placeable wins; falls back to any up
    /// replica, then to the rotation head. `avoid` excludes the lost
    /// node on a migration re-dispatch (when another replica is up).
    fn pick_node(&mut self, func: usize, branch: u32, at: Nanos, avoid: Option<usize>) -> usize {
        let cands: Vec<usize> = self.placer.candidates(func).collect();
        let rot = branch as usize % cands.len();
        let order = || (0..cands.len()).map(|i| cands[(i + rot) % cands.len()]);
        let up = |n: usize| {
            self.plan
                .as_ref()
                .map(|pl| !pl.node_down(n, at))
                .unwrap_or(true)
        };
        let preferred = order()
            .find(|&n| up(n) && Some(n) != avoid)
            .unwrap_or(cands[rot]);
        match &mut self.scaler {
            None => preferred,
            Some(s) => match order().find(|&n| up(n) && Some(n) != avoid && s.placeable(n)) {
                Some(c) => {
                    if c != preferred {
                        s.note_redirect();
                    }
                    c
                }
                None => preferred,
            },
        }
    }

    /// Dispatches one hop execution at `at` (attempt 1, no history).
    fn dispatch(&mut self, wf: &Wf, w: usize, node: usize, branch: u32, at: Nanos) {
        let upstream = self.input_of(wf, w, node);
        let func = wf.spec.hop_func(node, upstream);
        let cost = Nanos::from_millis_f64(self.catalog[func].base_e2e_ms);
        if let Some(s) = &mut self.scaler {
            let home = self
                .placer
                .candidates(func)
                .next()
                .expect("at least one replica");
            let lost = self
                .plan
                .as_ref()
                .map(|pl| pl.node_down(home, at))
                .unwrap_or(false);
            s.observe(at, home, cost, lost);
        }
        let exec = self.pick_node(func, branch, at, None);
        self.hops_executed += 1;
        self.events.schedule(
            at + cost,
            MigEv::Done(Hop {
                w,
                node: node as u32,
                branch,
                exec: exec as u32,
                attempt: 1,
                pre_committed: false,
                orphan_commit: false,
            }),
        );
    }

    /// Re-dispatches a faulted hop after its backoff. Migration (if
    /// enabled and the fault was a node loss) moves it to the next up
    /// replica and counts the move.
    fn redispatch(&mut self, wf: &Wf, hop: Hop, at: Nanos, node_lost: bool) {
        let node = hop.node as usize;
        let upstream = self.input_of(wf, hop.w, node);
        let func = wf.spec.hop_func(node, upstream);
        let cost = Nanos::from_millis_f64(self.catalog[func].base_e2e_ms);
        let pl = self.plan.as_ref().expect("redispatch implies faults");
        let start = at + pl.backoff(hop.attempt);
        let avoid = (node_lost && self.cfg.migrate).then_some(hop.exec as usize);
        let exec = if node_lost && !self.cfg.migrate {
            // Wait out the outage in place.
            hop.exec as usize
        } else {
            self.pick_node(func, hop.branch, start, avoid)
        };
        if node_lost && exec != hop.exec as usize {
            self.faults.migrations += 1;
        }
        self.hops_executed += 1;
        self.events.schedule(
            start + cost,
            MigEv::Done(Hop {
                exec: exec as u32,
                attempt: hop.attempt + 1,
                ..hop
            }),
        );
    }

    /// Applies a hop's idempotent commit, attributing a suppressed
    /// re-commit to the migration ledger when the first commit landed
    /// on a lost node.
    fn commit(&mut self, w: usize, path: u64, value: u64, orphan_commit: bool, at: Nanos) {
        if self
            .kv
            .commit(w as u64, path, dag_key(w as u64, path), value)
        {
            self.span_end = self.span_end.max(at);
        } else if orphan_commit {
            self.faults.duplicate_commits_absorbed += 1;
        }
    }
}

/// Runs the DAG workload through the migrating cluster. Deterministic:
/// a pure function of `(catalog, cfg)` — repeats are bit-identical,
/// and a fault-disabled run is byte-identical to a plain one.
pub fn run_migrating_dags(catalog: &[FunctionSpec], cfg: &MigrateConfig) -> MigrateResult {
    assert!(!catalog.is_empty(), "need a function catalog");
    assert!(
        (1..=cfg.nodes).contains(&cfg.replicas),
        "replicas must be in 1..=nodes"
    );
    let arrivals = dag_workload(cfg.workflows, cfg.arrival_rps, cfg.seed);
    let mut wfs: Vec<Wf> = arrivals
        .iter()
        .map(|a| {
            let spec = random_dag_spec(a.shape_seed, catalog.len(), cfg.max_width);
            let nodes = spec.nodes.len();
            Wf {
                spec,
                input: mix(cfg.seed ^ 0x00DA_607A ^ a.workflow),
                out: vec![0; nodes],
                branches_left: 0,
                alive: true,
            }
        })
        .collect();
    let mut sim = Sim {
        catalog,
        cfg,
        placer: Placer::new(
            PlacePolicy::RoundRobin,
            cfg.nodes,
            cfg.replicas,
            catalog,
            cfg.seed,
        ),
        plan: cfg.faults.filter(|c| c.is_active()).map(FaultPlan::new),
        scaler: cfg
            .autoscale
            .map(|sc| NodeScaler::new(sc, cfg.nodes, Nanos::ZERO)),
        kv: VersionedKv::new(),
        faults: FaultStats::default(),
        events: EventQueue::new(),
        hops_executed: 0,
        span_end: Nanos::ZERO,
    };
    for a in &arrivals {
        sim.events.schedule(a.at, MigEv::Start(a.workflow as usize));
    }
    let mut completed = 0u64;
    let mut outputs: Vec<Option<u64>> = vec![None; cfg.workflows as usize];
    while let Some((now, ev)) = sim.events.pop() {
        match ev {
            MigEv::Start(w) => {
                let wf = &wfs[w];
                let width = wf.spec.width_of(0);
                wfs[w].branches_left = width;
                for b in 0..width {
                    let wf = &wfs[w];
                    sim.dispatch(wf, w, 0, b, now);
                }
            }
            MigEv::Done(hop) => {
                let w = hop.w;
                if !wfs[w].alive {
                    continue;
                }
                let node = hop.node as usize;
                let upstream = sim.input_of(&wfs[w], w, node);
                let path = hop_path(node, hop.branch);
                let value = hop_value(w as u64, path, upstream, 0);
                let fid = Sim::fault_id(w, path);
                if let Some(pl) = sim.plan {
                    // Node loss first: the whole node (and the hop's
                    // response) is gone, regardless of container fate.
                    if pl.node_down(hop.exec as usize, now) {
                        sim.faults.orphaned_hops += 1;
                        sim.faults.node_losses += 1;
                        let mut hop = hop;
                        if !hop.pre_committed && pl.death_after_commit(fid, hop.attempt) {
                            // The commit raced the outage: durable,
                            // but the response died with the node.
                            sim.commit(w, path, value, false, now);
                            hop.pre_committed = true;
                            hop.orphan_commit = true;
                        }
                        if hop.attempt < pl.max_attempts() {
                            sim.faults.retries += 1;
                            sim.redispatch(&wfs[w], hop, now, true);
                        } else {
                            sim.faults.abandoned += 1;
                            wfs[w].alive = false;
                        }
                        continue;
                    }
                    // Container death on an up node: in-place (or
                    // rerouted) retry, as in the single-node runners.
                    if pl.death(fid, hop.attempt).is_some() {
                        sim.faults.deaths += 1;
                        let mut hop = hop;
                        if !hop.pre_committed && pl.death_after_commit(fid, hop.attempt) {
                            sim.commit(w, path, value, false, now);
                            hop.pre_committed = true;
                            sim.faults.duplicates += 1;
                        }
                        if hop.attempt < pl.max_attempts() {
                            sim.faults.retries += 1;
                            sim.redispatch(&wfs[w], hop, now, false);
                        } else {
                            sim.faults.abandoned += 1;
                            wfs[w].alive = false;
                        }
                        continue;
                    }
                }
                sim.commit(w, path, value, hop.orphan_commit, now);
                let is_branch = matches!(wfs[w].spec.nodes[node].op, DagOp::FanOut { .. });
                if !is_branch {
                    wfs[w].out[node] = value;
                }
                let node_done = if is_branch {
                    wfs[w].branches_left -= 1;
                    wfs[w].branches_left == 0
                } else {
                    true
                };
                if !node_done {
                    continue;
                }
                let next = node + 1;
                if next == wfs[w].spec.nodes.len() {
                    completed += 1;
                    outputs[w] = Some(wfs[w].out[node]);
                    continue;
                }
                let width = wfs[w].spec.width_of(next);
                wfs[w].branches_left = width;
                for b in 0..width {
                    let wf = &wfs[w];
                    sim.dispatch(wf, w, next, b, now);
                }
            }
        }
    }
    MigrateResult {
        workflows: cfg.workflows,
        completed,
        outputs,
        kv_fingerprint: sim.kv.fingerprint(),
        kv_versions: sim.kv.total_versions(),
        duplicates_suppressed: sim.kv.duplicates_suppressed,
        hops_executed: sim.hops_executed,
        span_ms: sim.span_end.as_millis_f64(),
        faults: sim.faults,
        scale: sim.scaler.as_ref().map(|s| s.stats()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::synthetic_catalog;
    use gh_sim::Nanos;

    fn catalog() -> Vec<FunctionSpec> {
        synthetic_catalog(8, 42)
    }

    fn lossy(seed: u64) -> FaultConfig {
        let mut fc = FaultConfig::none(seed);
        fc.node_loss_rate = 0.25;
        fc.node_loss_window = Nanos::from_millis(40);
        fc.retry = crate::fault::RetryPolicy {
            max_attempts: 10,
            ..crate::fault::RetryPolicy::bounded()
        };
        fc
    }

    #[test]
    fn fault_free_run_completes_everything_and_is_pure() {
        let cfg = MigrateConfig::new(4, 60, 9);
        let cat = catalog();
        let a = run_migrating_dags(&cat, &cfg);
        assert_eq!(a.completed, 60);
        assert!(a.outputs.iter().all(|o| o.is_some()));
        assert!(a.faults.is_empty());
        assert_eq!(a.duplicates_suppressed, 0);
        assert_eq!(a, run_migrating_dags(&cat, &cfg), "repeats bit-identical");
    }

    #[test]
    fn inert_fault_config_is_dropped() {
        let cat = catalog();
        let plain = run_migrating_dags(&cat, &MigrateConfig::new(3, 40, 5));
        let inert = run_migrating_dags(
            &cat,
            &MigrateConfig::new(3, 40, 5).with_faults(FaultConfig::none(5)),
        );
        assert_eq!(plain, inert, "disabled faults are invisible");
    }

    #[test]
    fn node_loss_orphans_hops_and_migration_converges_to_crash_free_state() {
        let cat = catalog();
        let clean_cfg = MigrateConfig::new(4, 80, 17);
        let clean = run_migrating_dags(&cat, &clean_cfg);
        let faulty_cfg = clean_cfg.clone().with_faults(lossy(17));
        let faulty = run_migrating_dags(&cat, &faulty_cfg);
        assert!(faulty.faults.orphaned_hops > 0, "outages must orphan hops");
        assert!(faulty.faults.migrations > 0, "orphans must migrate");
        assert_eq!(faulty.faults.abandoned, 0, "10 attempts ride out outages");
        assert_eq!(faulty.completed, 80);
        assert_eq!(faulty.outputs, clean.outputs, "outputs survive migration");
        assert_eq!(faulty.kv_fingerprint, clean.kv_fingerprint);
        assert_eq!(faulty.kv_versions, clean.kv_versions, "no double-applies");
        assert_eq!(
            faulty.duplicates_suppressed,
            faulty.faults.duplicates + faulty.faults.duplicate_commits_absorbed,
            "the migration ledger accounts every absorbed re-commit"
        );
        assert!(
            faulty.faults.duplicate_commits_absorbed > 0,
            "some commits must race the outage at 25% loss"
        );
    }

    #[test]
    fn migration_off_waits_out_outages_in_place() {
        let cat = catalog();
        let mut cfg = MigrateConfig::new(4, 80, 17).with_faults(lossy(17));
        cfg.migrate = false;
        let r = run_migrating_dags(&cat, &cfg);
        assert_eq!(r.faults.migrations, 0, "no cross-node moves when off");
        assert!(r.faults.orphaned_hops > 0);
        // Same final state as the migrating run (commit discipline is
        // placement-independent) — migration buys time, not state.
        let migrating =
            run_migrating_dags(&cat, &MigrateConfig::new(4, 80, 17).with_faults(lossy(17)));
        if r.faults.abandoned == 0 && migrating.faults.abandoned == 0 {
            assert_eq!(r.kv_fingerprint, migrating.kv_fingerprint);
        }
    }

    #[test]
    fn autoscaler_reacts_and_stays_deterministic() {
        let cat = catalog();
        let cfg = MigrateConfig::new(6, 150, 23)
            .with_faults(lossy(23))
            .with_autoscale(NodeScaleConfig::balanced(2));
        let a = run_migrating_dags(&cat, &cfg);
        let b = run_migrating_dags(&cat, &cfg);
        assert_eq!(a, b, "autoscaled faulty repeats bit-identical");
        let s = a.scale.expect("scaler armed");
        assert!(s.windows > 0);
        assert!(s.peak_active >= s.min_active);
        assert!(s.final_active >= 2, "never below min_nodes");
    }
}
