//! Differential oracle: lazy restoration must be observably bit-exact
//! with eager restoration.
//!
//! Lazy mode (ISSUE 3's tentpole) replaces the restore plan's
//! `PageWriteback` pass with `DeferArm`: the restore set is armed for
//! first-touch fault-in from the snapshot image instead of being copied
//! back on the inter-request critical path. These tests pin the three
//! properties that make that transformation safe:
//!
//! 1. **Observation equivalence** — over seeded random dirty/touch
//!    sequences, every word a request reads under lazy restoration
//!    equals what it reads under eager restoration (a request can never
//!    see another request's data, nor anything but snapshot state).
//! 2. **Terminal equivalence** — after a full drain, the lazy process
//!    matches the snapshot bit-exactly (the same `verify_matches_snapshot`
//!    oracle the eager engine is held to), page-for-page equal with the
//!    eager twin.
//! 3. **Work conservation** — per epoch the deferred set is exactly the
//!    eager restore set, and every obligation is resolved by exactly
//!    one first-touch fault, one drain writeback, one mapping drop
//!    (the function's own `munmap`/`madvise`), or stays pending:
//!    `Σ deferred == Σ lazy faults + Σ drained + Σ dropped + pending`.

use std::collections::BTreeMap;

use gh_mem::{PageRange, Perms, RequestId, Taint, Touch, VmaKind, Vpn};
use gh_proc::Kernel;
use gh_sim::{DetRng, Nanos};
use groundhog_core::restore::verify_matches_snapshot;
use groundhog_core::{GroundhogConfig, Manager};

const PAGES: u64 = 64;

struct Rig {
    kernel: Kernel,
    mgr: Manager,
    region: PageRange,
}

fn rig(cfg: GroundhogConfig) -> Rig {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("f");
    let region = kernel
        .run_charged(pid, |p, frames| {
            let r = p.mem.mmap(PAGES, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(
                        vpn,
                        Touch::WriteWord(0xC0FFEE ^ vpn.0),
                        Taint::Clean,
                        frames,
                    )
                    .unwrap();
            }
            r
        })
        .unwrap()
        .0;
    let mut mgr = Manager::new(pid, cfg);
    mgr.snapshot_now(&mut kernel).unwrap();
    Rig {
        kernel,
        mgr,
        region,
    }
}

/// Runs one request that writes `writes` page offsets then reads `reads`
/// page offsets, returning the words the reads observed. Restoration
/// runs per the rig's configuration on `end_request`.
fn request(r: &mut Rig, principal: &str, req: u64, writes: &[u64], reads: &[u64]) -> Vec<u64> {
    r.mgr.begin_request(&mut r.kernel, principal).unwrap();
    let region = r.region;
    let (observed, _) = r
        .kernel
        .run_charged(r.mgr.pid(), |p, frames| {
            for &off in writes {
                p.mem
                    .touch(
                        Vpn(region.start.0 + off),
                        Touch::WriteWord(0xAB00 ^ (req << 8) ^ off),
                        Taint::One(RequestId(req)),
                        frames,
                    )
                    .unwrap();
            }
            let mut observed = Vec::with_capacity(reads.len());
            for &off in reads {
                let vpn = Vpn(region.start.0 + off);
                p.mem.touch(vpn, Touch::Read, Taint::Clean, frames).unwrap();
                observed.push(p.mem.peek_word(vpn, 1, frames).unwrap());
            }
            observed
        })
        .unwrap();
    r.mgr.end_request(&mut r.kernel).unwrap();
    observed
}

fn random_offsets(rng: &mut DetRng, max_len: u64) -> Vec<u64> {
    let n = 1 + rng.next_below(max_len);
    (0..n).map(|_| rng.next_below(PAGES)).collect()
}

#[test]
fn lazy_reads_are_bit_exact_with_eager_over_random_epochs() {
    let mut rng = DetRng::new(0x1A2_E57);
    for trial in 0..4u64 {
        let mut eager = rig(GroundhogConfig::gh());
        let mut lazy = rig(GroundhogConfig::lazy());
        for epoch in 1..=8u64 {
            let writes = random_offsets(&mut rng, 20);
            let reads = random_offsets(&mut rng, 30);
            let req = trial * 100 + epoch;
            let a = request(&mut eager, "alice", req, &writes, &reads);
            let b = request(&mut lazy, "alice", req, &writes, &reads);
            assert_eq!(a, b, "trial {trial} epoch {epoch}: observed reads diverge");

            // The deferred set is exactly the eager restore set, and the
            // lazy critical-path restore is strictly cheaper.
            let er = eager.mgr.stats.last_restore.clone().unwrap();
            let lr = lazy.mgr.stats.last_restore.clone().unwrap();
            assert_eq!(er.dirty_pages, lr.dirty_pages, "identical dirty scans");
            assert_eq!(
                er.pages_restored, lr.pages_deferred,
                "defer set == eager restore set"
            );
            assert_eq!(lr.pages_restored, 0, "lazy copies nothing eagerly");
            assert_eq!(er.runs, lr.runs, "same coalescing");
            assert!(
                lr.total < er.total,
                "trial {trial} epoch {epoch}: lazy restore {} !< eager {}",
                lr.total,
                er.total
            );
        }
        // Terminal equivalence: drain, then both processes must match
        // the snapshot (and therefore each other) bit-exactly.
        let drained = lazy.mgr.drain_now(&mut lazy.kernel).unwrap();
        assert_eq!(
            drained, lazy.mgr.stats.lazy_drained_pages,
            "drain_now accounts its pages"
        );
        let lsnap = lazy.mgr.snapshot().unwrap().clone();
        let esnap = eager.mgr.snapshot().unwrap().clone();
        verify_matches_snapshot(&lazy.kernel, lazy.mgr.pid(), &lsnap).unwrap();
        verify_matches_snapshot(&eager.kernel, eager.mgr.pid(), &esnap).unwrap();
        for vpn in eager.region.iter() {
            let e = eager
                .kernel
                .process(eager.mgr.pid())
                .unwrap()
                .mem
                .peek_word(vpn, 1, eager.kernel.frames());
            let l = lazy.kernel.process(lazy.mgr.pid()).unwrap().mem.peek_word(
                vpn,
                1,
                lazy.kernel.frames(),
            );
            assert_eq!(e, l, "page {vpn:?} differs between modes");
        }
    }
}

#[test]
fn deferred_page_work_is_conserved() {
    // Every armed page resolves by exactly one fault, one drain, or
    // stays pending — and the armed totals equal what eager would have
    // copied.
    let mut rng = DetRng::new(0x5EED_0D11);
    let mut eager = rig(GroundhogConfig::gh());
    let mut lazy = rig(GroundhogConfig::lazy_drain());
    let mut eager_restored = 0u64;
    let mut lazy_faults = 0u64;
    for epoch in 1..=10u64 {
        let writes = random_offsets(&mut rng, 16);
        let reads = random_offsets(&mut rng, 24);
        eager.kernel.take_fault_accum();
        lazy.kernel.take_fault_accum();
        request(&mut eager, "alice", epoch, &writes, &reads);
        request(&mut lazy, "alice", epoch, &writes, &reads);
        assert_eq!(
            eager.kernel.take_fault_accum().lazy,
            0,
            "eager mode never lazy-faults"
        );
        lazy_faults += lazy.kernel.take_fault_accum().lazy;
        eager_restored += eager
            .mgr
            .stats
            .last_restore
            .as_ref()
            .unwrap()
            .pages_restored;
        // A modest idle gap between requests gives the background drain
        // some (but not unlimited) budget.
        if epoch % 2 == 0 {
            lazy.kernel.charge(Nanos::from_micros(40));
        }
    }
    assert_eq!(
        lazy.mgr.stats.deferred_pages, eager_restored,
        "per-run deferred total == eager copied total"
    );
    let pending = lazy.mgr.lazy_pending(&lazy.kernel);
    assert_eq!(
        lazy.mgr.stats.lazy_dropped_pages, 0,
        "no VMA churn in this workload"
    );
    assert_eq!(
        lazy.mgr.stats.deferred_pages,
        lazy_faults + lazy.mgr.stats.lazy_drained_pages + pending,
        "conservation: deferred = faulted + drained + pending"
    );
    assert!(lazy_faults > 0, "random touch sets must hit deferred pages");
    assert!(
        lazy.mgr.stats.lazy_drained_pages > 0,
        "idle gaps must drain some pages"
    );
}

#[test]
fn conservation_holds_under_madvise_churn() {
    // A function that madvises armed pages away discards their
    // obligations (exactly as eager restoration would have lost the
    // restored contents to the same madvise); the dropped count keeps
    // the conservation law exact, and the next restore re-arms the
    // pages as *fresh* obligations via its snapshot ∖ present term.
    let mut r = rig(GroundhogConfig::lazy());
    request(&mut r, "alice", 1, &[0, 1, 2, 3], &[]);
    assert_eq!(r.mgr.stats.deferred_pages, 4);
    // Request 2: madvise two armed pages, then read one of them.
    r.mgr.begin_request(&mut r.kernel, "alice").unwrap();
    let region = r.region;
    r.kernel
        .run_charged(r.mgr.pid(), |p, frames| {
            p.mem
                .madvise_dontneed(PageRange::at(region.start, 2), frames)
                .unwrap();
            // Post-madvise the page reads as a fresh zero page, not
            // snapshot content — identical to eager semantics.
            p.mem
                .touch(region.start, Touch::Read, Taint::Clean, frames)
                .unwrap();
            assert_eq!(p.mem.peek_word(region.start, 1, frames), Some(0));
            // And a still-armed page faults in snapshot content.
            let armed = Vpn(region.start.0 + 2);
            p.mem
                .touch(armed, Touch::Read, Taint::Clean, frames)
                .unwrap();
            assert_eq!(p.mem.peek_word(armed, 1, frames), Some(0xC0FFEE ^ armed.0));
        })
        .unwrap();
    let faults = r.kernel.take_fault_accum().lazy;
    assert_eq!(faults, 1, "only the armed read faults lazily");
    r.mgr.end_request(&mut r.kernel).unwrap();
    let s = &r.mgr.stats;
    assert_eq!(s.lazy_dropped_pages, 2, "madvised obligations discarded");
    // Epoch 2's restore re-arms the two madvised pages (snapshot ∖
    // present) plus nothing else: 4 + 2 fresh obligations so far.
    assert_eq!(s.deferred_pages, 6);
    let pending = r.mgr.lazy_pending(&r.kernel);
    assert_eq!(
        s.deferred_pages,
        faults + s.lazy_drained_pages + s.lazy_dropped_pages + pending,
        "conservation with churn: deferred = faulted + drained + dropped + pending"
    );
}

#[test]
fn background_drain_consumes_idle_without_charging_the_clock() {
    let mut r = rig(GroundhogConfig::lazy_drain());
    request(&mut r, "alice", 1, &[0, 1, 2, 3, 4, 5, 6, 7], &[]);
    let pending_before = r.mgr.lazy_pending(&r.kernel);
    assert_eq!(pending_before, 8, "all eight writes deferred");
    // A long idle gap: every pending page fits the drain budget.
    r.kernel.charge(Nanos::from_millis(10));
    let t0 = r.kernel.clock.now();
    r.mgr.begin_request(&mut r.kernel, "alice").unwrap();
    assert_eq!(
        r.kernel.clock.now(),
        t0,
        "the drain ran inside the already-elapsed idle gap"
    );
    assert_eq!(r.mgr.lazy_pending(&r.kernel), 0);
    assert_eq!(r.mgr.stats.lazy_drained_pages, 8);
    assert!(r.mgr.stats.lazy_drain_time > Nanos::ZERO);
    // And the drained state is genuinely clean: no first-touch faults
    // remain for this request.
    r.kernel.take_fault_accum();
    let region = r.region;
    r.kernel
        .run_charged(r.mgr.pid(), |p, frames| {
            for vpn in region.iter().take(8) {
                p.mem.touch(vpn, Touch::Read, Taint::Clean, frames).unwrap();
            }
        })
        .unwrap();
    assert_eq!(r.kernel.take_fault_accum().lazy, 0);
    r.mgr.end_request(&mut r.kernel).unwrap();
}

#[test]
fn partial_idle_gap_drains_a_prefix() {
    let mut r = rig(GroundhogConfig::lazy_drain());
    request(&mut r, "alice", 1, &[0, 10, 20, 30, 40, 50], &[]);
    assert_eq!(r.mgr.lazy_pending(&r.kernel), 6);
    // Budget for roughly two scattered writebacks (run setup + copy ≈
    // 2.7µs each), not six.
    r.kernel.charge(Nanos::from_micros(6));
    r.mgr.begin_request(&mut r.kernel, "alice").unwrap();
    let drained = r.mgr.stats.lazy_drained_pages;
    assert!(
        (1..6).contains(&drained),
        "partial budget drains a strict prefix, got {drained}"
    );
    assert_eq!(r.mgr.lazy_pending(&r.kernel), 6 - drained);
    r.mgr.end_request(&mut r.kernel).unwrap();
}

#[test]
fn skip_same_principal_deferral_followed_by_lazy_restore() {
    // §4.4's deferred-restore mode puts the rollback on the *next*
    // request's critical path when the principal changes. Under lazy
    // restoration that critical-path rollback shrinks to the DeferArm
    // registration — measure both and pin the ordering, then prove the
    // new principal still cannot observe the old principal's data.
    let lazy_cfg = GroundhogConfig {
        skip_same_principal: true,
        ..GroundhogConfig::lazy()
    };
    let eager_cfg = GroundhogConfig {
        skip_same_principal: true,
        ..GroundhogConfig::gh()
    };
    let dirty: Vec<u64> = (0..24).collect();

    let measure = |cfg: GroundhogConfig| {
        let mut r = rig(cfg);
        request(&mut r, "alice", 1, &dirty, &[]);
        assert_eq!(r.mgr.stats.restores, 0, "restore deferred by skip mode");
        // Bob's admission forces the rollback on the critical path.
        let t0 = r.kernel.clock.now();
        r.mgr.begin_request(&mut r.kernel, "bob").unwrap();
        let critical = r.kernel.clock.now() - t0;
        assert_eq!(r.mgr.stats.restores, 1);
        // Bob reads a page alice dirtied: snapshot content only.
        let vpn = r.region.start;
        let (word, _) = r
            .kernel
            .run_charged(r.mgr.pid(), |p, frames| {
                p.mem.touch(vpn, Touch::Read, Taint::Clean, frames).unwrap();
                p.mem.peek_word(vpn, 1, frames).unwrap()
            })
            .unwrap();
        assert_eq!(word, 0xC0FFEE ^ vpn.0, "bob observes snapshot state");
        r.mgr.end_request(&mut r.kernel).unwrap();
        // Lazily, alice's bytes may still sit (unobservably) in pending
        // frames; a drain must erase the last trace.
        if r.mgr.config().restore_mode.is_lazy() {
            // Bob's request itself deferred its restore (skip mode), so
            // force it before draining.
            r.mgr.begin_request(&mut r.kernel, "carol").unwrap();
            r.mgr.end_request(&mut r.kernel).unwrap();
            r.mgr.drain_now(&mut r.kernel).unwrap();
        }
        let pid = r.mgr.pid();
        assert!(r
            .kernel
            .process(pid)
            .unwrap()
            .mem
            .tainted_pages(RequestId(1), r.kernel.frames())
            .is_empty());
        critical
    };
    let lazy_critical = measure(lazy_cfg);
    let eager_critical = measure(eager_cfg);
    assert!(
        lazy_critical < eager_critical,
        "deferred rollback on the critical path must be cheaper lazily: \
         {lazy_critical} !< {eager_critical}"
    );
}

#[test]
fn cow_snapshot_lazy_faults_share_frames() {
    // §5.5's CoW snapshot holds frame references instead of copies; a
    // lazy *read* fault installs the snapshot's own frame shared, so
    // pool memory is not duplicated for pages that are only read back.
    let cfg = GroundhogConfig {
        cow_snapshot: true,
        ..GroundhogConfig::lazy()
    };
    let mut r = rig(cfg);
    request(&mut r, "alice", 1, &[3, 4], &[]);
    assert_eq!(r.mgr.lazy_pending(&r.kernel), 2);
    let snap_frames: BTreeMap<u64, gh_mem::FrameId> = match &r.mgr.snapshot().unwrap().pages {
        groundhog_core::snapshot::SnapshotPages::Cow(m) => {
            m.iter().map(|(v, id)| (v.0, id)).collect()
        }
        other => panic!("expected CoW snapshot, got {other:?}"),
    };
    let read_vpn = Vpn(r.region.start.0 + 3);
    let write_vpn = Vpn(r.region.start.0 + 4);
    r.kernel
        .run_charged(r.mgr.pid(), |p, frames| {
            p.mem
                .touch(read_vpn, Touch::Read, Taint::Clean, frames)
                .unwrap();
            p.mem
                .touch(write_vpn, Touch::WriteWord(0x99), Taint::Clean, frames)
                .unwrap();
        })
        .unwrap();
    let pid = r.mgr.pid();
    let proc = r.kernel.process(pid).unwrap();
    let read_frame = proc.mem.pte(read_vpn).unwrap().frame;
    let write_frame = proc.mem.pte(write_vpn).unwrap().frame;
    assert_eq!(
        read_frame, snap_frames[&read_vpn.0],
        "read fault shares the snapshot's frame"
    );
    assert!(r.kernel.frames().is_shared(read_frame));
    assert_ne!(
        write_frame, snap_frames[&write_vpn.0],
        "write fault takes a private copy"
    );
    // The snapshot's copy of the written page is untouched.
    assert_eq!(
        r.kernel
            .frames()
            .data(snap_frames[&write_vpn.0])
            .read_word(1),
        0xC0FFEE ^ write_vpn.0
    );
}

#[test]
fn shared_store_lazy_faults_pull_from_the_pool_store() {
    // Pool-shared snapshots keep one deduplicated image in the store;
    // lazy fault-in reads pages out of it on demand without ever
    // duplicating frames *into* the store.
    let store = gh_mem::SnapshotStore::new_handle();
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("f");
    let region = kernel
        .run_charged(pid, |p, frames| {
            let r = p.mem.mmap(16, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(0xF00D ^ vpn.0), Taint::Clean, frames)
                    .unwrap();
            }
            r
        })
        .unwrap()
        .0;
    let mut mgr = Manager::with_shared_store(
        pid,
        GroundhogConfig::lazy(),
        Some(("f".to_string(), store.clone())),
    );
    mgr.snapshot_now(&mut kernel).unwrap();
    let live_before = store.lock().unwrap().live_frames();
    let mut r = Rig {
        kernel,
        mgr,
        region,
    };
    request(&mut r, "alice", 1, &[0, 1, 2, 3], &[]);
    assert_eq!(r.mgr.lazy_pending(&r.kernel), 4);
    assert_eq!(
        store.lock().unwrap().live_frames(),
        live_before,
        "arming copies nothing into or out of the store"
    );
    let (word, _) = r
        .kernel
        .run_charged(r.mgr.pid(), |p, frames| {
            let vpn = region.start;
            p.mem.touch(vpn, Touch::Read, Taint::Clean, frames).unwrap();
            p.mem.peek_word(vpn, 1, frames).unwrap()
        })
        .unwrap();
    assert_eq!(word, 0xF00D ^ region.start.0, "store content faulted in");
    assert_eq!(
        store.lock().unwrap().live_frames(),
        live_before,
        "fault-in copies out of the store, never into it"
    );
    // Drain the rest and verify terminal equivalence through the store.
    r.mgr.drain_now(&mut r.kernel).unwrap();
    let snap = r.mgr.snapshot().unwrap().clone();
    verify_matches_snapshot(&r.kernel, r.mgr.pid(), &snap).unwrap();
}

#[test]
fn lazy_mode_without_drain_defers_across_epochs() {
    // Pages never touched stay pending across multiple restore cycles
    // and are still served correctly when finally touched.
    let mut r = rig(GroundhogConfig::lazy());
    request(&mut r, "alice", 1, &[0, 1, 2, 3], &[]);
    assert_eq!(r.mgr.lazy_pending(&r.kernel), 4);
    // Epoch 2 touches none of them and dirties two fresh pages.
    request(&mut r, "alice", 2, &[40, 41], &[50]);
    assert_eq!(
        r.mgr.lazy_pending(&r.kernel),
        6,
        "old obligations persist, new ones merge"
    );
    // Epoch 3 finally reads one of the epoch-1 pages: snapshot content.
    let observed = request(&mut r, "alice", 3, &[], &[2]);
    assert_eq!(observed, vec![0xC0FFEE ^ (r.region.start.0 + 2)]);
    // Page 2 was resolved by its read fault and, being clean afterwards,
    // was not re-armed by epoch 3's restore; everything else persists.
    assert_eq!(r.mgr.lazy_pending(&r.kernel), 5);
}
