//! The paper's security property, end-to-end: sequential request
//! isolation means no data of request *i* is observable by request *i+1*.
//!
//! Checked two ways: (1) taint scanning over the whole process state
//! (memory + registers) after each request; (2) the §1 Alice/Bob leak
//! scenario through a deliberately buggy function.

use groundhog::core::{GroundhogConfig, Manager};
use groundhog::faas::{Container, Request};
use groundhog::functions::catalog::by_name;
use groundhog::functions::leaky::{BuggyCache, INIT_MARKER};
use groundhog::isolation::StrategyKind;
use groundhog::mem::RequestId;
use groundhog::proc::Kernel;
use groundhog::runtime::{FunctionProcess, RuntimeKind, RuntimeProfile};

/// Runs `n` requests against a container and returns whether any request
/// taint survived in the final process state.
fn residual_taint(name: &str, kind: StrategyKind, n: u64) -> bool {
    let spec = by_name(name).unwrap();
    let mut c = Container::cold_start(&spec, kind, GroundhogConfig::gh(), 11).unwrap();
    for i in 1..=n {
        c.invoke(&Request::new(
            i,
            &format!("tenant-{}", i % 3),
            spec.input_kb,
        ))
        .unwrap();
    }
    let proc = c.kernel.process(c.fproc.pid).unwrap();
    let mem_taint = (1..=n).any(|i| {
        !proc
            .mem
            .tainted_pages(RequestId(i), c.kernel.frames())
            .is_empty()
    });
    let reg_taint = proc
        .threads
        .iter()
        .any(|t| (1..=n).any(|i| t.regs.taint.may_contain(RequestId(i))));
    mem_taint || reg_taint
}

#[test]
fn gh_leaves_no_residue_python() {
    assert!(!residual_taint("telco (p)", StrategyKind::Gh, 5));
}

#[test]
fn gh_leaves_no_residue_node() {
    assert!(!residual_taint("json (n)", StrategyKind::Gh, 4));
}

#[test]
fn gh_leaves_no_residue_c() {
    assert!(!residual_taint("atax (c)", StrategyKind::Gh, 5));
}

#[test]
fn base_retains_residue() {
    assert!(residual_taint("telco (p)", StrategyKind::Base, 3));
}

#[test]
fn ghnop_retains_residue() {
    // GHNOP is an optimization for same-trust callers, not isolation.
    assert!(residual_taint("telco (p)", StrategyKind::GhNop, 3));
}

#[test]
fn fork_parent_stays_clean() {
    assert!(!residual_taint("mvt (c)", StrategyKind::Fork, 5));
}

#[test]
fn faasm_heap_remap_isolates() {
    assert!(!residual_taint("pickle (p)", StrategyKind::Faasm, 4));
}

/// §1's scenario through the buggy caching function: with Groundhog, Bob
/// can never read Alice's secret — across many alternating requests.
#[test]
fn alice_bob_never_leaks_under_gh() {
    let mut kernel = Kernel::boot();
    let fproc = FunctionProcess::build(
        &mut kernel,
        "buggy",
        RuntimeProfile::for_kind(RuntimeKind::Python),
        3_000,
    );
    let cache = BuggyCache::init(&mut kernel, &fproc);
    let mut mgr = Manager::new(fproc.pid, GroundhogConfig::gh());
    mgr.snapshot_now(&mut kernel).unwrap();

    for i in 1..=10u64 {
        let principal = if i % 2 == 0 { "bob" } else { "alice" };
        let secret = 0x5EC0_0000 + i;
        mgr.begin_request(&mut kernel, principal).unwrap();
        let resp = cache.invoke(&mut kernel, &fproc, RequestId(i), secret);
        mgr.end_request(&mut kernel).unwrap();
        assert_eq!(
            resp.leaked_value, INIT_MARKER,
            "request {i} must only see snapshot-time contents"
        );
        assert!(!resp.leaked_from.is_tainted());
    }
}

/// The same function under BASE leaks every previous secret.
#[test]
fn alice_bob_leaks_under_base() {
    let mut kernel = Kernel::boot();
    let fproc = FunctionProcess::build(
        &mut kernel,
        "buggy",
        RuntimeProfile::for_kind(RuntimeKind::Python),
        3_000,
    );
    let cache = BuggyCache::init(&mut kernel, &fproc);
    let mut last_secret = None;
    for i in 1..=4u64 {
        let secret = 0x5EC0_0000 + i;
        let resp = cache.invoke(&mut kernel, &fproc, RequestId(i), secret);
        if let Some(prev) = last_secret {
            assert_eq!(resp.leaked_value, prev, "BASE leaks the previous secret");
        }
        last_secret = Some(secret);
    }
}

/// The skip-rollback optimization must still isolate across principals.
#[test]
fn skip_same_principal_is_safe_across_principals() {
    let mut kernel = Kernel::boot();
    let fproc = FunctionProcess::build(
        &mut kernel,
        "buggy",
        RuntimeProfile::for_kind(RuntimeKind::Python),
        3_000,
    );
    let cache = BuggyCache::init(&mut kernel, &fproc);
    let cfg = GroundhogConfig {
        skip_same_principal: true,
        ..GroundhogConfig::gh()
    };
    let mut mgr = Manager::new(fproc.pid, cfg);
    mgr.snapshot_now(&mut kernel).unwrap();

    // Two requests from alice: the second may see the first's data
    // (mutually trusting, §4.4) ...
    mgr.begin_request(&mut kernel, "alice").unwrap();
    cache.invoke(&mut kernel, &fproc, RequestId(1), 0xA1);
    mgr.end_request(&mut kernel).unwrap();
    mgr.begin_request(&mut kernel, "alice").unwrap();
    let second = cache.invoke(&mut kernel, &fproc, RequestId(2), 0xA2);
    mgr.end_request(&mut kernel).unwrap();
    assert_eq!(second.leaked_value, 0xA1, "same-trust reuse is permitted");

    // ... but bob must never see alice's data: the deferred restore runs
    // before his request is admitted.
    mgr.begin_request(&mut kernel, "bob").unwrap();
    let bob = cache.invoke(&mut kernel, &fproc, RequestId(3), 0xB0);
    mgr.end_request(&mut kernel).unwrap();
    assert_eq!(bob.leaked_value, INIT_MARKER, "cross-principal leak");
}

/// Isolation holds regardless of how much a request dirties.
#[test]
fn gh_isolates_write_heavy_functions() {
    assert!(!residual_taint("base64 (n)", StrategyKind::Gh, 3));
}
