//! Fixed-size deterministic quantile sketch over integer samples.
//!
//! The fleet and cluster drivers report sojourn-time and queue-depth
//! percentiles over millions of samples per run. Storing every sample
//! (`Vec<f64>` + sort at the end) makes peak stats memory linear in the
//! request count — at 10⁶–10⁷ requests that dominates the run. The
//! [`QuantileSketch`] replaces that path with a log-linear histogram of
//! **fixed** size (~30 KiB regardless of sample count):
//!
//! - values below [`SUBBUCKETS`] land in width-1 buckets (exact — queue
//!   depths and sub-microsecond durations never quantize);
//! - each higher power-of-two octave splits into [`SUBBUCKETS`] buckets,
//!   bounding the relative quantization error by `1/SUBBUCKETS`
//!   (≈ 1.6%) over the full `u64` range;
//! - quantiles report the highest value contained in the selected
//!   bucket, clamped into the exact `[min, max]`, so an all-equal
//!   stream reports its quantiles exactly and `quantile` is monotone
//!   in `q`;
//! - the sum is tracked exactly (`u128`), so means never quantize.
//!
//! Merging is **exact**: bucket counts add elementwise, so
//! `sketch(A) ∪ sketch(B) == sketch(A ++ B)` bit for bit, and merge is
//! associative and commutative. That is what makes the sketch safe for
//! deterministic parallel execution — per-shard sketches merged in any
//! grouping yield the same bytes as the serial reference — which the
//! merge-associativity tests below and the fleet/cluster differential
//! oracles pin down.

use crate::time::Nanos;

/// Sub-buckets per octave (power of two). Relative quantization error
/// of quantiles is at most `1/SUBBUCKETS`.
pub const SUBBUCKETS: u64 = 64;
/// log2 of [`SUBBUCKETS`].
const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros();
/// Total buckets: one identity range plus `(64 - SUB_BITS)` split
/// octaves covering the rest of the `u64` range.
const BUCKETS: usize = ((64 - SUB_BITS as u64 + 1) * SUBBUCKETS) as usize;

/// Bucket index of `v` (log-linear, HDR-histogram style).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBBUCKETS {
        v as usize
    } else {
        // Highest set bit h ≥ SUB_BITS; keep the top SUB_BITS+1 bits.
        let h = 63 - v.leading_zeros();
        let sub = (v >> (h - SUB_BITS)) - SUBBUCKETS;
        ((h - SUB_BITS + 1) as u64 * SUBBUCKETS + sub) as usize
    }
}

/// Highest value contained in bucket `i` (inclusive upper bound).
#[inline]
fn bucket_high(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBBUCKETS {
        return i;
    }
    let octave = i / SUBBUCKETS - 1; // 0 for values in [SUBBUCKETS, 2*SUBBUCKETS)
    let sub = i % SUBBUCKETS;
    let width = 1u64 << octave; // bucket width in this octave
    (SUBBUCKETS + sub + 1)
        .checked_mul(width)
        .map_or(u64::MAX, |hi| hi - 1)
}

/// A fixed-memory quantile sketch over `u64` samples with exact merge.
///
/// # Examples
///
/// ```
/// use gh_sim::sketch::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for v in 1..=1000u64 {
///     s.record(v);
/// }
/// assert_eq!(s.len(), 1000);
/// let p99 = s.quantile(99.0);
/// assert!((985..=1000).contains(&p99), "≤1.6% quantization: {p99}");
/// assert_eq!(s.quantile(100.0), 1000, "max is exact");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    sum_sq: u128,
    min: u64,
    max: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.sum_sq = self.sum_sq.saturating_add((v as u128) * (v as u128));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records one duration sample in integer nanoseconds.
    #[inline]
    pub fn record_nanos(&mut self, v: Nanos) {
        self.record(v.as_nanos());
    }

    /// Samples recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Mean interpreted as nanoseconds, in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean() / 1e6
    }

    /// Exact population standard deviation (up to `f64` rounding in the
    /// final subtraction); 0 when empty. Sums and squared sums are
    /// carried in `u128`, so the merge stays exact.
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        let var = (self.sum_sq as f64 / n - mean * mean).max(0.0);
        var.sqrt()
    }

    /// `std_dev` interpreted as nanoseconds, in milliseconds.
    pub fn std_dev_ms(&self) -> f64 {
        self.std_dev() / 1e6
    }

    /// The `q`-th percentile (`0 ≤ q ≤ 100`): the upper bound of the
    /// bucket holding the `ceil(q/100·n)`-th smallest sample, clamped
    /// into `[min, max]`. Exact for values below [`SUBBUCKETS`] and at
    /// the extremes; otherwise an over-estimate by at most
    /// `1/SUBBUCKETS`. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=100.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0;
        }
        let target = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// `quantile` interpreted as nanoseconds, in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) as f64 / 1e6
    }

    /// Folds `other` in. Exact: the result equals the sketch of the
    /// concatenated sample streams, so merging is associative and
    /// commutative.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq = self.sum_sq.saturating_add(other.sum_sq);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Heap memory held by one sketch — a constant, independent of how
    /// many samples were recorded (the bounded-stats-memory guarantee
    /// the cluster acceptance test asserts).
    pub const fn memory_bytes() -> usize {
        BUCKETS * core::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use crate::stats::percentile;

    #[test]
    fn identity_range_is_exact() {
        let mut s = QuantileSketch::new();
        for d in [0u64, 0, 1, 2, 4, 8, 63] {
            s.record(d);
        }
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(100.0), 63);
        // 7 samples, p50 → target rank 4 → sorted 4th = 2.
        assert_eq!(s.quantile(50.0), 2);
        assert!((s.mean() - 78.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every bucket's inclusive upper bound maps back to itself, and
        // the next value up maps to the following bucket.
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1 << 20, u64::MAX - 1] {
            let b = bucket_of(v);
            assert!(bucket_high(b) >= v, "v={v} b={b}");
            assert_eq!(bucket_of(bucket_high(b)), b, "v={v}");
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut s = QuantileSketch::new();
        let mut rng = DetRng::new(42);
        let samples: Vec<u64> = (0..50_000)
            .map(|_| 1_000 + rng.next_below(50_000_000))
            .collect();
        for &v in &samples {
            s.record(v);
        }
        let exact: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        for q in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let approx = s.quantile(q) as f64;
            let truth = percentile(&exact, q);
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 2.0 / SUBBUCKETS as f64, "q={q}: {approx} vs {truth}");
            assert!(
                approx >= truth * (1.0 - 1e-9) - 1.0,
                "upper-bound representative must not undershoot: q={q}"
            );
        }
        assert_eq!(s.quantile(100.0), *samples.iter().max().unwrap());
        assert_eq!(s.min(), *samples.iter().min().unwrap());
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let mut s = QuantileSketch::new();
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            s.record(rng.next_below(1 << 40));
        }
        let mut prev = 0;
        for q in 0..=100 {
            let v = s.quantile(q as f64);
            assert!(v >= prev, "q={q}");
            prev = v;
        }
    }

    #[test]
    fn all_equal_stream_is_exact() {
        let mut s = QuantileSketch::new();
        for _ in 0..1000 {
            s.record(123_456_789);
        }
        for q in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.quantile(q), 123_456_789);
        }
        assert!((s.mean() - 123_456_789.0).abs() < 1e-6);
    }

    #[test]
    fn merge_is_exact_and_associative() {
        let mut rng = DetRng::new(9);
        let streams: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..5_000).map(|_| rng.next_below(1 << 35)).collect())
            .collect();
        let sketch_of = |vs: &[u64]| {
            let mut s = QuantileSketch::new();
            for &v in vs {
                s.record(v);
            }
            s
        };
        let [a, b, c] = [
            sketch_of(&streams[0]),
            sketch_of(&streams[1]),
            sketch_of(&streams[2]),
        ];
        // sketch(A) ∪ sketch(B) == sketch(A ++ B).
        let mut ab = a.clone();
        ab.merge(&b);
        let mut concat = streams[0].clone();
        concat.extend_from_slice(&streams[1]);
        assert_eq!(ab, sketch_of(&concat));
        // (A ∪ B) ∪ C == A ∪ (B ∪ C) == (A ∪ C) ∪ B.
        let mut left = ab.clone();
        left.merge(&c);
        let mut right = b.clone();
        right.merge(&c);
        let mut right2 = a.clone();
        right2.merge(&right);
        assert_eq!(left, right2);
        let mut ac = a.clone();
        ac.merge(&c);
        ac.merge(&b);
        assert_eq!(left, ac);
        // Merging an empty sketch is the identity.
        let mut id = a.clone();
        id.merge(&QuantileSketch::new());
        assert_eq!(id, a);
    }

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(99.0), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn memory_is_constant() {
        assert_eq!(QuantileSketch::memory_bytes(), BUCKETS * 8);
        // ~30 KiB: bounded, request-count independent.
        assert!(QuantileSketch::memory_bytes() < 64 * 1024);
    }
}
