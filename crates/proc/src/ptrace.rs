//! The ptrace facility: the narrow interface Groundhog's manager drives.
//!
//! A [`PtraceSession`] corresponds to `PTRACE_ATTACH` .. `PTRACE_DETACH`
//! on a function process. It exposes exactly the operations §4.2–§4.4
//! describe, and charges each one's calibrated cost to the kernel clock so
//! that the restore breakdown of Fig. 8 can be measured phase by phase:
//!
//! - interrupting all threads,
//! - reading `/proc/pid/maps` and scanning `/proc/pid/pagemap`,
//! - saving/restoring per-thread register files,
//! - bulk page reads (snapshot) and writes (restore),
//! - syscall injection (`brk`, `mmap`, `munmap`, `madvise`, `mprotect`),
//! - clearing soft-dirty bits, and detaching.

use gh_mem::{AccessError, FrameData, Taint, Vma, Vpn};
use gh_sim::Nanos;

use crate::kernel::{Kernel, ProcError};
use crate::process::{Pid, ProcessState, Tid};
use crate::registers::RegisterSet;
use crate::syscall::Syscall;

/// Errors from ptrace operations.
#[derive(Debug, PartialEq, Eq)]
pub enum PtraceError {
    /// Process missing or dead.
    Proc(ProcError),
    /// Another tracer is attached.
    AlreadyTraced,
    /// The operation requires the tracee to be stopped.
    NotStopped,
    /// An injected syscall failed in the tracee.
    Syscall(AccessError),
    /// Register access for an unknown tid.
    NoSuchThread(Tid),
}

impl From<ProcError> for PtraceError {
    fn from(e: ProcError) -> Self {
        PtraceError::Proc(e)
    }
}

impl core::fmt::Display for PtraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PtraceError::Proc(e) => write!(f, "{e}"),
            PtraceError::AlreadyTraced => write!(f, "process already traced"),
            PtraceError::NotStopped => write!(f, "tracee is not stopped"),
            PtraceError::Syscall(e) => write!(f, "injected syscall failed: {e}"),
            PtraceError::NoSuchThread(t) => write!(f, "no such thread: {t:?}"),
        }
    }
}
impl std::error::Error for PtraceError {}

/// An attached ptrace session. Dropping without [`PtraceSession::detach`]
/// leaves the tracee stopped (as real ptrace would on tracer death it
/// would resume — the manager never relies on that, and tests detach
/// explicitly).
pub struct PtraceSession<'k> {
    k: &'k mut Kernel,
    pid: Pid,
}

/// A page observed during a pagemap scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagemapEntry {
    /// Virtual page number.
    pub vpn: Vpn,
    /// Soft-dirty bit (pagemap bit 55).
    pub soft_dirty: bool,
}

impl<'k> PtraceSession<'k> {
    /// `PTRACE_ATTACH`: begins tracing `pid`.
    pub fn attach(k: &'k mut Kernel, pid: Pid) -> Result<Self, PtraceError> {
        let proc = k.process_mut(pid)?;
        if proc.traced_by_manager {
            return Err(PtraceError::AlreadyTraced);
        }
        proc.traced_by_manager = true;
        Ok(PtraceSession { k, pid })
    }

    /// The traced pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Access to the kernel (cost model, clock) during the session.
    pub fn kernel(&mut self) -> &mut Kernel {
        self.k
    }

    fn require_stopped(&self) -> Result<(), PtraceError> {
        let proc = self.k.process(self.pid)?;
        if proc.state != ProcessState::Stopped {
            return Err(PtraceError::NotStopped);
        }
        Ok(())
    }

    /// Interrupts (group-stops) all threads; charges the per-thread
    /// interrupt cost. Idempotent.
    pub fn interrupt_all(&mut self) -> Result<Nanos, PtraceError> {
        let threads = {
            let proc = self.k.process_mut(self.pid)?;
            proc.state = ProcessState::Stopped;
            proc.thread_count()
        };
        let dt = self.k.cost.interrupt_cost(threads);
        self.k.charge(dt);
        Ok(dt)
    }

    /// Resumes all threads (`PTRACE_CONT`).
    pub fn resume(&mut self) -> Result<(), PtraceError> {
        let proc = self.k.process_mut(self.pid)?;
        proc.state = ProcessState::Running;
        Ok(())
    }

    /// `PTRACE_GETREGS` for every thread; charges per-thread cost.
    pub fn save_regs_all(&mut self) -> Result<Vec<(Tid, RegisterSet)>, PtraceError> {
        self.require_stopped()?;
        let proc = self.k.process(self.pid)?;
        let out: Vec<(Tid, RegisterSet)> = proc
            .threads
            .iter()
            .map(|t| (t.tid, t.regs.clone()))
            .collect();
        let dt = self.k.cost.regs_cost(out.len());
        self.k.charge(dt);
        Ok(out)
    }

    /// `PTRACE_SETREGS` for every thread in `saved`; charges per-thread
    /// cost. Threads that no longer exist yield an error.
    pub fn restore_regs_all(&mut self, saved: &[(Tid, RegisterSet)]) -> Result<(), PtraceError> {
        self.require_stopped()?;
        {
            let proc = self.k.process_mut(self.pid)?;
            for (tid, regs) in saved {
                let t = proc
                    .thread_mut(*tid)
                    .ok_or(PtraceError::NoSuchThread(*tid))?;
                t.regs.load(regs);
            }
        }
        let dt = self.k.cost.regs_cost(saved.len());
        self.k.charge(dt);
        Ok(())
    }

    /// Reads `/proc/pid/maps`; charges per-VMA cost.
    pub fn read_maps(&mut self) -> Result<Vec<Vma>, PtraceError> {
        let proc = self.k.process(self.pid)?;
        let maps = proc.mem.maps();
        let dt = self.k.cost.read_maps_cost(maps.len());
        self.k.charge(dt);
        Ok(maps)
    }

    /// The page-metadata footprint of the tracee right now, for
    /// [`CostModel`](gh_sim::CostModel) charging.
    fn scan_shape(&self, dirty_pages: u64) -> Result<gh_sim::ScanShape, PtraceError> {
        let proc = self.k.process(self.pid)?;
        Ok(gh_sim::ScanShape {
            mapped_pages: proc.mem.mapped_pages(),
            vmas: proc.mem.vma_count(),
            extents: proc.mem.extent_count() as u64,
            dirty_pages,
        })
    }

    /// Scans `/proc/pid/pagemap` over the whole mapped address space;
    /// charges the per-PTE scan cost and returns present pages.
    ///
    /// This is the legacy per-page interface (kept for the differential
    /// oracles and tests); production paths use
    /// [`PtraceSession::dirty_scan`], whose host-side work is
    /// `O(dirty + extents)`.
    pub fn pagemap_scan(&mut self) -> Result<Vec<PagemapEntry>, PtraceError> {
        let proc = self.k.process(self.pid)?;
        let mapped = proc.mem.mapped_pages();
        let vmas = proc.mem.vma_count();
        let entries: Vec<PagemapEntry> = proc
            .mem
            .pagemap()
            .map(|(vpn, pte)| PagemapEntry {
                vpn,
                soft_dirty: pte.soft_dirty(),
            })
            .collect();
        let dt = self.k.cost.scan_cost_vmas(mapped, vmas);
        self.k.charge(dt);
        Ok(entries)
    }

    /// Collects the soft-dirty pages plus the present-page runs in one
    /// pass — the run-based replacement for [`PtraceSession::pagemap_scan`].
    /// Host-side work is `O(dirty + extents)`; the simulated charge
    /// follows the kernel's [`ChargeModel`](gh_sim::ChargeModel): under
    /// paper-parity charging it is exactly the full pagemap walk the
    /// legacy interface charged, so virtual timelines are bit-identical.
    pub fn dirty_scan(&mut self) -> Result<(Vec<Vpn>, Vec<gh_mem::PageRange>), PtraceError> {
        let proc = self.k.process(self.pid)?;
        let dirty = proc.mem.soft_dirty_pages();
        let present_runs = proc.mem.present_runs();
        let shape = self.scan_shape(dirty.len() as u64)?;
        let dt = self.k.cost.dirty_scan_cost(shape);
        self.k.charge(dt);
        Ok((dirty, present_runs))
    }

    /// Captures the present pages as refcounted frame runs (the
    /// snapshotter's run-based capture). No cost charged here: the
    /// snapshotter charges the mode-dependent capture cost.
    pub fn capture_frame_runs(&mut self) -> Result<Vec<(Vpn, Vec<gh_mem::FrameId>)>, PtraceError> {
        let (proc, frames) = self.k.mem_ctx(self.pid)?;
        Ok(proc.mem.capture_frame_runs(frames))
    }

    /// `echo 4 > /proc/pid/clear_refs`; charged per the kernel's
    /// [`ChargeModel`](gh_sim::ChargeModel) (per mapped page under paper
    /// parity, per extent under extent charging). Host-side work is
    /// `O(extents + dirty)` either way.
    pub fn clear_soft_dirty(&mut self) -> Result<Nanos, PtraceError> {
        let shape = self.scan_shape(0)?;
        let (proc, _) = self.k.mem_ctx(self.pid)?;
        proc.mem.clear_soft_dirty();
        let dt = self.k.cost.rearm_cost(shape);
        self.k.charge(dt);
        Ok(dt)
    }

    /// Arms userfaultfd write-protection over all present pages (the UFFD
    /// tracking backend, §4.3); charged like a `clear_refs` pass.
    pub fn arm_uffd(&mut self) -> Result<(), PtraceError> {
        let shape = self.scan_shape(0)?;
        let (proc, _) = self.k.mem_ctx(self.pid)?;
        proc.mem.arm_uffd_wp();
        let dt = self.k.cost.rearm_cost(shape);
        self.k.charge(dt);
        Ok(())
    }

    /// Disarms userfaultfd mode and returns the pages it reported dirty.
    /// Cost is proportional to the log length (no full scan — UFFD's
    /// advantage when few pages are dirtied).
    pub fn disarm_uffd(&mut self) -> Result<Vec<Vpn>, PtraceError> {
        let (proc, _) = self.k.mem_ctx(self.pid)?;
        let log = proc.mem.disarm_uffd();
        let dt = self.k.cost.scan_pte * log.len() as u64;
        self.k.charge(dt);
        Ok(log)
    }

    /// Injects one syscall into the stopped tracee; charges the injection
    /// cost even when the syscall fails (the trap round-trip happens
    /// regardless).
    pub fn inject(&mut self, sc: Syscall) -> Result<(), PtraceError> {
        self.require_stopped()?;
        let dt = self.k.cost.syscall_inject;
        self.k.charge(dt);
        let (proc, frames) = self.k.mem_ctx(self.pid)?;
        let res = match sc {
            Syscall::Brk(v) => proc.mem.set_brk(v, frames).map(|_| ()),
            Syscall::MmapFixed { range, perms, file } => {
                let kind = match file {
                    Some(name) => gh_mem::VmaKind::File(name),
                    None => gh_mem::VmaKind::Anon,
                };
                proc.mem.mmap_fixed(range, perms, kind)
            }
            Syscall::Munmap(range) => proc.mem.munmap(range, frames),
            Syscall::MadviseDontneed(range) => proc.mem.madvise_dontneed(range, frames),
            Syscall::Mprotect(range, perms) => proc.mem.mprotect(range, perms),
        };
        res.map_err(PtraceError::Syscall)
    }

    /// Reads one page's contents (snapshot path). No cost charged here:
    /// the snapshotter charges the aggregate per-page copy cost.
    pub fn read_page(&mut self, vpn: Vpn) -> Result<Option<FrameData>, PtraceError> {
        let (proc, frames) = self.k.mem_ctx(self.pid)?;
        Ok(proc.mem.pte(vpn).map(|pte| frames.data(pte.frame).clone()))
    }

    /// Writes one page wholesale (restore path); contents become `taint`.
    /// No cost charged here: the restorer charges coalesced-run costs.
    pub fn write_page(
        &mut self,
        vpn: Vpn,
        data: &FrameData,
        taint: Taint,
    ) -> Result<(), PtraceError> {
        self.require_stopped()?;
        let (proc, frames) = self.k.mem_ctx(self.pid)?;
        proc.mem
            .restore_page(vpn, data, taint, frames)
            .map_err(PtraceError::Syscall)
    }

    /// Writes a whole contiguous run wholesale (`data` holds one page per
    /// vpn of `range`); contents become `taint`. State outcome is
    /// identical to [`PtraceSession::write_page`] per page ascending, at
    /// one page-table walk per run. No cost charged here: the restorer
    /// charges coalesced-run costs.
    pub fn write_run(
        &mut self,
        range: gh_mem::PageRange,
        data: &[FrameData],
        taint: Taint,
    ) -> Result<(), PtraceError> {
        self.require_stopped()?;
        let (proc, frames) = self.k.mem_ctx(self.pid)?;
        proc.mem
            .restore_run(range, data, taint, frames)
            .map_err(PtraceError::Syscall)
    }

    /// Registers pages for on-demand restoration (the lazy restore
    /// mode's `DeferArm` pass): instead of writing the restore set back,
    /// the manager write-protects/unmaps it against the snapshot image
    /// and the kernel delivers a fault to the handler on first touch.
    /// The restorer charges the per-run registration cost.
    pub fn arm_lazy(
        &mut self,
        pages: std::collections::BTreeMap<u64, gh_mem::LazyPageSource>,
    ) -> Result<(), PtraceError> {
        self.require_stopped()?;
        let (proc, _) = self.k.mem_ctx(self.pid)?;
        proc.mem.arm_lazy(pages);
        Ok(())
    }

    /// Evicts a page (restore of a newly paged page via `madvise`). The
    /// madvise bookkeeping cost is charged by the restorer.
    pub fn evict_page(&mut self, vpn: Vpn) -> Result<(), PtraceError> {
        self.require_stopped()?;
        let (proc, frames) = self.k.mem_ctx(self.pid)?;
        proc.mem.evict_page(vpn, frames);
        Ok(())
    }

    /// Zeroes one page (stack zeroing); the restorer charges the cost.
    pub fn zero_page(&mut self, vpn: Vpn) -> Result<(), PtraceError> {
        self.require_stopped()?;
        let (proc, frames) = self.k.mem_ctx(self.pid)?;
        proc.mem
            .zero_page(vpn, frames)
            .map_err(PtraceError::Syscall)
    }

    /// `PTRACE_DETACH`: resumes the tracee and ends the session, charging
    /// the per-thread detach cost.
    pub fn detach(self) -> Result<Nanos, PtraceError> {
        let threads = {
            let proc = self.k.process_mut(self.pid)?;
            proc.state = ProcessState::Running;
            proc.traced_by_manager = false;
            proc.thread_count()
        };
        let dt = self.k.cost.detach_cost(threads);
        self.k.charge(dt);
        Ok(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::{PageRange, Perms, Touch, VmaKind};

    fn machine_with_proc() -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let pid = k.spawn("tracee");
        k.run_charged(pid, |p, frames| {
            let r = p.mem.mmap(8, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(0xCAFE), Taint::Clean, frames)
                    .unwrap();
            }
        })
        .unwrap();
        (k, pid)
    }

    #[test]
    fn attach_is_exclusive() {
        let (mut k, pid) = machine_with_proc();
        {
            let _s = PtraceSession::attach(&mut k, pid).unwrap();
        }
        // Session dropped without detach: still traced. Re-attach fails.
        assert!(matches!(
            PtraceSession::attach(&mut k, pid),
            Err(PtraceError::AlreadyTraced)
        ));
    }

    #[test]
    fn attach_detach_roundtrip() {
        let (mut k, pid) = machine_with_proc();
        let s = PtraceSession::attach(&mut k, pid).unwrap();
        s.detach().unwrap();
        let s2 = PtraceSession::attach(&mut k, pid).unwrap();
        s2.detach().unwrap();
    }

    #[test]
    fn regs_require_stop() {
        let (mut k, pid) = machine_with_proc();
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        assert_eq!(s.save_regs_all().unwrap_err(), PtraceError::NotStopped);
        s.interrupt_all().unwrap();
        let regs = s.save_regs_all().unwrap();
        assert_eq!(regs.len(), 1);
        s.detach().unwrap();
    }

    #[test]
    fn interrupt_charges_per_thread() {
        let (mut k, pid) = machine_with_proc();
        k.spawn_thread(pid).unwrap();
        k.spawn_thread(pid).unwrap();
        let expected = k.cost.interrupt_cost(3);
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        let dt = s.interrupt_all().unwrap();
        assert_eq!(dt, expected);
        s.detach().unwrap();
    }

    #[test]
    fn save_restore_regs_roundtrip() {
        let (mut k, pid) = machine_with_proc();
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        let saved = s.save_regs_all().unwrap();
        s.resume().unwrap();
        s.kernel()
            .process_mut(pid)
            .unwrap()
            .main_thread_mut()
            .regs
            .scramble(99, Taint::Clean);
        s.interrupt_all().unwrap();
        s.restore_regs_all(&saved).unwrap();
        let now = s.kernel().process(pid).unwrap().main_thread().regs.clone();
        assert_eq!(now, saved[0].1);
        s.detach().unwrap();
    }

    #[test]
    fn pagemap_scan_sees_dirty_bits() {
        let (mut k, pid) = machine_with_proc();
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        let entries = s.pagemap_scan().unwrap();
        assert_eq!(entries.len(), 8);
        assert!(entries.iter().all(|e| e.soft_dirty), "all freshly written");
        s.clear_soft_dirty().unwrap();
        let entries = s.pagemap_scan().unwrap();
        assert!(entries.iter().all(|e| !e.soft_dirty));
        s.detach().unwrap();
    }

    #[test]
    fn inject_requires_stop_and_applies() {
        let (mut k, pid) = machine_with_proc();
        let heap = k.process(pid).unwrap().mem.config().heap_base;
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        let err = s.inject(Syscall::Brk(Vpn(heap.0 + 10))).unwrap_err();
        assert_eq!(err, PtraceError::NotStopped);
        s.interrupt_all().unwrap();
        s.inject(Syscall::Brk(Vpn(heap.0 + 10))).unwrap();
        assert_eq!(s.kernel().process(pid).unwrap().mem.brk(), Vpn(heap.0 + 10));
        s.detach().unwrap();
    }

    #[test]
    fn inject_surfaces_tracee_errors() {
        let (mut k, pid) = machine_with_proc();
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        let err = s
            .inject(Syscall::Munmap(PageRange::new(Vpn(5), Vpn(5))))
            .unwrap_err();
        assert!(matches!(err, PtraceError::Syscall(AccessError::BadRange)));
        s.detach().unwrap();
    }

    #[test]
    fn page_read_write_roundtrip() {
        let (mut k, pid) = machine_with_proc();
        let vpn = k.process(pid).unwrap().mem.pagemap().next().unwrap().0;
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        let page = s.read_page(vpn).unwrap().expect("present");
        assert_eq!(page.read_word(1), 0xCAFE);
        s.write_page(vpn, &FrameData::Zero, Taint::Clean).unwrap();
        assert_eq!(s.read_page(vpn).unwrap().unwrap().read_word(1), 0);
        s.detach().unwrap();
    }

    #[test]
    fn uffd_arm_and_log() {
        let (mut k, pid) = machine_with_proc();
        {
            let mut s = PtraceSession::attach(&mut k, pid).unwrap();
            s.interrupt_all().unwrap();
            s.arm_uffd().unwrap();
            s.detach().unwrap();
        }
        // Function writes two pages.
        let first = k.process(pid).unwrap().mem.pagemap().next().unwrap().0;
        k.run_charged(pid, |p, frames| {
            p.mem
                .touch(first, Touch::WriteWord(1), Taint::Clean, frames)
                .unwrap();
        })
        .unwrap();
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        let log = s.disarm_uffd().unwrap();
        assert_eq!(log, vec![first]);
        s.detach().unwrap();
    }

    #[test]
    fn detach_resumes() {
        let (mut k, pid) = machine_with_proc();
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        s.detach().unwrap();
        assert_eq!(k.process(pid).unwrap().state, ProcessState::Running);
        assert!(!k.process(pid).unwrap().traced_by_manager);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::registers::RegisterSet;
    use gh_mem::{Perms, Taint, Touch, VmaKind};

    #[test]
    fn restore_regs_for_unknown_tid_fails() {
        let mut k = Kernel::boot();
        let pid = k.spawn("t");
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        let bogus = vec![(Tid(0xDEAD), RegisterSet::new())];
        assert_eq!(
            s.restore_regs_all(&bogus).unwrap_err(),
            PtraceError::NoSuchThread(Tid(0xDEAD))
        );
        s.detach().unwrap();
    }

    #[test]
    fn write_page_requires_stop() {
        let mut k = Kernel::boot();
        let pid = k.spawn("t");
        k.run_charged(pid, |p, frames| {
            let r = p.mem.mmap(1, Perms::RW, VmaKind::Anon).unwrap();
            p.mem
                .touch(r.start, Touch::WriteWord(1), Taint::Clean, frames)
                .unwrap();
        })
        .unwrap();
        let vpn = k.process(pid).unwrap().mem.pagemap().next().unwrap().0;
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        assert_eq!(
            s.write_page(vpn, &gh_mem::FrameData::Zero, Taint::Clean)
                .unwrap_err(),
            PtraceError::NotStopped
        );
        s.detach().unwrap();
    }

    #[test]
    fn operations_on_dead_process_fail() {
        let mut k = Kernel::boot();
        let pid = k.spawn("t");
        k.exit(pid).unwrap();
        assert!(matches!(
            PtraceSession::attach(&mut k, pid),
            Err(PtraceError::Proc(_))
        ));
    }
}
