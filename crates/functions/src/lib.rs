//! The paper's benchmark functions and their execution behaviours.
//!
//! §5 evaluates Groundhog on 58 functions: 22 Python functions from
//! pyperformance, 23 C functions from PolyBench, and 13 functions
//! (6 Python, 7 Node.js) from FaaSProfiler. The experiments do not depend
//! on *what* those functions compute — only on their measured properties:
//! invoker latency, address-space size, write-set size, layout churn, and
//! two anomalies the paper calls out (the logging(p) memory leak and
//! img-resize(n)'s time-driven GC sensitivity).
//!
//! [`catalog`] transcribes those properties per benchmark from Table 3
//! (with Table 1/2 reference columns kept for validation), and
//! [`behavior`] executes a synthetic workload with exactly those
//! properties against a simulated process: the same number of pages
//! written, spread over the managed regions; the same footprint; the same
//! churn. [`micro`] is the §5.2 microbenchmark (pre-allocate N pages;
//! each invocation dirties a fraction and reads every mapped page).

pub mod behavior;
pub mod catalog;
pub mod leaky;
pub mod micro;
pub mod spec;

pub use behavior::{ExecReport, Executor};
pub use micro::MicroFunction;
pub use spec::{BehaviorFlags, FaasmRef, FunctionSpec, Suite};
