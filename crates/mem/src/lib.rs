//! Simulated Linux virtual memory: pages, frames, PTEs, VMAs.
//!
//! This crate is the kernel-memory substrate that Groundhog's
//! snapshot/restore engine operates on. It models, at page granularity and
//! with real byte contents, exactly the mechanisms the paper's C
//! implementation drives through `/proc` and `ptrace`:
//!
//! - a per-process **address space** of non-overlapping VMAs
//!   ([`space::AddressSpace`]), with `mmap`/`munmap`/`mprotect`/`brk`/
//!   `madvise` semantics including VMA splitting and merging;
//! - an **extent-based page table** (`extent`, internal): maximal runs
//!   of contiguous present pages sharing one flag value
//!   ([`pte::PteFlags`]: present, copy-on-write, **soft-dirty**,
//!   soft-dirty write-protection — the `clear_refs` arming that makes
//!   the next write fault — userfaultfd write-protection, TLB-cold),
//!   with per-page frames in flat chunks. Whole-table flag transforms
//!   (`clear_refs`, uffd arm, CoW marking) are `O(extents)`; snapshot
//!   capture hands out refcounted **frame runs** ([`frame::FrameRuns`])
//!   without copying contents; restore planning consumes run lists via
//!   the [`runs`] set algebra;
//! - a **hierarchical dirty index** ([`index::VpnIndex`], a sparse
//!   two-level 64-ary bitmap) over the soft-dirty set, the uffd log and
//!   the taint-carrying pages, making `soft_dirty_pages`, `disarm_uffd`
//!   and `tainted_pages` `O(interesting pages)` scans instead of
//!   page-table walks — the bookkeeping obeys Groundhog's own law that
//!   cost scales with the *dirtied* state, not the *mapped* state;
//! - a shared **frame table** ([`frame::FrameTable`]) with reference counts
//!   so `fork` produces genuine CoW sharing;
//! - a pool-shared **snapshot store** ([`store::SnapshotStore`]): one
//!   deduplicating frame table per container pool, so N near-identical
//!   clean-state snapshots cost one base image plus per-container deltas
//!   instead of N full copies;
//! - a **batched fault path** ([`batch::TouchBatch`],
//!   [`space::AddressSpace::touch_batch`]): a pre-sorted plan of page
//!   touches resolved in one ordered cursor walk over the extent map and
//!   frame chunks — `O(batch + touched extents/chunks)` instead of one
//!   `BTreeMap` probe and `set_flags` split per page — bit-identical in
//!   counters, dirty/taint state and contents to the per-page loop
//!   (pinned by the `batch_oracle` differential test);
//! - **fault accounting** ([`space::FaultCounters`]): every minor, CoW,
//!   soft-dirty, userfaultfd and lazy-restore fault is counted so the
//!   cost model can charge it to the virtual clock — the in-function
//!   overheads of §5.2.1 *emerge* from these counts rather than being
//!   scripted;
//! - an **on-demand restore path** ([`space::LazyPageSource`],
//!   [`space::AddressSpace::arm_lazy`]): the restorer can register the
//!   restore set against the snapshot image instead of writing it back;
//!   the first touch of a pending page takes one lazy fault that
//!   installs the snapshot contents (by value, as a shared CoW frame,
//!   or copied out of the pool [`store::SnapshotStore`]) before the
//!   access proceeds, and a background drain can write back the rest
//!   during idle time;
//! - **taint tracking** ([`taint::Taint`]): every byte written on behalf of
//!   a request is labelled with the request's identity, which lets the test
//!   suite prove (not assume) the paper's isolation property: after a
//!   Groundhog restore, no byte of the previous request survives.
//!
//! Page contents are stored compactly ([`frame::FrameData`]): zero pages,
//! deterministic pattern pages, sparsely patched pages and fully
//! materialized literal pages, so processes with hundreds of thousands of
//! mapped pages (Node.js maps ~156K pages in Table 3) stay cheap to
//! simulate while remaining *logically byte-exact*.

pub mod addr;
pub mod batch;
mod extent;
pub mod frame;
pub mod index;
pub mod pte;
pub mod runs;
pub mod space;
pub mod store;
pub mod taint;
pub mod vma;

pub use addr::{PageRange, VirtAddr, Vpn, PAGE_SIZE};
pub use batch::{BatchOutcome, TouchBatch, TouchItem};
pub use frame::{FrameData, FrameId, FrameRuns, FrameTable};
pub use index::VpnIndex;
pub use pte::{Pte, PteFlags};
pub use runs::{runs_from_sorted, runs_intersect, runs_len, runs_subtract, runs_union};
pub use space::{AccessError, AddressSpace, FaultCounters, LazyPageSource, SpaceConfig, Touch};
pub use store::{SnapshotStore, StoreHandle, StoreStats};
pub use taint::{RequestId, Taint};
pub use vma::{Perms, Vma, VmaKind};
