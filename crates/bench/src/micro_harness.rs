//! Harness for the §5.2 microbenchmark under each isolation mode.

use gh_functions::micro::MicroFunction;
use gh_mem::RequestId;
use gh_proc::{Kernel, Pid};
use gh_sim::Nanos;
use groundhog_core::{GroundhogConfig, Manager};

/// Isolation modes of the microbenchmark experiments (Fig. 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MicroMode {
    /// Insecure reuse.
    Base,
    /// Tracking armed once, never restored.
    GhNop,
    /// Full Groundhog.
    Gh,
    /// Fork per request.
    Fork,
}

impl MicroMode {
    /// Legend label.
    pub fn label(self) -> &'static str {
        match self {
            MicroMode::Base => "base",
            MicroMode::GhNop => "GH-NOP",
            MicroMode::Gh => "GH",
            MicroMode::Fork => "fork",
        }
    }
}

/// Mean latencies of one micro configuration.
#[derive(Clone, Copy, Debug)]
pub struct MicroLatency {
    /// In-function latency (low-load workload; solid lines).
    pub exec_ms: f64,
    /// Full request cycle incl. off-path work (high-load workload;
    /// dashed lines — back-to-back requests wait for restoration).
    pub cycle_ms: f64,
}

/// A built microbenchmark instance under one mode.
pub struct MicroRig {
    kernel: Kernel,
    micro: MicroFunction,
    mode: MicroMode,
    manager: Option<Manager>,
    parent: Pid,
    req: u64,
}

impl MicroRig {
    /// Builds the rig: allocates the region, pages it in via the dummy
    /// pass, snapshots under GH/GHNOP.
    pub fn build(mapped_pages: u64, mode: MicroMode) -> MicroRig {
        let cfg = if mode == MicroMode::GhNop {
            GroundhogConfig::ghnop()
        } else {
            GroundhogConfig::gh()
        };
        Self::build_cfg(mapped_pages, mode, cfg)
    }

    /// Builds the rig with an explicit Groundhog configuration (for the
    /// ablation experiments: coalescing off, UFFD tracking, ...).
    pub fn build_cfg(mapped_pages: u64, mode: MicroMode, cfg: GroundhogConfig) -> MicroRig {
        let mut kernel = Kernel::boot();
        let micro = MicroFunction::build(&mut kernel, mapped_pages);
        let parent = micro.pid;
        let manager = match mode {
            MicroMode::Gh | MicroMode::GhNop => {
                let mut m = Manager::new(parent, cfg);
                m.snapshot_now(&mut kernel).expect("snapshot");
                Some(m)
            }
            _ => None,
        };
        MicroRig {
            kernel,
            micro,
            mode,
            manager,
            parent,
            req: 0,
        }
    }

    /// Snapshot cost: (duration ms, manager memory MiB). Zero for modes
    /// without a snapshot.
    pub fn snapshot_stats(&self) -> (f64, f64) {
        match self.manager.as_ref() {
            Some(m) => {
                let ms = m
                    .stats
                    .snapshot
                    .map(|r| r.duration.as_millis_f64())
                    .unwrap_or(0.0);
                let mib = m
                    .snapshot()
                    .map(|s| s.memory_bytes() as f64 / (1024.0 * 1024.0))
                    .unwrap_or(0.0);
                (ms, mib)
            }
            None => (0.0, 0.0),
        }
    }

    /// Restores performed so far (GH mode).
    pub fn restores(&self) -> u64 {
        self.manager.as_ref().map_or(0, |m| m.stats.restores)
    }

    /// Restores skipped via the same-principal optimization.
    pub fn skipped_restores(&self) -> u64 {
        self.manager
            .as_ref()
            .map_or(0, |m| m.stats.skipped_restores)
    }

    /// Runs one request, returning (exec, cycle) durations.
    pub fn request(&mut self, dirty_fraction: f64) -> (Nanos, Nanos) {
        self.req += 1;
        let rid = RequestId(self.req);
        let t0 = self.kernel.clock.now();
        match self.mode {
            MicroMode::Base | MicroMode::GhNop => {
                if let Some(m) = self.manager.as_mut() {
                    m.begin_request(&mut self.kernel, "client").expect("admit");
                }
                let r = self.micro.invoke(&mut self.kernel, dirty_fraction, rid);
                let _ = r;
                let exec = self.kernel.clock.now() - t0;
                if let Some(m) = self.manager.as_mut() {
                    m.end_request(&mut self.kernel).expect("conclude");
                }
                (exec, self.kernel.clock.now() - t0)
            }
            MicroMode::Gh => {
                let m = self.manager.as_mut().expect("gh manager");
                m.begin_request(&mut self.kernel, "client").expect("admit");
                self.micro.invoke(&mut self.kernel, dirty_fraction, rid);
                let exec = self.kernel.clock.now() - t0;
                m.end_request(&mut self.kernel).expect("restore");
                (exec, self.kernel.clock.now() - t0)
            }
            MicroMode::Fork => {
                let child = self.kernel.fork(self.parent).expect("fork");
                self.micro
                    .invoke_on(&mut self.kernel, child, dirty_fraction, rid);
                let exec = self.kernel.clock.now() - t0;
                self.kernel.exit(child).expect("reap child");
                (exec, self.kernel.clock.now() - t0)
            }
        }
    }

    /// Mean latencies over `n` requests at a fixed dirty fraction.
    pub fn measure(&mut self, dirty_fraction: f64, n: usize) -> MicroLatency {
        let mut exec_total = Nanos::ZERO;
        let mut cycle_total = Nanos::ZERO;
        // One warm-up request (not measured).
        self.request(dirty_fraction);
        for _ in 0..n {
            let (e, c) = self.request(dirty_fraction);
            exec_total += e;
            cycle_total += c;
        }
        MicroLatency {
            exec_ms: exec_total.as_millis_f64() / n as f64,
            cycle_ms: cycle_total.as_millis_f64() / n as f64,
        }
    }
}

/// Convenience: build + measure in one call.
pub fn micro_latency(
    mapped_pages: u64,
    dirty_fraction: f64,
    mode: MicroMode,
    requests: usize,
) -> MicroLatency {
    MicroRig::build(mapped_pages, mode).measure(dirty_fraction, requests)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGES: u64 = 4_000;

    #[test]
    fn ghnop_tracks_close_to_base() {
        // §5.2.1: "GHNOP has negligible overhead relative to BASE since
        // the SD-bits set in the first run are not reset".
        let base = micro_latency(PAGES, 0.5, MicroMode::Base, 4);
        let nop = micro_latency(PAGES, 0.5, MicroMode::GhNop, 4);
        let rel = nop.exec_ms / base.exec_ms;
        assert!((0.95..1.1).contains(&rel), "GHNOP/base = {rel:.3}");
    }

    #[test]
    fn gh_in_function_overhead_scales_with_dirty_pages() {
        let lo = micro_latency(PAGES, 0.1, MicroMode::Gh, 4);
        let hi = micro_latency(PAGES, 0.9, MicroMode::Gh, 4);
        let base_lo = micro_latency(PAGES, 0.1, MicroMode::Base, 4);
        let base_hi = micro_latency(PAGES, 0.9, MicroMode::Base, 4);
        let overhead_lo = lo.exec_ms - base_lo.exec_ms;
        let overhead_hi = hi.exec_ms - base_hi.exec_ms;
        assert!(
            overhead_hi > overhead_lo * 4.0,
            "SD-fault overhead proportional to dirtied pages: {overhead_lo:.3} vs {overhead_hi:.3}"
        );
    }

    #[test]
    fn fork_exec_dearer_than_gh() {
        // §5.2.3: fork's CoW faults are dearer than GH's SD faults.
        let gh = micro_latency(PAGES, 0.5, MicroMode::Gh, 4);
        let fork = micro_latency(PAGES, 0.5, MicroMode::Fork, 4);
        assert!(
            fork.exec_ms > gh.exec_ms,
            "fork {0:.3} !> gh {1:.3}",
            fork.exec_ms,
            gh.exec_ms
        );
    }

    #[test]
    fn restoration_shows_only_in_cycle_time() {
        let gh = micro_latency(PAGES, 0.5, MicroMode::Gh, 4);
        assert!(gh.cycle_ms > gh.exec_ms, "restore is off the critical path");
        let base = micro_latency(PAGES, 0.5, MicroMode::Base, 4);
        assert!((base.cycle_ms - base.exec_ms).abs() < 1e-6);
    }
}
