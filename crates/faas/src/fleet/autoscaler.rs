//! Queue-depth-driven pool autoscaling.
//!
//! Cold starts cost hundreds of milliseconds (Fig. 1), so the
//! autoscaler trades them against queueing: it grows the pool when
//! admission queues back up and retires containers that have idled for
//! a sustained window. Decisions are taken at scheduling events on the
//! virtual timeline, separated by a cooldown so one burst triggers one
//! scale step, not a stampede.

use gh_sim::Nanos;

use super::pool::Pool;

/// Autoscaler tuning.
#[derive(Clone, Copy, Debug)]
pub struct AutoscaleConfig {
    /// Never shrink below this many active containers.
    pub min_size: usize,
    /// Never grow beyond this many active containers.
    pub max_size: usize,
    /// Grow when mean queued requests per active container exceeds this.
    pub scale_up_depth: f64,
    /// Retire a container that has been idle (clean, empty queue) this
    /// long while the pool also shows no queueing.
    pub idle_retire: Nanos,
    /// Minimum virtual time between scale actions.
    pub cooldown: Nanos,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min_size: 1,
            max_size: 8,
            scale_up_depth: 2.0,
            idle_retire: Nanos::from_secs(5),
            cooldown: Nanos::from_millis(500),
        }
    }
}

/// A decision the fleet applies to the pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleAction {
    /// Cold-start one more container.
    Grow,
    /// Retire the given slot.
    Retire(usize),
}

/// The autoscaler's state between observations.
#[derive(Clone, Debug)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    last_action: Nanos,
    /// Containers spawned over the run.
    pub grown: usize,
    /// Containers retired over the run.
    pub retired: usize,
}

impl Autoscaler {
    /// Creates an autoscaler. `min_size` is clamped to at least one
    /// container — a pool scaled to zero could never serve the arrival
    /// that would tell it to grow again.
    pub fn new(mut cfg: AutoscaleConfig) -> Autoscaler {
        cfg.min_size = cfg.min_size.max(1);
        cfg.max_size = cfg.max_size.max(cfg.min_size);
        Autoscaler {
            cfg,
            last_action: Nanos::ZERO,
            grown: 0,
            retired: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// Observes the pool at a scheduling event and proposes at most one
    /// action. The caller applies it (and only then is the cooldown
    /// considered spent).
    pub fn observe(&mut self, now: Nanos, pool: &Pool) -> Option<ScaleAction> {
        if now < self.last_action + self.cfg.cooldown {
            return None;
        }
        let active = pool.active();
        let queued = pool.queued();
        let depth = queued as f64 / active.max(1) as f64;
        if depth > self.cfg.scale_up_depth && active < self.cfg.max_size {
            return Some(ScaleAction::Grow);
        }
        if queued == 0 && active > self.cfg.min_size {
            // Retire the longest-idle clean container, if any has idled
            // past the window.
            let candidate = pool
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    !s.retired && s.queue.is_empty() && s.ready_at + self.cfg.idle_retire <= now
                })
                .min_by_key(|(_, s)| s.ready_at)
                .map(|(i, _)| i);
            if let Some(idx) = candidate {
                return Some(ScaleAction::Retire(idx));
            }
        }
        None
    }

    /// Records that the proposed action was applied at `now`.
    pub fn applied(&mut self, now: Nanos, action: ScaleAction) {
        self.last_action = now;
        match action {
            ScaleAction::Grow => self.grown += 1,
            ScaleAction::Retire(_) => self.retired += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::pool::Pool;
    use crate::fleet::queue::Pending;
    use gh_functions::catalog::by_name;
    use gh_isolation::StrategyKind;
    use groundhog_core::GroundhogConfig;

    fn pool(size: usize) -> Pool {
        let spec = by_name("fannkuch (p)").unwrap();
        Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), size, 3).unwrap()
    }

    fn backlog(p: &mut Pool, idx: usize, n: usize) {
        for i in 0..n {
            p.slots[idx].queue.push(Pending {
                id: i as u64 + 1,
                principal: "a".into(),
                input_kb: 1,
                arrival: Nanos::ZERO,
                payload_hash: 0,
                idempotent: false,
                attempt: 1,
            });
        }
    }

    #[test]
    fn grows_on_queue_backlog() {
        let mut p = pool(2);
        backlog(&mut p, 0, 6);
        let mut a = Autoscaler::new(AutoscaleConfig::default());
        let now = Nanos::from_secs(1);
        assert_eq!(a.observe(now, &p), Some(ScaleAction::Grow));
        a.applied(now, ScaleAction::Grow);
        assert_eq!(a.grown, 1);
    }

    #[test]
    fn respects_max_size_and_cooldown() {
        let mut p = pool(2);
        backlog(&mut p, 0, 10);
        let cfg = AutoscaleConfig {
            max_size: 2,
            ..AutoscaleConfig::default()
        };
        let mut a = Autoscaler::new(cfg);
        assert_eq!(a.observe(Nanos::from_secs(1), &p), None, "at max");

        let cfg = AutoscaleConfig {
            max_size: 4,
            ..AutoscaleConfig::default()
        };
        let mut a = Autoscaler::new(cfg);
        let now = Nanos::from_secs(1);
        assert_eq!(a.observe(now, &p), Some(ScaleAction::Grow));
        a.applied(now, ScaleAction::Grow);
        assert_eq!(
            a.observe(now + Nanos::from_millis(100), &p),
            None,
            "cooling down"
        );
        assert!(
            a.observe(now + Nanos::from_secs(1), &p).is_some(),
            "cooldown over"
        );
    }

    #[test]
    fn retires_longest_idle_when_quiet() {
        let p = pool(3);
        let mut a = Autoscaler::new(AutoscaleConfig::default());
        // All slots clean since cold start; far past the idle window.
        let now = Nanos::from_secs(60);
        let action = a.observe(now, &p).expect("retire proposed");
        // Slot with the earliest ready_at (fastest cold start) goes first.
        let earliest = (0..3).min_by_key(|&i| p.slots[i].ready_at).unwrap();
        assert_eq!(action, ScaleAction::Retire(earliest));
    }

    #[test]
    fn min_size_zero_clamps_to_one() {
        // A pool scaled to zero could never serve again; the config is
        // clamped so the last container is never retired.
        let p = pool(1);
        let cfg = AutoscaleConfig {
            min_size: 0,
            ..AutoscaleConfig::default()
        };
        let mut a = Autoscaler::new(cfg);
        assert_eq!(a.config().min_size, 1);
        assert_eq!(a.observe(Nanos::from_secs(60), &p), None);
    }

    #[test]
    fn never_shrinks_below_min() {
        let p = pool(1);
        let mut a = Autoscaler::new(AutoscaleConfig::default());
        assert_eq!(a.observe(Nanos::from_secs(60), &p), None);
    }

    #[test]
    fn no_retire_before_idle_window() {
        let p = pool(2);
        let mut a = Autoscaler::new(AutoscaleConfig::default());
        let now = p.slots[0].ready_at + Nanos::from_millis(10);
        assert_eq!(a.observe(now, &p), None, "idle window not reached");
    }
}
