//! A sparse, hierarchical page-number index.
//!
//! [`VpnIndex`] is a two-level, 64-ary bitmap over virtual page numbers:
//! the 47-bit VPN space is divided into 4096-page *groups* (64 leaves ×
//! 64 pages); groups materialize on demand in an ordered map, and each
//! group carries a 64-bit *summary* word whose bit `i` marks leaf `i`
//! non-empty. Iteration therefore visits only groups that contain set
//! bits and, within a group, only non-empty leaves — `O(set + groups)`
//! work regardless of how many pages are mapped.
//!
//! This is the index that makes Groundhog's bookkeeping scale with the
//! *dirtied* state instead of the *mapped* state: the address space keeps
//! one `VpnIndex` per tracked page property (soft-dirty, userfaultfd log,
//! request taint), so `soft_dirty_pages()` and friends are `O(dirty)`
//! scans rather than full page-table walks.

use crate::addr::{PageRange, Vpn};
use std::collections::BTreeMap;

/// Pages per leaf word.
const LEAF_BITS: u64 = 64;
/// Pages per group (64 leaves × 64 pages).
const GROUP_BITS: u64 = 64 * LEAF_BITS;

/// One 4096-page group: a summary word over 64 leaf words.
#[derive(Clone, Debug)]
struct Group {
    /// Bit `i` set ⇔ `leaves[i] != 0`.
    summary: u64,
    /// 64 × 64-page bitmap leaves.
    leaves: Box<[u64; 64]>,
}

impl Group {
    fn new() -> Group {
        Group {
            summary: 0,
            leaves: Box::new([0u64; 64]),
        }
    }
}

/// Sparse two-level 64-ary bitmap over [`Vpn`]s.
#[derive(Clone, Debug, Default)]
pub struct VpnIndex {
    groups: BTreeMap<u64, Group>,
    len: u64,
}

impl VpnIndex {
    /// An empty index.
    pub fn new() -> VpnIndex {
        VpnIndex::default()
    }

    #[inline]
    fn split(vpn: u64) -> (u64, usize, u64) {
        (
            vpn / GROUP_BITS,
            ((vpn / LEAF_BITS) % 64) as usize,
            vpn % LEAF_BITS,
        )
    }

    /// Sets the bit for `vpn`; returns `true` when it was newly set.
    pub fn set(&mut self, vpn: Vpn) -> bool {
        let (g, l, b) = Self::split(vpn.0);
        let group = self.groups.entry(g).or_insert_with(Group::new);
        let mask = 1u64 << b;
        if group.leaves[l] & mask != 0 {
            return false;
        }
        group.leaves[l] |= mask;
        group.summary |= 1u64 << l;
        self.len += 1;
        true
    }

    /// Clears the bit for `vpn`; returns `true` when it was set.
    pub fn clear(&mut self, vpn: Vpn) -> bool {
        let (g, l, b) = Self::split(vpn.0);
        let Some(group) = self.groups.get_mut(&g) else {
            return false;
        };
        let mask = 1u64 << b;
        if group.leaves[l] & mask == 0 {
            return false;
        }
        group.leaves[l] &= !mask;
        if group.leaves[l] == 0 {
            group.summary &= !(1u64 << l);
            if group.summary == 0 {
                self.groups.remove(&g);
            }
        }
        self.len -= 1;
        true
    }

    /// True when the bit for `vpn` is set.
    pub fn contains(&self, vpn: Vpn) -> bool {
        let (g, l, b) = Self::split(vpn.0);
        self.groups
            .get(&g)
            .is_some_and(|group| group.leaves[l] & (1u64 << b) != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of materialized 4096-page groups (each holds ≥ 1 set bit).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Forgets every bit.
    pub fn clear_all(&mut self) {
        self.groups.clear();
        self.len = 0;
    }

    /// Clears every bit inside `range`. Work is proportional to the set
    /// bits and materialized groups intersecting the range, not to the
    /// range's width.
    pub fn clear_range(&mut self, range: PageRange) {
        if range.is_empty() {
            return;
        }
        let first_group = range.start.0 / GROUP_BITS;
        let last_group = (range.end.0 - 1) / GROUP_BITS;
        let mut emptied = Vec::new();
        for (&g, group) in self.groups.range_mut(first_group..=last_group) {
            let base = g * GROUP_BITS;
            let mut summary = group.summary;
            while summary != 0 {
                let l = summary.trailing_zeros() as usize;
                summary &= summary - 1;
                let leaf_base = base + l as u64 * LEAF_BITS;
                // Mask of bits of this leaf inside the range.
                let lo = range.start.0.saturating_sub(leaf_base).min(LEAF_BITS);
                let hi = range.end.0.saturating_sub(leaf_base).min(LEAF_BITS);
                if lo >= hi {
                    continue;
                }
                let width = hi - lo;
                let mask = if width == LEAF_BITS {
                    u64::MAX
                } else {
                    ((1u64 << width) - 1) << lo
                };
                let hit = group.leaves[l] & mask;
                if hit != 0 {
                    self.len -= hit.count_ones() as u64;
                    group.leaves[l] &= !mask;
                    if group.leaves[l] == 0 {
                        group.summary &= !(1u64 << l);
                    }
                }
            }
            if group.summary == 0 {
                emptied.push(g);
            }
        }
        for g in emptied {
            self.groups.remove(&g);
        }
    }

    /// Iterates set pages in ascending order. `O(set + groups)`.
    pub fn iter(&self) -> impl Iterator<Item = Vpn> + '_ {
        self.groups.iter().flat_map(|(&g, group)| {
            let base = g * GROUP_BITS;
            BitIter(group.summary).flat_map(move |l| {
                let leaf_base = base + l as u64 * LEAF_BITS;
                BitIter(group.leaves[l as usize]).map(move |b| Vpn(leaf_base + b as u64))
            })
        })
    }

    /// Collects the set pages, ascending.
    pub fn to_vec(&self) -> Vec<Vpn> {
        let mut out = Vec::with_capacity(self.len as usize);
        out.extend(self.iter());
        out
    }

    /// Iterates the set pages coalesced into maximal contiguous
    /// [`PageRange`] runs, ascending. `O(set + groups)`.
    pub fn runs(&self) -> Vec<PageRange> {
        let mut out: Vec<PageRange> = Vec::new();
        for vpn in self.iter() {
            match out.last_mut() {
                Some(last) if last.end == vpn => last.end = vpn.next(),
                _ => out.push(PageRange::at(vpn, 1)),
            }
        }
        out
    }

    /// The work units a full scan performs: one per materialized group,
    /// one per non-empty leaf, one per set bit. This is the quantity the
    /// O(dirty)-scan counter tests assert on: it depends only on the set
    /// bits and their spread — never on how many pages are mapped.
    pub fn scan_work(&self) -> u64 {
        let leaves: u64 = self
            .groups
            .values()
            .map(|g| g.summary.count_ones() as u64)
            .sum();
        self.groups.len() as u64 + leaves + self.len
    }
}

/// Iterates the set bit positions of one word, ascending.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u32;
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains_roundtrip() {
        let mut ix = VpnIndex::new();
        assert!(ix.set(Vpn(5)));
        assert!(!ix.set(Vpn(5)), "second set is a no-op");
        assert!(ix.contains(Vpn(5)));
        assert!(!ix.contains(Vpn(6)));
        assert_eq!(ix.len(), 1);
        assert!(ix.clear(Vpn(5)));
        assert!(!ix.clear(Vpn(5)));
        assert!(ix.is_empty());
        assert_eq!(ix.group_count(), 0, "empty groups are reclaimed");
    }

    #[test]
    fn iteration_is_sorted_across_groups() {
        let mut ix = VpnIndex::new();
        let pages = [0u64, 63, 64, 4095, 4096, 1 << 20, (1 << 31) - 1];
        for &p in pages.iter().rev() {
            ix.set(Vpn(p));
        }
        let got: Vec<u64> = ix.iter().map(|v| v.0).collect();
        assert_eq!(got, pages);
        assert_eq!(ix.len(), pages.len() as u64);
    }

    #[test]
    fn runs_coalesce() {
        let mut ix = VpnIndex::new();
        for p in [1u64, 2, 3, 63, 64, 65, 4100] {
            ix.set(Vpn(p));
        }
        assert_eq!(
            ix.runs(),
            vec![
                PageRange::at(Vpn(1), 3),
                PageRange::at(Vpn(63), 3),
                PageRange::at(Vpn(4100), 1)
            ]
        );
    }

    #[test]
    fn clear_range_is_exact() {
        let mut ix = VpnIndex::new();
        for p in 0..10_000u64 {
            ix.set(Vpn(p * 3));
        }
        ix.clear_range(PageRange::new(Vpn(3000), Vpn(15_000)));
        for p in 0..10_000u64 {
            let vpn = Vpn(p * 3);
            assert_eq!(
                ix.contains(vpn),
                !(3000..15_000).contains(&vpn.0),
                "page {}",
                vpn.0
            );
        }
        let expect: u64 = (0..10_000u64)
            .filter(|p| !(3000..15_000).contains(&(p * 3)))
            .count() as u64;
        assert_eq!(ix.len(), expect);
        ix.clear_range(PageRange::new(Vpn(0), Vpn(1 << 32)));
        assert!(ix.is_empty());
        assert_eq!(ix.group_count(), 0);
    }

    #[test]
    fn scan_work_is_independent_of_span() {
        // The defining property: the same number of set bits costs the
        // same scan work whether they live in a 4K-page or 4G-page span
        // (as long as they occupy the same number of groups/leaves).
        let mut dense_space = VpnIndex::new();
        let mut huge_space = VpnIndex::new();
        for i in 0..64u64 {
            dense_space.set(Vpn(i * 64)); // 64 leaves of one group
            huge_space.set(Vpn(i * GROUP_BITS)); // 64 groups, one leaf each
        }
        assert_eq!(dense_space.len(), huge_space.len());
        // Work differs only in the group/leaf constant, never in any
        // mapped-space term.
        assert!(dense_space.scan_work() <= 1 + 64 + 64);
        assert!(huge_space.scan_work() <= 64 + 64 + 64);
    }
}
