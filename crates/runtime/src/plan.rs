//! Cached write plans for batched request execution.
//!
//! A request's memory behaviour is a strided write set plus a strided
//! read set over the image's writable regions. Computed naively that is
//! one `ImageRegions::dirtyable_page` binary search *per touch, per
//! request*; computed here it is a [`WritePlan`] — the write and read
//! sets materialized once as pre-sorted vpn vectors — that steady-state
//! invocations replay straight into a [`TouchBatch`].
//!
//! Write sets are keyed by `(writes, phase)` — the stride phase varies
//! with the request sequence number, rotating the write set across the
//! image. Read sets are **phase-invariant** and keyed by `reads` alone,
//! so even request shapes whose write stride exceeds the cache bound
//! (tiny write set over a huge image ⇒ a fresh phase every request)
//! keep replaying the big read sweep from cache and only rebuild the
//! small write set. Both maps are bounded: when full, they reset rather
//! than grow without bound. [`PlanCache::invalidate`] drops every plan;
//! `churn_layout` calls it after mutating the layout so plans can never
//! outlive the addressing they were derived from.

use std::collections::HashMap;

use gh_mem::{TouchBatch, Vpn};

use crate::image::ImageRegions;

/// Maximum cached vpn sets per map before that map resets.
const MAX_PLANS: usize = 64;

/// A borrowed view of one request shape's touch addressing: pre-sorted
/// write and read vpn sets, ready to replay into a [`TouchBatch`].
#[derive(Clone, Copy, Debug)]
pub struct WritePlan<'a> {
    /// The strided write set, ascending (`dirtyable_page(i·wstride +
    /// phase)` for `i` in `0..writes`).
    pub write_vpns: &'a [Vpn],
    /// The strided read set, ascending (`dirtyable_page(i·rstride)`).
    pub read_vpns: &'a [Vpn],
}

/// Per-process plan cache plus the reusable [`TouchBatch`] scratch the
/// executor fills from the active plan each invocation (no per-request
/// allocation in steady state).
#[derive(Debug, Default)]
pub struct PlanCache {
    /// Write sets keyed by `(writes, phase)`.
    write_sets: HashMap<(u64, u64), Vec<Vpn>>,
    /// Read sets keyed by `reads` (phase-invariant).
    read_sets: HashMap<u64, Vec<Vpn>>,
    /// Retired vpn vectors recycled into the next plan build. Plan churn
    /// — phase-rotating write sets, bound resets, layout invalidation —
    /// reuses capacity instead of allocating one fresh `Vec` per built
    /// plan.
    retired: Vec<Vec<Vpn>>,
    scratch: TouchBatch,
}

/// Retires a map's vpn vectors into the free list instead of dropping
/// them, keeping the list bounded.
fn retire<K>(map: &mut HashMap<K, Vec<Vpn>>, retired: &mut Vec<Vec<Vpn>>) {
    retired.extend(map.drain().map(|(_, v)| v));
    retired.truncate(MAX_PLANS);
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Drops all cached plans (the layout-churn invalidation hook).
    /// The scratch batch and the plans' vpn allocations are kept for
    /// reuse.
    pub fn invalidate(&mut self) {
        retire(&mut self.write_sets, &mut self.retired);
        retire(&mut self.read_sets, &mut self.retired);
    }

    /// Number of cached vpn sets (observability for tests).
    pub fn len(&self) -> usize {
        self.write_sets.len() + self.read_sets.len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.write_sets.is_empty() && self.read_sets.is_empty()
    }

    /// The plan for `(writes, reads, phase)` over `regions`, built on
    /// first use, plus the shared scratch batch. Returned together so a
    /// caller can fill the scratch from the plan under one borrow of the
    /// cache.
    pub fn plan_for(
        &mut self,
        regions: &ImageRegions,
        writes: u64,
        reads: u64,
        phase: u64,
    ) -> (WritePlan<'_>, &mut TouchBatch) {
        let PlanCache {
            write_sets,
            read_sets,
            retired,
            scratch,
        } = self;
        let total = regions.dirtyable_pages().max(1);
        if write_sets.len() >= MAX_PLANS && !write_sets.contains_key(&(writes, phase)) {
            retire(write_sets, retired);
        }
        let write_vpns = write_sets.entry((writes, phase)).or_insert_with(|| {
            let wstride = (total / writes.max(1)).max(1);
            let mut v = retired.pop().unwrap_or_default();
            v.clear();
            v.reserve(writes as usize);
            regions.resolve_ascending((0..writes).map(|i| i * wstride + phase), &mut v);
            v
        });
        if read_sets.len() >= MAX_PLANS && !read_sets.contains_key(&reads) {
            retire(read_sets, retired);
        }
        let read_vpns = read_sets.entry(reads).or_insert_with(|| {
            let rstride = (total / reads.max(1)).max(1);
            let mut v = retired.pop().unwrap_or_default();
            v.clear();
            v.reserve(reads as usize);
            regions.resolve_ascending((0..reads).map(|i| i * rstride), &mut v);
            v
        });
        (
            WritePlan {
                write_vpns,
                read_vpns,
            },
            scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{RuntimeKind, RuntimeProfile};
    use gh_proc::Kernel;

    fn regions() -> ImageRegions {
        let mut k = Kernel::boot();
        crate::FunctionProcess::build(
            &mut k,
            "f",
            RuntimeProfile::for_kind(RuntimeKind::Python),
            4_000,
        )
        .regions
    }

    #[test]
    fn plan_matches_per_page_addressing() {
        let regions = regions();
        let total = regions.dirtyable_pages();
        let mut cache = PlanCache::new();
        for (writes, phase) in [(1u64, 0u64), (37, 3), (500, 7), (total, 0)] {
            let reads = (2 * writes + 256).min(total);
            let (plan, _) = cache.plan_for(&regions, writes, reads, phase);
            let wstride = (total / writes.max(1)).max(1);
            let rstride = (total / reads.max(1)).max(1);
            let expect_w: Vec<Vpn> = (0..writes)
                .map(|i| regions.dirtyable_page(i * wstride + phase))
                .collect();
            let expect_r: Vec<Vpn> = (0..reads)
                .map(|i| regions.dirtyable_page(i * rstride))
                .collect();
            assert_eq!(plan.write_vpns, expect_w, "writes={writes} phase={phase}");
            assert_eq!(plan.read_vpns, expect_r, "reads={reads}");
            assert!(plan.write_vpns.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(plan.read_vpns.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn cache_reuses_and_bounds() {
        let regions = regions();
        let mut cache = PlanCache::new();
        let p0 = cache.plan_for(&regions, 100, 200, 0).0.write_vpns.to_vec();
        assert_eq!(cache.len(), 2, "one write set + one read set");
        let p1 = cache.plan_for(&regions, 100, 200, 0).0.write_vpns.to_vec();
        assert_eq!(cache.len(), 2, "hit, not rebuild");
        assert_eq!(p0, p1);
        for phase in 0..(2 * MAX_PLANS as u64) {
            cache.plan_for(&regions, 3, 262, phase);
        }
        assert!(
            cache.len() <= 2 * MAX_PLANS,
            "both maps stay bounded independently"
        );
        cache.invalidate();
        assert!(cache.is_empty());
    }

    #[test]
    fn read_sets_survive_phase_churn() {
        // A tiny write set over a big image cycles through more phases
        // than the write map holds; the (identical) read sweep must stay
        // cached throughout — only the small write set rebuilds.
        let regions = regions();
        let mut cache = PlanCache::new();
        let reads = 300u64;
        let first: *const Vpn = cache.plan_for(&regions, 2, reads, 0).0.read_vpns.as_ptr();
        for phase in 1..(3 * MAX_PLANS as u64) {
            let (plan, _) = cache.plan_for(&regions, 2, reads, phase);
            assert_eq!(
                plan.read_vpns.as_ptr(),
                first,
                "read set re-used across write-phase churn (phase {phase})"
            );
        }
    }
}
