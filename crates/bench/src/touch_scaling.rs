//! Host-side scaling of the batched touch path (`touch_batch`) vs the
//! per-page `touch` loop.
//!
//! The rig replays the request executor's exact shape at a
//! fleet-realistic batch size — a strided, tainted 16k-page write set
//! plus a full-region read sweep over a 48k-page image, 64k touches per
//! application — in two variants:
//!
//! - **warm**: steady state between tracker epochs (every page present
//!   and soft-dirty; every touch is a warm hit);
//! - **armed**: a `clear_refs` soft-dirty arming precedes every
//!   application (the per-request Groundhog cycle: every write takes an
//!   SD-WP fault and fragments/re-merges the armed extents).
//!
//! Both sides resolve identical pre-computed vpn sets, and the batch
//! side *includes* the per-application batch fill (the executor pays it
//! too), so the ratio is end-to-end honest. Counter equality between
//! the two spaces is asserted after every measurement — the rig doubles
//! as an oracle.
//!
//! Gate design matches `scaling.rs`: the **speedup ratios** are
//! same-machine quotients (machine-independent, gated, capped at 8 so
//! the 10% gate tracks the ≥5x acceptance floor rather than jitter in
//! the typical ratio); raw ns/touch is machine-dependent and published
//! as gate-exempt `info_` metrics plus `results/scaling_touch.csv`.

use std::time::Instant;

/// Repetitions per measured variant (the minimum is reported).
const BEST_OF_ITERS: u32 = 31;

use gh_mem::{
    AddressSpace, FrameTable, RequestId, SpaceConfig, Taint, Touch, TouchBatch, VmaKind, Vpn,
};
use gh_sim::report::TextTable;

/// Writable pages of the rig image, spread over [`REGIONS`] anonymous
/// regions separated by guard pages — the CPython image shape
/// (`gh_runtime` builds ~60 anon arenas), so the per-page loop pays the
/// realistic VMA/extent probe costs, not single-VMA best-case ones.
const PAGES: u64 = 48 * 1024;
/// Distinct mapped regions.
const REGIONS: u64 = 60;
/// Every third page is written (16k writes + 48k reads = 64k touches).
const WRITE_STRIDE: u64 = 3;

/// Wall-clock of the two variants, loop vs batch.
pub struct TouchScalingReport {
    /// Touches per application (the batch size under test).
    pub touches: u64,
    /// ns per application, per-page loop, warm steady state.
    pub warm_loop_ns: f64,
    /// ns per application, batched, warm steady state.
    pub warm_batch_ns: f64,
    /// ns per application, per-page loop, re-armed each application.
    pub armed_loop_ns: f64,
    /// ns per application, batched, re-armed each application.
    pub armed_batch_ns: f64,
}

impl TouchScalingReport {
    /// Loop / batch wall-clock ratio in the warm steady state.
    pub fn warm_speedup(&self) -> f64 {
        self.warm_loop_ns / self.warm_batch_ns.max(1.0)
    }

    /// Loop / batch wall-clock ratio with per-application SD arming.
    pub fn armed_speedup(&self) -> f64 {
        self.armed_loop_ns / self.armed_batch_ns.max(1.0)
    }
}

/// One rig: a multi-region image with every page written in, the
/// executor-shaped write/read vpn sets (the cached plan the batch side
/// replays) and the flat region index the loop side resolves per touch
/// (`ImageRegions::dirtyable_page`'s algorithm — exactly what the
/// pre-batch executor recomputed for every page of every request).
struct Rig {
    space: AddressSpace,
    frames: FrameTable,
    write_vpns: Vec<Vpn>,
    read_vpns: Vec<Vpn>,
    /// `(cumulative offset, region)` index, sorted.
    index: Vec<(u64, gh_mem::PageRange)>,
    total: u64,
}

impl Rig {
    fn build() -> Rig {
        let mut frames = FrameTable::new();
        let mut space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let per = PAGES / REGIONS;
        let mut regions = Vec::new();
        for _ in 0..REGIONS {
            let r = space
                .mmap(per, gh_mem::Perms::RW, VmaKind::Anon)
                .expect("rig fits");
            // Guard page below, like real arenas — keeps VMAs distinct.
            let _ = space.mmap_fixed(
                gh_mem::PageRange::at(Vpn(r.start.0 - 1), 1),
                gh_mem::Perms::NONE,
                VmaKind::Guard,
            );
            regions.push(r);
        }
        regions.sort_by_key(|r| r.start.0);
        let mut batch = TouchBatch::with_capacity(PAGES as usize);
        for r in &regions {
            for vpn in r.iter() {
                batch.push(vpn, Touch::WriteWord(vpn.0), Taint::Clean);
            }
        }
        let _ = space.touch_batch(&batch, &mut frames);
        let mut index = Vec::with_capacity(regions.len());
        let mut cum = 0u64;
        for &r in &regions {
            index.push((cum, r));
            cum += r.len();
        }
        let all: Vec<Vpn> = regions.iter().flat_map(|r| r.iter()).collect();
        let write_vpns: Vec<Vpn> = all.iter().copied().step_by(WRITE_STRIDE as usize).collect();
        Rig {
            space,
            frames,
            write_vpns,
            read_vpns: all,
            index,
            total: cum,
        }
    }

    /// The pre-plan executor's per-touch page addressing
    /// (`ImageRegions::dirtyable_page`: one partition-point search per
    /// touch).
    #[inline]
    fn resolve(&self, i: u64) -> Vpn {
        let idx = i % self.total;
        let pos = self
            .index
            .partition_point(|&(cum, _)| cum <= idx)
            .saturating_sub(1);
        let (cum, range) = self.index[pos];
        Vpn(range.start.0 + (idx - cum))
    }

    /// One application via the per-page path exactly as the pre-batch
    /// executor ran it: resolve the page, then `touch` it — per touch.
    fn apply_loop(&mut self, seq: u64) {
        let taint = Taint::One(RequestId(1));
        for i in 0..self.write_vpns.len() as u64 {
            let vpn = self.resolve(i * WRITE_STRIDE);
            let _ = self.space.touch(
                vpn,
                Touch::WriteWord(0x1000 ^ seq ^ i),
                taint,
                &mut self.frames,
            );
        }
        for i in 0..self.read_vpns.len() as u64 {
            let vpn = self.resolve(i);
            let _ = self
                .space
                .touch(vpn, Touch::Read, Taint::Clean, &mut self.frames);
        }
    }

    /// One application via `touch_batch`, including the batch fill.
    fn apply_batch(&mut self, seq: u64, scratch: &mut TouchBatch) {
        let taint = Taint::One(RequestId(1));
        scratch.clear();
        for (i, &vpn) in self.write_vpns.iter().enumerate() {
            scratch.push(vpn, Touch::WriteWord(0x1000 ^ seq ^ i as u64), taint);
        }
        let _ = self.space.touch_batch(scratch, &mut self.frames);
        scratch.clear();
        for &vpn in &self.read_vpns {
            scratch.push(vpn, Touch::Read, Taint::Clean);
        }
        let _ = self.space.touch_batch(scratch, &mut self.frames);
    }
}

/// Best-of-`iters` wall-clock of `f`, nanoseconds. The iteration
/// count is sized so each variant accumulates enough measured time
/// that a single scheduler/steal blip on a small VM cannot own the
/// minimum — the warm batch section is well under a millisecond per
/// application, so best-of-5 was one bad tick away from a >10% swing
/// in the gated ratio.
fn best_of(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

/// Measures both variants for both paths and cross-checks the fault
/// accounting (loop and batch rigs must agree exactly).
pub fn run() -> TouchScalingReport {
    let mut loop_rig = Rig::build();
    let mut batch_rig = Rig::build();
    let mut scratch = TouchBatch::new();
    let touches = (loop_rig.write_vpns.len() + loop_rig.read_vpns.len()) as u64;

    // Warm steady state: settle both rigs, then measure repeat
    // applications (every touch a warm hit; identical start state each
    // iteration).
    let mut seq = 1u64;
    loop_rig.apply_loop(seq);
    batch_rig.apply_batch(seq, &mut scratch);
    let warm_loop_ns = best_of(BEST_OF_ITERS, || {
        seq += 1;
        loop_rig.apply_loop(seq);
    });
    let mut bseq = seq;
    let warm_batch_ns = best_of(BEST_OF_ITERS, || {
        bseq += 1;
        batch_rig.apply_batch(bseq, &mut scratch);
    });
    // Both rigs have now run the same number of applications (counters
    // depend on touch shapes, not written values), so their accounting
    // must agree exactly.
    assert_eq!(
        loop_rig.space.counters(),
        batch_rig.space.counters(),
        "warm rigs diverged — the batch path broke accounting"
    );

    // Armed cycle: `clear_refs` before every application (both sides pay
    // the same O(extents) clear; the writes then take SD-WP faults and
    // split the armed extents — the per-request Groundhog shape).
    let armed_loop_ns = best_of(BEST_OF_ITERS, || {
        seq += 1;
        loop_rig.space.clear_soft_dirty();
        loop_rig.apply_loop(seq);
    });
    let mut bseq2 = bseq;
    let armed_batch_ns = best_of(BEST_OF_ITERS, || {
        bseq2 += 1;
        batch_rig.space.clear_soft_dirty();
        batch_rig.apply_batch(bseq2, &mut scratch);
    });
    assert_eq!(
        loop_rig.space.counters(),
        batch_rig.space.counters(),
        "armed rigs diverged — the batch path broke accounting"
    );

    TouchScalingReport {
        touches,
        warm_loop_ns,
        warm_batch_ns,
        armed_loop_ns,
        armed_batch_ns,
    }
}

/// Renders the report (stdout + `results/scaling_touch.csv`).
pub fn render(r: &TouchScalingReport) -> TextTable {
    let mut table = TextTable::new(&[
        "variant",
        "touches",
        "loop ns/touch",
        "batch ns/touch",
        "speedup",
    ]);
    let per = |ns: f64| ns / r.touches as f64;
    table.row_owned(vec![
        "warm".into(),
        r.touches.to_string(),
        format!("{:.2}", per(r.warm_loop_ns)),
        format!("{:.2}", per(r.warm_batch_ns)),
        format!("{:.2}x", r.warm_speedup()),
    ]);
    table.row_owned(vec![
        "armed".into(),
        r.touches.to_string(),
        format!("{:.2}", per(r.armed_loop_ns)),
        format!("{:.2}", per(r.armed_batch_ns)),
        format!("{:.2}x", r.armed_speedup()),
    ]);
    table
}
