//! Groundhog: efficient sequential request isolation for FaaS.
//!
//! This is the facade crate of the `groundhog-rs` workspace, a from-scratch
//! Rust reproduction of *Groundhog: Efficient Request Isolation in FaaS*
//! (Alzayat, Mace, Druschel, Garg — EuroSys 2023, arXiv:2205.11458). It
//! re-exports the workspace crates under stable module names:
//!
//! - [`sim`] — virtual clock, calibrated cost model, statistics.
//! - [`mem`] — simulated virtual memory: pages, PTEs, soft-dirty bits, VMAs.
//! - [`proc`] — simulated processes, threads, ptrace, fork/CoW, /proc.
//! - [`runtime`] — language-runtime models (C, Python, Node.js, wasm).
//! - [`functions`] — the 58-benchmark catalog and the §5.2 microbenchmark.
//! - [`core`] — the paper's contribution: snapshot / track / diff / restore
//!   and the Groundhog manager.
//! - [`isolation`] — request-isolation strategies (BASE, GH, GHNOP, FORK,
//!   FAASM, fresh-container).
//! - [`faas`] — an OpenWhisk-like platform model (invoker, containers,
//!   proxy, clients) and the event-driven fleet scheduler.
//! - [`gateway`] — front-end policies: content-addressed result
//!   caching, per-principal admission control, predictive pre-warming.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use groundhog::faas::platform::{Platform, PlatformConfig};
//! use groundhog::isolation::StrategyKind;
//!
//! let mut platform = Platform::new(PlatformConfig::default());
//! let f = groundhog::functions::catalog::by_name("json (p)").unwrap();
//! let container = platform.deploy(&f, StrategyKind::Gh).unwrap();
//! let outcome = platform.invoke_simple(container, "alice", 4).unwrap();
//! assert!(outcome.response.ok);
//! ```
//!
//! # Fleet scheduling
//!
//! [`faas::fleet`] lifts the reproduction from one container to a
//! served pool: N containers advance on interleaved virtual timelines
//! through one [`sim::event::EventQueue`]; a router admits open-loop
//! Poisson arrivals under a pluggable [`faas::fleet::RoutePolicy`]
//! (round-robin, least-loaded, or the Groundhog-specific restore-aware
//! policy that routes on restore-completion readiness events); an
//! optional autoscaler grows and shrinks the pool on queue depth.
//!
//! ```
//! use groundhog::faas::fleet::{run_fleet, FleetConfig, RoutePolicy};
//! use groundhog::core::GroundhogConfig;
//! use groundhog::isolation::StrategyKind;
//!
//! let f = groundhog::functions::catalog::by_name("fannkuch (p)").unwrap();
//! let cfg = FleetConfig::fixed(RoutePolicy::RestoreAware, 60.0, 7);
//! let run = run_fleet(&f, StrategyKind::Gh, GroundhogConfig::gh(), 4, cfg, 60).unwrap();
//! assert_eq!(run.completed, 60);
//! assert!(run.stats.restore_overlap_ratio > 0.5); // restores hide in idle gaps
//! ```

pub use gh_faas as faas;
pub use gh_functions as functions;
pub use gh_gateway as gateway;
pub use gh_isolation as isolation;
pub use gh_mem as mem;
pub use gh_proc as proc;
pub use gh_runtime as runtime;
pub use gh_sim as sim;
pub use groundhog_core as core;
