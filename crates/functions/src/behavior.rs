//! Executing a benchmark's workload against a simulated process.
//!
//! One invocation performs, in order: the runtime's layout churn, a GC
//! check (for GC-sensitive functions), the memory-leak behaviour (for
//! leaky functions), the function's page writes and reads (tainted with
//! the request identity), and the function's compute time. All memory
//! activity runs through the kernel fault paths, so per-configuration
//! in-function overheads (soft-dirty faults under GH, CoW+dTLB faults
//! under FORK, nothing under BASE/GHNOP) *emerge* rather than being
//! scripted.
//!
//! # Batched execution
//!
//! The write/read sets are *batched*: a cached
//! [`WritePlan`](gh_runtime::WritePlan) per `(writes, reads,
//! stride-phase)` holds the pre-sorted vpn sets (built with one region
//! cursor, invalidated by `churn_layout`), each invocation replays it
//! into the process's reusable [`gh_mem::TouchBatch`] scratch, and
//! `Kernel::touch_batch_charged` resolves the whole batch in one
//! extent-cursor walk, charging the aggregate fault counters. This is a
//! host-side constant-factor win only: counters, taint, contents and
//! the simulated timeline are bit-identical to the per-page `touch`
//! loop it replaced (pinned by `crates/mem/tests/batch_oracle.rs` and
//! the `bench_smoke` +0.0% gate; the `scaling_touch_*` metrics track
//! the speedup).

use gh_mem::{FaultCounters, RequestId, Taint, Touch, Vpn};
use gh_proc::Kernel;
use gh_runtime::FunctionProcess;
use gh_sim::Nanos;

use crate::spec::FunctionSpec;

/// Identity and payload of one request.
#[derive(Clone, Debug)]
pub struct RequestCtx {
    /// Taint label for everything this request writes.
    pub id: RequestId,
    /// The caller (access-control principal).
    pub principal: String,
    /// Monotonic sequence number within the container (varies placement).
    pub seq: u64,
    /// `true` for the deployer's dummy warm-up request (§4.1), whose
    /// arguments are secret-free: its writes are `Taint::Clean`.
    pub dummy: bool,
}

impl RequestCtx {
    /// A real request.
    pub fn new(id: u64, principal: &str, seq: u64) -> Self {
        RequestCtx {
            id: RequestId(id),
            principal: principal.into(),
            seq,
            dummy: false,
        }
    }

    /// The dummy warm-up request (§4.1).
    pub fn dummy(seq: u64) -> Self {
        RequestCtx {
            id: RequestId(0),
            principal: "<deployer-dummy>".into(),
            seq,
            dummy: true,
        }
    }

    fn taint(&self) -> Taint {
        if self.dummy {
            Taint::Clean
        } else {
            Taint::One(self.id)
        }
    }
}

/// What one invocation did and cost (in-function only; platform and
/// restore costs are accounted elsewhere).
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Total in-function virtual time (compute + faults + churn + GC).
    pub duration: Nanos,
    /// GC pause included in `duration`, if a collection ran.
    pub gc_pause: Option<Nanos>,
    /// Fault counts taken during the invocation.
    pub faults: FaultCounters,
    /// Pages the function wrote.
    pub pages_written: u64,
    /// Leak level observed (0 for non-leaky functions).
    pub leak_level: u64,
}

/// Word index on the runtime-state page holding the leak counter.
const LEAK_COUNTER_WORD: usize = 2;
/// Extra latency per accumulated leak unit (logging(p): baseline mean
/// 1249 ms over 1200 invocations vs. 228 ms clean implies ~1.7 ms/inv).
const LEAK_SLOPE: Nanos = Nanos::from_micros(1_700);
/// Heap pages leaked per invocation.
const LEAK_PAGES_PER_INV: u64 = 50;
/// Per-page cost of the function's own read/write loop bodies, beyond
/// the fault accounting (§5.2 microbenchmark calibration).
const WORK_PER_WRITE: Nanos = Nanos::from_nanos(25);
const WORK_PER_READ: Nanos = Nanos::from_nanos(12);

/// Executes catalog functions.
pub struct Executor;

impl Executor {
    /// Runs one invocation of `spec` inside `fproc`.
    pub fn invoke(
        kernel: &mut Kernel,
        fproc: &mut FunctionProcess,
        spec: &FunctionSpec,
        req: &RequestCtx,
    ) -> ExecReport {
        let t0 = kernel.clock.now();
        kernel.take_fault_accum(); // isolate this invocation's counts
        fproc.invocations += 1;

        // 1. Runtime layout churn (Node.js aggressive, Python light, C none).
        fproc.churn_layout(kernel);

        // 2. Time-driven GC for functions that allocate enough to trigger
        //    it (§5.3.1: img-resize). Restoration rewinds the in-memory GC
        //    clock, so post-restore invocations re-collect.
        let gc_pause = if spec.behavior.gc_sensitive {
            fproc.maybe_gc(kernel)
        } else {
            None
        };

        // 3. Memory leak (logging(p)): the leak counter lives in process
        //    memory, so rollback erases it — GH "fixes" the leak (§5.3.1).
        let mut leak_level = 0;
        if spec.behavior.leak {
            leak_level = Self::leak_step(kernel, fproc, req);
        }

        // 4. The write set: `written_kpages` pages spread over the managed
        //    regions, plus a read set (~2x), all through the fault paths.
        //    Steady-state invocations replay a cached `WritePlan` (the
        //    strided sets as pre-sorted vpn batches) into the reusable
        //    batch scratch and resolve it with `touch_batch` — one cursor
        //    walk over the extent map instead of a page-table probe per
        //    page. Faults, taint and contents are bit-identical to the
        //    per-page loop (`crates/mem/tests/batch_oracle.rs`).
        let taint = req.taint();
        let writes = spec.written_pages();
        let total = fproc.regions.dirtyable_pages().max(1);
        let writes = writes.min(total);
        let reads = (2 * writes + 256).min(total);
        let seq = req.seq;
        let pid = fproc.pid;
        let wstride = (total / writes.max(1)).max(1);
        let phase = seq % wstride;
        let gh_runtime::FunctionProcess { regions, plans, .. } = &mut *fproc;
        let (plan, batch) = plans.plan_for(regions, writes, reads, phase);
        batch.clear();
        for (i, &vpn) in plan.write_vpns.iter().enumerate() {
            batch.push(vpn, Touch::WriteWord(0x1000 ^ seq ^ i as u64), taint);
        }
        kernel
            .touch_batch_charged(pid, batch)
            .expect("invocation write set");
        batch.clear();
        for &vpn in plan.read_vpns {
            batch.push(vpn, Touch::Read, Taint::Clean);
        }
        kernel
            .touch_batch_charged(pid, batch)
            .expect("invocation read set");

        // The loop-body work around those touches.
        kernel.charge(WORK_PER_WRITE * writes + WORK_PER_READ * reads);

        // 5. Compute time: the benchmark's intrinsic work, plus leak-induced
        //    slowdown for leaky functions.
        let compute = Nanos::from_millis_f64(spec.base_invoker_ms)
            .saturating_sub(WORK_PER_WRITE * writes + WORK_PER_READ * reads);
        kernel.charge(compute + LEAK_SLOPE * leak_level);

        // 6. Computation leaves request data in registers.
        if !req.dummy {
            let proc = kernel.process_mut(pid).expect("live process");
            proc.main_thread_mut().regs.scramble(req.id.0 ^ seq, taint);
        }

        let faults = kernel.take_fault_accum();
        ExecReport {
            duration: kernel.clock.now() - t0,
            gc_pause,
            faults,
            pages_written: writes,
            leak_level,
        }
    }

    /// One leak step: read the in-memory leak counter, grow the heap,
    /// store the incremented counter. Returns the level *before* this
    /// invocation (what slows this invocation down).
    fn leak_step(kernel: &mut Kernel, fproc: &mut FunctionProcess, req: &RequestCtx) -> u64 {
        let state = fproc.regions.state_page();
        let pid = fproc.pid;
        let taint = req.taint();
        let level = {
            let proc = kernel.process(pid).expect("live process");
            proc.mem
                .peek_word(state, LEAK_COUNTER_WORD, kernel.frames())
                .unwrap_or(0)
        };
        kernel
            .run_charged(pid, |p, frames| {
                // Leak: allocate and dirty heap pages that are never freed.
                let brk = p.mem.brk();
                if p.mem
                    .set_brk(Vpn(brk.0 + LEAK_PAGES_PER_INV), frames)
                    .is_ok()
                {
                    for i in 0..LEAK_PAGES_PER_INV {
                        let _ = p.mem.touch(
                            Vpn(brk.0 + i),
                            Touch::WriteWord(0x1EAC ^ level),
                            taint,
                            frames,
                        );
                    }
                }
            })
            .expect("leak body");
        // Store the incremented counter in memory (word write, bypassing
        // word index 1 used by data writes).
        let (proc, frames) = kernel.mem_ctx(pid).expect("live process");
        if let Some(pte) = proc.mem.pte(state) {
            if !frames.is_shared(pte.frame) {
                let (data, t) = frames.data_mut(pte.frame);
                data.write_word(LEAK_COUNTER_WORD, level + 1);
                *t = t.merge(taint);
            }
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::by_name;
    use gh_runtime::RuntimeProfile;

    fn build(name: &str) -> (Kernel, FunctionProcess, FunctionSpec) {
        let spec = by_name(name).unwrap();
        let mut kernel = Kernel::boot();
        let fproc = FunctionProcess::build(
            &mut kernel,
            spec.name,
            RuntimeProfile::for_kind(spec.runtime),
            spec.total_pages(),
        );
        (kernel, fproc, spec)
    }

    #[test]
    fn invocation_writes_the_specified_pages() {
        let (mut k, mut fp, spec) = build("telco (p)");
        let req = RequestCtx::new(1, "alice", 0);
        let report = Executor::invoke(&mut k, &mut fp, &spec, &req);
        assert_eq!(report.pages_written, spec.written_pages());
        // Taint present on the written pages.
        let proc = k.process(fp.pid).unwrap();
        let tainted = proc.mem.tainted_pages(RequestId(1), k.frames());
        assert!(tainted.len() as u64 >= spec.written_pages());
    }

    #[test]
    fn duration_tracks_base_invoker_latency() {
        let (mut k, mut fp, spec) = build("pickle (p)");
        let req = RequestCtx::new(1, "a", 0);
        let report = Executor::invoke(&mut k, &mut fp, &spec, &req);
        let ms = report.duration.as_millis_f64();
        assert!(
            (spec.base_invoker_ms * 0.9..spec.base_invoker_ms * 1.6).contains(&ms),
            "duration {ms:.2}ms vs base {:.2}ms",
            spec.base_invoker_ms
        );
    }

    #[test]
    fn dummy_request_leaves_no_taint() {
        let (mut k, mut fp, spec) = build("md2html (p)");
        let req = RequestCtx::dummy(0);
        Executor::invoke(&mut k, &mut fp, &spec, &req);
        let proc = k.process(fp.pid).unwrap();
        assert!(proc.mem.tainted_pages(RequestId(0), k.frames()).is_empty());
        assert_eq!(proc.main_thread().regs.taint, Taint::Clean);
    }

    #[test]
    fn requests_scramble_registers_with_taint() {
        let (mut k, mut fp, spec) = build("md2html (p)");
        Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(9, "a", 0));
        let proc = k.process(fp.pid).unwrap();
        assert!(proc.main_thread().regs.taint.may_contain(RequestId(9)));
    }

    #[test]
    fn leaky_function_slows_down_across_invocations() {
        let (mut k, mut fp, spec) = build("logging (p)");
        assert!(spec.behavior.leak);
        let first = Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(1, "a", 0));
        let mut last = first.clone();
        for i in 2..6 {
            last = Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(i, "a", i));
        }
        assert_eq!(first.leak_level, 0);
        assert_eq!(last.leak_level, 4, "leak accumulates without restore");
        assert!(last.duration > first.duration + Nanos::from_millis(5));
    }

    #[test]
    fn second_invocation_is_warm_without_tracking() {
        // Without an SD clear between invocations (BASE/GHNOP), the second
        // run takes no tracking faults.
        let (mut k, mut fp, spec) = build("float (p)");
        Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(1, "a", 0));
        let second = Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(2, "a", 0));
        assert_eq!(second.faults.sd_wp, 0);
        assert_eq!(second.faults.cow, 0);
    }

    #[test]
    fn plan_cache_reuses_across_invocations_without_churn() {
        // C runtimes don't churn the layout, so the write/read plans
        // persist across invocations (same stride-phase ⇒ same plan).
        let (mut k, mut fp, spec) = build("atax (c)");
        Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(1, "a", 0));
        let plans_after_first = fp.plans.len();
        assert!(plans_after_first >= 1, "invocation populated the cache");
        Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(2, "a", 0));
        assert_eq!(fp.plans.len(), plans_after_first, "same phase: cache hit");
    }

    #[test]
    fn churn_invalidates_cached_plans() {
        // Node churns every request: the cache never outlives a layout
        // change (behaviour invokes churn before the write set, so after
        // an invocation exactly the current request's plans remain).
        let (mut k, mut fp, spec) = build("json (n)");
        Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(1, "a", 0));
        let populated = fp.plans.len();
        assert!(populated >= 1);
        fp.churn_layout(&mut k);
        assert!(fp.plans.is_empty(), "churn drops every cached plan");
    }

    #[test]
    fn node_churn_changes_layout_every_request() {
        let (mut k, mut fp, spec) = build("json (n)");
        let vmas0 = k.process(fp.pid).unwrap().mem.vma_count();
        Executor::invoke(&mut k, &mut fp, &spec, &RequestCtx::new(1, "a", 0));
        let vmas1 = k.process(fp.pid).unwrap().mem.vma_count();
        assert_ne!(vmas0, vmas1, "Node.js churns the memory map");
    }
}
