//! Memory-modification tracking backends (§4.3).
//!
//! Groundhog needs to know which pages an activation dirtied. The paper
//! ships soft-dirty bits and reports a prototyped userfaultfd alternative
//! that loses except when the write set is nearly empty; both are
//! implemented here behind [`MemoryTracker`].

use gh_mem::{PageRange, Vpn};
use gh_proc::PtraceSession;
use gh_sim::Nanos;

use crate::config::TrackerKind;
use crate::error::GhError;

/// What a tracker learned at collection time.
#[derive(Clone, Debug)]
pub struct DirtyReport {
    /// Pages written since the tracker was armed, ascending.
    pub dirty: Vec<Vpn>,
    /// Present pages as sorted, maximal runs — only available when the
    /// backend's collection mechanism observes the pagemap anyway
    /// (soft-dirty does; userfaultfd does not). `O(extents)` to collect
    /// and hold, never one entry per page.
    pub present_runs: Option<Vec<PageRange>>,
    /// Virtual time the collection consumed.
    pub cost: Nanos,
}

/// A tracking backend: arm after snapshot/restore, collect before restore.
pub trait MemoryTracker {
    /// Which backend this is.
    fn kind(&self) -> TrackerKind;

    /// Arms tracking for the next activation (clears soft-dirty bits /
    /// write-protects pages). Returns the virtual time consumed.
    fn arm(&mut self, s: &mut PtraceSession<'_>) -> Result<Nanos, GhError>;

    /// Collects the pages dirtied since [`MemoryTracker::arm`].
    fn collect(&mut self, s: &mut PtraceSession<'_>) -> Result<DirtyReport, GhError>;
}

/// Builds the tracker for a [`TrackerKind`].
pub fn make_tracker(kind: TrackerKind) -> Box<dyn MemoryTracker + Send> {
    match kind {
        TrackerKind::SoftDirty => Box::new(SoftDirtyTracker),
        TrackerKind::Uffd => Box::new(UffdTracker),
    }
}

/// Soft-dirty-bit tracking: `clear_refs` to arm, a dirty scan to
/// collect. The *simulated* collection cost follows the kernel's charge
/// model: a full pagemap walk scaling with the mapped address space
/// under paper parity (Fig. 3 right, dashed), or per-extent + per-dirty
/// under extent charging. Host-side the scan reads the dirty index and
/// extent runs — `O(dirty + extents)` regardless of the charge model.
pub struct SoftDirtyTracker;

impl MemoryTracker for SoftDirtyTracker {
    fn kind(&self) -> TrackerKind {
        TrackerKind::SoftDirty
    }

    fn arm(&mut self, s: &mut PtraceSession<'_>) -> Result<Nanos, GhError> {
        Ok(s.clear_soft_dirty()?)
    }

    fn collect(&mut self, s: &mut PtraceSession<'_>) -> Result<DirtyReport, GhError> {
        let t0 = s.kernel().clock.now();
        let (dirty, present_runs) = s.dirty_scan()?;
        let cost = s.kernel().clock.now() - t0;
        Ok(DirtyReport {
            dirty,
            present_runs: Some(present_runs),
            cost,
        })
    }
}

/// Userfaultfd write-protect tracking: every write notifies user space
/// (expensive, §4.3: "frequent context switches"), but collection just
/// drains the event log — no scan.
pub struct UffdTracker;

impl MemoryTracker for UffdTracker {
    fn kind(&self) -> TrackerKind {
        TrackerKind::Uffd
    }

    fn arm(&mut self, s: &mut PtraceSession<'_>) -> Result<Nanos, GhError> {
        let t0 = s.kernel().clock.now();
        s.arm_uffd()?;
        Ok(s.kernel().clock.now() - t0)
    }

    fn collect(&mut self, s: &mut PtraceSession<'_>) -> Result<DirtyReport, GhError> {
        let t0 = s.kernel().clock.now();
        let mut dirty = s.disarm_uffd()?;
        dirty.sort_unstable_by_key(|v| v.0);
        dirty.dedup();
        let cost = s.kernel().clock.now() - t0;
        Ok(DirtyReport {
            dirty,
            present_runs: None,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::{Perms, Taint, Touch, VmaKind};
    use gh_proc::{Kernel, Pid};

    fn machine() -> (Kernel, Pid, Vec<Vpn>) {
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        let mut vpns = Vec::new();
        k.run_charged(pid, |p, frames| {
            let r = p.mem.mmap(16, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(1), Taint::Clean, frames)
                    .unwrap();
                vpns.push(vpn);
            }
        })
        .unwrap();
        (k, pid, vpns)
    }

    fn write_pages(k: &mut Kernel, pid: Pid, pages: &[Vpn]) {
        k.run_charged(pid, |p, frames| {
            for &vpn in pages {
                p.mem
                    .touch(vpn, Touch::WriteWord(2), Taint::Clean, frames)
                    .unwrap();
            }
        })
        .unwrap();
    }

    fn roundtrip(kind: TrackerKind) -> (DirtyReport, Vec<Vpn>) {
        let (mut k, pid, vpns) = machine();
        let mut tracker = make_tracker(kind);
        {
            let mut s = PtraceSession::attach(&mut k, pid).unwrap();
            s.interrupt_all().unwrap();
            tracker.arm(&mut s).unwrap();
            s.detach().unwrap();
        }
        let written = vec![vpns[3], vpns[7], vpns[8]];
        write_pages(&mut k, pid, &written);
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        let report = tracker.collect(&mut s).unwrap();
        s.detach().unwrap();
        (report, written)
    }

    #[test]
    fn soft_dirty_collects_exactly_the_writes() {
        let (report, mut written) = roundtrip(TrackerKind::SoftDirty);
        written.sort_unstable_by_key(|v| v.0);
        assert_eq!(report.dirty, written);
        let present = report.present_runs.expect("SD scan sees the pagemap");
        assert!(gh_mem::runs_len(&present) >= 16);
    }

    #[test]
    fn uffd_collects_exactly_the_writes() {
        let (report, mut written) = roundtrip(TrackerKind::Uffd);
        written.sort_unstable_by_key(|v| v.0);
        assert_eq!(report.dirty, written);
        assert!(report.present_runs.is_none(), "UFFD has no pagemap view");
    }

    #[test]
    fn backends_agree_on_dirty_sets() {
        let (sd, _) = roundtrip(TrackerKind::SoftDirty);
        let (uffd, _) = roundtrip(TrackerKind::Uffd);
        assert_eq!(sd.dirty, uffd.dirty);
    }

    #[test]
    fn sd_collection_cost_scales_with_address_space_not_writes() {
        // The defining §4.3 trade-off: SD pays a full scan even for one
        // dirty page; UFFD pays per event.
        let (mut k, pid, vpns) = machine();
        let mut sd = SoftDirtyTracker;
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        sd.arm(&mut s).unwrap();
        s.detach().unwrap();
        write_pages(&mut k, pid, &vpns[..1]);
        let mut s = PtraceSession::attach(&mut k, pid).unwrap();
        s.interrupt_all().unwrap();
        let sd_report = sd.collect(&mut s).unwrap();
        s.detach().unwrap();

        let (mut k2, pid2, vpns2) = machine();
        let mut uffd = UffdTracker;
        let mut s = PtraceSession::attach(&mut k2, pid2).unwrap();
        s.interrupt_all().unwrap();
        uffd.arm(&mut s).unwrap();
        s.detach().unwrap();
        write_pages(&mut k2, pid2, &vpns2[..1]);
        let mut s = PtraceSession::attach(&mut k2, pid2).unwrap();
        s.interrupt_all().unwrap();
        let uffd_report = uffd.collect(&mut s).unwrap();
        s.detach().unwrap();

        assert!(
            uffd_report.cost < sd_report.cost,
            "with ~0 dirty pages UFFD collection must be cheaper: {} vs {}",
            uffd_report.cost,
            sd_report.cost
        );
    }

    #[test]
    fn rearming_resets_state() {
        let (mut k, pid, vpns) = machine();
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        for (round, &page) in vpns.iter().enumerate().take(3) {
            {
                let mut s = PtraceSession::attach(&mut k, pid).unwrap();
                s.interrupt_all().unwrap();
                tracker.arm(&mut s).unwrap();
                s.detach().unwrap();
            }
            write_pages(&mut k, pid, &[page]);
            let mut s = PtraceSession::attach(&mut k, pid).unwrap();
            s.interrupt_all().unwrap();
            let report = tracker.collect(&mut s).unwrap();
            s.detach().unwrap();
            assert_eq!(report.dirty, vec![page], "round {round}");
        }
    }
}
