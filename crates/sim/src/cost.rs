//! The calibrated cost model.
//!
//! Every constant in [`CostModel`] is the simulated cost of one primitive
//! operation of the underlying "kernel". The defaults are calibrated against
//! the paper's own measurements:
//!
//! - restore-phase timings and per-benchmark restore totals (Fig. 8, Table 3),
//! - the micro-benchmark trends of §5.2 (Fig. 3),
//! - the SD-bits vs. userfaultfd comparison of §4.3,
//! - snapshot costs of §5.5.
//!
//! The model deliberately exposes *mechanistic* constants (per page fault,
//! per PTE scanned, per injected syscall, per thread stopped, ...) rather
//! than per-benchmark fudge factors: experiment shapes must *emerge* from
//! operation counts, exactly as they do on real hardware.

use crate::time::Nanos;

/// Number of bytes in a simulated page (fixed at the Linux default).
pub const PAGE_SIZE: usize = 4096;

/// How page-metadata primitives (pagemap scans, `clear_refs`, snapshot
/// capture) are charged.
///
/// The paper's implementation walks `/proc/pid/pagemap` and `clear_refs`
/// page by page, so their cost scales with the *mapped* address space —
/// that is [`ChargeModel::PerMappedPage`], the default, and the mode all
/// paper figures are generated under. [`ChargeModel::ExtentDirty`]
/// instead models extent-granular kernel interfaces (a
/// `PAGEMAP_SCAN`-style ioctl returning dirty runs, range-batched
/// write-protection): scans charge per extent visited plus per dirty
/// page reported, and snapshot capture charges per extent plus one
/// reference per present page. Select it with
/// `GH_CHARGE_MODEL=extent` or by setting
/// [`CostModel::charge_model`] directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ChargeModel {
    /// Paper parity: pagemap walk / `clear_refs` cost ∝ mapped pages.
    #[default]
    PerMappedPage,
    /// Extent-granular interfaces: cost ∝ extents + dirty pages.
    ExtentDirty,
}

/// The page-metadata footprint of one scan/capture operation, as seen by
/// whichever [`ChargeModel`] is active.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanShape {
    /// Pages covered by VMAs (the paper-mode walk length).
    pub mapped_pages: u64,
    /// Mapped regions (per-region seek overhead in both modes).
    pub vmas: usize,
    /// Page-table extents (the extent-mode walk length).
    pub extents: u64,
    /// Dirty pages reported (extent-mode per-result cost).
    pub dirty_pages: u64,
}

/// Calibrated per-operation costs for the simulated kernel and Groundhog's
/// user-space work.
///
/// Construct with [`CostModel::default`] (the paper calibration) and adjust
/// individual fields for ablations.
///
/// # Examples
///
/// ```
/// use gh_sim::CostModel;
///
/// let m = CostModel::default();
/// // Restoring 1000 scattered pages is more expensive than one 1000-page run.
/// let scattered = m.restore_pages_cost(1000, 1000);
/// let contiguous = m.restore_pages_cost(1000, 1);
/// assert!(contiguous < scattered);
/// ```
#[derive(Clone, Debug)]
pub struct CostModel {
    // ----- In-function page-fault costs (critical path, §5.2.1) -----
    /// Minor fault that (re-)establishes a PTE on first touch of an
    /// anonymous zero page.
    pub minor_fault: Nanos,
    /// Write-protect fault that sets the soft-dirty bit on the first write
    /// to a page after a `clear_refs` epoch ("required by the SD-bit
    /// mechanism on our hardware", §5.2.1).
    pub sd_wp_fault: Nanos,
    /// Copy-on-write fault after `fork`: fault handling plus a full page
    /// copy (§5.2.3: "each page fault is significantly more expensive...
    /// entailing an additional page copy").
    pub cow_fault: Nanos,
    /// First access to any page of a freshly forked child: dTLB miss plus
    /// lazy PTE creation (§5.2.3, drives FORK's linear growth with address
    /// space size in Fig. 3 right).
    pub fork_cold_access: Nanos,
    /// Userfaultfd write-protect notification round-trip to user space
    /// (§4.3: "significantly higher overhead compared to SD-bits due to the
    /// frequent context switches").
    pub uffd_fault: Nanos,
    /// Warm access (read or write) to a present, non-faulting page from
    /// function code. Per page touched, models the loop body around it.
    pub warm_touch: Nanos,

    // ----- ptrace orchestration (off critical path, Fig. 8) -----
    /// Interrupting the function process (base cost).
    pub ptrace_interrupt_base: Nanos,
    /// Additional interrupt cost per thread beyond the first.
    pub ptrace_interrupt_per_thread: Nanos,
    /// Saving or restoring one thread's register file.
    pub ptrace_regs_per_thread: Nanos,
    /// Detaching from the process (base cost).
    pub ptrace_detach_base: Nanos,
    /// Additional detach cost per thread.
    pub ptrace_detach_per_thread: Nanos,
    /// Injecting one syscall (brk/mmap/munmap/madvise/mprotect) via ptrace.
    pub syscall_inject: Nanos,

    // ----- /proc scanning (off critical path, Fig. 8) -----
    /// Reading `/proc/pid/maps` (base cost).
    pub read_maps_base: Nanos,
    /// Reading `/proc/pid/maps`, per VMA.
    pub read_maps_per_vma: Nanos,
    /// Scanning one PTE in `/proc/pid/pagemap` (soft-dirty scan).
    pub scan_pte: Nanos,
    /// Per-VMA overhead of a pagemap walk (seek + read call per region;
    /// CPython images map ~100 regions, Node ~300).
    pub scan_per_vma: Nanos,
    /// Diffing memory layouts (base cost).
    pub diff_base: Nanos,
    /// Diffing memory layouts, per VMA considered.
    pub diff_per_vma: Nanos,
    /// Resetting soft-dirty bits via `clear_refs` (base cost).
    pub clear_sd_base: Nanos,
    /// Resetting soft-dirty bits, per mapped page.
    pub clear_sd_per_page: Nanos,

    // ----- Extent-granular charging ([`ChargeModel::ExtentDirty`]) -----
    /// Which charging mode the scan/capture primitives use.
    pub charge_model: ChargeModel,
    /// Visiting one page-table extent during a dirty scan (the per-range
    /// descriptor of a `PAGEMAP_SCAN`-style ioctl).
    pub scan_extent: Nanos,
    /// Reporting one dirty page from a dirty scan.
    pub scan_dirty_page: Nanos,
    /// Re-protecting one extent during a range-batched `clear_refs`.
    pub clear_sd_extent: Nanos,
    /// Capturing one extent run during snapshot (run registration).
    pub snapshot_per_extent: Nanos,

    // ----- Memory restoration (off critical path, Fig. 8) -----
    /// Copying one page back from the snapshot, when restored individually.
    pub restore_page_copy: Nanos,
    /// Fixed setup cost per coalesced contiguous run of pages (§5.2.2:
    /// "Groundhog is able to coalesce individual page restorations into
    /// fewer, larger memory copy operations").
    pub coalesced_run_setup: Nanos,
    /// Per-page cost inside a coalesced run.
    pub coalesced_page_copy: Nanos,
    /// Zeroing one page of the stack during restore.
    pub zero_stack_page: Nanos,
    /// `madvise` bookkeeping for one newly paged page.
    pub madvise_new_page: Nanos,
    /// Forking/joining one auxiliary copy lane when the page-writeback
    /// pass runs on multiple lanes (thread-pool handoff + completion
    /// barrier, paid once per extra lane).
    pub lane_fork_join: Nanos,

    // ----- Lazy (on-demand) restoration (§5.5's deferred variant) -----
    /// First-touch fault on a page whose restore was deferred: a
    /// userfaultfd missing/wp notification round-trip to the manager plus
    /// the page install from the snapshot image (`UFFDIO_COPY`). Charged
    /// on the *next request's* critical path, once per touched deferred
    /// page — the price lazy mode pays for taking the writeback off the
    /// inter-request critical path.
    pub lazy_fault: Nanos,
    /// Registering one coalesced run of the deferred set with the fault
    /// handler (one uffd-register / mprotect ioctl per contiguous range).
    pub defer_arm_run: Nanos,
    /// Per-page PTE update inside a registered run (write-protect /
    /// unmap-to-missing walk).
    pub defer_arm_page: Nanos,

    // ----- Snapshotting (one-time, §5.5) -----
    /// Fixed snapshot overhead (pausing, walking, bookkeeping).
    pub snapshot_base: Nanos,
    /// Copying one *present* page into the manager's memory.
    pub snapshot_per_present_page: Nanos,
    /// Walking metadata of one mapped page.
    pub snapshot_per_mapped_page: Nanos,
    /// Taking one CoW reference instead of copying a page (§5.5's
    /// memory-optimized snapshot variant).
    pub snapshot_cow_ref: Nanos,

    // ----- Process-level primitives -----
    /// The `fork` syscall itself (page-table duplication dominated).
    pub fork_base: Nanos,
    /// `fork` page-table duplication per mapped page.
    pub fork_per_page: Nanos,
    /// Tearing down a process (used by FORK isolation after each request),
    /// base cost (wait4, task teardown).
    pub process_teardown: Nanos,
    /// Per-present-page teardown cost (`exit_mmap`: page-table walk,
    /// CoW-refcount drops, memcg uncharging). This is what makes
    /// fork-per-request throughput collapse on short functions (Table 1:
    /// unpack_seq FORK sustains 136 r/s vs 802 baseline).
    pub teardown_per_page: Nanos,

    // ----- Platform / proxy costs (§4.5, §5.3.1) -----
    /// Fixed per-request cost of Groundhog's manager interposition: two
    /// pipe hops and scheduler wake-ups.
    pub gh_proxy_base: Nanos,
    /// Per-KiB cost of proxying request inputs/outputs through the manager.
    pub gh_proxy_per_kb: Nanos,
    /// Multiplier applied to proxy costs for the refactored Node.js runtime
    /// wrapper (§5.3.1: overhead "arises due to our refactoring of
    /// OpenWhisk's Node.js runtime wrapper").
    pub nodejs_refactor_mult: f64,

    // ----- Faasm-style isolation (§5.3.3) -----
    /// Remapping the contiguous WebAssembly memory region to its
    /// checkpointed state after a request.
    pub faasm_remap_base: Nanos,
    /// Per-dirtied-page CoW cost of the Faasm remap.
    pub faasm_remap_per_dirty_page: Nanos,
}

impl Default for CostModel {
    /// The paper calibration ([`CostModel::calibrated`]), optionally
    /// scaled by the `GH_COST_SCALE` environment variable (a positive
    /// float). The knob exists for the CI perf-regression gate: running
    /// the bench-smoke harness with `GH_COST_SCALE=2` injects a uniform
    /// 2x kernel-primitive slowdown end-to-end, which the gate must
    /// detect against `results/baseline.json`. Unset (the default, and
    /// always in tests) this is exactly the calibration.
    ///
    /// `GH_CHARGE_MODEL=extent` additionally switches scan/capture
    /// charging to [`ChargeModel::ExtentDirty`]; unset (or `paper`) keeps
    /// the per-mapped-page charging every paper figure is generated
    /// under.
    fn default() -> Self {
        let mut m = Self::calibrated();
        if let Ok(v) = std::env::var("GH_CHARGE_MODEL") {
            if v.eq_ignore_ascii_case("extent") {
                m.charge_model = ChargeModel::ExtentDirty;
            }
        }
        match std::env::var("GH_COST_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            Some(s) if s > 0.0 && (s - 1.0).abs() > 1e-12 => m.scaled(s),
            _ => m,
        }
    }
}

impl CostModel {
    /// The unscaled paper calibration.
    pub fn calibrated() -> Self {
        Self {
            // In-function faults.
            minor_fault: Nanos::from_nanos(800),
            sd_wp_fault: Nanos::from_nanos(450),
            cow_fault: Nanos::from_nanos(2_400),
            fork_cold_access: Nanos::from_nanos(300),
            uffd_fault: Nanos::from_nanos(6_000),
            warm_touch: Nanos::from_nanos(8),

            // ptrace.
            ptrace_interrupt_base: Nanos::from_micros(120),
            ptrace_interrupt_per_thread: Nanos::from_micros(20),
            ptrace_regs_per_thread: Nanos::from_micros(15),
            ptrace_detach_base: Nanos::from_micros(30),
            ptrace_detach_per_thread: Nanos::from_micros(8),
            syscall_inject: Nanos::from_nanos(2_200),

            // /proc scanning.
            read_maps_base: Nanos::from_micros(25),
            read_maps_per_vma: Nanos::from_nanos(1_200),
            scan_pte: Nanos::from_nanos(60),
            scan_per_vma: Nanos::from_nanos(3_000),
            diff_base: Nanos::from_micros(8),
            diff_per_vma: Nanos::from_nanos(600),
            clear_sd_base: Nanos::from_micros(30),
            clear_sd_per_page: Nanos::from_nanos(25),

            // Extent-granular charging. Calibrated so that at typical
            // extent counts (tens) the fixed work is negligible and the
            // scan cost is dominated by the dirty pages it reports.
            charge_model: ChargeModel::PerMappedPage,
            scan_extent: Nanos::from_nanos(250),
            scan_dirty_page: Nanos::from_nanos(80),
            clear_sd_extent: Nanos::from_nanos(300),
            snapshot_per_extent: Nanos::from_nanos(400),

            // Memory restoration.
            restore_page_copy: Nanos::from_nanos(2_600),
            coalesced_run_setup: Nanos::from_nanos(1_300),
            coalesced_page_copy: Nanos::from_nanos(1_400),
            zero_stack_page: Nanos::from_nanos(400),
            madvise_new_page: Nanos::from_nanos(150),
            lane_fork_join: Nanos::from_micros(2),

            // Lazy restoration. The fault is uffd-notification-priced
            // (§4.3) plus a page install; arming is ioctl-priced per run.
            // Lazy therefore always wins on critical-path restore time
            // and wins on *total* page work only when the next request
            // touches few of the deferred pages — the §5.5 trade-off.
            lazy_fault: Nanos::from_nanos(7_000),
            defer_arm_run: Nanos::from_nanos(1_500),
            defer_arm_page: Nanos::from_nanos(30),

            // Snapshotting.
            snapshot_base: Nanos::from_millis_f64(1.5),
            snapshot_per_present_page: Nanos::from_nanos(2_500),
            snapshot_per_mapped_page: Nanos::from_nanos(60),
            snapshot_cow_ref: Nanos::from_nanos(120),

            // Process primitives.
            fork_base: Nanos::from_micros(180),
            fork_per_page: Nanos::from_nanos(25),
            process_teardown: Nanos::from_micros(120),
            teardown_per_page: Nanos::from_nanos(2_000),

            // Platform / proxy.
            gh_proxy_base: Nanos::from_micros(800),
            gh_proxy_per_kb: Nanos::from_micros(12),
            nodejs_refactor_mult: 2.2,

            // Faasm.
            faasm_remap_base: Nanos::from_micros(450),
            faasm_remap_per_dirty_page: Nanos::from_nanos(180),
        }
    }

    /// Every time constant multiplied by `factor` (ratios like
    /// [`CostModel::nodejs_refactor_mult`] are left alone). Used by the
    /// CI gate's slowdown injection and by ablation experiments.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut m = self.clone();
        for field in m.nanos_fields_mut() {
            *field = field.scale(factor);
        }
        m
    }

    /// Every [`Nanos`]-typed constant, mutably — the single list
    /// [`CostModel::scaled`] walks. A unit test cross-checks its length
    /// against the struct's field count so a newly added time constant
    /// cannot silently escape scaling.
    fn nanos_fields_mut(&mut self) -> Vec<&mut Nanos> {
        let m = self;
        vec![
            &mut m.minor_fault,
            &mut m.sd_wp_fault,
            &mut m.cow_fault,
            &mut m.fork_cold_access,
            &mut m.uffd_fault,
            &mut m.warm_touch,
            &mut m.ptrace_interrupt_base,
            &mut m.ptrace_interrupt_per_thread,
            &mut m.ptrace_regs_per_thread,
            &mut m.ptrace_detach_base,
            &mut m.ptrace_detach_per_thread,
            &mut m.syscall_inject,
            &mut m.read_maps_base,
            &mut m.read_maps_per_vma,
            &mut m.scan_pte,
            &mut m.scan_per_vma,
            &mut m.diff_base,
            &mut m.diff_per_vma,
            &mut m.clear_sd_base,
            &mut m.clear_sd_per_page,
            &mut m.scan_extent,
            &mut m.scan_dirty_page,
            &mut m.clear_sd_extent,
            &mut m.snapshot_per_extent,
            &mut m.restore_page_copy,
            &mut m.coalesced_run_setup,
            &mut m.coalesced_page_copy,
            &mut m.zero_stack_page,
            &mut m.madvise_new_page,
            &mut m.lane_fork_join,
            &mut m.lazy_fault,
            &mut m.defer_arm_run,
            &mut m.defer_arm_page,
            &mut m.snapshot_base,
            &mut m.snapshot_per_present_page,
            &mut m.snapshot_per_mapped_page,
            &mut m.snapshot_cow_ref,
            &mut m.fork_base,
            &mut m.fork_per_page,
            &mut m.process_teardown,
            &mut m.teardown_per_page,
            &mut m.gh_proxy_base,
            &mut m.gh_proxy_per_kb,
            &mut m.faasm_remap_base,
            &mut m.faasm_remap_per_dirty_page,
        ]
    }
    /// Cost of interrupting a process with `threads` threads.
    pub fn interrupt_cost(&self, threads: usize) -> Nanos {
        self.ptrace_interrupt_base
            + self.ptrace_interrupt_per_thread * threads.saturating_sub(1) as u64
    }

    /// Cost of saving or restoring registers of all `threads`.
    pub fn regs_cost(&self, threads: usize) -> Nanos {
        self.ptrace_regs_per_thread * threads as u64
    }

    /// Cost of detaching from a process with `threads` threads.
    pub fn detach_cost(&self, threads: usize) -> Nanos {
        self.ptrace_detach_base + self.ptrace_detach_per_thread * threads as u64
    }

    /// Cost of reading `/proc/pid/maps` with `vmas` mappings.
    pub fn read_maps_cost(&self, vmas: usize) -> Nanos {
        self.read_maps_base + self.read_maps_per_vma * vmas as u64
    }

    /// Cost of scanning soft-dirty bits over `mapped_pages` PTEs spread
    /// over `vmas` regions.
    pub fn scan_cost_vmas(&self, mapped_pages: u64, vmas: usize) -> Nanos {
        self.scan_pte * mapped_pages + self.scan_per_vma * vmas as u64
    }

    /// Cost of scanning soft-dirty bits over `mapped_pages` PTEs (single
    /// contiguous region).
    pub fn scan_cost(&self, mapped_pages: u64) -> Nanos {
        self.scan_pte * mapped_pages
    }

    /// Cost of one dirty-page collection scan, per the active
    /// [`ChargeModel`]: a full pagemap walk (∝ mapped pages) under
    /// [`ChargeModel::PerMappedPage`], or a `PAGEMAP_SCAN`-style
    /// extent walk (∝ extents + dirty pages reported) under
    /// [`ChargeModel::ExtentDirty`].
    pub fn dirty_scan_cost(&self, s: ScanShape) -> Nanos {
        match self.charge_model {
            ChargeModel::PerMappedPage => self.scan_cost_vmas(s.mapped_pages, s.vmas),
            ChargeModel::ExtentDirty => {
                self.scan_per_vma * s.vmas as u64
                    + self.scan_extent * s.extents
                    + self.scan_dirty_page * s.dirty_pages
            }
        }
    }

    /// Cost of re-arming soft-dirty tracking (`clear_refs`), per the
    /// active [`ChargeModel`].
    pub fn rearm_cost(&self, s: ScanShape) -> Nanos {
        match self.charge_model {
            ChargeModel::PerMappedPage => self.clear_sd_cost(s.mapped_pages),
            ChargeModel::ExtentDirty => self.clear_sd_base + self.clear_sd_extent * s.extents,
        }
    }

    /// Cost of capturing snapshot page contents, per the active
    /// [`ChargeModel`]. `by_reference` is true for capture paths that
    /// take refcounted references instead of copying contents (eager
    /// run capture, §5.5 CoW).
    pub fn snapshot_capture_cost(&self, present: u64, s: ScanShape, by_reference: bool) -> Nanos {
        let per_page = if by_reference {
            self.snapshot_cow_ref
        } else {
            self.snapshot_per_present_page
        };
        match self.charge_model {
            ChargeModel::PerMappedPage => {
                self.snapshot_base
                    + per_page * present
                    + self.snapshot_per_mapped_page * s.mapped_pages
            }
            ChargeModel::ExtentDirty => {
                self.snapshot_base + per_page * present + self.snapshot_per_extent * s.extents
            }
        }
    }

    /// Cost of diffing two memory layouts of `vmas` mappings.
    pub fn diff_cost(&self, vmas: usize) -> Nanos {
        self.diff_base + self.diff_per_vma * vmas as u64
    }

    /// Cost of resetting soft-dirty bits over `mapped_pages` pages.
    pub fn clear_sd_cost(&self, mapped_pages: u64) -> Nanos {
        self.clear_sd_base + self.clear_sd_per_page * mapped_pages
    }

    /// Cost of restoring `pages` dirty pages grouped into `runs` contiguous
    /// runs, with coalescing enabled.
    ///
    /// When pages are scattered (`runs == pages`) this degenerates to the
    /// per-page copy cost; dense write sets (few runs) approach the bulk
    /// copy rate, producing the slope change at ~60% dirtied observed in
    /// Fig. 3 (left).
    pub fn restore_pages_cost(&self, pages: u64, runs: u64) -> Nanos {
        if pages == 0 {
            return Nanos::ZERO;
        }
        let runs = runs.clamp(1, pages);
        if runs == pages {
            // No effective coalescing.
            self.restore_page_copy * pages
        } else {
            self.coalesced_run_setup * runs + self.coalesced_page_copy * pages
        }
    }

    /// Cost of restoring `pages` with coalescing disabled (ablation).
    pub fn restore_pages_cost_uncoalesced(&self, pages: u64) -> Nanos {
        self.restore_page_copy * pages
    }

    /// Wall-clock cost of a page-writeback pass split across parallel copy
    /// lanes, each lane given as `(pages, runs)`. Lanes copy concurrently,
    /// so the pass takes as long as its slowest lane, plus a
    /// [`lane_fork_join`](CostModel::lane_fork_join) handoff per *extra*
    /// lane. A single lane therefore costs exactly
    /// [`restore_pages_cost`](CostModel::restore_pages_cost) (or the
    /// uncoalesced variant), which keeps the one-lane restore engine
    /// bit-identical to a serial copy loop.
    pub fn restore_lanes_cost(&self, lanes: &[(u64, u64)], coalesce: bool) -> Nanos {
        let slowest = lanes
            .iter()
            .map(|&(pages, runs)| {
                if coalesce {
                    self.restore_pages_cost(pages, runs)
                } else {
                    self.restore_pages_cost_uncoalesced(pages)
                }
            })
            .max()
            .unwrap_or(Nanos::ZERO);
        slowest + self.lane_fork_join * lanes.len().saturating_sub(1) as u64
    }

    /// Cost of arming `pages` deferred pages (grouped into `runs`
    /// contiguous runs) for on-demand restoration: per-run fault-handler
    /// registration plus a per-page PTE walk. For any non-trivial set
    /// this is far below the writeback it replaces — the whole point of
    /// the lazy restore mode.
    pub fn defer_arm_cost(&self, pages: u64, runs: u64) -> Nanos {
        if pages == 0 {
            return Nanos::ZERO;
        }
        self.defer_arm_run * runs.clamp(1, pages) + self.defer_arm_page * pages
    }

    /// One-time snapshot cost for a process with the given footprint.
    pub fn snapshot_cost(&self, present_pages: u64, mapped_pages: u64, threads: usize) -> Nanos {
        self.snapshot_base
            + self.snapshot_per_present_page * present_pages
            + self.snapshot_per_mapped_page * mapped_pages
            + self.interrupt_cost(threads)
            + self.regs_cost(threads)
            + self.detach_cost(threads)
    }

    /// Cost of the `fork` syscall for a process with `mapped_pages`.
    pub fn fork_cost(&self, mapped_pages: u64) -> Nanos {
        self.fork_base + self.fork_per_page * mapped_pages
    }

    /// Per-request proxy cost of the Groundhog manager for `input_kb +
    /// output_kb` KiB of payload; `nodejs_refactored` applies the
    /// refactored-wrapper multiplier.
    pub fn gh_proxy_cost(&self, payload_kb: u64, nodejs_refactored: bool) -> Nanos {
        let raw = self.gh_proxy_base + self.gh_proxy_per_kb * payload_kb;
        if nodejs_refactored {
            raw.scale(self.nodejs_refactor_mult)
        } else {
            raw
        }
    }

    /// Faasm's post-request memory reset cost.
    pub fn faasm_reset_cost(&self, dirty_pages: u64) -> Nanos {
        self.faasm_remap_base + self.faasm_remap_per_dirty_page * dirty_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_beats_scattered_copies() {
        let m = CostModel::default();
        let scattered = m.restore_pages_cost(10_000, 10_000);
        let dense = m.restore_pages_cost(10_000, 10);
        assert!(dense < scattered);
        // And dense restore approaches the coalesced page rate.
        let floor = m.coalesced_page_copy * 10_000;
        assert!(dense >= floor);
        assert!(dense < floor + m.coalesced_run_setup * 20);
    }

    #[test]
    fn restore_zero_pages_is_free() {
        let m = CostModel::default();
        assert_eq!(m.restore_pages_cost(0, 0), Nanos::ZERO);
        assert_eq!(m.restore_lanes_cost(&[], true), Nanos::ZERO);
    }

    #[test]
    fn single_lane_matches_serial_cost() {
        let m = CostModel::default();
        assert_eq!(
            m.restore_lanes_cost(&[(1000, 4)], true),
            m.restore_pages_cost(1000, 4)
        );
        assert_eq!(
            m.restore_lanes_cost(&[(1000, 4)], false),
            m.restore_pages_cost_uncoalesced(1000)
        );
    }

    #[test]
    fn lane_parallel_writeback_beats_serial() {
        let m = CostModel::default();
        let serial = m.restore_lanes_cost(&[(1024, 4)], true);
        let split = m.restore_lanes_cost(&[(256, 1); 4], true);
        assert!(split < serial, "4 lanes {split} !< serial {serial}");
        // The fork/join overhead is charged per extra lane.
        assert_eq!(
            m.restore_lanes_cost(&[(256, 1); 4], true),
            m.restore_pages_cost(256, 1) + m.lane_fork_join * 3
        );
    }

    #[test]
    fn runs_clamped_to_pages() {
        let m = CostModel::default();
        // More runs than pages is nonsensical input; clamps to scattered.
        assert_eq!(m.restore_pages_cost(5, 10), m.restore_pages_cost(5, 5));
        // Zero runs clamps to one run.
        assert_eq!(m.restore_pages_cost(5, 0), m.restore_pages_cost(5, 1));
    }

    #[test]
    fn defer_arm_is_cheaper_than_writeback_it_replaces() {
        let m = CostModel::default();
        for (pages, runs) in [(20u64, 18u64), (1_000, 40), (10_000, 1)] {
            assert!(
                m.defer_arm_cost(pages, runs) < m.restore_pages_cost(pages, runs),
                "defer must beat writeback at {pages} pages / {runs} runs"
            );
        }
        assert_eq!(m.defer_arm_cost(0, 0), Nanos::ZERO);
    }

    #[test]
    fn lazy_fault_dearer_than_eager_page_copy() {
        // The per-page lazy trade-off: a deferred page touched by the
        // next request costs more than its eager copy would have — lazy
        // wins only when most deferred pages are never touched.
        let m = CostModel::default();
        assert!(m.lazy_fault > m.coalesced_page_copy);
        assert!(m.lazy_fault > m.restore_page_copy);
    }

    #[test]
    fn scaled_covers_every_time_constant() {
        // The flat Debug rendering has one `: ` per field; everything
        // except the non-time fields must be in the scaling list, so a
        // new Nanos constant that skips `nanos_fields_mut` fails here.
        const RATIO_FIELDS: usize = 2; // nodejs_refactor_mult, charge_model
        let mut m = CostModel::calibrated();
        let listed = m.nanos_fields_mut().len();
        let total = format!("{m:?}").matches(": ").count();
        assert_eq!(
            listed + RATIO_FIELDS,
            total,
            "a CostModel field is missing from nanos_fields_mut — \
             GH_COST_SCALE would silently skip it"
        );
    }

    #[test]
    fn scaled_model_scales_times_not_ratios() {
        let m = CostModel::calibrated();
        let s = m.scaled(2.0);
        assert_eq!(s.minor_fault, m.minor_fault * 2);
        assert_eq!(s.lazy_fault, m.lazy_fault * 2);
        assert_eq!(s.snapshot_base, m.snapshot_base * 2);
        assert_eq!(s.nodejs_refactor_mult, m.nodejs_refactor_mult);
        assert_eq!(
            s.restore_pages_cost(100, 4),
            m.restore_pages_cost(100, 4) * 2
        );
    }

    #[test]
    fn extent_charging_scales_with_dirty_not_mapped() {
        // The tentpole claim at the cost-model level: under extent
        // charging, a scan over a 1M-page space with 1% dirty costs
        // what its extents + dirty set cost — orders of magnitude below
        // the per-mapped-page walk — and is invariant in mapped size.
        let paper = CostModel::calibrated();
        let mut extent = CostModel::calibrated();
        extent.charge_model = ChargeModel::ExtentDirty;
        let big = ScanShape {
            mapped_pages: 1 << 20,
            vmas: 10,
            extents: 40,
            dirty_pages: 10_000,
        };
        let small = ScanShape {
            mapped_pages: 1 << 14,
            ..big
        };
        assert!(extent.dirty_scan_cost(big) * 50 < paper.dirty_scan_cost(big));
        assert_eq!(
            extent.dirty_scan_cost(big),
            extent.dirty_scan_cost(small),
            "extent charging must not see the mapped size"
        );
        assert!(extent.rearm_cost(big) * 50 < paper.rearm_cost(big));
        assert!(
            extent.snapshot_capture_cost(big.mapped_pages, big, true) * 5
                < paper.snapshot_capture_cost(big.mapped_pages, big, false)
        );
        // Paper mode is byte-for-byte the legacy formulas.
        assert_eq!(
            paper.dirty_scan_cost(big),
            paper.scan_cost_vmas(big.mapped_pages, big.vmas)
        );
        assert_eq!(paper.rearm_cost(big), paper.clear_sd_cost(big.mapped_pages));
    }

    #[test]
    fn thread_proportional_costs() {
        let m = CostModel::default();
        assert!(m.interrupt_cost(8) > m.interrupt_cost(1));
        assert_eq!(
            m.interrupt_cost(1),
            m.ptrace_interrupt_base,
            "single thread pays only the base"
        );
        assert_eq!(m.regs_cost(4), m.ptrace_regs_per_thread * 4);
    }

    #[test]
    fn uffd_fault_dearer_than_sd_fault() {
        // §4.3: UFFD wins only when dirtied pages are near zero, because
        // its per-fault cost is much higher than the SD-bit WP fault.
        let m = CostModel::default();
        assert!(m.uffd_fault > m.sd_wp_fault * 10);
    }

    #[test]
    fn cow_fault_dearer_than_sd_fault() {
        // §5.2.3: FORK's page faults also require page copying.
        let m = CostModel::default();
        assert!(m.cow_fault > m.sd_wp_fault * 3);
    }

    #[test]
    fn restore_of_c_hello_world_is_sub_millisecond() {
        // §6: "Groundhog can restore a C hello world function in ~0.5 ms".
        // A hello-world C process: ~1K mapped pages, 1 thread, ~20 dirty
        // pages, ~10 VMAs, no layout changes.
        let m = CostModel::default();
        let total = m.interrupt_cost(1)
            + m.read_maps_cost(10)
            + m.scan_cost(1_000)
            + m.diff_cost(10)
            + m.restore_pages_cost(20, 18)
            + m.clear_sd_cost(1_000)
            + m.regs_cost(1)
            + m.detach_cost(1);
        let ms = total.as_millis_f64();
        assert!(
            (0.3..0.9).contains(&ms),
            "C hello-world restore should be ~0.5ms, got {ms:.3}ms"
        );
    }

    #[test]
    fn node_scan_dominates_large_address_spaces() {
        // Table 3: get-time (n) restores only 0.64K pages but takes
        // ~12.6ms, dominated by scanning 156.76K mapped PTEs.
        let m = CostModel::default();
        let scan = m.scan_cost(156_760) + m.clear_sd_cost(156_760);
        let copy = m.restore_pages_cost(640, 640);
        assert!(scan > copy * 5);
    }

    #[test]
    fn gh_proxy_node_refactor_is_dearer() {
        let m = CostModel::default();
        let py = m.gh_proxy_cost(200, false);
        let node = m.gh_proxy_cost(200, true);
        assert!(node > py);
    }
}
