//! Set algebra over sorted, coalesced page-range run lists.
//!
//! The extent-based bookkeeping hands every consumer *runs* —
//! sorted, disjoint, maximal [`PageRange`]s — instead of per-page lists.
//! Restore planning is then pure run algebra: the restore set is
//! `(dirty ∩ snapshot) ∪ (snapshot ∖ present)`, computed here in
//! `O(runs_a + runs_b)` regardless of how many pages the runs cover.
//!
//! All functions accept runs that are sorted by start; `union` also
//! tolerates overlapping inputs. All functions produce **normalized**
//! output: sorted, disjoint, non-empty, and with adjacent runs merged.

use crate::addr::{PageRange, Vpn};

/// Pushes `r` onto `out`, merging with the last run when adjacent or
/// overlapping.
fn push_merged(out: &mut Vec<PageRange>, r: PageRange) {
    if r.is_empty() {
        return;
    }
    match out.last_mut() {
        Some(last) if last.end.0 >= r.start.0 => last.end = Vpn(last.end.0.max(r.end.0)),
        _ => out.push(r),
    }
}

/// Total pages covered by a run list.
pub fn runs_len(runs: &[PageRange]) -> u64 {
    runs.iter().map(|r| r.len()).sum()
}

/// Expands a run list to its pages, ascending.
pub fn runs_pages(runs: &[PageRange]) -> impl Iterator<Item = Vpn> + '_ {
    runs.iter().flat_map(|r| r.iter())
}

/// Groups a sorted page list into maximal runs.
pub fn runs_from_sorted(sorted: impl IntoIterator<Item = u64>) -> Vec<PageRange> {
    let mut out = Vec::new();
    for v in sorted {
        push_merged(&mut out, PageRange::at(Vpn(v), 1));
    }
    out
}

/// `a ∪ b` (inputs may overlap).
pub fn runs_union(a: &[PageRange], b: &[PageRange]) -> Vec<PageRange> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(ra), Some(rb)) => ra.start.0 <= rb.start.0,
            (Some(_), None) => true,
            _ => false,
        };
        if take_a {
            push_merged(&mut out, a[i]);
            i += 1;
        } else {
            push_merged(&mut out, b[j]);
            j += 1;
        }
    }
    out
}

/// `a ∩ b`.
pub fn runs_intersect(a: &[PageRange], b: &[PageRange]) -> Vec<PageRange> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let cut = a[i].intersect(b[j]);
        push_merged(&mut out, cut);
        if a[i].end.0 <= b[j].end.0 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// `a ∖ b`.
pub fn runs_subtract(a: &[PageRange], b: &[PageRange]) -> Vec<PageRange> {
    let mut out = Vec::new();
    let mut j = 0;
    for &ra in a {
        let mut cur = ra;
        while j < b.len() && b[j].end.0 <= cur.start.0 {
            j += 1;
        }
        let mut k = j;
        while !cur.is_empty() && k < b.len() && b[k].start.0 < cur.end.0 {
            if b[k].start.0 > cur.start.0 {
                push_merged(&mut out, PageRange::new(cur.start, b[k].start));
            }
            cur = PageRange::new(Vpn(cur.start.0.max(b[k].end.0)), cur.end);
            if b[k].end.0 < cur.end.0 {
                k += 1;
            } else {
                break;
            }
        }
        push_merged(&mut out, cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, len: u64) -> PageRange {
        PageRange::at(Vpn(s), len)
    }

    fn pages(runs: &[PageRange]) -> Vec<u64> {
        runs_pages(runs).map(|v| v.0).collect()
    }

    #[test]
    fn union_merges_overlap_and_adjacency() {
        let a = [r(0, 4), r(10, 2)];
        let b = [r(2, 5), r(12, 1), r(20, 1)];
        assert_eq!(runs_union(&a, &b), vec![r(0, 7), r(10, 3), r(20, 1)]);
        assert_eq!(runs_union(&[], &b), b.to_vec());
        assert_eq!(runs_union(&a, &[]), a.to_vec());
    }

    #[test]
    fn intersect_cuts_exactly() {
        let a = [r(0, 10), r(20, 4)];
        let b = [r(5, 3), r(8, 4), r(22, 10)];
        assert_eq!(runs_intersect(&a, &b), vec![r(5, 5), r(22, 2)]);
        assert!(runs_intersect(&a, &[]).is_empty());
    }

    #[test]
    fn subtract_leaves_complement() {
        let a = [r(0, 10), r(20, 5)];
        let b = [r(2, 2), r(8, 14)];
        assert_eq!(runs_subtract(&a, &b), vec![r(0, 2), r(4, 4), r(22, 3)]);
        assert_eq!(runs_subtract(&a, &[]), a.to_vec());
        assert!(runs_subtract(&[], &a).is_empty());
    }

    #[test]
    fn algebra_matches_set_semantics_on_random_inputs() {
        use gh_sim::DetRng;
        use std::collections::BTreeSet;
        for case in 0..64u64 {
            let mut rng = DetRng::new(0x2045 ^ case);
            let mut mk = |n: u64| -> (Vec<PageRange>, BTreeSet<u64>) {
                let mut set = BTreeSet::new();
                for _ in 0..rng.next_below(n) {
                    let s = rng.next_below(200);
                    for p in s..(s + 1 + rng.next_below(8)).min(200) {
                        set.insert(p);
                    }
                }
                (runs_from_sorted(set.iter().copied()), set)
            };
            let (ra, sa) = mk(12);
            let (rb, sb) = mk(12);
            let u: Vec<u64> = sa.union(&sb).copied().collect();
            let i: Vec<u64> = sa.intersection(&sb).copied().collect();
            let d: Vec<u64> = sa.difference(&sb).copied().collect();
            assert_eq!(pages(&runs_union(&ra, &rb)), u, "case {case} union");
            assert_eq!(pages(&runs_intersect(&ra, &rb)), i, "case {case} isect");
            assert_eq!(pages(&runs_subtract(&ra, &rb)), d, "case {case} sub");
            // Outputs are normalized: re-grouping the pages is identity.
            assert_eq!(
                runs_union(&ra, &rb),
                runs_from_sorted(u.iter().copied()),
                "case {case} normal form"
            );
            assert_eq!(runs_len(&ra), sa.len() as u64);
        }
    }
}
