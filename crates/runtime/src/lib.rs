//! Language runtime models.
//!
//! Groundhog is language-independent, but its *costs* are not: the paper's
//! per-benchmark numbers are driven by runtime properties — how many pages
//! the runtime maps, how many threads it runs, how aggressively it churns
//! the memory layout, and (for Node.js) time-driven garbage collection
//! whose trigger state is rewound by restoration (§5.3.1). This crate
//! models exactly those properties:
//!
//! - [`profile::RuntimeProfile`]: per-language parameters (native C,
//!   CPython, Node.js) — thread count, initialization time (Fig. 1's
//!   "runtime initialization" phase), resident fraction, per-request
//!   layout churn;
//! - [`image::FunctionProcess`]: a built function process with a concrete
//!   memory image (text, data, heap, anonymous regions, a runtime-state
//!   page) matching the benchmark's Table 3 footprint;
//! - Node's GC clock lives *in process memory* (the runtime-state page),
//!   so a Groundhog restore genuinely rewinds it and post-restore requests
//!   re-trigger collection — reproducing the img-resize anomaly rather
//!   than scripting it.

pub mod image;
pub mod plan;
pub mod profile;

pub use image::{FunctionProcess, ImageRegions};
pub use plan::{PlanCache, WritePlan};
pub use profile::{GcProfile, LayoutChurn, RuntimeKind, RuntimeProfile};
