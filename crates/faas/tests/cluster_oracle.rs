//! Differential oracle: node-parallel cluster execution must be
//! bit-identical to the serial reference.
//!
//! Serial mode (nodes run one after another on the caller's thread) is
//! the ground truth; every node-parallel run — across seeds, placement
//! policies, node counts and thread counts — must reproduce the exact
//! same [`ClusterResult`]: every counter, every per-node load, every
//! sketch-derived percentile, and the CSV-style rendering byte for
//! byte. Repeat runs must also match, pinning seeded determinism of the
//! whole trace → placement → node-timeline pipeline. Float fields are
//! compared through `{:?}` (shortest round-trip form), which
//! distinguishes any two different bit patterns.

use gh_faas::cluster::{run_cluster_with, ClusterConfig, ClusterResult, PlacePolicy};
use gh_faas::fault::{FaultConfig, RetryPolicy};
use gh_faas::fleet::ExecMode;
use gh_faas::trace::{synthetic_catalog, TraceConfig};
use gh_faas::NodeScaleConfig;
use gh_functions::FunctionSpec;
use gh_isolation::StrategyKind;
use gh_sim::Nanos;
use groundhog_core::GroundhogConfig;

fn trace(requests: u64, seed: u64) -> TraceConfig {
    TraceConfig {
        principals: 8,
        ..TraceConfig::new(20, requests, 2_500.0, seed)
    }
}

fn run(
    catalog: &[FunctionSpec],
    trace_cfg: &TraceConfig,
    policy: PlacePolicy,
    nodes: usize,
    seed: u64,
    mode: ExecMode,
) -> ClusterResult {
    let mut ccfg = ClusterConfig::new(nodes, policy, StrategyKind::Gh, seed);
    ccfg.slots_per_pool = 1;
    run_cluster_with(trace_cfg, catalog, &ccfg, GroundhogConfig::gh(), mode).unwrap()
}

/// A CSV-style line covering every scalar field of the result, the way
/// the clustersweep binary renders them (autoscaler counters included).
/// Byte equality here is the user-visible half of the oracle.
fn csv_line(r: &ClusterResult) -> String {
    let scale = r
        .scale
        .map(|s| {
            format!(
                "{},{},{},{},{},{}",
                s.grows,
                s.drains_started,
                s.drains_completed,
                s.redirects,
                s.windows,
                s.final_active
            )
        })
        .unwrap_or_else(|| "-".into());
    format!(
        "{},{},{},{},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{:?},{},{:?},{:?},{},{},{}",
        r.nodes,
        r.policy,
        r.requests,
        r.completed,
        r.goodput_rps,
        r.mean_ms,
        r.p50_ms,
        r.p95_ms,
        r.p99_ms,
        r.queue_mean,
        r.queue_p99,
        r.restore_total_ms,
        r.restore_overlap_ratio,
        r.lazy_faults,
        r.utilization,
        r.imbalance,
        r.containers,
        r.stats_bytes,
        scale,
    )
}

/// Full structural fingerprint: `{:?}` covers every field including the
/// per-node loads, and round-trips f64 exactly.
fn fingerprint(r: &ClusterResult) -> String {
    format!("{r:?}")
}

fn assert_identical(label: &str, reference: &ClusterResult, other: &ClusterResult) {
    assert_eq!(
        fingerprint(reference),
        fingerprint(other),
        "{label}: result diverged from the serial reference"
    );
    assert_eq!(
        csv_line(reference),
        csv_line(other),
        "{label}: CSV rendering diverged"
    );
}

#[test]
fn parallel_matches_serial_across_seeds_policies_and_node_counts() {
    for &seed in &[7u64, 1234] {
        let catalog = synthetic_catalog(20, seed);
        let tc = trace(500, seed);
        for policy in PlacePolicy::ALL {
            for &nodes in &[2usize, 5] {
                let serial = run(&catalog, &tc, policy, nodes, seed, ExecMode::Serial);
                assert_eq!(serial.completed, 500, "oracle baseline must serve all");
                for &threads in &[2usize, 8] {
                    let par = run(
                        &catalog,
                        &tc,
                        policy,
                        nodes,
                        seed,
                        ExecMode::Parallel { threads },
                    );
                    assert_identical(
                        &format!(
                            "seed={seed} policy={} nodes={nodes} threads={threads}",
                            policy.label()
                        ),
                        &serial,
                        &par,
                    );
                }
            }
        }
    }
}

#[test]
fn repeat_runs_are_bit_identical() {
    let catalog = synthetic_catalog(20, 42);
    let tc = trace(400, 42);
    let first = run(
        &catalog,
        &tc,
        PlacePolicy::LeastLoaded,
        3,
        42,
        ExecMode::Parallel { threads: 4 },
    );
    let second = run(
        &catalog,
        &tc,
        PlacePolicy::LeastLoaded,
        3,
        42,
        ExecMode::Parallel { threads: 4 },
    );
    assert_identical("repeat", &first, &second);
}

#[test]
fn single_node_cluster_matches() {
    let catalog = synthetic_catalog(20, 5);
    let tc = trace(250, 5);
    let serial = run(
        &catalog,
        &tc,
        PlacePolicy::RoundRobin,
        1,
        5,
        ExecMode::Serial,
    );
    let par = run(
        &catalog,
        &tc,
        PlacePolicy::RoundRobin,
        1,
        5,
        ExecMode::Parallel { threads: 8 },
    );
    assert_eq!(serial.completed, 250);
    assert_identical("nodes=1", &serial, &par);
}

#[test]
fn autoscaled_faulty_cluster_is_mode_independent_and_repeatable() {
    // The full stack at once: faults (deaths + node loss) and the
    // failure-aware autoscaler, node-parallel vs serial vs repeat.
    let catalog = synthetic_catalog(20, 31);
    let tc = trace(500, 31);
    let mut fc = FaultConfig::deaths(31, 0.04);
    fc.node_loss_rate = 0.25;
    fc.node_loss_window = Nanos::from_millis(20);
    fc.retry = RetryPolicy {
        max_attempts: 6,
        ..RetryPolicy::bounded()
    };
    let mut ccfg = ClusterConfig::new(4, PlacePolicy::RoundRobin, StrategyKind::Gh, 31)
        .with_faults(fc)
        .with_autoscale(NodeScaleConfig::balanced(2));
    ccfg.slots_per_pool = 1;
    let go = |mode| run_cluster_with(&tc, &catalog, &ccfg, GroundhogConfig::gh(), mode).unwrap();
    let serial = go(ExecMode::Serial);
    assert!(serial.scale.is_some(), "scaler must report");
    assert!(serial.faults.node_losses > 0 || serial.faults.deaths > 0);
    for &threads in &[2usize, 4] {
        let par = go(ExecMode::Parallel { threads });
        assert_identical(&format!("autoscaled threads={threads}"), &serial, &par);
    }
    let repeat = go(ExecMode::Serial);
    assert_identical("autoscaled repeat", &serial, &repeat);
}

#[test]
fn unarmed_autoscaler_keeps_the_run_byte_identical() {
    let catalog = synthetic_catalog(20, 13);
    let tc = trace(300, 13);
    let plain = run(
        &catalog,
        &tc,
        PlacePolicy::LeastLoaded,
        3,
        13,
        ExecMode::Serial,
    );
    // Explicitly constructing the config with `autoscale: None` and an
    // empty redeploy schedule must be the plain run, byte for byte.
    let mut ccfg = ClusterConfig::new(3, PlacePolicy::LeastLoaded, StrategyKind::Gh, 13)
        .with_redeploys(Vec::new());
    ccfg.slots_per_pool = 1;
    let unarmed = run_cluster_with(
        &tc,
        &catalog,
        &ccfg,
        GroundhogConfig::gh(),
        ExecMode::Serial,
    )
    .unwrap();
    assert_identical("unarmed autoscaler", &plain, &unarmed);
    assert!(plain.scale.is_none());
}

#[test]
fn empty_run_is_mode_independent() {
    let catalog = synthetic_catalog(20, 9);
    let tc = trace(0, 9);
    let serial = run(
        &catalog,
        &tc,
        PlacePolicy::FunctionAffinity,
        3,
        9,
        ExecMode::Serial,
    );
    let par = run(
        &catalog,
        &tc,
        PlacePolicy::FunctionAffinity,
        3,
        9,
        ExecMode::Parallel { threads: 4 },
    );
    assert_eq!(serial.completed, 0);
    assert_identical("requests=0", &serial, &par);
}
