//! Virtual addresses, page numbers and page ranges.

use core::fmt;

/// Bytes per page; fixed at the Linux default of 4 KiB.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A virtual byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// The virtual page containing this address.
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Rounds down to the page boundary.
    #[inline]
    pub const fn page_align_down(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Rounds up to the next page boundary (saturating).
    #[inline]
    pub const fn page_align_up(self) -> VirtAddr {
        VirtAddr(self.0.saturating_add(PAGE_SIZE - 1) & !(PAGE_SIZE - 1))
    }

    /// Address arithmetic.
    #[inline]
    pub const fn add(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0.saturating_add(bytes))
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:012x}", self.0)
    }
}

/// A virtual page number (address >> 12).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

impl Vpn {
    /// First byte address of the page.
    #[inline]
    pub const fn addr(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// The next page.
    #[inline]
    pub const fn next(self) -> Vpn {
        Vpn(self.0 + 1)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A half-open range of virtual pages `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageRange {
    /// First page in the range.
    pub start: Vpn,
    /// One past the last page.
    pub end: Vpn,
}

impl PageRange {
    /// Creates a range; `end < start` is normalized to the empty range at
    /// `start`.
    #[inline]
    pub fn new(start: Vpn, end: Vpn) -> PageRange {
        if end.0 < start.0 {
            PageRange { start, end: start }
        } else {
            PageRange { start, end }
        }
    }

    /// Range of `len` pages starting at `start`.
    #[inline]
    pub fn at(start: Vpn, len: u64) -> PageRange {
        PageRange {
            start,
            end: Vpn(start.0 + len),
        }
    }

    /// Number of pages.
    #[inline]
    pub const fn len(self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True if the range contains no pages.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.start.0 >= self.end.0
    }

    /// True if `vpn` lies inside the range.
    #[inline]
    pub const fn contains(self, vpn: Vpn) -> bool {
        self.start.0 <= vpn.0 && vpn.0 < self.end.0
    }

    /// True if `other` lies fully inside this range.
    #[inline]
    pub const fn contains_range(self, other: PageRange) -> bool {
        self.start.0 <= other.start.0 && other.end.0 <= self.end.0
    }

    /// The intersection of two ranges (possibly empty).
    #[inline]
    pub fn intersect(self, other: PageRange) -> PageRange {
        let start = Vpn(self.start.0.max(other.start.0));
        let end = Vpn(self.end.0.min(other.end.0));
        PageRange::new(start, end)
    }

    /// True if the ranges share at least one page.
    #[inline]
    pub fn overlaps(self, other: PageRange) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Iterates the pages in order.
    pub fn iter(self) -> impl Iterator<Item = Vpn> {
        (self.start.0..self.end.0).map(Vpn)
    }

    /// Size of the range in bytes.
    #[inline]
    pub const fn byte_len(self) -> u64 {
        self.len() * PAGE_SIZE
    }
}

impl fmt::Debug for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x},{:#x})", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_math() {
        let a = VirtAddr(0x1234);
        assert_eq!(a.vpn(), Vpn(1));
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.page_align_down(), VirtAddr(0x1000));
        assert_eq!(a.page_align_up(), VirtAddr(0x2000));
        assert_eq!(VirtAddr(0x2000).page_align_up(), VirtAddr(0x2000));
        assert_eq!(Vpn(3).addr(), VirtAddr(0x3000));
    }

    #[test]
    fn range_basics() {
        let r = PageRange::at(Vpn(10), 5);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert!(r.contains(Vpn(10)));
        assert!(r.contains(Vpn(14)));
        assert!(!r.contains(Vpn(15)));
        assert_eq!(r.byte_len(), 5 * PAGE_SIZE);
        assert_eq!(r.iter().count(), 5);
    }

    #[test]
    fn inverted_range_normalizes_empty() {
        let r = PageRange::new(Vpn(5), Vpn(3));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn intersect_and_overlap() {
        let a = PageRange::at(Vpn(0), 10);
        let b = PageRange::at(Vpn(5), 10);
        let c = PageRange::at(Vpn(20), 5);
        assert_eq!(a.intersect(b), PageRange::at(Vpn(5), 5));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(a.intersect(c).is_empty());
        assert!(a.contains_range(PageRange::at(Vpn(2), 3)));
        assert!(!a.contains_range(b));
    }
}
