//! Property test: the layout differ's plan is a fixpoint operator.
//!
//! For any snapshot layout and any sequence of layout-churning syscalls,
//! injecting the diff's plan must bring the layout back to (an
//! equivalent of) the snapshot layout — and re-diffing must be empty.

use proptest::prelude::*;

use gh_mem::{PageRange, Perms, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession};
use groundhog_core::diff::LayoutDiff;

#[derive(Clone, Debug)]
enum Churn {
    Mmap(u64),
    MunmapAt(u64, u64),
    MprotectRo(u64, u64),
    BrkGrow(u64),
    BrkShrink(u64),
}

fn churn_strategy() -> impl Strategy<Value = Churn> {
    prop_oneof![
        (1u64..24).prop_map(Churn::Mmap),
        (0u64..64, 1u64..8).prop_map(|(o, l)| Churn::MunmapAt(o, l)),
        (0u64..64, 1u64..6).prop_map(|(o, l)| Churn::MprotectRo(o, l)),
        (1u64..32).prop_map(Churn::BrkGrow),
        (1u64..32).prop_map(Churn::BrkShrink),
    ]
}

fn build_process(region_lens: &[u64]) -> (Kernel, Pid, Vec<PageRange>) {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("diff-fuzz");
    let heap_base = kernel.process(pid).unwrap().mem.config().heap_base;
    let mut regions = Vec::new();
    kernel
        .run_charged(pid, |p, frames| {
            p.mem.set_brk(Vpn(heap_base.0 + 20), frames).unwrap();
            for &len in region_lens {
                regions.push(p.mem.mmap(len, Perms::RW, gh_mem::VmaKind::Anon).unwrap());
            }
        })
        .unwrap();
    (kernel, pid, regions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_restores_any_churned_layout(
        region_lens in prop::collection::vec(2u64..32, 1..6),
        churn in prop::collection::vec(churn_strategy(), 0..24),
    ) {
        let (mut kernel, pid, regions) = build_process(&region_lens);
        let heap_base = kernel.process(pid).unwrap().mem.config().heap_base;
        let snap_vmas = kernel.process(pid).unwrap().mem.maps();
        let snap_brk = kernel.process(pid).unwrap().mem.brk();

        // Churn the layout arbitrarily (function-side syscalls).
        kernel.run_charged(pid, |p, frames| {
            for c in &churn {
                match c {
                    Churn::Mmap(len) => {
                        let _ = p.mem.mmap(*len, Perms::RW, gh_mem::VmaKind::Anon);
                    }
                    Churn::MunmapAt(off, len) => {
                        if let Some(r) = regions.first() {
                            let start = Vpn(r.start.0 + off % r.len());
                            let _ = p.mem.munmap(PageRange::at(start, *len), frames);
                        }
                    }
                    Churn::MprotectRo(off, len) => {
                        if let Some(r) = regions.last() {
                            let start = Vpn(r.start.0 + off % r.len());
                            let _ = p.mem.mprotect(PageRange::at(start, *len), Perms::R);
                        }
                    }
                    Churn::BrkGrow(d) => {
                        let cur = p.mem.brk();
                        let _ = p.mem.set_brk(Vpn(cur.0 + d), frames);
                    }
                    Churn::BrkShrink(d) => {
                        let cur = p.mem.brk();
                        let new = cur.0.saturating_sub(*d).max(heap_base.0);
                        let _ = p.mem.set_brk(Vpn(new), frames);
                    }
                }
            }
        }).unwrap();

        // Diff and inject the plan, exactly as the restorer does.
        let cur_vmas = kernel.process(pid).unwrap().mem.maps();
        let cur_brk = kernel.process(pid).unwrap().mem.brk();
        let diff = LayoutDiff::compute(&snap_vmas, snap_brk, &cur_vmas, cur_brk);
        let plan = diff.plan();
        prop_assert_eq!(plan.len(), diff.syscall_count());
        {
            let mut s = PtraceSession::attach(&mut kernel, pid).unwrap();
            s.interrupt_all().unwrap();
            for sc in plan {
                s.inject(sc).unwrap();
            }
            s.detach().unwrap();
        }

        // The layout must now be equivalent to the snapshot: an empty
        // re-diff (merging-equivalent layouts diff to nothing).
        let proc = kernel.process(pid).unwrap();
        proc.mem.check_invariants().unwrap();
        let re = LayoutDiff::compute(&snap_vmas, snap_brk, &proc.mem.maps(), proc.mem.brk());
        prop_assert!(re.is_empty(), "re-diff not empty: {re:?}");
    }
}
