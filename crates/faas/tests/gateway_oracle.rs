//! Differential oracle for the gateway: a disabled gateway is the
//! ungated platform, bit for bit.
//!
//! Two layers, two references:
//!
//! - **Fleet**: [`run_gateway_fleet`] with [`GatewayFleetConfig::passthrough`]
//!   (all policies off, flat workload) must reproduce the ungated serial
//!   [`Fleet::run`] reference exactly — every counter and every
//!   sketch-derived float, compared through `{:?}` (shortest round-trip
//!   rendering, distinguishes any two f64 bit patterns) and through a
//!   CSV-style line, across seeds × route policies × autoscaler on/off.
//! - **Cluster**: [`run_cluster_gateway`] with [`GatewayConfig::disabled`]
//!   must embed a [`ClusterResult`] byte-identical to [`run_cluster_with`],
//!   and with policies *enabled* the node-parallel run must stay
//!   byte-identical to the serial one (the front is a pure fold over the
//!   trace, so parallelism must not be able to observe it).
//!
//! Enabled-policy runs are additionally pinned by repeat-run equality:
//! cache, admission and pre-warm state all live on the virtual timeline,
//! so running the same config twice must reproduce every byte.

use gh_faas::cluster::{run_cluster_gateway, run_cluster_with, ClusterConfig, PlacePolicy};
use gh_faas::fleet::{AutoscaleConfig, ExecMode, FleetConfig, FleetResult, RoutePolicy};
use gh_faas::gateway::{run_gateway_fleet, run_ungated_reference, GatewayFleetConfig};
use gh_faas::trace::cluster_redeploy_schedule;
use gh_faas::trace::{synthetic_catalog, TraceConfig};
use gh_gateway::admission::AdmissionConfig;
use gh_gateway::cache::CacheConfig;
use gh_gateway::prewarm::PrewarmConfig;
use gh_gateway::GatewayConfig;
use gh_isolation::StrategyKind;
use gh_sim::Nanos;
use groundhog_core::GroundhogConfig;

/// CSV-style line over the fleet scalars — the rendering the bench
/// binaries emit. Byte equality here is the user-visible half.
fn csv_line(r: &FleetResult) -> String {
    format!(
        "{:?},{},{:?},{:?},{:?},{:?},{},{},{},{},{:?},{:?},{:?},{},{}",
        r.offered_rps,
        r.completed,
        r.goodput_rps,
        r.mean_ms,
        r.p99_ms,
        r.utilization,
        r.stats.pool_size,
        r.stats.active,
        r.stats.spawned,
        r.stats.retired,
        r.stats.queue_mean,
        r.stats.queue_p99,
        r.stats.restore_total_ms,
        r.stats.lazy_faults,
        r.stats.stats_bytes,
    )
}

fn fleet_cfg(policy: RoutePolicy, seed: u64, autoscale: bool) -> FleetConfig {
    let mut cfg = FleetConfig::fixed(policy, 220.0, seed).with_principals(4);
    if autoscale {
        cfg.autoscale = Some(AutoscaleConfig {
            max_size: 6,
            ..AutoscaleConfig::default()
        });
    }
    cfg
}

#[test]
fn passthrough_gateway_is_the_ungated_fleet_bit_for_bit() {
    let spec = gh_functions::catalog::by_name("fannkuch (p)").unwrap();
    for seed in [3u64, 17, 4242] {
        for policy in [
            RoutePolicy::RoundRobin,
            RoutePolicy::LeastLoaded,
            RoutePolicy::RestoreAware,
        ] {
            for autoscale in [false, true] {
                let fc = fleet_cfg(policy, seed, autoscale);
                let gated = run_gateway_fleet(
                    &spec,
                    StrategyKind::Gh,
                    GroundhogConfig::gh(),
                    3,
                    GatewayFleetConfig::passthrough(fc.clone()),
                    160,
                )
                .unwrap();
                let ungated = run_ungated_reference(
                    &spec,
                    StrategyKind::Gh,
                    GroundhogConfig::gh(),
                    3,
                    fc,
                    160,
                )
                .unwrap();
                let label = format!("seed={seed} policy={policy:?} autoscale={autoscale}");
                assert_eq!(
                    format!("{:?}", gated.fleet),
                    format!("{ungated:?}"),
                    "{label}: structural fingerprint diverged"
                );
                assert_eq!(
                    csv_line(&gated.fleet),
                    csv_line(&ungated),
                    "{label}: CSV rendering diverged"
                );
                assert_eq!(
                    gated.gateway,
                    gh_gateway::GatewayStats {
                        served: 160,
                        ..Default::default()
                    },
                    "{label}: a pass-through gateway serves everything, observes nothing"
                );
            }
        }
    }
}

fn enabled_gateway() -> GatewayConfig {
    GatewayConfig::builder()
        .cache(CacheConfig::default_for_ttl(Nanos::from_secs(20)))
        .admission(AdmissionConfig {
            rate_per_sec: 60.0,
            burst: 30,
            max_in_flight: Some(24),
        })
        .build()
}

fn workload(seed: u64, gateway: GatewayConfig) -> GatewayFleetConfig {
    GatewayFleetConfig {
        idempotent_frac: 0.5,
        payload_universe: 16,
        hot_principal_frac: 0.3,
        diurnal_amplitude: 0.4,
        diurnal_period: Nanos::from_secs(30),
        ..GatewayFleetConfig::passthrough(fleet_cfg(RoutePolicy::LeastLoaded, seed, true))
    }
    .with_gateway(gateway)
}

#[test]
fn enabled_gateway_runs_reproduce_exactly() {
    let spec = gh_functions::catalog::by_name("fannkuch (p)").unwrap();
    for seed in [7u64, 99] {
        let mut gw = enabled_gateway();
        gw.prewarm = Some(PrewarmConfig::flat(Nanos::from_secs(2), 6));
        let run = |seed| {
            run_gateway_fleet(
                &spec,
                StrategyKind::Gh,
                GroundhogConfig::gh(),
                2,
                workload(seed, gw),
                300,
            )
            .unwrap()
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "seed={seed}: repeat run diverged"
        );
        assert_eq!(
            a.gateway.served + a.gateway.rejected,
            300,
            "seed={seed}: every arrival served or shed"
        );
        assert!(
            a.gateway.cache_hits > 0,
            "seed={seed}: 50% idempotent traffic over 16 payloads must hit"
        );
    }
}

fn cluster_trace(requests: u64, seed: u64) -> TraceConfig {
    TraceConfig {
        principals: 8,
        idempotent_frac: 0.5,
        payload_universe: 24,
        ..TraceConfig::new(20, requests, 2_500.0, seed)
    }
}

#[test]
fn disabled_cluster_gateway_embeds_the_plain_cluster_result() {
    let catalog = synthetic_catalog(20, 11);
    for seed in [5u64, 31] {
        for policy in [PlacePolicy::RoundRobin, PlacePolicy::LeastLoaded] {
            let trace = cluster_trace(400, seed);
            let mut ccfg = ClusterConfig::new(3, policy, StrategyKind::Gh, seed);
            ccfg.slots_per_pool = 1;
            let plain = run_cluster_with(
                &trace,
                &catalog,
                &ccfg,
                GroundhogConfig::gh(),
                ExecMode::Serial,
            )
            .unwrap();
            let gated = run_cluster_gateway(
                &trace,
                &catalog,
                &ccfg,
                &GatewayConfig::disabled(),
                GroundhogConfig::gh(),
                ExecMode::Serial,
            )
            .unwrap();
            let label = format!("seed={seed} policy={policy:?}");
            assert_eq!(
                format!("{plain:?}"),
                format!("{:?}", gated.cluster),
                "{label}: disabled front must be the identity"
            );
            assert_eq!(
                gated.gateway,
                gh_gateway::GatewayStats {
                    served: plain.completed,
                    ..Default::default()
                },
                "{label}"
            );
        }
    }
}

#[test]
fn cluster_redeploys_invalidate_the_front_cache_deterministically() {
    let catalog = synthetic_catalog(20, 47);
    let trace = cluster_trace(600, 47);
    let schedule = cluster_redeploy_schedule(&trace, 6);
    assert!(!schedule.is_empty());
    let gw = enabled_gateway();
    let base = {
        let mut ccfg = ClusterConfig::new(3, PlacePolicy::RoundRobin, StrategyKind::Gh, 47);
        ccfg.slots_per_pool = 1;
        ccfg
    };
    let plain = run_cluster_gateway(
        &trace,
        &catalog,
        &base,
        &gw,
        GroundhogConfig::gh(),
        ExecMode::Serial,
    )
    .unwrap();
    let redeploying = base.clone().with_redeploys(schedule.clone());
    let serial = run_cluster_gateway(
        &trace,
        &catalog,
        &redeploying,
        &gw,
        GroundhogConfig::gh(),
        ExecMode::Serial,
    )
    .unwrap();
    assert!(
        serial.gateway.cache_invalidated > 0,
        "the schedule must actually drop cached results"
    );
    assert!(
        serial.gateway.cache_hits < plain.gateway.cache_hits,
        "invalidation must cost hits relative to the fixed deployment"
    );
    assert_eq!(
        serial.cluster.completed + serial.gateway.rejected,
        trace.requests,
        "arrivals still partition into served and shed"
    );
    // The redeploy fold is coordinator-pure: node-parallel execution
    // and repeats stay byte-identical.
    let par = run_cluster_gateway(
        &trace,
        &catalog,
        &redeploying,
        &gw,
        GroundhogConfig::gh(),
        ExecMode::Parallel { threads: 3 },
    )
    .unwrap();
    assert_eq!(
        format!("{serial:?}"),
        format!("{par:?}"),
        "redeploy fold must not break node purity"
    );
    let repeat = run_cluster_gateway(
        &trace,
        &catalog,
        &redeploying,
        &gw,
        GroundhogConfig::gh(),
        ExecMode::Serial,
    )
    .unwrap();
    assert_eq!(
        format!("{serial:?}"),
        format!("{repeat:?}"),
        "repeat diverged"
    );
    // An empty schedule is the identity.
    let empty = run_cluster_gateway(
        &trace,
        &catalog,
        &base.clone().with_redeploys(Vec::new()),
        &gw,
        GroundhogConfig::gh(),
        ExecMode::Serial,
    )
    .unwrap();
    assert_eq!(format!("{plain:?}"), format!("{empty:?}"));
}

#[test]
fn cluster_gateway_parallel_matches_serial() {
    let catalog = synthetic_catalog(20, 11);
    for seed in [13u64, 77] {
        let trace = cluster_trace(500, seed);
        let mut ccfg = ClusterConfig::new(4, PlacePolicy::LeastLoaded, StrategyKind::Gh, seed);
        ccfg.slots_per_pool = 1;
        let gw = enabled_gateway();
        let serial = run_cluster_gateway(
            &trace,
            &catalog,
            &ccfg,
            &gw,
            GroundhogConfig::gh(),
            ExecMode::Serial,
        )
        .unwrap();
        let par = run_cluster_gateway(
            &trace,
            &catalog,
            &ccfg,
            &gw,
            GroundhogConfig::gh(),
            ExecMode::Parallel { threads: 4 },
        )
        .unwrap();
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "seed={seed}: gateway front must not break node purity"
        );
        assert!(
            serial.gateway.cache_hits > 0,
            "seed={seed}: the front must actually engage"
        );
        assert_eq!(
            serial.cluster.completed + serial.gateway.rejected,
            trace.requests,
            "seed={seed}: arrivals partition into served and shed"
        );
    }
}
