//! Extension experiment (E16): latency vs offered load under open-loop
//! (Poisson) arrivals — quantifying §4's claim that restoration stays off
//! the critical path "under low to medium server load".
//!
//! ```text
//! cargo run --release -p gh-bench --bin loadsweep             # parallel cells
//! cargo run --release -p gh-bench --bin loadsweep -- --serial
//! ```
//!
//! Each (function, rate) cell runs its BASE and GH open loops on its own
//! kernels — independent, so the cells are sharded across worker threads
//! with a deterministic ordered merge (byte-identical to `--serial`).

use gh_bench::harness::{run_cells, serial_requested};
use gh_bench::write_csv;
use gh_faas::openloop::open_loop_run;
use gh_functions::catalog::by_name;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

fn main() {
    // Functions with very different restore/exec ratios.
    for (name, rates) in [
        ("fannkuch (p)", vec![10.0, 30.0, 60.0, 90.0, 120.0, 140.0]),
        ("md2html (p)", vec![5.0, 10.0, 15.0, 20.0, 24.0, 27.0]),
        ("telco (p)", vec![1.0, 2.0, 4.0, 5.0, 5.8, 6.2]),
    ] {
        let spec = by_name(name).unwrap();
        println!(
            "== E16 — open-loop sojourn time vs offered load: {} \
             (exec ≈ {:.1}ms, restore ≈ {:.1}ms) ==\n",
            name, spec.base_invoker_ms, spec.paper_restore_ms
        );
        let mut table = TextTable::new(&[
            "offered r/s",
            "base util",
            "base mean ms",
            "base p99 ms",
            "GH util",
            "GH mean ms",
            "GH p99 ms",
            "GH/base mean",
        ]);
        let rows = run_cells(&rates, serial_requested(), |&rps| {
            let base = open_loop_run(
                &spec,
                StrategyKind::Base,
                GroundhogConfig::gh(),
                rps,
                200,
                21,
            )
            .unwrap();
            let gh = open_loop_run(&spec, StrategyKind::Gh, GroundhogConfig::gh(), rps, 200, 21)
                .unwrap();
            vec![
                format!("{rps:.1}"),
                format!("{:.2}", base.utilization),
                format!("{:.2}", base.mean_ms),
                format!("{:.2}", base.p99_ms),
                format!("{:.2}", gh.utilization),
                format!("{:.2}", gh.mean_ms),
                format!("{:.2}", gh.p99_ms),
                format!("{:.2}", gh.mean_ms / base.mean_ms),
            ]
        });
        for row in rows {
            table.row_owned(row);
        }
        println!("{}", table.render());
        write_csv(
            &format!("loadsweep_{}", name.replace([' ', '(', ')'], "")),
            &table,
        );
    }
    println!(
        "Expected shape (§4): at low/medium utilization GH's sojourn times track BASE \
         (restores hide in idle gaps); near saturation GH's queue grows first because \
         restoration consumes capacity."
    );
}
