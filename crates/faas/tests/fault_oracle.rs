//! Fault-injection oracle: three contracts pin the fault layer down.
//!
//! 1. **Disabled means invisible.** A run with fault injection
//!    *disabled* (inert [`FaultConfig`], or none at all) must be
//!    bit-identical — `{:?}` fingerprint and CSV rendering — to the
//!    plain [`Fleet::run`] / [`run_cluster_with`] paths across seeds
//!    and policies. The fault layer may not advance any RNG stream or
//!    add any event when it is off.
//! 2. **Crash-equivalence.** A workflow run under seeded crash/retry
//!    schedules (with no abandonment) must end in the same final KV
//!    state, the same per-workflow outputs, and the same applied
//!    version count as the crash-free run — retried hops never
//!    double-apply (`kv_versions` equality is the zero-duplicates
//!    assert).
//! 3. **Faults don't break determinism.** With faults *enabled*,
//!    node-parallel cluster execution stays byte-identical to serial,
//!    and repeat fleet runs reproduce the same result, for both retry
//!    policies.

use gh_faas::cluster::{run_cluster_with, ClusterConfig, ClusterResult, PlacePolicy};
use gh_faas::fault::{FaultConfig, RetryPolicy};
use gh_faas::fleet::{ExecMode, Fleet, FleetConfig, FleetResult, Pool, RoutePolicy};
use gh_faas::gateway::{run_gateway_fleet, GatewayFleetConfig};
use gh_faas::trace::{redeploy_schedule, synthetic_catalog, TraceConfig};
use gh_faas::workflow::{run_workflows, WorkflowConfig};
use gh_functions::catalog::by_name;
use gh_functions::FunctionSpec;
use gh_isolation::StrategyKind;
use gh_sim::Nanos;
use groundhog_core::GroundhogConfig;

fn fleet_run(seed: u64, policy: RoutePolicy, faults: Option<FaultConfig>) -> FleetResult {
    let spec = by_name("fannkuch (p)").unwrap();
    let mut pool = Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 3, seed).unwrap();
    let cfg = FleetConfig::fixed(policy, 120.0, seed);
    let mut fleet = Fleet::new(cfg);
    if let Some(fc) = faults {
        fleet = fleet.with_faults(fc);
    }
    fleet.run(&mut pool, 250).unwrap()
}

/// CSV-style scalar rendering, the user-visible half of the oracle
/// (mirrors the bench binaries' columns plus the fault counters).
fn fleet_csv(r: &FleetResult) -> String {
    let f = &r.stats.faults;
    format!(
        "{:?},{},{:?},{:?},{:?},{:?},{},{},{},{},{},{}",
        r.offered_rps,
        r.completed,
        r.goodput_rps,
        r.mean_ms,
        r.p99_ms,
        r.utilization,
        f.deaths,
        f.restore_failures,
        f.retries,
        f.duplicates,
        f.abandoned,
        f.node_losses,
    )
}

#[test]
fn disabled_faults_are_invisible_to_the_fleet() {
    for &seed in &[3u64, 77] {
        for &policy in &[RoutePolicy::RoundRobin, RoutePolicy::RestoreAware] {
            let plain = fleet_run(seed, policy, None);
            let inert = fleet_run(seed, policy, Some(FaultConfig::none(seed)));
            assert_eq!(
                format!("{plain:?}"),
                format!("{inert:?}"),
                "seed={seed} policy={policy:?}: inert fault config changed the run"
            );
            assert_eq!(fleet_csv(&plain), fleet_csv(&inert));
            assert!(plain.stats.faults.is_empty());
        }
    }
}

fn cluster_run(
    catalog: &[FunctionSpec],
    tc: &TraceConfig,
    faults: Option<FaultConfig>,
    mode: ExecMode,
) -> ClusterResult {
    let mut ccfg = ClusterConfig::new(3, PlacePolicy::RoundRobin, StrategyKind::Gh, tc.seed);
    ccfg.slots_per_pool = 2;
    if let Some(fc) = faults {
        ccfg = ccfg.with_faults(fc);
    }
    run_cluster_with(tc, catalog, &ccfg, GroundhogConfig::gh(), mode).unwrap()
}

#[test]
fn disabled_faults_are_invisible_to_the_cluster() {
    for &seed in &[11u64, 29] {
        let catalog = synthetic_catalog(12, seed);
        let tc = TraceConfig {
            principals: 6,
            ..TraceConfig::new(12, 300, 2_000.0, seed)
        };
        let plain = cluster_run(&catalog, &tc, None, ExecMode::Serial);
        let inert = cluster_run(
            &catalog,
            &tc,
            Some(FaultConfig::none(seed)),
            ExecMode::Serial,
        );
        assert_eq!(
            format!("{plain:?}"),
            format!("{inert:?}"),
            "seed={seed}: inert fault config changed the cluster run"
        );
        assert!(plain.faults.is_empty());
    }
}

#[test]
fn workflow_crash_equivalence_across_seeds_and_rates() {
    let chain: Vec<FunctionSpec> = ["get-time (n)", "float (p)"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect();
    for &seed in &[0xA5u64, 0x51CE] {
        let clean_cfg = WorkflowConfig::new(25, StrategyKind::Gh, seed);
        let clean = run_workflows(&chain, GroundhogConfig::gh(), &clean_cfg).unwrap();
        assert_eq!(clean.completed, 25);
        for &rate in &[0.05f64, 0.15] {
            let mut fc = FaultConfig::deaths(seed ^ 0xFA, rate);
            // Enough attempts that abandonment never fires at these
            // rates; equivalence is only claimed for zero abandonment.
            fc.retry = RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::bounded()
            };
            let faulty_cfg = clean_cfg.clone().with_faults(fc);
            let faulty = run_workflows(&chain, GroundhogConfig::gh(), &faulty_cfg).unwrap();
            let label = format!("seed={seed} rate={rate}");
            assert!(faulty.faults.deaths > 0, "{label}: no faults fired");
            assert_eq!(faulty.faults.abandoned, 0, "{label}");
            assert_eq!(faulty.completed, 25, "{label}");
            assert_eq!(faulty.outputs, clean.outputs, "{label}: outputs diverged");
            assert_eq!(
                faulty.kv_fingerprint, clean.kv_fingerprint,
                "{label}: final KV state diverged"
            );
            // Zero double-applies: exactly one version per (workflow,
            // hop) landed, with every duplicate execution absorbed.
            assert_eq!(faulty.kv_versions, clean.kv_versions, "{label}");
            assert_eq!(
                faulty.duplicates_suppressed, faulty.faults.duplicates,
                "{label}: a post-commit death's retry was not absorbed"
            );
        }
    }
}

#[test]
fn faulty_cluster_parallel_matches_serial_for_both_retry_policies() {
    let seed = 17u64;
    let catalog = synthetic_catalog(12, seed);
    let tc = TraceConfig {
        principals: 6,
        ..TraceConfig::new(12, 400, 2_500.0, seed)
    };
    for retry in [RetryPolicy::bounded(), RetryPolicy::rerouting()] {
        let mut fc = FaultConfig::deaths(seed, 0.06);
        fc.restore_failure_rate = 0.05;
        fc.node_loss_rate = 0.25;
        fc.node_loss_window = Nanos::from_millis(15);
        fc.retry = retry;
        let serial = cluster_run(&catalog, &tc, Some(fc), ExecMode::Serial);
        assert!(serial.faults.deaths > 0, "{}", retry.label());
        assert!(serial.faults.node_losses > 0, "{}", retry.label());
        assert_eq!(
            serial.completed + serial.faults.abandoned,
            400,
            "{}: every request completes or is abandoned",
            retry.label()
        );
        for &threads in &[2usize, 4] {
            let par = cluster_run(&catalog, &tc, Some(fc), ExecMode::Parallel { threads });
            assert_eq!(
                format!("{serial:?}"),
                format!("{par:?}"),
                "{} threads={threads}: faulty parallel diverged from serial",
                retry.label()
            );
        }
    }
}

#[test]
fn faulty_gateway_accounts_and_redeploys_invalidate_the_cache() {
    use gh_gateway::cache::CacheConfig;
    use gh_gateway::GatewayConfig;

    let seed = 23u64;
    let spec = by_name("fannkuch (p)").unwrap();
    let run = || {
        let mut fc = FaultConfig::deaths(seed, 0.08);
        fc.restore_failure_rate = 0.05;
        let cfg = GatewayFleetConfig {
            idempotent_frac: 0.5,
            payload_universe: 8,
            faults: Some(fc),
            // The schedule helper keys off a trace config describing
            // the same span the Poisson arrivals cover (which start at
            // virtual zero, not the cluster trace's warm origin).
            redeploys: redeploy_schedule(
                &TraceConfig {
                    origin: Nanos::ZERO,
                    ..TraceConfig::new(1, 220, 150.0, seed)
                },
                2,
            ),
            ..GatewayFleetConfig::passthrough(FleetConfig::fixed(
                RoutePolicy::RoundRobin,
                150.0,
                seed,
            ))
        }
        .with_gateway(
            GatewayConfig::builder()
                .cache(CacheConfig::default_for_ttl(Nanos::from_secs(30)))
                .build(),
        );
        run_gateway_fleet(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 3, cfg, 220).unwrap()
    };
    let first = run();
    let f = &first.fleet.stats.faults;
    assert!(f.deaths > 0, "deaths must fire at 8%");
    assert_eq!(
        first.gateway.served + first.gateway.rejected + f.abandoned,
        220,
        "every arrival is served, shed, or abandoned"
    );
    assert!(
        first.gateway.cache_invalidated > 0,
        "redeploys must sweep live cache entries"
    );
    let second = run();
    assert_eq!(
        format!("{:?}", first.fleet),
        format!("{:?}", second.fleet),
        "faulty gateway repeats diverged"
    );
    assert_eq!(first.gateway, second.gateway);
}

#[test]
fn faulty_fleet_repeats_are_bit_identical() {
    for retry in [RetryPolicy::bounded(), RetryPolicy::rerouting()] {
        let mut fc = FaultConfig::deaths(42, 0.08);
        fc.restore_failure_rate = 0.05;
        fc.retry = retry;
        let first = fleet_run(42, RoutePolicy::RestoreAware, Some(fc));
        let second = fleet_run(42, RoutePolicy::RestoreAware, Some(fc));
        assert!(first.stats.faults.deaths > 0, "{}", retry.label());
        assert_eq!(
            format!("{first:?}"),
            format!("{second:?}"),
            "{}: repeat faulty runs diverged",
            retry.label()
        );
        assert_eq!(fleet_csv(&first), fleet_csv(&second));
    }
}
