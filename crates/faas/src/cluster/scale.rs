//! Failure-aware cluster autoscaling: a pure virtual-time controller
//! over the node count.
//!
//! The cluster's node set is provisioned up front ([`super::ClusterConfig::nodes`]);
//! this controller decides how many of those nodes are *active* — i.e.
//! receive new placements — purely from the arrival stream it is folded
//! over:
//!
//! - **Grow** when failure pressure or queueing pressure shows up in a
//!   window: the observed loss count (arrivals whose placed node was
//!   down) reaches [`NodeScaleConfig::loss_grow`], or the p90 of the
//!   per-window queue-depth sketch exceeds
//!   [`NodeScaleConfig::grow_depth_ms`].
//! - **Drain** when a window is quiet (p90 below
//!   [`NodeScaleConfig::drain_depth_ms`]): the highest-indexed active node
//!   is *cordoned* — it keeps serving what it already has but receives
//!   no new placements — and is removed only once its modeled backlog
//!   has fully drained. In-flight *workflows* whose next hop would have
//!   landed on the cordoned node are migrated to another replica by the
//!   caller (counted as redirects here, as migrations in the workflow
//!   ledger).
//!
//! Like the [`super::Placer`] and [`super::GatewayFront`], the scaler
//! is a **pure fold over the trace**: it reads only arrival times, the
//! base placement, a per-function cost estimate, and the deterministic
//! node-loss schedule — never node progress. Every node replays the
//! identical fold and reaches the identical active-set sequence, which
//! is what keeps host-parallel cluster execution bit-identical to
//! serial with autoscaling enabled (`tests/cluster_oracle.rs`).
//!
//! Queue depth is modeled, not measured: each node carries a backlog in
//! virtual nanoseconds that decays in real (virtual) time and grows by
//! the placed function's expected end-to-end cost. That proxy is exact
//! enough to steer scaling and — unlike true node queue depths — is
//! computable by every node from the trace prefix alone.

use gh_sim::{Nanos, QuantileSketch};

/// Knobs of the failure-aware node autoscaler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeScaleConfig {
    /// Never drain below this many active nodes.
    pub min_nodes: usize,
    /// Grow when the window's p90 modeled queue depth (ms) exceeds
    /// this.
    pub grow_depth_ms: u64,
    /// Start a drain when the window's p90 modeled queue depth (ms) is
    /// below this.
    pub drain_depth_ms: u64,
    /// Grow when a window observes at least this many arrivals whose
    /// placed node was down (0 disables the loss trigger).
    pub loss_grow: u64,
    /// Decision-window length in virtual time.
    pub window: Nanos,
    /// Windows to hold after any grow/cordon before acting again.
    pub cooldown_windows: u32,
}

impl NodeScaleConfig {
    /// A conservative default: scale between `min_nodes` and the
    /// provisioned count on 250 ms windows, grow on 20 ms p90 backlog
    /// or 3 observed losses, drain below 2 ms, one-window cooldown.
    pub fn balanced(min_nodes: usize) -> NodeScaleConfig {
        NodeScaleConfig {
            min_nodes,
            grow_depth_ms: 20,
            drain_depth_ms: 2,
            loss_grow: 3,
            window: Nanos::from_millis(250),
            cooldown_windows: 1,
        }
    }
}

/// Counters of one scaler fold. Identical on every node of a cluster
/// run (the fold is pure), so the merge keeps node 0's copy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScaleStats {
    /// Nodes activated under pressure.
    pub grows: u64,
    /// Drains started (node cordoned).
    pub drains_started: u64,
    /// Drains completed (cordoned node's backlog hit zero; node
    /// removed from the active set).
    pub drains_completed: u64,
    /// Drains cancelled by pressure before completing (node
    /// uncordoned).
    pub drain_cancels: u64,
    /// Placements redirected off a non-placeable (inactive or
    /// cordoned) node.
    pub redirects: u64,
    /// Decision windows evaluated.
    pub windows: u64,
    /// Largest active-node count reached.
    pub peak_active: usize,
    /// Smallest active-node count reached.
    pub min_active: usize,
    /// Active-node count when the fold ended.
    pub final_active: usize,
}

/// The autoscaler state machine. Construct once per fold and feed every
/// backend-bound arrival in trace order through [`NodeScaler::observe`].
#[derive(Clone, Debug)]
pub struct NodeScaler {
    cfg: NodeScaleConfig,
    /// Provisioned node count (the hard ceiling).
    total: usize,
    /// Nodes `0..active` receive placements (minus the cordoned one).
    active: usize,
    /// Node currently draining, if any (always `active - 1`).
    draining: Option<usize>,
    /// Modeled backlog per provisioned node, virtual ns.
    backlog: Vec<u64>,
    last_at: Nanos,
    window_end: Nanos,
    sketch: QuantileSketch,
    losses: u64,
    cooldown: u32,
    stats: ScaleStats,
}

impl NodeScaler {
    /// Scaler over `total` provisioned nodes, starting at
    /// `cfg.min_nodes` active, with the first decision window opening
    /// at `start`.
    pub fn new(cfg: NodeScaleConfig, total: usize, start: Nanos) -> NodeScaler {
        assert!(total > 0, "need at least one provisioned node");
        assert!(!cfg.window.is_zero(), "decision window must be positive");
        let active = cfg.min_nodes.clamp(1, total);
        NodeScaler {
            cfg,
            total,
            active,
            draining: None,
            backlog: vec![0; total],
            last_at: start,
            window_end: start + cfg.window,
            sketch: QuantileSketch::new(),
            losses: 0,
            cooldown: 0,
            stats: ScaleStats {
                peak_active: active,
                min_active: active,
                final_active: active,
                ..ScaleStats::default()
            },
        }
    }

    /// Folds one arrival: rolls any due decision windows, decays every
    /// node's backlog by the elapsed virtual time, charges `cost` to
    /// the arrival's base placement `target`, samples the target's
    /// depth, and counts `lost` (placed node down) observations.
    pub fn observe(&mut self, at: Nanos, target: usize, cost: Nanos, lost: bool) {
        while self.window_end <= at {
            self.decide();
            self.window_end += self.cfg.window;
        }
        let elapsed = at.saturating_sub(self.last_at).as_nanos();
        for b in self.backlog.iter_mut() {
            *b = b.saturating_sub(elapsed);
        }
        self.last_at = at;
        self.backlog[target] += cost.as_nanos();
        self.sketch.record(self.backlog[target] / 1_000_000);
        if lost {
            self.losses += 1;
        }
    }

    /// One window-boundary decision (see the module docs).
    fn decide(&mut self) {
        self.stats.windows += 1;
        // Complete a due drain first (so a cordon always lasts at least
        // one full window and is observable by the caller's fold).
        if let Some(d) = self.draining {
            if self.backlog[d] == 0 {
                // Cordoned node fully drained: remove it. `d` is always
                // `active - 1` (grows cancel the drain first).
                self.draining = None;
                self.active -= 1;
                self.stats.drains_completed += 1;
            }
        }
        let p90 = self.sketch.quantile(0.90);
        let pressured = (self.cfg.loss_grow > 0 && self.losses >= self.cfg.loss_grow)
            || p90 > self.cfg.grow_depth_ms;
        if pressured && self.cooldown == 0 {
            if self.draining.take().is_some() {
                // Uncordon before adding capacity: the draining node is
                // warm and already provisioned.
                self.stats.drain_cancels += 1;
            } else if self.active < self.total {
                self.active += 1;
                self.stats.grows += 1;
            }
            self.cooldown = self.cfg.cooldown_windows;
        } else if self.cooldown == 0
            && self.draining.is_none()
            && self.active > self.cfg.min_nodes.max(1)
            && p90 < self.cfg.drain_depth_ms
        {
            self.draining = Some(self.active - 1);
            self.stats.drains_started += 1;
            self.cooldown = self.cfg.cooldown_windows;
        }
        self.cooldown = self.cooldown.saturating_sub(1);
        self.losses = 0;
        self.sketch = QuantileSketch::new();
        self.stats.peak_active = self.stats.peak_active.max(self.active);
        self.stats.min_active = self.stats.min_active.min(self.active);
    }

    /// May `node` receive *new* placements right now? False for nodes
    /// beyond the active set and for the cordoned (draining) node.
    pub fn placeable(&self, node: usize) -> bool {
        node < self.active && Some(node) != self.draining
    }

    /// Current active-node count (the cordoned node still counts until
    /// its drain completes).
    pub fn active(&self) -> usize {
        self.active
    }

    /// The cordoned node, if a drain is in progress.
    pub fn draining(&self) -> Option<usize> {
        self.draining
    }

    /// Records a placement redirected off a non-placeable node.
    pub fn note_redirect(&mut self) {
        self.stats.redirects += 1;
    }

    /// Counters so far, with `final_active` filled from the live state.
    pub fn stats(&self) -> ScaleStats {
        ScaleStats {
            final_active: self.active,
            ..self.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NodeScaleConfig {
        NodeScaleConfig {
            min_nodes: 2,
            grow_depth_ms: 10,
            drain_depth_ms: 2,
            loss_grow: 3,
            window: Nanos::from_millis(100),
            cooldown_windows: 0,
        }
    }

    #[test]
    fn grows_under_queue_pressure_up_to_the_provisioned_ceiling() {
        let mut s = NodeScaler::new(cfg(), 4, Nanos::ZERO);
        assert_eq!(s.active(), 2);
        // Hammer node 0 with far more work than time passes.
        for i in 0..400u64 {
            s.observe(Nanos::from_millis(i), 0, Nanos::from_millis(50), false);
        }
        assert_eq!(s.active(), 4, "pressure must reach the ceiling");
        assert!(s.stats().grows >= 2);
        assert!(s.placeable(3));
    }

    #[test]
    fn losses_alone_force_growth() {
        let mut s = NodeScaler::new(cfg(), 3, Nanos::ZERO);
        for i in 0..200u64 {
            // Tiny cost (no queue pressure), but every arrival lost.
            s.observe(Nanos::from_millis(i * 3), 0, Nanos::from_micros(10), true);
        }
        assert!(s.stats().grows >= 1, "loss trigger must fire");
        assert_eq!(s.active(), 3);
    }

    #[test]
    fn quiet_windows_cordon_then_remove_the_top_node() {
        let mut s = NodeScaler::new(cfg(), 4, Nanos::ZERO);
        // Grow to 4 first.
        for i in 0..400u64 {
            s.observe(Nanos::from_millis(i), 0, Nanos::from_millis(50), false);
        }
        assert_eq!(s.active(), 4);
        // Then go quiet: sparse, cheap arrivals let backlogs decay.
        let mut t = Nanos::from_millis(400);
        let mut cordoned_seen = false;
        for _ in 0..400u64 {
            t += Nanos::from_millis(20);
            s.observe(t, 1, Nanos::from_micros(100), false);
            if let Some(d) = s.draining() {
                cordoned_seen = true;
                assert!(!s.placeable(d), "cordoned node takes no placements");
            }
        }
        assert!(cordoned_seen, "a drain must have been in progress");
        assert_eq!(s.active(), 2, "drains back to min_nodes");
        assert!(s.stats().drains_completed >= 2);
        assert_eq!(s.stats().min_active, 2);
        assert_eq!(s.stats().peak_active, 4);
    }

    #[test]
    fn fold_is_a_pure_function_of_the_observation_sequence() {
        let run = || {
            let mut s = NodeScaler::new(cfg(), 5, Nanos::ZERO);
            for i in 0..1_000u64 {
                let at = Nanos::from_micros(i * 700);
                let target = (i % 5) as usize;
                let cost = Nanos::from_micros(200 + (i * 37) % 9_000);
                s.observe(at, target, cost, i % 41 == 0);
            }
            (format!("{:?}", s.stats()), s.active(), s.draining())
        };
        assert_eq!(run(), run(), "same fold, same decisions");
    }

    #[test]
    fn never_drains_below_min_and_never_grows_past_total() {
        let mut s = NodeScaler::new(cfg(), 2, Nanos::ZERO);
        // min_nodes == total: the scaler can never move.
        for i in 0..300u64 {
            s.observe(Nanos::from_millis(i * 7), 0, Nanos::from_millis(40), true);
        }
        assert_eq!(s.active(), 2);
        assert_eq!(s.stats().grows, 0);
        assert_eq!(s.stats().drains_started, 0);
    }
}
