//! Cluster-level placement: which node serves which request.
//!
//! Deployment is static and seed-derived: function `f`'s *home* node is
//! a deterministic hash of `(seed, f)`, and its `replicas` candidate
//! nodes are `home, home+1, …` (mod `nodes`). The [`Placer`] then picks
//! among a function's candidates per request, using **only
//! coordinator-visible deterministic state** (its own cursors and
//! accumulated expected work — never node-internal progress). That
//! restriction is what makes cluster runs embarrassingly parallel:
//! placement is a pure function of the trace prefix, so every node can
//! re-run the placer locally and filter the trace to its own arrivals
//! with no cross-node communication (see [`super`]).

use gh_functions::FunctionSpec;
use gh_sim::Nanos;

/// splitmix64 finalizer — the deployment hash (also derives per-pool
/// container seeds in [`super`]).
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How the cluster front-end picks among a function's replica nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacePolicy {
    /// Rotate through the function's replicas, per function.
    RoundRobin,
    /// The replica with the least accumulated *expected* work (each
    /// assignment charges the function's base compute time); ties go to
    /// the lowest replica index.
    LeastLoaded,
    /// Always the home replica: maximal per-node locality, worst
    /// balance under skew.
    FunctionAffinity,
}

impl PlacePolicy {
    /// Display/CSV label.
    pub fn label(self) -> &'static str {
        match self {
            PlacePolicy::RoundRobin => "round-robin",
            PlacePolicy::LeastLoaded => "least-loaded",
            PlacePolicy::FunctionAffinity => "fn-affinity",
        }
    }

    /// Every policy, for sweeps.
    pub const ALL: [PlacePolicy; 3] = [
        PlacePolicy::RoundRobin,
        PlacePolicy::LeastLoaded,
        PlacePolicy::FunctionAffinity,
    ];
}

/// The deterministic placement state machine. Step it once per trace
/// event, in global trace order.
pub struct Placer {
    policy: PlacePolicy,
    nodes: usize,
    replicas: usize,
    /// Home node per function.
    homes: Vec<u32>,
    /// Per-function round-robin cursor.
    cursors: Vec<u32>,
    /// Per-node accumulated expected work, ns (LeastLoaded).
    load: Vec<u64>,
    /// Per-function expected cost, ns (LeastLoaded's charge).
    cost: Vec<u64>,
}

impl Placer {
    /// Builds placement state for `catalog` over `nodes` nodes with
    /// `replicas` candidates per function.
    pub fn new(
        policy: PlacePolicy,
        nodes: usize,
        replicas: usize,
        catalog: &[FunctionSpec],
        seed: u64,
    ) -> Placer {
        assert!(nodes > 0, "need at least one node");
        assert!(
            (1..=nodes).contains(&replicas),
            "replicas must be in 1..=nodes"
        );
        let homes = (0..catalog.len())
            .map(|f| (mix(seed ^ 0xC10C_0DE0 ^ ((f as u64) << 1)) % nodes as u64) as u32)
            .collect();
        let cost = catalog
            .iter()
            .map(|s| Nanos::from_millis_f64(s.base_invoker_ms).as_nanos())
            .collect();
        Placer {
            policy,
            nodes,
            replicas,
            homes,
            cursors: vec![0; catalog.len()],
            load: vec![0; nodes],
            cost,
        }
    }

    /// The `k`-th replica node of function `f`.
    fn replica(&self, f: usize, k: usize) -> usize {
        (self.homes[f] as usize + k) % self.nodes
    }

    /// The function's candidate nodes in deterministic failover order
    /// (home replica first). The fault layer walks this list when the
    /// placed node is inside an outage window; because the order is a
    /// pure function of the deployment hash, every node replays the
    /// same failover decision without coordination.
    pub fn candidates(&self, f: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.replicas).map(move |k| self.replica(f, k))
    }

    /// True when `node` is a candidate for any request to `f` — the
    /// node-local pool-construction predicate.
    pub fn hosts(&self, node: usize, f: usize) -> bool {
        let home = self.homes[f] as usize;
        // Candidate nodes are home..home+replicas (mod nodes).
        (node + self.nodes - home) % self.nodes < self.replicas
    }

    /// Places the next request to `f`; advances the policy state.
    pub fn place(&mut self, f: usize) -> usize {
        match self.policy {
            PlacePolicy::FunctionAffinity => self.replica(f, 0),
            PlacePolicy::RoundRobin => {
                let k = self.cursors[f] as usize % self.replicas;
                self.cursors[f] = self.cursors[f].wrapping_add(1);
                self.replica(f, k)
            }
            PlacePolicy::LeastLoaded => {
                let node = (0..self.replicas)
                    .map(|k| self.replica(f, k))
                    .min_by_key(|&n| self.load[n])
                    .expect("replicas >= 1");
                self.load[node] += self.cost[f];
                node
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::synthetic_catalog;

    fn placer(policy: PlacePolicy, nodes: usize, replicas: usize) -> Placer {
        let cat = synthetic_catalog(16, 3);
        Placer::new(policy, nodes, replicas, &cat, 99)
    }

    #[test]
    fn placements_stay_on_replicas() {
        for policy in PlacePolicy::ALL {
            let mut p = placer(policy, 5, 2);
            for f in 0..16 {
                for _ in 0..10 {
                    let n = p.place(f);
                    assert!(n < 5);
                    assert!(p.hosts(n, f), "{policy:?} placed f{f} off-replica");
                }
            }
        }
    }

    #[test]
    fn round_robin_rotates_replicas() {
        let mut p = placer(PlacePolicy::RoundRobin, 4, 2);
        let seen: std::collections::BTreeSet<usize> = (0..4).map(|_| p.place(0)).collect();
        assert_eq!(seen.len(), 2, "both replicas used");
    }

    #[test]
    fn affinity_pins_to_one_node() {
        let mut p = placer(PlacePolicy::FunctionAffinity, 4, 3);
        let first = p.place(7);
        assert!((0..50).all(|_| p.place(7) == first));
    }

    #[test]
    fn least_loaded_balances_expected_work() {
        // One function, 2 replicas: assignments must alternate (every
        // charge makes the other replica the lighter one).
        let cat = synthetic_catalog(1, 3);
        let mut p = Placer::new(PlacePolicy::LeastLoaded, 4, 2, &cat, 99);
        let a = p.place(0);
        let b = p.place(0);
        assert_ne!(a, b);
        assert_eq!(p.place(0), a);
        assert_eq!(p.place(0), b);
    }

    #[test]
    fn hosts_matches_replica_enumeration() {
        let p = placer(PlacePolicy::RoundRobin, 6, 3);
        for f in 0..16 {
            let hosted: Vec<usize> = (0..6).filter(|&n| p.hosts(n, f)).collect();
            assert_eq!(hosted.len(), 3);
            for k in 0..3 {
                assert!(hosted.contains(&p.replica(f, k)));
            }
        }
    }

    #[test]
    fn candidates_enumerate_replicas_home_first() {
        let p = placer(PlacePolicy::RoundRobin, 6, 3);
        for f in 0..16 {
            let c: Vec<usize> = p.candidates(f).collect();
            assert_eq!(c.len(), 3);
            assert_eq!(c[0], p.replica(f, 0), "home replica leads");
            assert!(c.iter().all(|&n| p.hosts(n, f)));
        }
    }

    #[test]
    fn single_node_hosts_everything() {
        let mut p = placer(PlacePolicy::LeastLoaded, 1, 1);
        for f in 0..16 {
            assert!(p.hosts(0, f));
            assert_eq!(p.place(f), 0);
        }
    }
}
