//! The machine: process table, frame table, clock and cost accounting.
//!
//! [`Kernel`] is the single owner of shared machine state. All work that
//! consumes time — page faults during function execution, ptrace
//! orchestration, syscalls — is charged to the [`VirtualClock`] here using
//! the calibrated [`CostModel`], so experiment timings emerge from
//! operation counts.

use std::collections::BTreeMap;

use gh_mem::{AddressSpace, FaultCounters, FrameTable, SpaceConfig};
use gh_sim::{CostModel, Nanos, VirtualClock};

use crate::process::{Pid, Process, ProcessState, Thread, Tid};
use crate::registers::RegisterSet;

/// Machine configuration.
#[derive(Clone, Debug, Default)]
pub struct KernelConfig {
    /// Geometry for new address spaces.
    pub space: SpaceConfig,
    /// Cost model (the paper calibration by default).
    pub cost: CostModel,
}

/// Errors from process-table operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcError {
    /// Unknown or dead pid.
    NoSuchProcess(Pid),
    /// The operation requires a running (not stopped/zombie) process.
    NotRunnable(Pid),
}

impl core::fmt::Display for ProcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProcError::NoSuchProcess(p) => write!(f, "no such process: {p:?}"),
            ProcError::NotRunnable(p) => write!(f, "process not runnable: {p:?}"),
        }
    }
}
impl std::error::Error for ProcError {}

/// The simulated machine.
#[derive(Debug)]
pub struct Kernel {
    /// The virtual clock all costs charge to.
    pub clock: VirtualClock,
    /// The calibrated cost model.
    pub cost: CostModel,
    space_cfg: SpaceConfig,
    frames: FrameTable,
    procs: BTreeMap<u32, Process>,
    next_pid: u32,
    next_tid: u32,
    /// Faults charged since the last [`Kernel::take_fault_accum`].
    fault_accum: FaultCounters,
}

impl Kernel {
    /// Boots a machine with the given configuration and a fresh clock.
    pub fn new(cfg: KernelConfig) -> Kernel {
        Kernel {
            clock: VirtualClock::new(),
            cost: cfg.cost,
            space_cfg: cfg.space,
            frames: FrameTable::new(),
            procs: BTreeMap::new(),
            next_pid: 100,
            next_tid: 100,
            fault_accum: FaultCounters::default(),
        }
    }

    /// Boots a machine with default configuration.
    pub fn boot() -> Kernel {
        Kernel::new(KernelConfig::default())
    }

    fn fresh_pid(&mut self) -> (Pid, Tid) {
        let pid = Pid(self.next_pid);
        let tid = Tid(self.next_tid);
        self.next_pid += 1;
        self.next_tid += 1;
        (pid, tid)
    }

    /// Creates a new single-threaded process with an empty address space.
    pub fn spawn(&mut self, name: &str) -> Pid {
        let (pid, tid) = self.fresh_pid();
        let mem = AddressSpace::new(self.space_cfg, &mut self.frames);
        let proc = Process {
            pid,
            name: name.to_string(),
            threads: vec![Thread {
                tid,
                regs: RegisterSet::new(),
            }],
            mem,
            state: ProcessState::Running,
            traced_by_manager: false,
        };
        self.procs.insert(pid.0, proc);
        pid
    }

    /// Adds a thread to a process (runtime initialization spawning GC /
    /// event-loop threads).
    pub fn spawn_thread(&mut self, pid: Pid) -> Result<Tid, ProcError> {
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        let proc = self.process_mut(pid)?;
        proc.threads.push(Thread {
            tid,
            regs: RegisterSet::new(),
        });
        Ok(tid)
    }

    /// Looks up a process.
    pub fn process(&self, pid: Pid) -> Result<&Process, ProcError> {
        self.procs.get(&pid.0).ok_or(ProcError::NoSuchProcess(pid))
    }

    /// Looks up a process mutably.
    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, ProcError> {
        self.procs
            .get_mut(&pid.0)
            .ok_or(ProcError::NoSuchProcess(pid))
    }

    /// True if the pid exists.
    pub fn exists(&self, pid: Pid) -> bool {
        self.procs.contains_key(&pid.0)
    }

    /// Splits the borrow into (process, frame table) for memory work.
    pub fn mem_ctx(&mut self, pid: Pid) -> Result<(&mut Process, &mut FrameTable), ProcError> {
        let proc = self
            .procs
            .get_mut(&pid.0)
            .ok_or(ProcError::NoSuchProcess(pid))?;
        Ok((proc, &mut self.frames))
    }

    /// Read-only frame table (taint scans in tests).
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }

    /// Advances the clock by `dt`.
    pub fn charge(&mut self, dt: Nanos) {
        self.clock.advance(dt);
    }

    /// Returns (and resets) the fault counts charged since the last call
    /// — the per-invocation fault accounting used by execution reports.
    pub fn take_fault_accum(&mut self) -> FaultCounters {
        self.fault_accum.take()
    }

    /// Converts fault counts into time and charges them.
    pub fn charge_faults(&mut self, c: FaultCounters) -> Nanos {
        self.fault_accum.absorb(c);
        let m = &self.cost;
        let dt = m.minor_fault * c.minor
            + m.sd_wp_fault * c.sd_wp
            + m.cow_fault * c.cow
            + m.uffd_fault * c.uffd_wp
            + m.fork_cold_access * c.tlb_cold
            + m.lazy_fault * c.lazy
            + m.warm_touch * c.warm;
        self.clock.advance(dt);
        dt
    }

    /// Runs `f` with the process's memory context, then charges all fault
    /// costs the work incurred. Returns `f`'s result and the charged time.
    ///
    /// This is how function execution runs "inside" a process: the paper's
    /// in-function overheads (§5.2.1) are exactly the faults charged here.
    pub fn run_charged<R>(
        &mut self,
        pid: Pid,
        f: impl FnOnce(&mut Process, &mut FrameTable) -> R,
    ) -> Result<(R, Nanos), ProcError> {
        {
            let proc = self.process(pid)?;
            if !proc.is_runnable() {
                return Err(ProcError::NotRunnable(pid));
            }
        }
        let (proc, frames) = self.mem_ctx(pid)?;
        proc.mem.counters_mut().take(); // isolate this run's counts
        let r = f(proc, frames);
        let counts = proc.mem.counters_mut().take();
        let dt = self.charge_faults(counts);
        Ok((r, dt))
    }

    /// Applies a [`TouchBatch`](gh_mem::TouchBatch) inside `pid` and
    /// charges the aggregated fault counters in one shot — the batched
    /// request hot path. Equivalent in accounting and timeline to
    /// [`Kernel::run_charged`] around a per-page `touch` loop: the
    /// fault-cost charge is linear in the counters, so charging the
    /// aggregate advances the clock by exactly the summed per-page
    /// costs. Returns the batch's fault counters and the charged time.
    pub fn touch_batch_charged(
        &mut self,
        pid: Pid,
        batch: &gh_mem::TouchBatch,
    ) -> Result<(gh_mem::BatchOutcome, Nanos), ProcError> {
        self.run_charged(pid, |p, frames| p.mem.touch_batch(batch, frames))
    }

    /// POSIX `fork`: clones the address space copy-on-write and **only the
    /// calling (main) thread** — other threads do not exist in the child,
    /// which is why fork-based isolation cannot serve multi-threaded
    /// runtimes (§3.2).
    ///
    /// Charges the fork cost (page-table duplication) to the clock.
    pub fn fork(&mut self, pid: Pid) -> Result<Pid, ProcError> {
        let (child_pid, child_tid) = self.fresh_pid();
        let parent = self
            .procs
            .get_mut(&pid.0)
            .ok_or(ProcError::NoSuchProcess(pid))?;
        let mapped = parent.mem.mapped_pages();
        let child_mem = parent.mem.fork(&mut self.frames);
        let main_regs = parent.threads[0].regs.clone();
        let name = format!("{}:child", parent.name);
        let child = Process {
            pid: child_pid,
            name,
            threads: vec![Thread {
                tid: child_tid,
                regs: main_regs,
            }],
            mem: child_mem,
            state: ProcessState::Running,
            traced_by_manager: false,
        };
        self.procs.insert(child_pid.0, child);
        let dt = self.cost.fork_cost(mapped);
        self.clock.advance(dt);
        Ok(child_pid)
    }

    /// Terminates a process, releasing all its frames, and charges the
    /// teardown cost (`exit_mmap` is page-proportional).
    pub fn exit(&mut self, pid: Pid) -> Result<(), ProcError> {
        let mut proc = self
            .procs
            .remove(&pid.0)
            .ok_or(ProcError::NoSuchProcess(pid))?;
        let present = proc.mem.present_pages();
        proc.mem.release_all(&mut self.frames);
        let dt = self.cost.process_teardown + self.cost.teardown_per_page * present;
        self.clock.advance(dt);
        Ok(())
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_mem::{Perms, Taint, Touch, VmaKind};

    #[test]
    fn spawn_creates_single_threaded_process() {
        let mut k = Kernel::boot();
        let pid = k.spawn("func");
        let p = k.process(pid).unwrap();
        assert_eq!(p.thread_count(), 1);
        assert_eq!(p.state, ProcessState::Running);
        assert_eq!(p.name, "func");
        assert!(k.exists(pid));
    }

    #[test]
    fn unique_pids_and_tids() {
        let mut k = Kernel::boot();
        let a = k.spawn("a");
        let b = k.spawn("b");
        assert_ne!(a, b);
        let t1 = k.spawn_thread(a).unwrap();
        let t2 = k.spawn_thread(a).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(k.process(a).unwrap().thread_count(), 3);
    }

    #[test]
    fn run_charged_charges_fault_costs() {
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        let t0 = k.clock.now();
        let ((), dt) = k
            .run_charged(pid, |proc, frames| {
                let r = proc.mem.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
                for vpn in r.iter() {
                    proc.mem
                        .touch(vpn, Touch::WriteWord(1), Taint::Clean, frames)
                        .unwrap();
                }
            })
            .unwrap();
        // 4 minor faults charged.
        assert_eq!(dt, k.cost.minor_fault * 4);
        assert_eq!(k.clock.now() - t0, dt);
    }

    #[test]
    fn touch_batch_charged_matches_loop_accounting() {
        use gh_mem::{TouchBatch, Vpn};
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        let r = k
            .run_charged(pid, |p, _| {
                p.mem.mmap(64, Perms::RW, VmaKind::Anon).unwrap()
            })
            .unwrap()
            .0;
        let mut batch = TouchBatch::new();
        for i in 0..64u64 {
            batch.push(Vpn(r.start.0 + i), Touch::WriteWord(i), Taint::Clean);
        }
        let t0 = k.clock.now();
        let (outcome, dt) = k.touch_batch_charged(pid, &batch).unwrap();
        assert_eq!(outcome.faults.minor, 64);
        assert_eq!(outcome.failed, 0);
        assert_eq!(
            dt,
            k.cost.minor_fault * 64,
            "aggregate charge == Σ per-page"
        );
        assert_eq!(k.clock.now() - t0, dt);
        // The accumulator saw the same counts a touch loop would feed it.
        assert_eq!(k.take_fault_accum().minor, 64);
    }

    #[test]
    fn run_charged_rejects_stopped_process() {
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        k.process_mut(pid).unwrap().state = ProcessState::Stopped;
        let err = k.run_charged(pid, |_, _| ()).unwrap_err();
        assert_eq!(err, ProcError::NotRunnable(pid));
    }

    #[test]
    fn fork_clones_only_calling_thread() {
        let mut k = Kernel::boot();
        let pid = k.spawn("node");
        k.spawn_thread(pid).unwrap();
        k.spawn_thread(pid).unwrap();
        assert_eq!(k.process(pid).unwrap().thread_count(), 3);
        let child = k.fork(pid).unwrap();
        assert_eq!(
            k.process(child).unwrap().thread_count(),
            1,
            "POSIX fork clones only the caller"
        );
    }

    #[test]
    fn fork_charges_page_table_cost() {
        let mut k = Kernel::boot();
        let pid = k.spawn("c");
        k.run_charged(pid, |p, _| {
            p.mem.mmap(100, Perms::RW, VmaKind::Anon).unwrap();
        })
        .unwrap();
        let mapped = k.process(pid).unwrap().mem.mapped_pages();
        let t0 = k.clock.now();
        let _child = k.fork(pid).unwrap();
        assert_eq!(k.clock.now() - t0, k.cost.fork_cost(mapped));
    }

    #[test]
    fn exit_releases_frames() {
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        k.run_charged(pid, |p, frames| {
            let r = p.mem.mmap(8, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(1), Taint::Clean, frames)
                    .unwrap();
            }
        })
        .unwrap();
        assert_eq!(k.frames().live(), 8);
        k.exit(pid).unwrap();
        assert_eq!(k.frames().live(), 0);
        assert!(!k.exists(pid));
        assert!(matches!(k.process(pid), Err(ProcError::NoSuchProcess(_))));
    }

    #[test]
    fn fork_then_exits_free_everything() {
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        k.run_charged(pid, |p, frames| {
            let r = p.mem.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(7), Taint::Clean, frames)
                    .unwrap();
            }
        })
        .unwrap();
        let child = k.fork(pid).unwrap();
        k.exit(child).unwrap();
        k.exit(pid).unwrap();
        assert_eq!(k.frames().live(), 0);
    }
}
