//! The 58-function benchmark catalog, transcribed from the paper.
//!
//! Simulation-driving fields come from Table 3 (baseline invoker latency,
//! baseline throughput, `#pages`, `#restored`) and Table 1 (baseline E2E
//! latency). Paper-result fields (`paper_*`, `faasm`) come from Tables
//! 1–3 and are used **only** to validate the reproduction in
//! EXPERIMENTS.md — the mechanism never reads them.
//!
//! Note on Table 1 column order: the paper's plain-text rendering garbles
//! the header; cross-checking each cell against Table 2's relative
//! overheads shows the data columns are ordered
//! `base, GHNOP, FORK, FAASM, GH`. The FAASM values below were extracted
//! with that corrected mapping.

use gh_runtime::RuntimeKind;

use crate::spec::{BehaviorFlags, FaasmRef, FunctionSpec, Suite};

#[allow(clippy::too_many_arguments)]
fn f(
    name: &'static str,
    suite: Suite,
    runtime: RuntimeKind,
    base_invoker_ms: f64,
    base_e2e_ms: f64,
    base_xput: f64,
    total_kpages: f64,
    written_kpages: f64,
    paper_faults_k: f64,
    paper_restore_ms: f64,
    paper_gh_invoker_ms: f64,
    paper_gh_xput: f64,
    faasm: Option<(f64, f64, f64)>,
) -> FunctionSpec {
    FunctionSpec {
        name,
        suite,
        runtime,
        base_invoker_ms,
        base_e2e_ms,
        base_xput,
        total_kpages,
        written_kpages,
        input_kb: 1,
        output_kb: 1,
        paper_gh_invoker_ms,
        paper_restore_ms,
        paper_gh_xput,
        paper_faults_k,
        faasm: faasm.map(|(e2e_ms, invoker_ms, xput)| FaasmRef {
            e2e_ms,
            invoker_ms,
            xput,
        }),
        behavior: BehaviorFlags::default(),
    }
}

/// The full 58-function catalog, grouped by suite.
// Several transcribed paper values happen to equal 3.14 — they are
// measurements (fannkuch's restore ms, version's page count), not π.
#[allow(clippy::approx_constant)]
pub fn catalog() -> Vec<FunctionSpec> {
    use RuntimeKind::{NativeC as C, NodeJs as N, Python as P};
    use Suite::{FaaSProfiler as FP, PolyBench as PB, PyPerformance as PY};

    let mut v = vec![
        // ---- pyperformance (22 Python functions) -----------------------
        // name, suite, rt, base_inv, base_e2e, base_xput, Kpages, Kwritten,
        //   faultsK, restore_ms, gh_inv, gh_xput, faasm(e2e, inv, xput)
        f(
            "chaos (p)",
            PY,
            P,
            648.5,
            688.2,
            6.03,
            6.32,
            0.47,
            0.47,
            4.93,
            652.0,
            5.94,
            Some((1235.0, 1201.0, 2.99)),
        ),
        // logging(p): the paper's 1249ms baseline mean is the *leak-degraded*
        // average over 1200 invocations; the clean per-request time is
        // ~228ms (what GH sustains). The leak model regenerates the
        // degradation, so the catalog carries the clean figure.
        f(
            "logging (p)",
            PY,
            P,
            228.0,
            267.0,
            0.0,
            6.12,
            0.41,
            0.42,
            4.77,
            227.9,
            16.34,
            Some((383.0, 345.0, 9.69)),
        ),
        f(
            "pyaes (p)",
            PY,
            P,
            4672.0,
            4707.3,
            0.82,
            6.21,
            0.84,
            0.83,
            6.02,
            4751.3,
            0.80,
            Some((8721.0, 8559.0, 0.40)),
        ),
        f(
            "spectral (p)",
            PY,
            P,
            592.8,
            630.8,
            6.45,
            6.12,
            0.21,
            0.22,
            4.29,
            605.2,
            6.40,
            Some((1367.0, 1323.0, 2.62)),
        ),
        f(
            "deltablue (p)",
            PY,
            P,
            20.4,
            48.4,
            157.63,
            6.18,
            0.33,
            0.23,
            4.64,
            21.3,
            140.26,
            Some((150.0, 129.0, 24.4)),
        ),
        f(
            "go (p)",
            PY,
            P,
            593.0,
            631.2,
            6.48,
            6.25,
            0.95,
            0.84,
            6.90,
            596.6,
            6.42,
            Some((1014.0, 982.0, 3.51)),
        ),
        f(
            "mdp (p)",
            PY,
            P,
            6345.5,
            6377.5,
            0.59,
            7.33,
            2.85,
            2.22,
            9.55,
            6412.3,
            0.58,
            Some((12422.0, 12295.0, 0.24)),
        ),
        f(
            "pyflate (p)",
            PY,
            P,
            1599.8,
            1635.9,
            2.39,
            8.25,
            2.33,
            3.01,
            11.67,
            1622.5,
            2.34,
            Some((2780.0, 2644.0, 1.26)),
        ),
        f(
            "telco (p)",
            PY,
            P,
            155.6,
            190.8,
            25.01,
            3.29,
            0.53,
            0.53,
            3.91,
            158.0,
            23.77,
            Some((332.0, 315.0, 11.3)),
        ),
        f(
            "hexiom (p)",
            PY,
            P,
            218.2,
            253.9,
            17.45,
            6.18,
            0.28,
            0.28,
            4.35,
            219.2,
            17.28,
            Some((495.0, 467.0, 7.60)),
        ),
        f(
            "nbody (p)",
            PY,
            P,
            2823.7,
            2858.5,
            1.34,
            6.12,
            0.21,
            0.21,
            4.08,
            2845.0,
            1.34,
            Some((5471.0, 5361.0, 0.63)),
        ),
        f(
            "raytrace (p)",
            PY,
            P,
            2459.2,
            2495.7,
            1.58,
            6.25,
            0.35,
            0.36,
            4.42,
            2463.9,
            1.57,
            Some((4070.0, 4001.0, 0.83)),
        ),
        f(
            "unpack_seq (p)",
            PY,
            P,
            3.3,
            28.3,
            801.86,
            6.12,
            0.20,
            0.20,
            3.17,
            5.0,
            398.15,
            Some((123.0, 103.0, 29.6)),
        ),
        f(
            "fannkuch (p)",
            PY,
            P,
            4.6,
            29.7,
            572.32,
            6.12,
            0.19,
            0.19,
            3.14,
            6.1,
            350.22,
            Some((125.0, 105.0, 29.1)),
        ),
        f(
            "json_dumps (p)",
            PY,
            P,
            533.1,
            567.4,
            7.19,
            6.37,
            0.51,
            0.51,
            4.92,
            551.5,
            6.95,
            Some((939.0, 900.0, 3.94)),
        ),
        f(
            "pickle (p)",
            PY,
            P,
            105.6,
            139.3,
            35.49,
            3.45,
            0.23,
            0.23,
            2.90,
            105.7,
            34.98,
            Some((210.0, 184.0, 17.6)),
        ),
        f(
            "richards (p)",
            PY,
            P,
            353.1,
            387.5,
            10.68,
            6.18,
            0.23,
            0.23,
            4.16,
            351.1,
            10.85,
            Some((636.0, 607.0, 5.86)),
        ),
        f(
            "version (p)",
            PY,
            P,
            3.1,
            28.2,
            990.38,
            3.14,
            0.17,
            0.17,
            1.66,
            4.0,
            562.89,
            Some((11.0, 3.89, 254.0)),
        ),
        f(
            "float (p)",
            PY,
            P,
            27.1,
            57.3,
            125.98,
            6.26,
            0.65,
            0.65,
            4.99,
            27.8,
            109.09,
            Some((162.0, 141.0, 22.5)),
        ),
        f(
            "json_loads (p)",
            PY,
            P,
            102.0,
            135.0,
            36.46,
            6.12,
            0.22,
            0.22,
            4.04,
            103.3,
            35.29,
            Some((286.0, 252.0, 13.2)),
        ),
        f(
            "pidigits (p)",
            PY,
            P,
            2347.6,
            2380.0,
            1.64,
            6.14,
            0.81,
            0.81,
            5.40,
            2349.1,
            1.63,
            Some((7224.0, 6994.0, 0.47)),
        ),
        f(
            "scimark (p)",
            PY,
            P,
            1812.6,
            1848.1,
            2.12,
            3.26,
            0.52,
            0.51,
            3.77,
            1806.6,
            2.12,
            Some((3513.0, 3482.0, 0.97)),
        ),
        // ---- PolyBench (23 C functions) ---------------------------------
        f(
            "2mm (c)",
            PB,
            C,
            27236.2,
            27390.3,
            0.12,
            0.98,
            0.02,
            0.04,
            3.12,
            28887.4,
            0.10,
            Some((24181.0, 20590.0, 0.14)),
        ),
        f(
            "3mm (c)",
            PB,
            C,
            45729.0,
            45947.7,
            0.07,
            0.98,
            0.02,
            0.04,
            2.32,
            46824.4,
            0.06,
            Some((38270.0, 31627.0, 0.09)),
        ),
        f(
            "adi (c)",
            PB,
            C,
            28311.1,
            28470.3,
            0.12,
            0.98,
            0.02,
            0.02,
            0.77,
            28857.6,
            0.12,
            Some((24456.0, 19504.0, 0.15)),
        ),
        f(
            "atax (c)",
            PB,
            C,
            36.4,
            68.7,
            93.55,
            0.98,
            0.03,
            0.03,
            0.99,
            36.8,
            91.99,
            Some((30.3, 22.2, 118.0)),
        ),
        f(
            "bicg (c)",
            PB,
            C,
            42.8,
            75.9,
            81.05,
            0.98,
            0.03,
            0.03,
            0.93,
            43.2,
            79.87,
            Some((34.4, 25.9, 105.0)),
        ),
        f(
            "cholesky (c)",
            PB,
            C,
            166182.8,
            166284.8,
            0.02,
            0.98,
            0.01,
            0.02,
            0.57,
            175691.9,
            0.02,
            Some((140259.0, 112430.0, 0.02)),
        ),
        f(
            "correlation (c)",
            PB,
            C,
            32429.6,
            32508.8,
            0.10,
            0.98,
            0.02,
            0.04,
            2.00,
            34328.9,
            0.09,
            Some((25082.0, 19377.0, 0.14)),
        ),
        f(
            "covariance (c)",
            PB,
            C,
            33020.6,
            33092.1,
            0.10,
            0.98,
            0.02,
            0.04,
            1.97,
            34971.3,
            0.10,
            Some((24674.0, 17964.0, 0.15)),
        ),
        f(
            "deriche (c)",
            PB,
            C,
            1115.0,
            1148.3,
            4.47,
            0.98,
            0.01,
            0.02,
            0.75,
            1115.0,
            4.43,
            Some((919.0, 674.0, 4.26)),
        ),
        f(
            "doitgen (c)",
            PB,
            C,
            650.5,
            691.1,
            5.98,
            0.98,
            0.02,
            0.04,
            1.31,
            650.0,
            5.96,
            Some((677.0, 662.0, 5.55)),
        ),
        f(
            "durbin (c)",
            PB,
            C,
            7.6,
            33.1,
            314.68,
            0.98,
            0.02,
            0.03,
            0.62,
            8.0,
            295.98,
            Some((9.57, 5.43, 326.0)),
        ),
        f(
            "fdtd-2d (c)",
            PB,
            C,
            2179.1,
            2209.6,
            0.89,
            0.98,
            0.02,
            0.02,
            0.97,
            2182.6,
            0.89,
            Some((2856.0, 2695.0, 0.87)),
        ),
        f(
            "floyd-warshall (c)",
            PB,
            C,
            21151.4,
            21224.8,
            0.17,
            0.98,
            0.01,
            0.02,
            0.78,
            21171.3,
            0.17,
            Some((23356.0, 21840.0, 0.11)),
        ),
        f(
            "gramschmidt (c)",
            PB,
            C,
            60899.8,
            61226.6,
            0.06,
            0.98,
            0.02,
            0.04,
            2.53,
            64980.4,
            0.05,
            Some((45304.0, 44627.0, 0.07)),
        ),
        f(
            "heat-3d (c)",
            PB,
            C,
            3059.5,
            3088.1,
            1.02,
            4.35,
            3.39,
            0.02,
            16.09,
            3272.0,
            0.98,
            Some((8780.0, 8645.0, 0.33)),
        ),
        f(
            "jacobi-1d (c)",
            PB,
            C,
            3.8,
            27.9,
            671.34,
            0.98,
            0.02,
            0.03,
            0.62,
            4.2,
            578.99,
            Some((8.27, 4.01, 359.0)),
        ),
        f(
            "jacobi-2d (c)",
            PB,
            C,
            2329.3,
            2356.7,
            1.05,
            0.98,
            0.01,
            0.02,
            0.69,
            2343.4,
            1.05,
            Some((5077.0, 4971.0, 0.71)),
        ),
        f(
            "lu (c)",
            PB,
            C,
            196555.8,
            196660.2,
            0.02,
            0.98,
            0.01,
            0.02,
            0.74,
            207603.5,
            0.02,
            Some((160516.0, 138303.0, 0.02)),
        ),
        f(
            "ludcmp (c)",
            PB,
            C,
            193545.9,
            193637.4,
            0.02,
            0.98,
            0.02,
            0.03,
            1.02,
            199550.2,
            0.02,
            Some((161293.0, 138991.0, 0.02)),
        ),
        f(
            "mvt (c)",
            PB,
            C,
            140.3,
            176.4,
            28.78,
            0.98,
            0.03,
            0.04,
            1.16,
            144.3,
            28.28,
            Some((108.0, 76.7, 36.1)),
        ),
        f(
            "nussinov (c)",
            PB,
            C,
            39122.6,
            39326.9,
            0.09,
            0.98,
            0.02,
            0.02,
            1.02,
            38323.5,
            0.09,
            Some((38477.0, 30232.0, 0.09)),
        ),
        f(
            "seidel-2d (c)",
            PB,
            C,
            23140.1,
            23186.2,
            0.16,
            0.98,
            0.02,
            0.02,
            0.75,
            23139.0,
            0.16,
            Some((19062.0, 18836.0, 0.18)),
        ),
        f(
            "trisolv (c)",
            PB,
            C,
            23.1,
            57.6,
            138.18,
            0.98,
            0.02,
            0.03,
            0.97,
            23.2,
            134.92,
            Some((19.3, 11.4, 175.0)),
        ),
        // ---- FaaSProfiler: Python (6) -----------------------------------
        f(
            "get-time (p)",
            FP,
            P,
            2.9,
            29.6,
            1038.74,
            3.19,
            0.18,
            0.18,
            1.66,
            4.1,
            552.09,
            None,
        ),
        f(
            "sentiment (p)",
            FP,
            P,
            6.5,
            32.7,
            385.07,
            16.86,
            0.57,
            0.57,
            6.00,
            8.9,
            230.39,
            None,
        ),
        f(
            "json (p)", FP, P, 9.9, 71.0, 150.00, 3.33, 0.87, 0.64, 3.71, 13.0, 135.34, None,
        ),
        f(
            "md2html (p)",
            FP,
            P,
            31.0,
            69.4,
            93.94,
            4.93,
            0.62,
            0.63,
            4.25,
            32.7,
            88.50,
            None,
        ),
        f(
            "base64 (p)",
            FP,
            P,
            743.2,
            785.3,
            5.18,
            5.13,
            1.66,
            1.86,
            7.67,
            761.5,
            5.10,
            None,
        ),
        f(
            "primes (p)",
            FP,
            P,
            1829.7,
            1866.6,
            2.04,
            3.22,
            0.53,
            0.51,
            3.24,
            1830.7,
            1.99,
            None,
        ),
        // ---- FaaSProfiler: Node.js (7) -----------------------------------
        f(
            "get-time (n)",
            FP,
            N,
            3.7,
            36.8,
            942.07,
            156.76,
            0.64,
            0.59,
            12.58,
            6.4,
            133.45,
            None,
        ),
        f(
            "autocomplete (n)",
            FP,
            N,
            3.8,
            42.7,
            922.59,
            156.98,
            0.92,
            0.69,
            13.52,
            6.3,
            121.98,
            None,
        ),
        f(
            "json (n)", FP, N, 9.4, 71.1, 159.09, 156.78, 0.85, 0.67, 13.02, 16.1, 86.58, None,
        ),
        f(
            "primes (n)",
            FP,
            N,
            274.6,
            316.9,
            11.79,
            201.35,
            34.20,
            1.27,
            84.74,
            287.1,
            8.16,
            None,
        ),
        f(
            "img-resize (n)",
            FP,
            N,
            445.3,
            505.8,
            6.57,
            179.43,
            18.05,
            9.58,
            61.83,
            721.7,
            4.10,
            None,
        ),
        f(
            "base64 (n)",
            FP,
            N,
            644.0,
            686.3,
            5.62,
            208.42,
            53.83,
            47.98,
            161.93,
            715.1,
            4.34,
            None,
        ),
        f(
            "ocr-img (n)",
            FP,
            N,
            2491.7,
            2539.6,
            1.53,
            156.80,
            1.08,
            0.89,
            13.95,
            2508.5,
            1.52,
            None,
        ),
    ];

    // Payload sizes called out in §5.3.1, plus plausible sizes for the
    // other payload-carrying functions.
    set(&mut v, "json (p)", |s| s.input_kb = 200);
    set(&mut v, "json (n)", |s| s.input_kb = 200);
    set(&mut v, "img-resize (n)", |s| {
        s.input_kb = 76;
        s.output_kb = 40;
    });
    set(&mut v, "base64 (p)", |s| {
        s.input_kb = 32;
        s.output_kb = 43;
    });
    set(&mut v, "base64 (n)", |s| {
        s.input_kb = 32;
        s.output_kb = 43;
    });
    set(&mut v, "ocr-img (n)", |s| s.input_kb = 50);
    set(&mut v, "sentiment (p)", |s| s.input_kb = 4);
    set(&mut v, "md2html (p)", |s| {
        s.input_kb = 8;
        s.output_kb = 10;
    });
    set(&mut v, "autocomplete (n)", |s| s.input_kb = 2);

    // Anomalies (§5.3.1).
    set(&mut v, "logging (p)", |s| s.behavior.leak = true);
    set(&mut v, "img-resize (n)", |s| s.behavior.gc_sensitive = true);

    v
}

fn set(v: &mut [FunctionSpec], name: &str, f: impl FnOnce(&mut FunctionSpec)) {
    let s = v
        .iter_mut()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown catalog entry {name}"));
    f(s);
}

/// Looks up a benchmark by its paper name (e.g. `"pyaes (p)"`).
pub fn by_name(name: &str) -> Option<FunctionSpec> {
    catalog().into_iter().find(|s| s.name == name)
}

/// The 14 representative benchmarks of §5.3.4 / Fig. 7 / Fig. 8,
/// in Fig. 8's order (descending restore time).
pub fn representative_14() -> Vec<FunctionSpec> {
    [
        "base64 (n)",
        "img-resize (n)",
        "heat-3d (c)",
        "ocr-img (n)",
        "autocomplete (n)",
        "pyflate (p)",
        "mdp (p)",
        "sentiment (p)",
        "md2html (p)",
        "telco (p)",
        "fannkuch (p)",
        "get-time (p)",
        "bicg (c)",
        "seidel-2d (c)",
    ]
    .iter()
    .map(|n| by_name(n).expect("representative benchmark in catalog"))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_sim::stats::{median, percentile};

    #[test]
    fn catalog_has_58_functions() {
        let c = catalog();
        assert_eq!(c.len(), 58);
        let py = c.iter().filter(|s| s.suite == Suite::PyPerformance).count();
        let pb = c.iter().filter(|s| s.suite == Suite::PolyBench).count();
        let fp = c.iter().filter(|s| s.suite == Suite::FaaSProfiler).count();
        assert_eq!((py, pb, fp), (22, 23, 13), "§5.3's suite split");
        let node = c
            .iter()
            .filter(|s| s.runtime == RuntimeKind::NodeJs)
            .count();
        assert_eq!(node, 7);
    }

    #[test]
    fn names_are_unique_and_suffixed() {
        let c = catalog();
        let mut names: Vec<&str> = c.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 58);
        for s in &c {
            assert!(
                s.name.ends_with(s.runtime.suffix()),
                "{} should end with {}",
                s.name,
                s.runtime.suffix()
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("pyaes (p)").is_some());
        assert!(by_name("base64 (n)").is_some());
        assert!(by_name("nonexistent (x)").is_none());
    }

    #[test]
    fn wasm_coverage_matches_paper() {
        // §5.3.3: pyperformance + PolyBench compile to wasm; FaaSProfiler
        // functions do not.
        for s in catalog() {
            match s.suite {
                Suite::FaaSProfiler => assert!(s.faasm.is_none(), "{}", s.name),
                _ => assert!(s.faasm.is_some(), "{}", s.name),
            }
        }
    }

    #[test]
    fn write_set_statistics_match_section_3_1() {
        // §3.1: "mean: 8.5% of the mapped address space is modified,
        // median: 3.3%, 90p: 17%". Verify the transcribed catalog
        // reproduces those aggregates (tolerances for rounding).
        let fracs: Vec<f64> = catalog()
            .iter()
            .map(|s| 100.0 * s.write_set_fraction())
            .collect();
        let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let med = median(&fracs);
        let p90 = percentile(&fracs, 90.0);
        assert!((4.0..13.0).contains(&mean), "mean {mean:.1}% vs paper 8.5%");
        assert!((1.5..6.0).contains(&med), "median {med:.1}% vs paper 3.3%");
        assert!((10.0..26.0).contains(&p90), "90p {p90:.1}% vs paper 17%");
    }

    #[test]
    fn restore_time_distribution_matches_section_3() {
        // §3: restores take "a median of 3.7 ms (10p: 0.7, 25p: 1,
        // 75p: 5.4, 90p: 13)". Check the transcribed paper restore times.
        let times: Vec<f64> = catalog().iter().map(|s| s.paper_restore_ms).collect();
        assert!(
            (median(&times) - 3.7).abs() < 0.8,
            "median {}",
            median(&times)
        );
        assert!((percentile(&times, 10.0) - 0.7).abs() < 0.3);
        assert!((percentile(&times, 90.0) - 13.0).abs() < 4.0);
    }

    #[test]
    fn representative_set_is_fig8() {
        let r = representative_14();
        assert_eq!(r.len(), 14);
        assert_eq!(r[0].name, "base64 (n)", "largest restore first");
        assert_eq!(r[13].name, "seidel-2d (c)");
        // Fig. 8 order: descending paper restore time.
        for w in r.windows(2) {
            assert!(w[0].paper_restore_ms >= w[1].paper_restore_ms);
        }
    }

    #[test]
    fn anomalies_flagged() {
        assert!(by_name("logging (p)").unwrap().behavior.leak);
        assert!(by_name("img-resize (n)").unwrap().behavior.gc_sensitive);
        assert!(!by_name("chaos (p)").unwrap().behavior.leak);
    }

    #[test]
    fn payload_sizes_from_paper() {
        // §5.3.1: "json and img-resize (which take inputs of 200kB and
        // 76kB, respectively)".
        assert_eq!(by_name("json (n)").unwrap().input_kb, 200);
        assert_eq!(by_name("img-resize (n)").unwrap().input_kb, 76);
    }

    #[test]
    fn node_functions_map_huge_sparse_spaces() {
        for s in catalog()
            .iter()
            .filter(|s| s.runtime == RuntimeKind::NodeJs)
        {
            assert!(
                s.total_kpages > 100.0,
                "{}: Table 3 shows >150K pages",
                s.name
            );
        }
    }
}
