//! Differential oracle: the extent-based [`AddressSpace`] vs. the
//! retained per-page implementation.
//!
//! `legacy::LegacySpace` below preserves the pre-extent `AddressSpace`
//! fault and bookkeeping logic verbatim (one `BTreeMap` entry per
//! present page, full-map walks for every query), minus the I/O helpers
//! the oracle does not exercise. Seeded random op streams — mapping
//! churn, faults, tracking epochs, uffd arming, CoW marking, fork, lazy
//! arming/draining, restore writes — drive a legacy space and an
//! extent-based space side by side on separate frame tables, and every
//! observable must agree at every step: fault counters, present set,
//! soft-dirty set, uffd logs, taint scans, page contents, live-frame
//! counts, and the lazy conservation counters.

use std::collections::BTreeMap;

use gh_sim::DetRng;

use gh_mem::{
    AddressSpace, FrameData, FrameTable, LazyPageSource, PageRange, Perms, RequestId, SpaceConfig,
    Taint, Touch, Vpn,
};

/// The pre-extent, per-page `AddressSpace`, retained as the oracle.
mod legacy {
    use std::collections::BTreeMap;

    use gh_mem::vma::{Perms, Vma, VmaKind};
    use gh_mem::{
        AccessError, FaultCounters, FrameData, FrameTable, LazyPageSource, PageRange, Pte,
        PteFlags, RequestId, SpaceConfig, StoreHandle, Taint, Touch, VirtAddr, Vpn, PAGE_SIZE,
    };

    fn resolve(src: LazyPageSource, frames: &FrameTable) -> FrameData {
        match src {
            LazyPageSource::Data(d) => d,
            LazyPageSource::Frame(id) => frames.data(id).clone(),
            LazyPageSource::Store { store, frame } => {
                store.lock().expect("store poisoned").data(frame).clone()
            }
        }
    }

    pub struct LegacySpace {
        cfg: SpaceConfig,
        vmas: BTreeMap<u64, Vma>,
        pages: BTreeMap<u64, Pte>,
        brk: Vpn,
        counters: FaultCounters,
        uffd_armed: bool,
        uffd_log: Vec<Vpn>,
        lazy_pending: BTreeMap<u64, LazyPageSource>,
        lazy_dropped: u64,
    }

    #[allow(dead_code)]
    impl LegacySpace {
        pub fn new(cfg: SpaceConfig, _frames: &mut FrameTable) -> LegacySpace {
            let mut vmas = BTreeMap::new();
            let stack_range = PageRange::new(Vpn(cfg.stack_top.0 - cfg.stack_pages), cfg.stack_top);
            vmas.insert(
                stack_range.start.0,
                Vma::new(stack_range, Perms::RW, VmaKind::Stack),
            );
            LegacySpace {
                cfg,
                vmas,
                pages: BTreeMap::new(),
                brk: cfg.heap_base,
                counters: FaultCounters::default(),
                uffd_armed: false,
                uffd_log: Vec::new(),
                lazy_pending: BTreeMap::new(),
                lazy_dropped: 0,
            }
        }

        pub fn config(&self) -> SpaceConfig {
            self.cfg
        }

        pub fn vma_at(&self, vpn: Vpn) -> Option<&Vma> {
            self.vmas
                .range(..=vpn.0)
                .next_back()
                .map(|(_, v)| v)
                .filter(|v| v.range.contains(vpn))
        }

        pub fn maps(&self) -> Vec<Vma> {
            self.vmas.values().cloned().collect()
        }

        pub fn vma_count(&self) -> usize {
            self.vmas.len()
        }

        pub fn mapped_pages(&self) -> u64 {
            self.vmas.values().map(|v| v.range.len()).sum()
        }

        pub fn present_pages(&self) -> u64 {
            self.pages.len() as u64
        }

        pub fn brk(&self) -> Vpn {
            self.brk
        }

        pub fn counters(&self) -> FaultCounters {
            self.counters
        }

        fn find_free(&self, len: u64) -> Option<PageRange> {
            if len == 0 {
                return None;
            }
            let mut ceiling = self.cfg.mmap_top.0;
            for (_, vma) in self.vmas.range(..self.cfg.mmap_top.0).rev() {
                let gap_start = vma.range.end.0;
                if gap_start < ceiling && ceiling - gap_start >= len {
                    return Some(PageRange::new(Vpn(ceiling - len), Vpn(ceiling)));
                }
                ceiling = ceiling.min(vma.range.start.0);
            }
            if ceiling >= len {
                Some(PageRange::new(Vpn(ceiling - len), Vpn(ceiling)))
            } else {
                None
            }
        }

        pub fn mmap(
            &mut self,
            len: u64,
            perms: Perms,
            kind: VmaKind,
        ) -> Result<PageRange, AccessError> {
            let range = self.find_free(len).ok_or(AccessError::BadRange)?;
            self.insert_vma(Vma::new(range, perms, kind));
            Ok(range)
        }

        fn overlaps_any(&self, range: PageRange) -> bool {
            self.vmas
                .range(..range.end.0)
                .next_back()
                .is_some_and(|(_, v)| v.range.overlaps(range))
                || self.vmas.range(range.start.0..range.end.0).next().is_some()
        }

        fn insert_vma(&mut self, mut vma: Vma) {
            if let Some((&start, prev)) = self.vmas.range(..vma.range.start.0).next_back() {
                if prev.range.end == vma.range.start && prev.can_merge_with(&vma) {
                    vma.range.start = prev.range.start;
                    self.vmas.remove(&start);
                }
            }
            if let Some((&start, next)) = self.vmas.range(vma.range.end.0..).next() {
                if next.range.start == vma.range.end && vma.can_merge_with(next) {
                    vma.range.end = next.range.end;
                    self.vmas.remove(&start);
                }
            }
            self.vmas.insert(vma.range.start.0, vma);
        }

        pub fn munmap(
            &mut self,
            range: PageRange,
            frames: &mut FrameTable,
        ) -> Result<(), AccessError> {
            if range.is_empty() {
                return Err(AccessError::BadRange);
            }
            let affected: Vec<u64> = self
                .vmas
                .range(..range.end.0)
                .filter(|(_, v)| v.range.overlaps(range))
                .map(|(&s, _)| s)
                .collect();
            for start in affected {
                let vma = self.vmas.remove(&start).expect("collected key");
                let cut = vma.range.intersect(range);
                if vma.range.start.0 < cut.start.0 {
                    let left = Vma::new(
                        PageRange::new(vma.range.start, cut.start),
                        vma.perms,
                        vma.kind.clone(),
                    );
                    self.vmas.insert(left.range.start.0, left);
                }
                if cut.end.0 < vma.range.end.0 {
                    let right =
                        Vma::new(PageRange::new(cut.end, vma.range.end), vma.perms, vma.kind);
                    self.vmas.insert(right.range.start.0, right);
                }
            }
            self.drop_pages_in(range, frames);
            Ok(())
        }

        pub fn mprotect(&mut self, range: PageRange, perms: Perms) -> Result<(), AccessError> {
            if range.is_empty() {
                return Err(AccessError::BadRange);
            }
            let mut cursor = range.start;
            while cursor.0 < range.end.0 {
                let vma = self.vma_at(cursor).ok_or(AccessError::Unmapped(cursor))?;
                cursor = vma.range.end;
            }
            let affected: Vec<u64> = self
                .vmas
                .range(..range.end.0)
                .filter(|(_, v)| v.range.overlaps(range))
                .map(|(&s, _)| s)
                .collect();
            let removed: Vec<Vma> = affected
                .iter()
                .map(|s| self.vmas.remove(s).expect("collected key"))
                .collect();
            for vma in removed {
                let cut = vma.range.intersect(range);
                if vma.range.start.0 < cut.start.0 {
                    self.vmas.insert(
                        vma.range.start.0,
                        Vma::new(
                            PageRange::new(vma.range.start, cut.start),
                            vma.perms,
                            vma.kind.clone(),
                        ),
                    );
                }
                self.insert_vma(Vma::new(cut, perms, vma.kind.clone()));
                if cut.end.0 < vma.range.end.0 {
                    self.vmas.insert(
                        cut.end.0,
                        Vma::new(PageRange::new(cut.end, vma.range.end), vma.perms, vma.kind),
                    );
                }
            }
            Ok(())
        }

        pub fn set_brk(
            &mut self,
            new_brk: Vpn,
            frames: &mut FrameTable,
        ) -> Result<Vpn, AccessError> {
            if new_brk.0 < self.cfg.heap_base.0 {
                return Err(AccessError::BadRange);
            }
            let old = self.brk;
            if new_brk.0 > old.0 {
                let grow = PageRange::new(old, new_brk);
                if self.overlaps_any(grow) {
                    return Err(AccessError::BadRange);
                }
                let existing = self
                    .vmas
                    .iter()
                    .find(|(_, v)| matches!(v.kind, VmaKind::Heap) && v.range.end == old)
                    .map(|(&s, _)| s);
                if let Some(s) = existing {
                    let mut v = self.vmas.remove(&s).expect("heap vma");
                    v.range.end = new_brk;
                    self.vmas.insert(v.range.start.0, v);
                } else {
                    self.vmas
                        .insert(grow.start.0, Vma::new(grow, Perms::RW, VmaKind::Heap));
                }
            } else if new_brk.0 < old.0 {
                let shrink = PageRange::new(new_brk, old);
                let existing = self
                    .vmas
                    .iter()
                    .find(|(_, v)| matches!(v.kind, VmaKind::Heap) && v.range.end == old)
                    .map(|(&s, _)| s);
                let Some(s) = existing else {
                    return Err(AccessError::BadRange);
                };
                let mut v = self.vmas.remove(&s).expect("heap vma");
                if new_brk.0 <= v.range.start.0 {
                } else {
                    v.range.end = new_brk;
                    self.vmas.insert(v.range.start.0, v);
                }
                self.drop_pages_in(shrink, frames);
            }
            self.brk = new_brk;
            Ok(self.brk)
        }

        pub fn madvise_dontneed(
            &mut self,
            range: PageRange,
            frames: &mut FrameTable,
        ) -> Result<(), AccessError> {
            if range.is_empty() {
                return Err(AccessError::BadRange);
            }
            self.drop_pages_in(range, frames);
            Ok(())
        }

        fn drop_pages_in(&mut self, range: PageRange, frames: &mut FrameTable) {
            let vpns: Vec<u64> = self
                .pages
                .range(range.start.0..range.end.0)
                .map(|(&v, _)| v)
                .collect();
            for v in vpns {
                let pte = self.pages.remove(&v).expect("collected key");
                frames.decref(pte.frame);
            }
            if !self.lazy_pending.is_empty() {
                let doomed: Vec<u64> = self
                    .lazy_pending
                    .range(range.start.0..range.end.0)
                    .map(|(&v, _)| v)
                    .collect();
                for v in doomed {
                    self.lazy_pending.remove(&v);
                    self.lazy_dropped += 1;
                }
            }
        }

        fn fresh_data(vma: &Vma, vpn: Vpn) -> FrameData {
            match &vma.kind {
                VmaKind::File(name) => {
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in name.bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                    }
                    FrameData::Pattern(h ^ vpn.0)
                }
                _ => FrameData::Zero,
            }
        }

        fn page_read_access(
            &mut self,
            vpn: Vpn,
            frames: &mut FrameTable,
        ) -> Result<(), AccessError> {
            let vma = self.vma_at(vpn).ok_or(AccessError::Unmapped(vpn))?;
            if !vma.perms.r {
                return Err(AccessError::PermissionDenied(vpn));
            }
            if self.lazy_pending.contains_key(&vpn.0) {
                self.counters.lazy += 1;
                self.fault_in_lazy(vpn, false, frames);
                return Ok(());
            }
            let fresh = Self::fresh_data(vma, vpn);
            match self.pages.get_mut(&vpn.0) {
                None => {
                    self.counters.minor += 1;
                    let frame = frames.alloc(fresh, Taint::Clean);
                    self.pages
                        .insert(vpn.0, Pte::present(frame, PteFlags::SOFT_DIRTY));
                }
                Some(pte) => {
                    if pte.flags.contains(PteFlags::TLB_COLD) {
                        self.counters.tlb_cold += 1;
                        pte.flags = pte.flags.without(PteFlags::TLB_COLD);
                    } else {
                        self.counters.warm += 1;
                    }
                }
            }
            Ok(())
        }

        fn page_write_access(
            &mut self,
            vpn: Vpn,
            frames: &mut FrameTable,
        ) -> Result<(), AccessError> {
            let vma = self.vma_at(vpn).ok_or(AccessError::Unmapped(vpn))?;
            if !vma.perms.w {
                return Err(AccessError::PermissionDenied(vpn));
            }
            if self.lazy_pending.contains_key(&vpn.0) {
                self.counters.lazy += 1;
                self.fault_in_lazy(vpn, true, frames);
                return Ok(());
            }
            let fresh = Self::fresh_data(vma, vpn);
            match self.pages.get_mut(&vpn.0) {
                None => {
                    self.counters.minor += 1;
                    let frame = frames.alloc(fresh, Taint::Clean);
                    self.pages
                        .insert(vpn.0, Pte::present(frame, PteFlags::SOFT_DIRTY));
                }
                Some(pte) => {
                    let mut faulted = false;
                    if pte.flags.contains(PteFlags::TLB_COLD) {
                        self.counters.tlb_cold += 1;
                        pte.flags = pte.flags.without(PteFlags::TLB_COLD);
                        faulted = true;
                    }
                    if pte.flags.contains(PteFlags::COW) {
                        self.counters.cow += 1;
                        if frames.is_shared(pte.frame) {
                            pte.frame = frames.cow_copy(pte.frame);
                        }
                        pte.flags = pte.flags.without(PteFlags::COW);
                        faulted = true;
                    }
                    if pte.flags.contains(PteFlags::UFFD_WP) {
                        self.counters.uffd_wp += 1;
                        self.uffd_log.push(vpn);
                        pte.flags = pte
                            .flags
                            .without(PteFlags::UFFD_WP)
                            .with(PteFlags::SOFT_DIRTY);
                        faulted = true;
                    } else if pte.flags.contains(PteFlags::SD_WP) {
                        if !faulted {
                            self.counters.sd_wp += 1;
                        }
                        pte.flags = pte
                            .flags
                            .without(PteFlags::SD_WP)
                            .with(PteFlags::SOFT_DIRTY);
                        faulted = true;
                    } else {
                        pte.flags |= PteFlags::SOFT_DIRTY;
                    }
                    if !faulted {
                        self.counters.warm += 1;
                    }
                    // Parity with the extent-based space's eager-capture
                    // sharing: unshare a structurally shared frame
                    // without charging a fault.
                    if frames.is_shared(pte.frame) {
                        pte.frame = frames.cow_copy(pte.frame);
                    }
                }
            }
            Ok(())
        }

        pub fn touch(
            &mut self,
            vpn: Vpn,
            touch: Touch,
            taint: Taint,
            frames: &mut FrameTable,
        ) -> Result<(), AccessError> {
            match touch {
                Touch::Read => self.page_read_access(vpn, frames),
                Touch::WriteWord(val) => {
                    self.page_write_access(vpn, frames)?;
                    let pte = self.pages.get(&vpn.0).expect("just faulted in");
                    let (data, t) = frames.data_mut(pte.frame);
                    data.write_word(1, val);
                    *t = t.merge(taint);
                    Ok(())
                }
            }
        }

        pub fn arm_lazy(&mut self, pages: BTreeMap<u64, LazyPageSource>) {
            self.lazy_pending.extend(pages);
        }

        pub fn lazy_pending_len(&self) -> usize {
            self.lazy_pending.len()
        }

        pub fn take_lazy_dropped(&mut self) -> u64 {
            std::mem::take(&mut self.lazy_dropped)
        }

        pub fn lazy_dropped(&self) -> u64 {
            self.lazy_dropped
        }

        fn fault_in_lazy(&mut self, vpn: Vpn, for_write: bool, frames: &mut FrameTable) {
            let src = self.lazy_pending.remove(&vpn.0).expect("pending entry");
            let armed = if self.uffd_armed {
                PteFlags::UFFD_WP
            } else {
                PteFlags::SD_WP
            };
            if let (false, LazyPageSource::Frame(id)) = (for_write, &src) {
                let id = *id;
                frames.incref(id);
                if let Some(pte) = self.pages.get(&vpn.0) {
                    frames.decref(pte.frame);
                }
                self.pages
                    .insert(vpn.0, Pte::present(id, PteFlags::COW.with(armed)));
                return;
            }
            let data = resolve(src, frames);
            let flags = if for_write {
                if self.uffd_armed {
                    self.uffd_log.push(vpn);
                }
                PteFlags::SOFT_DIRTY
            } else {
                armed
            };
            self.install_private(vpn, data, flags, frames);
        }

        pub fn drain_lazy(&mut self, limit: u64, frames: &mut FrameTable) -> u64 {
            let mut drained = 0u64;
            while drained < limit {
                let Some((&vpn, _)) = self.lazy_pending.iter().next() else {
                    break;
                };
                let src = self.lazy_pending.remove(&vpn).expect("just observed");
                let data = resolve(src, frames);
                let armed = if self.uffd_armed {
                    PteFlags::UFFD_WP
                } else {
                    PteFlags::SD_WP
                };
                self.install_private(Vpn(vpn), data, armed, frames);
                drained += 1;
            }
            drained
        }

        fn install_private(
            &mut self,
            vpn: Vpn,
            data: FrameData,
            flags: PteFlags,
            frames: &mut FrameTable,
        ) {
            self.restore_page(vpn, &data, Taint::Clean, frames)
                .expect("pending pages always lie in a VMA");
            let pte = self.pages.get_mut(&vpn.0).expect("just installed");
            pte.flags = PteFlags::PRESENT.with(flags);
        }

        pub fn mark_all_cow(&mut self) {
            for pte in self.pages.values_mut() {
                pte.flags |= PteFlags::COW;
            }
        }

        pub fn clear_soft_dirty(&mut self) {
            for pte in self.pages.values_mut() {
                pte.flags = pte
                    .flags
                    .without(PteFlags::SOFT_DIRTY)
                    .with(PteFlags::SD_WP);
            }
        }

        pub fn arm_uffd_wp(&mut self) {
            self.uffd_armed = true;
            self.uffd_log.clear();
            for pte in self.pages.values_mut() {
                pte.flags = pte
                    .flags
                    .with(PteFlags::UFFD_WP)
                    .without(PteFlags::SOFT_DIRTY);
            }
        }

        pub fn disarm_uffd(&mut self) -> Vec<Vpn> {
            self.uffd_armed = false;
            for pte in self.pages.values_mut() {
                pte.flags = pte.flags.without(PteFlags::UFFD_WP);
            }
            std::mem::take(&mut self.uffd_log)
        }

        pub fn soft_dirty_pages(&self) -> Vec<Vpn> {
            self.pages
                .iter()
                .filter(|(_, pte)| pte.soft_dirty())
                .map(|(&v, _)| Vpn(v))
                .collect()
        }

        pub fn pagemap(&self) -> impl Iterator<Item = (Vpn, &Pte)> + '_ {
            self.pages.iter().map(|(&v, pte)| (Vpn(v), pte))
        }

        pub fn pte(&self, vpn: Vpn) -> Option<&Pte> {
            self.pages.get(&vpn.0)
        }

        pub fn peek_word(&self, vpn: Vpn, word_index: usize, frames: &FrameTable) -> Option<u64> {
            self.pages
                .get(&vpn.0)
                .map(|pte| frames.data(pte.frame).read_word(word_index))
        }

        pub fn restore_page(
            &mut self,
            vpn: Vpn,
            data: &FrameData,
            taint: Taint,
            frames: &mut FrameTable,
        ) -> Result<(), AccessError> {
            if self.vma_at(vpn).is_none() {
                return Err(AccessError::Unmapped(vpn));
            }
            match self.pages.get_mut(&vpn.0) {
                Some(pte) => {
                    if frames.is_shared(pte.frame) {
                        pte.frame = frames.cow_copy(pte.frame);
                        pte.flags = pte.flags.without(PteFlags::COW);
                    }
                    frames.overwrite(pte.frame, data.clone(), taint);
                }
                None => {
                    let frame = frames.alloc(data.clone(), taint);
                    self.pages
                        .insert(vpn.0, Pte::present(frame, PteFlags::empty()));
                }
            }
            Ok(())
        }

        pub fn evict_page(&mut self, vpn: Vpn, frames: &mut FrameTable) {
            if let Some(pte) = self.pages.remove(&vpn.0) {
                frames.decref(pte.frame);
            }
        }

        pub fn zero_page(&mut self, vpn: Vpn, frames: &mut FrameTable) -> Result<(), AccessError> {
            self.restore_page(vpn, &FrameData::Zero, Taint::Clean, frames)
        }

        pub fn release_all(&mut self, frames: &mut FrameTable) {
            for (_, pte) in std::mem::take(&mut self.pages) {
                frames.decref(pte.frame);
            }
            self.vmas.clear();
            self.lazy_dropped += self.lazy_pending.len() as u64;
            self.lazy_pending.clear();
        }

        pub fn fork(&mut self, frames: &mut FrameTable) -> LegacySpace {
            let mut child_pages = BTreeMap::new();
            for (&vpn, pte) in self.pages.iter_mut() {
                frames.incref(pte.frame);
                pte.flags |= PteFlags::COW;
                let child_flags = pte.flags.with(PteFlags::TLB_COLD);
                child_pages.insert(
                    vpn,
                    Pte {
                        frame: pte.frame,
                        flags: child_flags,
                    },
                );
            }
            LegacySpace {
                cfg: self.cfg,
                vmas: self.vmas.clone(),
                pages: child_pages,
                brk: self.brk,
                counters: FaultCounters::default(),
                uffd_armed: false,
                uffd_log: Vec::new(),
                lazy_pending: BTreeMap::new(),
                lazy_dropped: 0,
            }
        }

        pub fn tainted_pages(&self, req: RequestId, frames: &FrameTable) -> Vec<Vpn> {
            self.pages
                .iter()
                .filter(|(_, pte)| frames.taint(pte.frame).may_contain(req))
                .map(|(&v, _)| Vpn(v))
                .collect()
        }

        /// Unused by the oracle but kept so the retained copy stays a
        /// faithful, self-contained snapshot of the old implementation.
        pub fn read_bytes(
            &mut self,
            addr: VirtAddr,
            buf: &mut [u8],
            frames: &mut FrameTable,
        ) -> Result<(), AccessError> {
            let mut pos = 0usize;
            let mut cur = addr;
            while pos < buf.len() {
                let vpn = cur.vpn();
                self.page_read_access(vpn, frames)?;
                let off = cur.page_offset() as usize;
                let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
                let pte = self.pages.get(&vpn.0).expect("present after access");
                frames
                    .data(pte.frame)
                    .read_bytes(off, &mut buf[pos..pos + n]);
                pos += n;
                cur = cur.add(n as u64);
            }
            Ok(())
        }

        pub fn uffd_armed(&self) -> bool {
            self.uffd_armed
        }

        pub fn _store_marker(_: Option<StoreHandle>) {}
    }
}

use legacy::LegacySpace;

/// One twin pair: identical op streams go to both spaces.
struct Twins {
    old: LegacySpace,
    old_frames: FrameTable,
    new: AddressSpace,
    new_frames: FrameTable,
}

impl Twins {
    fn new() -> Twins {
        let mut old_frames = FrameTable::new();
        let mut new_frames = FrameTable::new();
        Twins {
            old: LegacySpace::new(SpaceConfig::default(), &mut old_frames),
            new: AddressSpace::new(SpaceConfig::default(), &mut new_frames),
            old_frames,
            new_frames,
        }
    }

    /// Every observable the two implementations share must agree.
    fn assert_equiv(&self, ctx: &str) {
        assert_eq!(
            self.old.counters(),
            self.new.counters(),
            "{ctx}: fault counters"
        );
        assert_eq!(
            self.old.present_pages(),
            self.new.present_pages(),
            "{ctx}: present pages"
        );
        assert_eq!(
            self.old.mapped_pages(),
            self.new.mapped_pages(),
            "{ctx}: mapped pages"
        );
        assert_eq!(self.old.vma_count(), self.new.vma_count(), "{ctx}: vmas");
        assert_eq!(self.old.brk(), self.new.brk(), "{ctx}: brk");
        assert_eq!(
            self.old.soft_dirty_pages(),
            self.new.soft_dirty_pages(),
            "{ctx}: soft-dirty set"
        );
        assert_eq!(
            self.old.lazy_pending_len(),
            self.new.lazy_pending_len(),
            "{ctx}: lazy pending"
        );
        assert_eq!(
            self.old.lazy_dropped(),
            self.new.lazy_dropped(),
            "{ctx}: lazy dropped"
        );
        assert_eq!(
            self.old_frames.live(),
            self.new_frames.live(),
            "{ctx}: live frames"
        );
        // Page-for-page: presence, flags and word-1 contents.
        let old_pages: Vec<(Vpn, u8)> = self.old.pagemap().map(|(v, p)| (v, p.flags.0)).collect();
        let new_pages: Vec<(Vpn, u8)> = self.new.pagemap().map(|(v, p)| (v, p.flags.0)).collect();
        assert_eq!(old_pages, new_pages, "{ctx}: pagemap flags");
        for (vpn, _) in &old_pages {
            assert_eq!(
                self.old.peek_word(*vpn, 1, &self.old_frames),
                self.new.peek_word(*vpn, 1, &self.new_frames),
                "{ctx}: contents of {vpn:?}"
            );
        }
        // Taint scans for a handful of request ids.
        for req in 1..4u64 {
            assert_eq!(
                self.old.tainted_pages(RequestId(req), &self.old_frames),
                self.new.tainted_pages(RequestId(req), &self.new_frames),
                "{ctx}: tainted pages of req {req}"
            );
        }
        self.new
            .check_invariants_with_frames(&self.new_frames)
            .unwrap_or_else(|e| panic!("{ctx}: invariants: {e}"));
    }
}

/// A random page within the mapped regions (both spaces have identical
/// layouts, so one pick serves both).
fn pick_page(space: &AddressSpace, i: u64) -> Option<Vpn> {
    let maps = space.maps();
    if maps.is_empty() {
        return None;
    }
    let vma = &maps[(i % maps.len() as u64) as usize];
    let off = (i / maps.len().max(1) as u64) % vma.range.len();
    Some(Vpn(vma.range.start.0 + off))
}

#[test]
fn extent_space_is_bit_identical_to_per_page_space() {
    for case in 0..96u64 {
        let mut rng = DetRng::new(0x00E0_7E47 ^ case);
        let mut t = Twins::new();
        let n_ops = 20 + rng.next_below(140);
        for op_i in 0..n_ops {
            let ctx = format!("case {case} op {op_i}");
            match rng.next_below(14) {
                0 => {
                    let len = 1 + rng.next_below(31);
                    let a = t.old.mmap(len, Perms::RW, gh_mem::VmaKind::Anon);
                    let b = t.new.mmap(len, Perms::RW, gh_mem::VmaKind::Anon);
                    assert_eq!(a, b, "{ctx}: mmap");
                }
                1 => {
                    if let Some(vpn) = pick_page(&t.new, rng.next_u64()) {
                        let r = PageRange::at(vpn, 1 + rng.next_below(5));
                        let a = t.old.munmap(r, &mut t.old_frames);
                        let b = t.new.munmap(r, &mut t.new_frames);
                        assert_eq!(a, b, "{ctx}: munmap");
                    }
                }
                2 => {
                    let heap_base = t.new.config().heap_base;
                    let delta = rng.next_below(60) as i64 - 12;
                    let cur = t.new.brk().0 as i64;
                    let new_brk = Vpn((cur + delta).max(heap_base.0 as i64) as u64);
                    let a = t.old.set_brk(new_brk, &mut t.old_frames);
                    let b = t.new.set_brk(new_brk, &mut t.new_frames);
                    assert_eq!(a, b, "{ctx}: brk");
                }
                3 => {
                    if let Some(vpn) = pick_page(&t.new, rng.next_u64()) {
                        let r = PageRange::at(vpn, 1 + rng.next_below(4));
                        let a = t.old.madvise_dontneed(r, &mut t.old_frames);
                        let b = t.new.madvise_dontneed(r, &mut t.new_frames);
                        assert_eq!(a, b, "{ctx}: madvise");
                    }
                }
                4 => {
                    if let Some(vpn) = pick_page(&t.new, rng.next_u64()) {
                        let r = PageRange::at(vpn, 1 + rng.next_below(3));
                        let perms = if rng.next_below(2) == 0 {
                            Perms::R
                        } else {
                            Perms::RW
                        };
                        let a = t.old.mprotect(r, perms);
                        let b = t.new.mprotect(r, perms);
                        assert_eq!(a, b, "{ctx}: mprotect");
                    }
                }
                5..=7 => {
                    if let Some(vpn) = pick_page(&t.new, rng.next_u64()) {
                        let val = rng.next_u64();
                        let taint = match rng.next_below(3) {
                            0 => Taint::Clean,
                            n => Taint::One(RequestId(n)),
                        };
                        let a = t
                            .old
                            .touch(vpn, Touch::WriteWord(val), taint, &mut t.old_frames);
                        let b = t
                            .new
                            .touch(vpn, Touch::WriteWord(val), taint, &mut t.new_frames);
                        assert_eq!(a, b, "{ctx}: write");
                    }
                }
                8 | 9 => {
                    if let Some(vpn) = pick_page(&t.new, rng.next_u64()) {
                        let a = t
                            .old
                            .touch(vpn, Touch::Read, Taint::Clean, &mut t.old_frames);
                        let b = t
                            .new
                            .touch(vpn, Touch::Read, Taint::Clean, &mut t.new_frames);
                        assert_eq!(a, b, "{ctx}: read");
                    }
                }
                10 => {
                    t.old.clear_soft_dirty();
                    t.new.clear_soft_dirty();
                }
                11 => {
                    if t.new.uffd_armed() {
                        let mut a = t.old.disarm_uffd();
                        let b = t.new.disarm_uffd();
                        // The legacy log is a push Vec in notification
                        // order that can even hold duplicates when a
                        // lazy arming lands mid-epoch (an interleaving
                        // no manager flow produces); the index is the
                        // deduped ascending set — which is what every
                        // consumer (`UffdTracker::collect` sorts +
                        // dedups) actually observes.
                        a.sort_unstable_by_key(|v| v.0);
                        a.dedup();
                        assert_eq!(a, b, "{ctx}: uffd log");
                    } else {
                        t.old.arm_uffd_wp();
                        t.new.arm_uffd_wp();
                    }
                }
                12 => {
                    // Lazy arming: every present page of one VMA against
                    // synthetic pattern sources (same on both sides).
                    if let Some(vpn) = pick_page(&t.new, rng.next_u64()) {
                        let len = 1 + rng.next_below(6);
                        let pages: BTreeMap<u64, LazyPageSource> = PageRange::at(vpn, len)
                            .iter()
                            .filter(|v| t.new.vma_at(*v).is_some())
                            .map(|v| (v.0, LazyPageSource::Data(FrameData::Pattern(v.0 ^ 7))))
                            .collect();
                        t.old.arm_lazy(pages.clone());
                        t.new.arm_lazy(pages);
                    }
                }
                _ => {
                    let limit = rng.next_below(6);
                    let a = t.old.drain_lazy(limit, &mut t.old_frames);
                    let b = t.new.drain_lazy(limit, &mut t.new_frames);
                    assert_eq!(a, b, "{ctx}: drained");
                }
            }
            t.assert_equiv(&ctx);
        }
        // Fork both and replay writes into parent + child.
        let mut old_child = t.old.fork(&mut t.old_frames);
        let mut new_child = t.new.fork(&mut t.new_frames);
        for i in 0..rng.next_below(20) {
            if let Some(vpn) = pick_page(&t.new, rng.next_u64()) {
                let _ = old_child.touch(vpn, Touch::WriteWord(i), Taint::Clean, &mut t.old_frames);
                let _ = new_child.touch(vpn, Touch::WriteWord(i), Taint::Clean, &mut t.new_frames);
                let _ = t
                    .old
                    .touch(vpn, Touch::WriteWord(!i), Taint::Clean, &mut t.old_frames);
                let _ = t
                    .new
                    .touch(vpn, Touch::WriteWord(!i), Taint::Clean, &mut t.new_frames);
            }
        }
        assert_eq!(
            old_child.counters(),
            new_child.counters(),
            "case {case}: child counters"
        );
        assert_eq!(
            old_child.soft_dirty_pages(),
            new_child.soft_dirty_pages(),
            "case {case}: child dirty set"
        );
        old_child.release_all(&mut t.old_frames);
        new_child.release_all(&mut t.new_frames);
        t.assert_equiv(&format!("case {case} after fork/teardown"));
        // Full teardown is leak-free on both sides.
        t.old.release_all(&mut t.old_frames);
        t.new.release_all(&mut t.new_frames);
        assert_eq!(t.old_frames.live(), 0, "case {case}: legacy leak");
        assert_eq!(t.new_frames.live(), 0, "case {case}: extent leak");
    }
}

/// Restore-path privileged writes agree too (restore_page / zero /
/// evict over churned state).
#[test]
fn privileged_restore_ops_agree() {
    for case in 0..48u64 {
        let mut rng = DetRng::new(0x09E5_702E ^ case);
        let mut t = Twins::new();
        let r_old = t.old.mmap(24, Perms::RW, gh_mem::VmaKind::Anon).unwrap();
        let r_new = t.new.mmap(24, Perms::RW, gh_mem::VmaKind::Anon).unwrap();
        assert_eq!(r_old, r_new);
        for _ in 0..rng.next_below(40) {
            let vpn = Vpn(r_new.start.0 + rng.next_below(24));
            match rng.next_below(5) {
                0 => {
                    let data = FrameData::Pattern(rng.next_u64());
                    let a = t
                        .old
                        .restore_page(vpn, &data, Taint::Clean, &mut t.old_frames);
                    let b = t
                        .new
                        .restore_page(vpn, &data, Taint::Clean, &mut t.new_frames);
                    assert_eq!(a, b);
                }
                1 => {
                    let a = t.old.zero_page(vpn, &mut t.old_frames);
                    let b = t.new.zero_page(vpn, &mut t.new_frames);
                    assert_eq!(a, b);
                }
                2 => {
                    t.old.evict_page(vpn, &mut t.old_frames);
                    t.new.evict_page(vpn, &mut t.new_frames);
                }
                3 => {
                    let taint = Taint::One(RequestId(1 + rng.next_below(2)));
                    let val = rng.next_u64();
                    let a = t
                        .old
                        .touch(vpn, Touch::WriteWord(val), taint, &mut t.old_frames);
                    let b = t
                        .new
                        .touch(vpn, Touch::WriteWord(val), taint, &mut t.new_frames);
                    assert_eq!(a, b);
                }
                _ => {
                    t.old.clear_soft_dirty();
                    t.new.clear_soft_dirty();
                }
            }
        }
        t.assert_equiv(&format!("case {case}"));
    }
}

/// The scan-work counter: identical dirty sets cost identical index
/// work no matter how much is mapped or present — the O(dirty + extents)
/// property asserted structurally, not by timing.
#[test]
fn soft_dirty_scan_work_is_independent_of_present_size() {
    let build = |present_pages: u64| -> (AddressSpace, FrameTable, PageRange) {
        let mut frames = FrameTable::new();
        let mut s = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let r = s
            .mmap(present_pages, Perms::RW, gh_mem::VmaKind::Anon)
            .unwrap();
        for vpn in r.iter() {
            s.touch(vpn, Touch::WriteWord(1), Taint::Clean, &mut frames)
                .unwrap();
        }
        s.clear_soft_dirty();
        (s, frames, r)
    };
    let (mut small, mut small_frames, r_small) = build(2_048);
    let (mut big, mut big_frames, r_big) = build(32_768);
    // Same relative dirty pattern in both.
    let offsets: Vec<u64> = (0..64u64).map(|i| i * 17).collect();
    for &off in &offsets {
        small
            .touch(
                Vpn(r_small.start.0 + off % 2_048),
                Touch::WriteWord(2),
                Taint::Clean,
                &mut small_frames,
            )
            .unwrap();
        big.touch(
            Vpn(r_big.start.0 + off % 2_048),
            Touch::WriteWord(2),
            Taint::Clean,
            &mut big_frames,
        )
        .unwrap();
    }
    assert_eq!(small.soft_dirty_pages().len(), big.soft_dirty_pages().len());
    let dirty = small.soft_dirty_pages().len() as u64;
    // The defining assertion: scan work is a function of the dirty set
    // alone. 16x more present pages, identical work counter.
    let w_small = small.soft_dirty_scan_work();
    let w_big = big.soft_dirty_scan_work();
    assert_eq!(w_small, w_big, "scan work must not see the present size");
    assert!(
        w_small <= 3 * dirty + 3,
        "work {w_small} must be O(dirty={dirty}), not O(present)"
    );
    // And extents stay O(initial + dirty): one armed run split by the
    // dirty pages.
    assert!(
        (big.extent_count() as u64) <= 2 * dirty + 4,
        "extents {} must be O(dirty)",
        big.extent_count()
    );
}
