//! Client workloads: the measurement harnesses of §5.2–§5.3.
//!
//! - [`closed_loop_latency`]: "a closed-loop client ... which submits
//!   requests one-at-a-time" with enough pacing for Groundhog to finish
//!   restoration between requests — latency reflects in-function
//!   overheads only (§5.2.1's low-load workload).
//! - [`saturate`]: "a large number of in-flight requests" — the container
//!   is never idle, so restoration time eats into capacity (§5.2.2's
//!   high-load workload, and the throughput setup of §5.3).
//! - [`throughput_scaling`]: the §5.3.4 experiment — per-core containers
//!   with independent seeds, summed.

use gh_functions::FunctionSpec;
use gh_isolation::{StrategyError, StrategyKind};
use gh_sim::stats::{throughput_rps, LatencyRecorder, Summary};
use gh_sim::{DetRng, Nanos, QuantileSketch};
use groundhog_core::GroundhogConfig;

use crate::container::Container;
use crate::platform::{Platform, PlatformConfig};
use crate::request::Request;

/// Latency measurements from a closed-loop run. All collectors are
/// fixed-size sketches, so a run's stats memory is independent of `n`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyRun {
    /// End-to-end latencies.
    pub e2e: LatencyRecorder,
    /// Invoker latencies.
    pub invoker: LatencyRecorder,
    /// Restore durations observed (off the critical path).
    pub restores: QuantileSketch,
}

impl LatencyRun {
    /// Mean E2E in ms.
    pub fn e2e_mean_ms(&self) -> f64 {
        self.e2e.summary_ms().mean
    }

    /// Mean invoker latency in ms.
    pub fn invoker_mean_ms(&self) -> f64 {
        self.invoker.summary_ms().mean
    }

    /// Mean restore duration in ms (0 when no restores ran).
    pub fn restore_mean_ms(&self) -> f64 {
        self.restores.mean_ms()
    }
}

/// Runs a low-load closed-loop client against a fresh deployment:
/// `n` requests, one at a time, with an idle gap after each response
/// long enough for any restoration to finish before the next arrival.
pub fn closed_loop_latency(
    spec: &FunctionSpec,
    kind: StrategyKind,
    gh: GroundhogConfig,
    n: usize,
    seed: u64,
) -> Result<LatencyRun, StrategyError> {
    let mut platform = Platform::new(PlatformConfig {
        gh,
        seed,
        ..PlatformConfig::default()
    });
    let id = platform.deploy(spec, kind)?;
    let mut run = LatencyRun::default();
    let principals = ["alice", "bob", "carol"];
    for i in 0..n {
        let out = platform.invoke_simple(id, principals[i % principals.len()], 0)?;
        run.e2e.record(out.e2e);
        run.invoker.record(out.invoker);
        if !out.off_path.is_zero() {
            run.restores.record_nanos(out.off_path);
        }
        // Low-load pacing: idle long enough that restoration (already
        // charged to the container's clock inside invoke) never delays
        // the next request.
        platform
            .container_mut(id)
            .kernel
            .charge(Nanos::from_millis(2));
    }
    Ok(run)
}

/// Throughput of one saturated container (requests back-to-back, no idle
/// gaps): completions per second of virtual time, after `warmup`
/// requests are excluded.
pub fn saturate(
    container: &mut Container,
    requests: usize,
    warmup: usize,
    seed: u64,
) -> Result<f64, StrategyError> {
    let mut rng = DetRng::new(seed);
    let spec = container.spec.clone();
    let sat_overhead_ms = spec.saturation_overhead_ms(4) / 4.0;
    let mut measured = 0usize;
    let mut window_start = container.now();
    for i in 0..requests {
        if i == warmup {
            window_start = container.now();
        }
        // Invoker dispatch overhead at saturation (queueing, scheduling,
        // payload handling) — identical across strategies, calibrated
        // from the paper's BASE throughput.
        let overhead = Nanos::from_millis_f64(sat_overhead_ms).scale(rng.lognormal_factor(0.1));
        container.kernel.charge(overhead);
        let req = Request::new(i as u64 + 1, "client", spec.input_kb);
        container.invoke(&req)?;
        if i >= warmup {
            measured += 1;
        }
    }
    let window = container.now() - window_start;
    Ok(throughput_rps(measured, window))
}

/// §5.3.4: sustained throughput with `cores` containers (one per core,
/// independent machines), averaged over `runs` runs. Returns
/// `(mean, std_dev)` of the summed throughput.
pub fn throughput_scaling(
    spec: &FunctionSpec,
    kind: StrategyKind,
    gh: GroundhogConfig,
    cores: u32,
    requests_per_core: usize,
    runs: u32,
    seed: u64,
) -> Result<(f64, f64), StrategyError> {
    let mut rng = DetRng::new(seed);
    let mut totals = Vec::new();
    for _run in 0..runs {
        let mut total = 0.0;
        for _core in 0..cores {
            let s = rng.next_u64();
            let mut c = Container::cold_start(spec, kind, gh.clone(), s)?;
            total += saturate(&mut c, requests_per_core, requests_per_core / 10, s ^ 1)?;
        }
        totals.push(total);
    }
    let s = Summary::of(&totals);
    Ok((s.mean, s.std_dev))
}

/// Convenience: single-run 4-core throughput (the Fig. 5 setup).
pub fn peak_throughput(
    spec: &FunctionSpec,
    kind: StrategyKind,
    gh: GroundhogConfig,
    requests_per_core: usize,
    seed: u64,
) -> Result<f64, StrategyError> {
    let (mean, _) = throughput_scaling(spec, kind, gh, 4, requests_per_core, 1, seed)?;
    Ok(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_functions::catalog::by_name;

    #[test]
    fn closed_loop_records_all_requests() {
        let spec = by_name("pickle (p)").unwrap();
        let run =
            closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 12, 7).unwrap();
        assert_eq!(run.e2e.len(), 12);
        assert_eq!(run.invoker.len(), 12);
        assert_eq!(run.restores.len(), 12, "GH restores after every request");
        assert!(run.restore_mean_ms() > 0.0);
    }

    #[test]
    fn base_has_no_restores() {
        let spec = by_name("pickle (p)").unwrap();
        let run =
            closed_loop_latency(&spec, StrategyKind::Base, GroundhogConfig::gh(), 8, 7).unwrap();
        assert!(run.restores.is_empty());
    }

    #[test]
    fn gh_latency_overhead_is_modest_for_long_functions() {
        // pickle(p): base invoker ≈ 105.6ms, paper GH ≈ 105.7ms (+0.01%).
        let spec = by_name("pickle (p)").unwrap();
        let base =
            closed_loop_latency(&spec, StrategyKind::Base, GroundhogConfig::gh(), 10, 3).unwrap();
        let gh =
            closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 10, 3).unwrap();
        let rel = gh.invoker_mean_ms() / base.invoker_mean_ms();
        assert!(
            (0.98..1.1).contains(&rel),
            "GH/base invoker ratio {rel:.3} should be ~1 for pickle"
        );
    }

    #[test]
    fn saturated_throughput_close_to_paper_baseline() {
        // atax(c): Table 3 baseline throughput 93.55 r/s at 4 cores.
        let spec = by_name("atax (c)").unwrap();
        let x = peak_throughput(&spec, StrategyKind::Base, GroundhogConfig::gh(), 40, 5).unwrap();
        assert!(
            (70.0..120.0).contains(&x),
            "atax base throughput {x:.1} vs paper 93.6"
        );
    }

    #[test]
    fn gh_throughput_below_base_for_restore_heavy_functions() {
        let spec = by_name("fannkuch (p)").unwrap();
        let base =
            peak_throughput(&spec, StrategyKind::Base, GroundhogConfig::gh(), 40, 9).unwrap();
        let gh = peak_throughput(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 40, 9).unwrap();
        assert!(
            gh < base * 0.92,
            "fannkuch: restore (3.1ms) vs exec (4.6ms) must cost throughput: {gh:.0} vs {base:.0}"
        );
    }

    #[test]
    fn throughput_scales_with_cores() {
        let spec = by_name("trisolv (c)").unwrap();
        let (x1, _) =
            throughput_scaling(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 1, 30, 1, 11)
                .unwrap();
        let (x4, _) =
            throughput_scaling(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 4, 30, 1, 11)
                .unwrap();
        let ratio = x4 / x1;
        assert!(
            (3.3..4.7).contains(&ratio),
            "§5.3.4: near-linear scaling, got {ratio:.2}x"
        );
    }
}
