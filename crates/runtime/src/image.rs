//! Building concrete function-process memory images.
//!
//! A [`FunctionProcess`] is a simulated process whose address-space shape
//! matches a benchmark's measured footprint (Table 3's `#pages`): a
//! file-backed text/library region, a small data region holding the
//! runtime-state page, a `brk` heap, and one or more anonymous mmap
//! regions. The build pages in `resident_fraction` of the image, exactly
//! like an initialized runtime that has executed its dummy warm-up
//! request (§4.1).

use gh_mem::{PageRange, Perms, Taint, Touch, VmaKind, Vpn};
use gh_proc::{Kernel, Pid};
use gh_sim::Nanos;

use crate::profile::{RuntimeKind, RuntimeProfile};

/// The regions of a built function image.
///
/// Carries a precomputed flat index over the writable regions so that
/// page addressing is allocation-free O(log R) — behaviours resolve
/// hundreds of thousands of pages per request.
#[derive(Clone, Debug)]
pub struct ImageRegions {
    /// Program text + shared libraries (file-backed, read-exec).
    pub text: PageRange,
    /// Globals / runtime static state (anon, read-write). The first page
    /// is the *runtime-state page* holding the GC clock.
    pub data: PageRange,
    /// The `brk` heap.
    pub heap: PageRange,
    /// Anonymous mmap regions (managed heaps, arenas).
    pub anon: Vec<PageRange>,
    /// Flat index: `(cumulative_start, region)` sorted by cumulative
    /// offset; rebuilt by [`ImageRegions::new`].
    index: Vec<(u64, PageRange)>,
    /// Total writable pages.
    total: u64,
}

impl ImageRegions {
    /// Builds the regions and their flat index.
    pub fn new(text: PageRange, data: PageRange, heap: PageRange, anon: Vec<PageRange>) -> Self {
        let mut regions = ImageRegions {
            text,
            data,
            heap,
            anon,
            index: Vec::new(),
            total: 0,
        };
        regions.rebuild_index();
        regions
    }

    fn rebuild_index(&mut self) {
        let mut sorted = self.dirtyable();
        sorted.sort_by_key(|r| r.start.0);
        let mut cum = 0u64;
        self.index = sorted
            .iter()
            .map(|r| {
                let entry = (cum, *r);
                cum += r.len();
                entry
            })
            .collect();
        self.total = cum;
    }

    /// The runtime-state page (GC clock lives at word 0).
    pub fn state_page(&self) -> Vpn {
        self.data.start
    }

    /// All writable regions a function may dirty, in address order.
    pub fn dirtyable(&self) -> Vec<PageRange> {
        let mut v = vec![self.data, self.heap];
        v.extend(self.anon.iter().copied());
        v.sort_by_key(|r| r.start.0);
        v
    }

    /// Total writable pages.
    pub fn dirtyable_pages(&self) -> u64 {
        self.total
    }

    /// Resolves the `i`-th writable page (wrapping), giving behaviours a
    /// stable, uniform, allocation-free way to address the write set.
    pub fn dirtyable_page(&self, i: u64) -> Vpn {
        let idx = i % self.total.max(1);
        let pos = self
            .index
            .partition_point(|&(cum, _)| cum <= idx)
            .saturating_sub(1);
        let (cum, range) = self.index[pos];
        Vpn(range.start.0 + (idx - cum))
    }

    /// Resolves an ascending sequence of flat indices with one region
    /// cursor (`O(indices + regions)` instead of a binary search per
    /// index) — the [`WritePlan`](crate::plan::WritePlan) build path.
    /// Indices wrap like [`ImageRegions::dirtyable_page`]; a wrapped
    /// (non-ascending) index resets the cursor, preserving exactness at
    /// a one-off probe cost.
    pub fn resolve_ascending(&self, indices: impl Iterator<Item = u64>, out: &mut Vec<Vpn>) {
        let mut pos = 0usize;
        for i in indices {
            let idx = i % self.total.max(1);
            if idx < self.index[pos].0 {
                pos = 0;
            }
            while pos + 1 < self.index.len() && self.index[pos + 1].0 <= idx {
                pos += 1;
            }
            let (cum, range) = self.index[pos];
            out.push(Vpn(range.start.0 + (idx - cum)));
        }
    }
}

/// A built, initialized function process.
#[derive(Debug)]
pub struct FunctionProcess {
    /// The process id.
    pub pid: Pid,
    /// The runtime profile it runs.
    pub profile: RuntimeProfile,
    /// Its memory image.
    pub regions: ImageRegions,
    /// Monotonic count of requests executed (for deterministic placement).
    pub invocations: u64,
    /// Cached write/read plans + batch scratch for the request executor
    /// (invalidated by [`FunctionProcess::churn_layout`]).
    pub plans: crate::plan::PlanCache,
}

/// Word index of the GC clock on the runtime-state page.
const GC_CLOCK_WORD: usize = 0;

impl FunctionProcess {
    /// Builds a function process with roughly `total_pages` mapped pages.
    ///
    /// Charges the runtime's initialization time (Fig. 1's "runtime
    /// initialization") plus the demand-paging faults of bringing
    /// `resident_fraction` of the image in.
    pub fn build(
        kernel: &mut Kernel,
        name: &str,
        profile: RuntimeProfile,
        total_pages: u64,
    ) -> Self {
        let total_pages = total_pages.max(64);
        let pid = kernel.spawn(name);
        kernel.charge(profile.init_time);

        // Region budget.
        let text_pages = ((total_pages as f64 * profile.file_fraction) as u64).max(8);
        let data_pages = (total_pages / 50).clamp(4, 512);
        let heap_pages = ((total_pages as f64 * 0.35) as u64).max(16);
        let stack_pages = {
            let (proc, _) = kernel.mem_ctx(pid).expect("fresh pid");
            proc.mem.config().stack_pages
        };
        let anon_total = total_pages
            .saturating_sub(text_pages + data_pages + heap_pages + stack_pages)
            .max(16);
        // Region counts match real /proc/pid/maps sizes: a C binary maps
        // a handful of regions, CPython ~100 (every extension .so plus
        // obmalloc arenas), Node/V8 several hundred (code ranges, semi-
        // spaces, large-object spaces).
        let anon_regions = match profile.kind {
            RuntimeKind::NativeC => 2,
            RuntimeKind::Python => 60,
            RuntimeKind::NodeJs => 150,
        };

        let lib_name = format!(
            "{}.rt",
            match profile.kind {
                RuntimeKind::NativeC => "libc",
                RuntimeKind::Python => "libpython3.10",
                RuntimeKind::NodeJs => "libnode.so",
            }
        );

        let (regions, resident_budget) = {
            let (proc, frames) = kernel.mem_ctx(pid).expect("fresh pid");
            let text = proc
                .mem
                .mmap(text_pages, Perms::RX, VmaKind::File(lib_name))
                .expect("text fits");
            let data = proc
                .mem
                .mmap(data_pages, Perms::RW, VmaKind::Anon)
                .expect("data fits");
            let heap_base = proc.mem.config().heap_base;
            proc.mem
                .set_brk(Vpn(heap_base.0 + heap_pages), frames)
                .expect("brk grows");
            let heap = PageRange::new(heap_base, Vpn(heap_base.0 + heap_pages));
            let mut anon = Vec::new();
            let per = (anon_total / anon_regions).max(8);
            for _ in 0..anon_regions {
                // Leave one-page gaps so regions do not merge: real
                // runtimes interleave guard pages and differently-typed
                // arenas, and the maps diff needs distinct VMAs.
                let r = proc
                    .mem
                    .mmap(per, Perms::RW, VmaKind::Anon)
                    .expect("anon fits");
                let _guard = proc
                    .mem
                    .mmap_fixed(
                        PageRange::at(Vpn(r.start.0 - 1), 1),
                        Perms::NONE,
                        VmaKind::Guard,
                    )
                    .ok();
                anon.push(r);
            }
            let regions = ImageRegions::new(text, data, heap, anon);
            let resident_budget = (total_pages as f64 * profile.resident_fraction) as u64;
            (regions, resident_budget)
        };

        // Demand-page the image in: text read-faulted, data/heap/anon
        // write-faulted (runtime initialization writes them). Each region
        // is one contiguous ascending run, so the paging goes through the
        // batched fault path — one cursor walk per region instead of a
        // page-table probe per page (bit-identical faults either way).
        let (_, _dt) = kernel
            .run_charged(pid, |proc, frames| {
                let mut budget = resident_budget;
                let mut batch = gh_mem::TouchBatch::new();
                let mut page_in = |proc: &mut gh_proc::Process,
                                   frames: &mut _,
                                   range: PageRange,
                                   touch: Touch,
                                   budget: &mut u64| {
                    batch.clear();
                    for vpn in range.iter().take(*budget as usize) {
                        batch.push(vpn, touch, Taint::Clean);
                    }
                    *budget -= batch.len() as u64;
                    let d = proc.mem.touch_batch(&batch, frames);
                    // touch_batch skips per-item failures; init paging
                    // must touch every page (the old loops `expect`ed).
                    assert_eq!(d.failed, 0, "init paging touched every page of {range:?}");
                };
                page_in(proc, frames, regions.text, Touch::Read, &mut budget);
                page_in(
                    proc,
                    frames,
                    regions.data,
                    Touch::WriteWord(0xD0D0),
                    &mut budget,
                );
                for r in std::iter::once(regions.heap).chain(regions.anon.iter().copied()) {
                    if budget == 0 {
                        break;
                    }
                    page_in(proc, frames, r, Touch::WriteWord(0x1417), &mut budget);
                }
            })
            .expect("init paging");

        // Helper threads (V8 / libuv / CPython helper).
        for _ in 1..profile.threads {
            kernel.spawn_thread(pid).expect("spawn helper thread");
        }

        // Initialize the GC clock to "now".
        let now = kernel.clock.now().as_nanos();
        let state = regions.state_page();
        kernel
            .run_charged(pid, |proc, frames| {
                let pte_present = proc.mem.pte(state).is_some();
                debug_assert!(pte_present, "state page paged in during init");
                proc.mem
                    .touch(state, Touch::WriteWord(now), Taint::Clean, frames)
                    .expect("state write");
                // Store at the dedicated clock word as well.
                let pte = proc.mem.pte(state).expect("present");
                let _ = pte;
            })
            .expect("state init");
        Self::poke_gc_clock(kernel, pid, state, now);

        FunctionProcess {
            pid,
            profile,
            regions,
            invocations: 0,
            plans: crate::plan::PlanCache::new(),
        }
    }

    /// A view of the same image bound to another pid — used to run a
    /// request inside a `fork`ed child, whose layout is a CoW copy of
    /// this image. The view starts with an empty plan cache (fork-based
    /// isolation rebuilds per request; the parent keeps its own cache).
    pub fn with_pid(&self, pid: Pid) -> FunctionProcess {
        FunctionProcess {
            pid,
            profile: self.profile.clone(),
            regions: self.regions.clone(),
            invocations: self.invocations,
            plans: crate::plan::PlanCache::new(),
        }
    }

    fn poke_gc_clock(kernel: &mut Kernel, pid: Pid, state: Vpn, value: u64) {
        let (proc, frames) = kernel.mem_ctx(pid).expect("live pid");
        let pte = proc.mem.pte(state).expect("state page present");
        let (data, _) = frames.data_mut(pte.frame);
        data.write_word(GC_CLOCK_WORD, value);
    }

    /// Re-bases the in-memory runtime clock to "now" — the paper's
    /// proposed time-virtualization fix (§5.3.1): after a restore, the
    /// platform adjusts the process's notion of time so time-driven
    /// behaviours (V8's GC) do not observe the rewind.
    pub fn rebase_gc_clock(&self, kernel: &mut Kernel) {
        let now = kernel.clock.now().as_nanos();
        Self::poke_gc_clock(kernel, self.pid, self.regions.state_page(), now);
    }

    /// Reads the GC clock from process memory.
    pub fn gc_clock(&self, kernel: &Kernel) -> Nanos {
        let proc = kernel.process(self.pid).expect("live pid");
        let v = proc
            .mem
            .peek_word(self.regions.state_page(), GC_CLOCK_WORD, kernel.frames())
            .unwrap_or(0);
        Nanos::from_nanos(v)
    }

    /// Runs a time-driven GC check (Node.js, §5.3.1). If the period has
    /// elapsed *according to the in-memory clock* — which restoration
    /// rewinds — the collector runs: it dirties pages, consumes its pause
    /// time, and stores the new clock value in memory.
    ///
    /// Returns the GC pause charged, if a collection ran.
    pub fn maybe_gc(&mut self, kernel: &mut Kernel) -> Option<Nanos> {
        let gc = self.profile.gc?;
        let last = self.gc_clock(kernel);
        let now = kernel.clock.now();
        if now.checked_sub(last).is_none_or(|dt| dt < gc.period) {
            return None;
        }
        let regions = &self.regions;
        let pages = gc.pages_dirtied.min(regions.dirtyable_pages());
        let nowns = now.as_nanos();
        // The collector walks and compacts: dirty `pages` strided pages
        // spread across the managed regions — an ascending set, batched,
        // then the clock store (same order as the per-page loop).
        let total = regions.dirtyable_pages();
        let stride = (total / pages.max(1)).max(1);
        let mut batch = gh_mem::TouchBatch::with_capacity(pages as usize);
        let mut vpns = Vec::with_capacity(pages as usize);
        regions.resolve_ascending((0..pages).map(|i| i * stride), &mut vpns);
        for (i, &vpn) in vpns.iter().enumerate() {
            batch.push(vpn, Touch::WriteWord(nowns ^ i as u64), Taint::Clean);
        }
        kernel
            .run_charged(self.pid, |proc, frames| {
                let d = proc.mem.touch_batch(&batch, frames);
                assert_eq!(d.failed, 0, "gc dirtied every strided page");
                proc.mem
                    .touch(
                        regions.state_page(),
                        Touch::WriteWord(nowns),
                        Taint::Clean,
                        frames,
                    )
                    .expect("clock write");
            })
            .expect("gc run");
        Self::poke_gc_clock(kernel, self.pid, self.regions.state_page(), nowns);
        kernel.charge(gc.pause);
        Some(gc.pause)
    }

    /// Performs the runtime's per-request layout churn (Node.js maps and
    /// unmaps aggressively, §5.4): mmaps fresh arenas, munmaps old ones,
    /// grows `brk`. Returns the number of layout syscalls performed.
    pub fn churn_layout(&mut self, kernel: &mut Kernel) -> u32 {
        let churn = self.profile.churn;
        let mut ops = 0u32;
        if churn.mmaps == 0 && churn.munmaps == 0 && churn.brk_growth == 0 {
            return 0;
        }
        let mut new_regions: Vec<PageRange> = Vec::new();
        kernel
            .run_charged(self.pid, |proc, frames| {
                for _ in 0..churn.mmaps {
                    if let Ok(r) = proc
                        .mem
                        .mmap(churn.mmap_pages.max(1), Perms::RW, VmaKind::Anon)
                    {
                        // Touch the first page (arenas are used immediately).
                        let _ =
                            proc.mem
                                .touch(r.start, Touch::WriteWord(0xA4EA), Taint::Clean, frames);
                        new_regions.push(r);
                        ops += 1;
                    }
                }
                // Unmap a prefix of what we just mapped (plus nothing if
                // munmaps exceed mmaps — regions from previous requests
                // were already restored/unmapped).
                for r in new_regions.iter().take(churn.munmaps as usize) {
                    if proc.mem.munmap(*r, frames).is_ok() {
                        ops += 1;
                    }
                }
                if churn.brk_growth > 0 {
                    let cur = proc.mem.brk();
                    if proc
                        .mem
                        .set_brk(Vpn(cur.0 + churn.brk_growth), frames)
                        .is_ok()
                    {
                        ops += 1;
                    }
                }
            })
            .expect("churn");
        if ops > 0 {
            // Defensive invalidation: churn does not currently edit
            // `regions` (new arenas live outside the dirtyable index),
            // so cached plans could legally survive — but the cache
            // contract is "plans never outlive a layout change", so any
            // future churn that does grow the addressable image stays
            // correct by construction. Rebuilds are one cheap region-
            // cursor walk, so churn-heavy runtimes (Node) lose little.
            self.plans.invalidate();
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_proc::Kernel;

    fn build(kind: RuntimeKind, pages: u64) -> (Kernel, FunctionProcess) {
        let mut k = Kernel::boot();
        let fp = FunctionProcess::build(&mut k, "f", RuntimeProfile::for_kind(kind), pages);
        (k, fp)
    }

    #[test]
    fn image_footprint_matches_request() {
        let (k, fp) = build(RuntimeKind::Python, 6_000);
        let proc = k.process(fp.pid).unwrap();
        let mapped = proc.mem.mapped_pages();
        // Within 25% of the requested footprint (stack + rounding).
        assert!(
            (4_500..8_500).contains(&mapped),
            "mapped {mapped} pages for a 6000-page request"
        );
        proc.mem.check_invariants().unwrap();
    }

    #[test]
    fn resident_fraction_respected() {
        let (k, fp) = build(RuntimeKind::NodeJs, 20_000);
        let proc = k.process(fp.pid).unwrap();
        let resident = proc.mem.present_pages() as f64;
        let mapped = proc.mem.mapped_pages() as f64;
        let frac = resident / mapped;
        assert!(
            (0.1..0.5).contains(&frac),
            "Node image should be sparse, got {frac:.2}"
        );
    }

    #[test]
    fn c_image_is_mostly_resident() {
        let (k, fp) = build(RuntimeKind::NativeC, 1_000);
        let proc = k.process(fp.pid).unwrap();
        let frac = proc.mem.present_pages() as f64 / proc.mem.mapped_pages() as f64;
        assert!(frac > 0.5, "C image mostly resident, got {frac:.2}");
    }

    #[test]
    fn thread_counts_follow_profile() {
        let (k, fp) = build(RuntimeKind::NodeJs, 8_000);
        assert_eq!(k.process(fp.pid).unwrap().thread_count(), 7);
        let (k, fp) = build(RuntimeKind::NativeC, 1_000);
        assert_eq!(k.process(fp.pid).unwrap().thread_count(), 1);
    }

    #[test]
    fn dirtyable_page_addressing_is_total() {
        let (_, fp) = build(RuntimeKind::Python, 4_000);
        let total = fp.regions.dirtyable_pages();
        assert!(total > 0);
        // Wrapping: out-of-range index maps back in.
        let a = fp.regions.dirtyable_page(0);
        let b = fp.regions.dirtyable_page(total);
        assert_eq!(a, b);
        // Every index resolves to a writable region.
        for i in (0..total).step_by((total as usize / 64).max(1)) {
            let vpn = fp.regions.dirtyable_page(i);
            assert!(fp.regions.dirtyable().iter().any(|r| r.contains(vpn)));
        }
    }

    #[test]
    fn gc_clock_roundtrips_through_memory() {
        let (mut k, fp) = build(RuntimeKind::NodeJs, 8_000);
        let t = fp.gc_clock(&k);
        assert!(t.as_nanos() > 0, "initialized to build time");
        // Advance and run GC.
        let mut fp = fp;
        k.charge(Nanos::from_secs(5));
        let pause = fp.maybe_gc(&mut k);
        assert!(pause.is_some(), "period elapsed → GC runs");
        let t2 = fp.gc_clock(&k);
        assert!(t2 > t);
        // Immediately after, no GC.
        assert!(fp.maybe_gc(&mut k).is_none());
    }

    #[test]
    fn gc_never_runs_for_c() {
        let (mut k, mut fp) = build(RuntimeKind::NativeC, 1_000);
        k.charge(Nanos::from_secs(100));
        assert!(fp.maybe_gc(&mut k).is_none());
    }

    #[test]
    fn churn_changes_layout() {
        let (mut k, mut fp) = build(RuntimeKind::NodeJs, 8_000);
        let vmas_before = k.process(fp.pid).unwrap().mem.vma_count();
        let ops = fp.churn_layout(&mut k);
        assert!(ops > 0);
        let vmas_after = k.process(fp.pid).unwrap().mem.vma_count();
        assert_ne!(
            vmas_before, vmas_after,
            "net mmaps > munmaps changes the map"
        );
        k.process(fp.pid).unwrap().mem.check_invariants().unwrap();
    }

    #[test]
    fn churn_is_noop_for_c() {
        let (mut k, mut fp) = build(RuntimeKind::NativeC, 1_000);
        assert_eq!(fp.churn_layout(&mut k), 0);
    }
}
