//! Physical frames: compact page contents with reference counting.
//!
//! A [`FrameTable`] owns all frames of the simulated machine; address
//! spaces reference frames by [`FrameId`]. Reference counts implement
//! genuine copy-on-write sharing across `fork` and snapshots: a snapshot
//! holds cloned [`FrameData`], so restores are bit-exact by construction
//! and the tests verify it by logical content comparison.
//!
//! Contents are stored compactly so processes mapping hundreds of
//! thousands of pages stay cheap: most pages are [`FrameData::Zero`] or a
//! deterministic [`FrameData::Pattern`]; a page that received a few word
//! writes is [`FrameData::Patched`]; only pages written with bulk data
//! materialize a full 4 KiB [`FrameData::Literal`].

use crate::addr::{PageRange, Vpn, PAGE_SIZE};
use crate::taint::Taint;

/// Maximum number of word patches before a page is materialized.
const MAX_PATCHES: usize = 16;

/// Identifier of a frame in a [`FrameTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FrameId(pub u64);

/// Logical contents of one 4 KiB page, stored compactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameData {
    /// All zeroes.
    Zero,
    /// A page filled with a deterministic pattern derived from `seed`
    /// (used for runtime/library images).
    Pattern(u64),
    /// A base page plus up to 16 sparse 8-byte aligned word patches,
    /// kept sorted by offset.
    Patched {
        /// Seed of the underlying pattern; `None` means a zero base.
        base: Option<u64>,
        /// Sorted `(byte_offset, value)` pairs; offsets are 8-byte aligned.
        patches: Vec<(u16, u64)>,
    },
    /// Fully materialized page bytes.
    Literal(Box<[u8; PAGE_SIZE as usize]>),
}

/// Deterministic pattern word for page `seed` at word index `i`.
#[inline]
fn pattern_word(seed: u64, i: usize) -> u64 {
    // SplitMix-style mix; cheap and well distributed.
    let mut z = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const WORDS_PER_PAGE: usize = (PAGE_SIZE as usize) / 8;

impl FrameData {
    /// Reads the aligned 8-byte word at `word_index`.
    ///
    /// # Panics
    ///
    /// Panics if `word_index >= 512`.
    pub fn read_word(&self, word_index: usize) -> u64 {
        assert!(word_index < WORDS_PER_PAGE, "word index out of page");
        match self {
            FrameData::Zero => 0,
            FrameData::Pattern(seed) => pattern_word(*seed, word_index),
            FrameData::Patched { base, patches } => {
                let off = (word_index * 8) as u16;
                match patches.binary_search_by_key(&off, |&(o, _)| o) {
                    Ok(i) => patches[i].1,
                    Err(_) => base.map_or(0, |s| pattern_word(s, word_index)),
                }
            }
            FrameData::Literal(bytes) => {
                let off = word_index * 8;
                u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte slice"))
            }
        }
    }

    /// Writes the aligned 8-byte word at `word_index`, promoting the
    /// representation as needed.
    ///
    /// # Panics
    ///
    /// Panics if `word_index >= 512`.
    pub fn write_word(&mut self, word_index: usize, value: u64) {
        assert!(word_index < WORDS_PER_PAGE, "word index out of page");
        let off = (word_index * 8) as u16;
        match self {
            FrameData::Zero => {
                if value != 0 {
                    *self = FrameData::Patched {
                        base: None,
                        patches: vec![(off, value)],
                    };
                }
            }
            FrameData::Pattern(seed) => {
                let seed = *seed;
                if pattern_word(seed, word_index) != value {
                    *self = FrameData::Patched {
                        base: Some(seed),
                        patches: vec![(off, value)],
                    };
                }
            }
            FrameData::Patched { patches, .. } => {
                match patches.binary_search_by_key(&off, |&(o, _)| o) {
                    Ok(i) => patches[i].1 = value,
                    Err(i) => {
                        patches.insert(i, (off, value));
                        if patches.len() > MAX_PATCHES {
                            *self = FrameData::Literal(self.materialize());
                        }
                    }
                }
            }
            FrameData::Literal(bytes) => {
                let off = word_index * 8;
                bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
            }
        }
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the read crosses the page end.
    pub fn read_bytes(&self, offset: usize, buf: &mut [u8]) {
        assert!(
            offset + buf.len() <= PAGE_SIZE as usize,
            "read crosses page end"
        );
        match self {
            FrameData::Literal(bytes) => {
                buf.copy_from_slice(&bytes[offset..offset + buf.len()]);
            }
            _ => {
                for (i, b) in buf.iter_mut().enumerate() {
                    let pos = offset + i;
                    let w = self.read_word(pos / 8);
                    *b = w.to_le_bytes()[pos % 8];
                }
            }
        }
    }

    /// Writes `data` starting at `offset`, materializing the page unless
    /// the write is a single aligned word.
    ///
    /// # Panics
    ///
    /// Panics if the write crosses the page end.
    pub fn write_bytes(&mut self, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= PAGE_SIZE as usize,
            "write crosses page end"
        );
        if data.len() == 8 && offset.is_multiple_of(8) {
            let v = u64::from_le_bytes(data.try_into().expect("8 bytes"));
            self.write_word(offset / 8, v);
            return;
        }
        let mut bytes = self.materialize();
        bytes[offset..offset + data.len()].copy_from_slice(data);
        *self = FrameData::Literal(bytes);
    }

    /// Produces the full 4 KiB byte image of the page.
    pub fn materialize(&self) -> Box<[u8; PAGE_SIZE as usize]> {
        let mut bytes = Box::new([0u8; PAGE_SIZE as usize]);
        match self {
            FrameData::Zero => {}
            FrameData::Pattern(seed) => {
                for w in 0..WORDS_PER_PAGE {
                    bytes[w * 8..w * 8 + 8].copy_from_slice(&pattern_word(*seed, w).to_le_bytes());
                }
            }
            FrameData::Patched { base, patches } => {
                if let Some(seed) = base {
                    for w in 0..WORDS_PER_PAGE {
                        bytes[w * 8..w * 8 + 8]
                            .copy_from_slice(&pattern_word(*seed, w).to_le_bytes());
                    }
                }
                for &(off, val) in patches {
                    let off = off as usize;
                    bytes[off..off + 8].copy_from_slice(&val.to_le_bytes());
                }
            }
            FrameData::Literal(b) => bytes.copy_from_slice(&b[..]),
        }
        bytes
    }

    /// Compares logical contents (independent of representation).
    pub fn logical_eq(&self, other: &FrameData) -> bool {
        // Fast path: identical representations.
        if self == other {
            return true;
        }
        (0..WORDS_PER_PAGE).all(|w| self.read_word(w) == other.read_word(w))
    }

    /// FNV-1a hash of the page's logical bytes (the 512 words
    /// [`FrameData::read_word`] exposes). Representation-independent:
    /// a `Patched` page whose patches restore the base hashes equal to
    /// the base — the property the
    /// [`SnapshotStore`](crate::store::SnapshotStore) content index
    /// relies on.
    pub fn logical_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        match self {
            // The constant representations hash without expansion.
            FrameData::Literal(bytes) => {
                for chunk in bytes.chunks_exact(8) {
                    let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                    h = (h ^ w).wrapping_mul(0x100_0000_01b3);
                }
            }
            _ => {
                for w in 0..WORDS_PER_PAGE {
                    h = (h ^ self.read_word(w)).wrapping_mul(0x100_0000_01b3);
                }
            }
        }
        h
    }
}

/// Refcounted snapshot page capture: contiguous runs of `(start vpn,
/// frames)`, sorted by start. This is what the run-based capture path
/// produces — `O(runs)` metadata plus one `FrameId` per page, no content
/// copies — and what the restore planner consumes directly.
#[derive(Clone, Debug, Default)]
pub struct FrameRuns {
    /// `(run start, per-page frames)`, sorted, disjoint, non-adjacent.
    runs: Vec<(Vpn, Vec<FrameId>)>,
    total: u64,
}

impl FrameRuns {
    /// Wraps capture output (must be sorted and disjoint).
    pub fn new(runs: Vec<(Vpn, Vec<FrameId>)>) -> FrameRuns {
        let total = runs.iter().map(|(_, f)| f.len() as u64).sum();
        debug_assert!(runs
            .windows(2)
            .all(|w| w[0].0 .0 + w[0].1.len() as u64 <= w[1].0 .0));
        FrameRuns { runs, total }
    }

    /// Total pages captured.
    pub fn total_pages(&self) -> u64 {
        self.total
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The covered ranges, sorted (`O(runs)` to materialize).
    pub fn ranges(&self) -> Vec<PageRange> {
        self.runs
            .iter()
            .map(|(s, f)| PageRange::at(*s, f.len() as u64))
            .collect()
    }

    /// The frame of `vpn`, if captured (`O(log runs)`).
    pub fn get(&self, vpn: Vpn) -> Option<FrameId> {
        let i = self.runs.partition_point(|(s, _)| s.0 <= vpn.0);
        let (start, frames) = self.runs.get(i.checked_sub(1)?)?;
        frames.get((vpn.0 - start.0) as usize).copied()
    }

    /// True when `vpn` was captured.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.get(vpn).is_some()
    }

    /// Iterates `(vpn, frame)` pairs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, FrameId)> + '_ {
        self.runs.iter().flat_map(|(start, frames)| {
            frames
                .iter()
                .enumerate()
                .map(move |(i, &f)| (Vpn(start.0 + i as u64), f))
        })
    }

    /// Releases every captured reference into `frames` (the inverse of a
    /// refcounted capture).
    pub fn release(&mut self, frames: &mut FrameTable) {
        for (_, run) in std::mem::take(&mut self.runs) {
            for id in run {
                frames.decref(id);
            }
        }
        self.total = 0;
    }
}

/// One frame: page contents plus taint plus a reference count.
#[derive(Clone, Debug)]
struct Frame {
    data: FrameData,
    taint: Taint,
    refs: u32,
}

/// The machine-wide frame store.
///
/// Frames are allocated by address spaces; `fork` and snapshotting take
/// additional references. A frame with `refs > 1` must be copied before
/// mutation (enforced by [`AddressSpace`](crate::space::AddressSpace)'s CoW
/// fault path).
#[derive(Default, Debug)]
pub struct FrameTable {
    frames: Vec<Option<Frame>>,
    free: Vec<u64>,
    allocated: u64,
}

impl FrameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a frame with the given contents and taint.
    pub fn alloc(&mut self, data: FrameData, taint: Taint) -> FrameId {
        self.allocated += 1;
        let frame = Frame {
            data,
            taint,
            refs: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.frames[idx as usize] = Some(frame);
            FrameId(idx)
        } else {
            self.frames.push(Some(frame));
            FrameId(self.frames.len() as u64 - 1)
        }
    }

    fn get(&self, id: FrameId) -> &Frame {
        self.frames
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("dangling frame id {id:?}"))
    }

    fn get_mut(&mut self, id: FrameId) -> &mut Frame {
        self.frames
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("dangling frame id {id:?}"))
    }

    /// Increments the reference count (fork / snapshot sharing).
    pub fn incref(&mut self, id: FrameId) {
        self.get_mut(id).refs += 1;
    }

    /// Decrements the reference count, freeing the frame at zero.
    pub fn decref(&mut self, id: FrameId) {
        let frame = self.get_mut(id);
        frame.refs -= 1;
        if frame.refs == 0 {
            self.frames[id.0 as usize] = None;
            self.free.push(id.0);
        }
    }

    /// Current reference count.
    pub fn refcount(&self, id: FrameId) -> u32 {
        self.get(id).refs
    }

    /// True if the frame is shared (CoW must copy before writing).
    pub fn is_shared(&self, id: FrameId) -> bool {
        self.get(id).refs > 1
    }

    /// Clones a shared frame into a private copy (the CoW copy), returning
    /// the new frame. The old frame's refcount is decremented.
    pub fn cow_copy(&mut self, id: FrameId) -> FrameId {
        let (data, taint) = {
            let f = self.get(id);
            (f.data.clone(), f.taint)
        };
        self.decref(id);
        self.alloc(data, taint)
    }

    /// Immutable view of a frame's contents.
    pub fn data(&self, id: FrameId) -> &FrameData {
        &self.get(id).data
    }

    /// Taint of a frame.
    pub fn taint(&self, id: FrameId) -> Taint {
        self.get(id).taint
    }

    /// Mutable access to contents + taint.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frame is shared: callers must run the
    /// CoW fault path first.
    pub fn data_mut(&mut self, id: FrameId) -> (&mut FrameData, &mut Taint) {
        let f = self.get_mut(id);
        debug_assert_eq!(f.refs, 1, "mutating a shared frame without CoW copy");
        (&mut f.data, &mut f.taint)
    }

    /// Overwrites contents + taint wholesale (used by the restorer, which
    /// writes via ptrace and therefore bypasses the fault path).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frame is shared.
    pub fn overwrite(&mut self, id: FrameId, data: FrameData, taint: Taint) {
        let f = self.get_mut(id);
        debug_assert_eq!(f.refs, 1, "overwriting a shared frame");
        f.data = data;
        f.taint = taint;
    }

    /// True when `id` denotes a live (allocated, unreleased) frame.
    pub fn is_live(&self, id: FrameId) -> bool {
        self.frames.get(id.0 as usize).is_some_and(|f| f.is_some())
    }

    /// Number of live frames.
    pub fn live(&self) -> usize {
        self.frames.iter().filter(|f| f.is_some()).count()
    }

    /// Bytes of memory the live frames logically occupy (one full page
    /// each, regardless of the compact in-simulator representation).
    pub fn resident_bytes(&self) -> u64 {
        self.live() as u64 * PAGE_SIZE
    }

    /// Total allocations performed (monotonic).
    pub fn total_allocated(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::RequestId;

    #[test]
    fn zero_page_reads_zero() {
        let f = FrameData::Zero;
        assert_eq!(f.read_word(0), 0);
        assert_eq!(f.read_word(511), 0);
        let mut buf = [1u8; 16];
        f.read_bytes(100, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn pattern_deterministic_and_nonzero() {
        let a = FrameData::Pattern(42);
        let b = FrameData::Pattern(42);
        let c = FrameData::Pattern(43);
        assert_eq!(a.read_word(7), b.read_word(7));
        assert_ne!(a.read_word(7), c.read_word(7));
        assert!(a.logical_eq(&b));
        assert!(!a.logical_eq(&c));
    }

    #[test]
    fn word_write_promotes_to_patched() {
        let mut f = FrameData::Zero;
        f.write_word(3, 0xDEAD);
        assert!(matches!(f, FrameData::Patched { .. }));
        assert_eq!(f.read_word(3), 0xDEAD);
        assert_eq!(f.read_word(4), 0);
        // Overwrite the same word in place.
        f.write_word(3, 0xBEEF);
        assert_eq!(f.read_word(3), 0xBEEF);
    }

    #[test]
    fn writing_zero_to_zero_page_stays_zero() {
        let mut f = FrameData::Zero;
        f.write_word(0, 0);
        assert_eq!(f, FrameData::Zero);
    }

    #[test]
    fn writing_pattern_value_to_pattern_page_is_noop() {
        let mut f = FrameData::Pattern(9);
        let v = f.read_word(5);
        f.write_word(5, v);
        assert_eq!(f, FrameData::Pattern(9));
    }

    #[test]
    fn too_many_patches_materializes() {
        let mut f = FrameData::Zero;
        for i in 0..=MAX_PATCHES {
            f.write_word(i, i as u64 + 1);
        }
        assert!(matches!(f, FrameData::Literal(_)));
        for i in 0..=MAX_PATCHES {
            assert_eq!(f.read_word(i), i as u64 + 1);
        }
    }

    #[test]
    fn patched_pattern_roundtrip() {
        let mut f = FrameData::Pattern(7);
        f.write_word(100, 0x1234);
        assert_eq!(f.read_word(100), 0x1234);
        assert_eq!(f.read_word(99), FrameData::Pattern(7).read_word(99));
        let lit = FrameData::Literal(f.materialize());
        assert!(f.logical_eq(&lit));
    }

    #[test]
    fn unaligned_byte_write_materializes() {
        let mut f = FrameData::Pattern(3);
        f.write_bytes(13, b"hello");
        assert!(matches!(f, FrameData::Literal(_)));
        let mut buf = [0u8; 5];
        f.read_bytes(13, &mut buf);
        assert_eq!(&buf, b"hello");
        // Neighbouring pattern bytes preserved.
        assert_eq!(f.read_word(0), FrameData::Pattern(3).read_word(0));
    }

    #[test]
    fn aligned_word_byte_write_stays_compact() {
        let mut f = FrameData::Zero;
        f.write_bytes(16, &0xABu64.to_le_bytes());
        assert!(matches!(f, FrameData::Patched { .. }));
        assert_eq!(f.read_word(2), 0xAB);
    }

    #[test]
    #[should_panic(expected = "word index out of page")]
    fn out_of_page_word_panics() {
        FrameData::Zero.read_word(512);
    }

    #[test]
    fn logical_eq_across_representations() {
        let lit = FrameData::Literal(FrameData::Zero.materialize());
        assert!(lit.logical_eq(&FrameData::Zero));
        let mut patched = FrameData::Zero;
        patched.write_word(0, 5);
        patched.write_word(0, 0); // back to zero... but stored as patch
        assert!(patched.logical_eq(&FrameData::Zero));
    }

    #[test]
    fn frame_table_refcounting() {
        let mut t = FrameTable::new();
        let id = t.alloc(FrameData::Zero, Taint::Clean);
        assert_eq!(t.refcount(id), 1);
        assert!(!t.is_shared(id));
        t.incref(id);
        assert!(t.is_shared(id));
        t.decref(id);
        assert_eq!(t.refcount(id), 1);
        t.decref(id);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn frame_slot_reuse() {
        let mut t = FrameTable::new();
        let a = t.alloc(FrameData::Zero, Taint::Clean);
        t.decref(a);
        let b = t.alloc(FrameData::Pattern(1), Taint::Clean);
        assert_eq!(a, b, "slot should be recycled");
        assert_eq!(t.live(), 1);
        assert_eq!(t.total_allocated(), 2);
    }

    #[test]
    fn cow_copy_preserves_contents_and_taint() {
        let mut t = FrameTable::new();
        let taint = Taint::One(RequestId(5));
        let a = t.alloc(FrameData::Pattern(11), taint);
        t.incref(a); // shared between two page tables
        let b = t.cow_copy(a);
        assert_ne!(a, b);
        assert_eq!(t.refcount(a), 1);
        assert_eq!(t.refcount(b), 1);
        assert!(t.data(a).logical_eq(t.data(b)));
        assert_eq!(t.taint(b), taint);
    }

    #[test]
    #[should_panic(expected = "dangling frame id")]
    fn dangling_frame_panics() {
        let mut t = FrameTable::new();
        let id = t.alloc(FrameData::Zero, Taint::Clean);
        t.decref(id);
        let _ = t.data(id);
    }
}
