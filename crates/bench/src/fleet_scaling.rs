//! Host-side scaling of parallel fleet execution (`Fleet::run_with`
//! sharded across worker threads) vs the serial reference.
//!
//! The rig drives the same 16-container, 10⁵-request round-robin run
//! twice — [`ExecMode::Serial`] and [`ExecMode::Parallel`] at
//! [`THREADS`] workers — over identically-seeded pools, timing only the
//! run (pool construction is paid outside the clock on both sides).
//! Result equality is asserted after the measurement through the
//! `{:?}` fingerprint (shortest-round-trip floats, so any differing bit
//! pattern shows), making the rig double as a release-mode oracle on
//! top of `gh-faas`'s differential tests.
//!
//! Gate design matches `scaling.rs`: the **speedup ratio** is a
//! same-machine quotient (machine-independent, gated, capped at 8 so
//! the 10% gate tracks the ≥2x acceptance floor rather than jitter in
//! the typical ratio); raw ns per run is machine-dependent and
//! published as gate-exempt `info_` metrics plus
//! `results/scaling_fleet.csv`.

use std::time::Instant;

use gh_faas::fleet::{ExecMode, Fleet, FleetConfig, Pool, RoutePolicy};
use gh_functions::catalog::by_name;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

/// Containers in the measured pool.
pub const POOL: usize = 16;
/// Requests per measured run.
pub const REQUESTS: usize = 100_000;
/// Worker threads on the parallel side.
pub const THREADS: usize = 8;
/// Arrival process seed.
const SEED: u64 = 42;
/// Offered load, requests/second — high enough to keep all containers
/// busy without unbounded queueing.
const OFFERED_RPS: f64 = 4000.0;

/// Wall-clock of the two execution modes over the same run.
pub struct FleetScalingReport {
    /// Requests per measured run.
    pub requests: usize,
    /// Containers in the pool.
    pub pool: usize,
    /// Worker threads on the parallel side.
    pub threads: usize,
    /// ns for the serial run.
    pub serial_ns: f64,
    /// ns for the parallel run.
    pub par_ns: f64,
}

impl FleetScalingReport {
    /// Serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ns / self.par_ns.max(1.0)
    }
}

fn timed_run(mode: ExecMode) -> (f64, String) {
    let spec = by_name("fannkuch (p)").expect("catalog");
    let cfg = FleetConfig::fixed(RoutePolicy::RoundRobin, OFFERED_RPS, SEED);
    let mut pool =
        Pool::build(&spec, StrategyKind::Gh, GroundhogConfig::gh(), POOL, SEED).expect("pool");
    let mut fleet = Fleet::new(cfg);
    let t0 = Instant::now();
    let result = fleet.run_with(&mut pool, REQUESTS, mode).expect("run");
    let ns = t0.elapsed().as_nanos() as f64;
    (ns, format!("{result:?}"))
}

/// Measures both modes and asserts result equality.
pub fn run() -> FleetScalingReport {
    let (serial_ns, serial_fp) = timed_run(ExecMode::Serial);
    let (par_ns, par_fp) = timed_run(ExecMode::Parallel { threads: THREADS });
    assert_eq!(
        serial_fp, par_fp,
        "parallel fleet run diverged from the serial reference"
    );
    FleetScalingReport {
        requests: REQUESTS,
        pool: POOL,
        threads: THREADS,
        serial_ns,
        par_ns,
    }
}

/// Renders the report for the console and `results/scaling_fleet.csv`.
pub fn render(r: &FleetScalingReport) -> TextTable {
    let mut t = TextTable::new(&[
        "pool",
        "requests",
        "threads",
        "serial ms",
        "parallel ms",
        "speedup",
    ]);
    t.row_owned(vec![
        r.pool.to_string(),
        r.requests.to_string(),
        r.threads.to_string(),
        format!("{:.1}", r.serial_ns / 1e6),
        format!("{:.1}", r.par_ns / 1e6),
        format!("{:.2}x", r.speedup()),
    ]);
    t
}
