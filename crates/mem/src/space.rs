//! The per-process address space: VMAs, page table, fault paths.
//!
//! [`AddressSpace`] implements the kernel-side semantics Groundhog's
//! manager drives from user space:
//!
//! - `mmap` / `munmap` / `mprotect` / `brk` / `madvise(DONTNEED)` with VMA
//!   splitting and merging;
//! - demand paging with a shared zero frame, copy-on-write after `fork`,
//!   soft-dirty tracking with write-protect arming (`clear_refs`), and an
//!   optional userfaultfd write-protect mode;
//! - fault accounting for the cost model ([`FaultCounters`]);
//! - `/proc`-style introspection: `maps()` and `pagemap()` iteration.
//!
//! The address space does not own frames; all frame operations go through
//! the machine-wide [`FrameTable`], so `fork` children and snapshots share
//! frames exactly as processes share physical memory.
//!
//! # Extent-based bookkeeping
//!
//! The page table is **extent-based** (`crate::extent`): maximal runs
//! of contiguous present pages sharing one flag value, with per-page
//! frames in flat chunks. On top of it sit three [`VpnIndex`] bitmaps —
//! soft-dirty pages, userfaultfd-logged pages, and taint-carrying pages —
//! so the manager-facing queries scale with the *interesting* pages, not
//! the mapped address space:
//!
//! - [`AddressSpace::soft_dirty_pages`] / `soft_dirty_runs` are
//!   `O(dirty)` index scans (no pagemap walk);
//! - [`AddressSpace::clear_soft_dirty`], `arm_uffd_wp`, `disarm_uffd`
//!   and `mark_all_cow` are `O(extents)` flag transforms (the armed
//!   steady state is a handful of extents, so re-arming after a request
//!   that dirtied D pages costs `O(extents + D)`, not `O(present)`);
//! - [`AddressSpace::tainted_pages`] scans only pages whose frames carry
//!   request data;
//! - [`AddressSpace::capture_frame_runs`] hands the snapshotter
//!   refcounted frame runs in `O(extents)` run metadata plus one incref
//!   per page — no per-page map construction, no content copies;
//! - [`AddressSpace::touch_batch`] resolves a pre-sorted
//!   [`TouchBatch`] of page touches in one ordered cursor walk —
//!   `O(batch + touched extents/chunks)` where a `touch` loop pays a
//!   `BTreeMap` probe and a per-page `set_flags` split per item —
//!   with bit-identical counters, dirty/taint state and contents
//!   (the request-execution hot path of `gh_functions::Executor`).

use std::collections::BTreeMap;

use crate::addr::{PageRange, VirtAddr, Vpn, PAGE_SIZE};
use crate::batch::{BatchOutcome, TouchBatch};
use crate::extent::{BatchDecision, PageTable};
use crate::frame::{FrameData, FrameId, FrameTable};
use crate::index::VpnIndex;
use crate::pte::{Pte, PteFlags};
use crate::store::StoreHandle;
use crate::taint::Taint;
use crate::vma::{Perms, Vma, VmaKind};

/// Address space geometry.
#[derive(Clone, Copy, Debug)]
pub struct SpaceConfig {
    /// First page of the `brk` heap.
    pub heap_base: Vpn,
    /// Pages are allocated top-down for `mmap` starting below this page.
    pub mmap_top: Vpn,
    /// Highest stack page + 1 (stack grows down from here).
    pub stack_top: Vpn,
    /// Initial stack size in pages.
    pub stack_pages: u64,
}

impl Default for SpaceConfig {
    fn default() -> Self {
        // A 47-bit-ish layout, page numbers (not bytes).
        Self {
            heap_base: Vpn(0x0010_0000),
            mmap_top: Vpn(0x7000_0000),
            stack_top: Vpn(0x7fff_f000),
            // The stack VMA starts small and grows on demand; Linux maps
            // ~132 KiB up front. Table 3's C benchmarks map <1K pages in
            // total, so the initial stack must not dominate.
            stack_pages: 34,
        }
    }
}

/// Counts of fault events taken since the last [`FaultCounters::take`].
///
/// These are the quantities the cost model converts into in-function
/// latency: each counter maps 1:1 to a `CostModel` constant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// First-touch minor faults (zero page / file page-in).
    pub minor: u64,
    /// Soft-dirty write-protect faults (tracking overhead, §5.2.1).
    pub sd_wp: u64,
    /// Copy-on-write faults (fork-based isolation, §5.2.3).
    pub cow: u64,
    /// Userfaultfd write-protect notifications (§4.3).
    pub uffd_wp: u64,
    /// First post-fork accesses (dTLB miss + lazy PTE, §5.2.3).
    pub tlb_cold: u64,
    /// First touches of pages whose restore was deferred: the page is
    /// faulted in from the snapshot image on demand (lazy restore mode).
    pub lazy: u64,
    /// Warm page touches (no fault; baseline work).
    pub warm: u64,
}

impl FaultCounters {
    /// Total faults excluding warm touches.
    pub fn total_faults(&self) -> u64 {
        self.minor + self.sd_wp + self.cow + self.uffd_wp + self.tlb_cold + self.lazy
    }

    /// Adds `other` into `self`.
    pub fn absorb(&mut self, other: FaultCounters) {
        self.minor += other.minor;
        self.sd_wp += other.sd_wp;
        self.cow += other.cow;
        self.uffd_wp += other.uffd_wp;
        self.tlb_cold += other.tlb_cold;
        self.lazy += other.lazy;
        self.warm += other.warm;
    }

    /// Returns the current counts and resets them to zero.
    pub fn take(&mut self) -> FaultCounters {
        std::mem::take(self)
    }

    /// Counts accumulated since `earlier` (fieldwise difference; callers
    /// pass a snapshot taken from the same monotonically-growing
    /// accumulator).
    pub fn since(&self, earlier: FaultCounters) -> FaultCounters {
        FaultCounters {
            minor: self.minor - earlier.minor,
            sd_wp: self.sd_wp - earlier.sd_wp,
            cow: self.cow - earlier.cow,
            uffd_wp: self.uffd_wp - earlier.uffd_wp,
            tlb_cold: self.tlb_cold - earlier.tlb_cold,
            lazy: self.lazy - earlier.lazy,
            warm: self.warm - earlier.warm,
        }
    }
}

/// Errors from memory accesses and mapping syscalls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessError {
    /// No VMA covers the page.
    Unmapped(Vpn),
    /// The VMA's permissions forbid the access.
    PermissionDenied(Vpn),
    /// A mapping call was given an invalid or conflicting range.
    BadRange,
}

impl core::fmt::Display for AccessError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AccessError::Unmapped(v) => write!(f, "segfault: unmapped page {v:?}"),
            AccessError::PermissionDenied(v) => {
                write!(f, "segfault: permission denied at {v:?}")
            }
            AccessError::BadRange => write!(f, "invalid range"),
        }
    }
}

impl std::error::Error for AccessError {}

/// Kind of page touch performed by function code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Touch {
    /// Read one word from the page.
    Read,
    /// Write the given word into the page (at word index 1).
    WriteWord(u64),
}

/// Where a lazily-restored page's clean contents come from when its
/// first-touch fault fires (lazy restore mode: the restorer registers
/// the deferred set instead of writing it back, and the fault handler
/// installs each page on demand from the snapshot image).
///
/// Sources are **non-owning**: `Frame` borrows the CoW snapshot's
/// reference into this machine's frame table and `Store` borrows the
/// shared snapshot's reference into the pool store. The manager keeps
/// its snapshot alive for as long as any arming is pending, so the
/// referenced frames cannot be freed underneath a pending entry.
#[derive(Clone, Debug)]
pub enum LazyPageSource {
    /// Snapshot contents held by value (eager/private snapshots).
    Data(FrameData),
    /// Reference into this machine's frame table (a CoW snapshot,
    /// §5.5). A read fault installs the frame *shared* (incref + CoW
    /// PTE) — genuine frame sharing between snapshot and process — and
    /// only a write pays for a private copy.
    Frame(FrameId),
    /// Reference into a pool-shared
    /// [`SnapshotStore`](crate::store::SnapshotStore). The store keeps
    /// the only resident copy until the fault fires; fault-in copies
    /// the page out of the store (store frames live in a separate
    /// table and cannot be PTE-mapped).
    Store {
        /// The pool's store.
        store: StoreHandle,
        /// The page's frame in the store's table.
        frame: FrameId,
    },
}

impl LazyPageSource {
    /// The page contents this source denotes.
    fn resolve(self, frames: &FrameTable) -> FrameData {
        match self {
            LazyPageSource::Data(d) => d,
            LazyPageSource::Frame(id) => frames.data(id).clone(),
            LazyPageSource::Store { store, frame } => {
                store.lock().expect("store poisoned").data(frame).clone()
            }
        }
    }
}

/// A process's virtual address space.
#[derive(Debug)]
pub struct AddressSpace {
    cfg: SpaceConfig,
    /// VMAs keyed by start vpn; invariant: non-overlapping, each non-empty.
    vmas: BTreeMap<u64, Vma>,
    /// Extent-based page table; invariant: every present page lies in a VMA.
    pt: PageTable,
    /// Soft-dirty index; invariant: bit set ⇔ present page with
    /// [`PteFlags::SOFT_DIRTY`].
    dirty: VpnIndex,
    /// Pages whose frame carries request taint; invariant: bit set ⇔
    /// present page whose frame's taint is not `Clean`.
    tainted: VpnIndex,
    /// Current program break (one past the last heap page).
    brk: Vpn,
    /// Fault accounting.
    counters: FaultCounters,
    /// Userfaultfd write-protect mode armed space-wide.
    uffd_armed: bool,
    /// Pages reported by userfaultfd since arming (ascending index; a
    /// page notifies at most once per arming, so no dedup is needed).
    uffd_log: VpnIndex,
    /// Pages armed for on-demand restoration (lazy restore mode), keyed
    /// by vpn. A touch of a pending page takes one lazy fault that
    /// installs the snapshot contents before the access proceeds; pages
    /// never touched stay pending (their stale frames are unobservable —
    /// every access is intercepted) until the next arming or a drain.
    lazy_pending: BTreeMap<u64, LazyPageSource>,
    /// Obligations discarded because their mapping was dropped
    /// (`munmap`/`madvise`/brk shrink) before they were touched —
    /// harvested by the manager so the page-work conservation law
    /// (`deferred = faulted + drained + dropped + pending`) stays exact
    /// under VMA churn.
    lazy_dropped: u64,
}

impl AddressSpace {
    /// Creates an address space with an empty heap and an initial stack.
    pub fn new(cfg: SpaceConfig, frames: &mut FrameTable) -> AddressSpace {
        let _ = frames; // reserved for future eager mappings
        let mut vmas = BTreeMap::new();
        let stack_range = PageRange::new(Vpn(cfg.stack_top.0 - cfg.stack_pages), cfg.stack_top);
        vmas.insert(
            stack_range.start.0,
            Vma::new(stack_range, Perms::RW, VmaKind::Stack),
        );
        AddressSpace {
            cfg,
            vmas,
            pt: PageTable::new(),
            dirty: VpnIndex::new(),
            tainted: VpnIndex::new(),
            brk: cfg.heap_base,
            counters: FaultCounters::default(),
            uffd_armed: false,
            uffd_log: VpnIndex::new(),
            lazy_pending: BTreeMap::new(),
            lazy_dropped: 0,
        }
    }

    /// The geometry this space was created with.
    pub fn config(&self) -> SpaceConfig {
        self.cfg
    }

    // ---------------------------------------------------------------
    // VMA queries
    // ---------------------------------------------------------------

    /// The VMA containing `vpn`, if any.
    pub fn vma_at(&self, vpn: Vpn) -> Option<&Vma> {
        self.vmas
            .range(..=vpn.0)
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.range.contains(vpn))
    }

    /// All VMAs in address order, borrowed (allocation-free `maps` view).
    pub fn vmas_iter(&self) -> impl Iterator<Item = &Vma> + '_ {
        self.vmas.values()
    }

    /// All VMAs in address order (a `/proc/pid/maps` read).
    pub fn maps(&self) -> Vec<Vma> {
        self.vmas.values().cloned().collect()
    }

    /// Renders `/proc/pid/maps`.
    pub fn render_maps(&self) -> String {
        let mut s = String::new();
        for v in self.vmas.values() {
            s.push_str(&v.render());
            s.push('\n');
        }
        s
    }

    /// Number of VMAs.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Total pages covered by VMAs.
    pub fn mapped_pages(&self) -> u64 {
        self.vmas.values().map(|v| v.range.len()).sum()
    }

    /// Pages with a present PTE (the RSS).
    pub fn present_pages(&self) -> u64 {
        self.pt.len()
    }

    /// Number of page-table extents (maximal equal-flag runs).
    pub fn extent_count(&self) -> usize {
        self.pt.extent_count()
    }

    /// Current program break page.
    pub fn brk(&self) -> Vpn {
        self.brk
    }

    /// Fault counters (mutable so callers can `take()` deltas).
    pub fn counters_mut(&mut self) -> &mut FaultCounters {
        &mut self.counters
    }

    /// Fault counters, read-only.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    // ---------------------------------------------------------------
    // Mapping syscalls
    // ---------------------------------------------------------------

    /// Finds a free region of `len` pages below `mmap_top`, top-down.
    fn find_free(&self, len: u64) -> Option<PageRange> {
        if len == 0 {
            return None;
        }
        let mut ceiling = self.cfg.mmap_top.0;
        // Walk VMAs downward from mmap_top.
        for (_, vma) in self.vmas.range(..self.cfg.mmap_top.0).rev() {
            let gap_start = vma.range.end.0;
            if gap_start < ceiling && ceiling - gap_start >= len {
                return Some(PageRange::new(Vpn(ceiling - len), Vpn(ceiling)));
            }
            ceiling = ceiling.min(vma.range.start.0);
        }
        if ceiling >= len {
            Some(PageRange::new(Vpn(ceiling - len), Vpn(ceiling)))
        } else {
            None
        }
    }

    /// `mmap(NULL, len, ...)`: maps `len` pages at a kernel-chosen address.
    pub fn mmap(
        &mut self,
        len: u64,
        perms: Perms,
        kind: VmaKind,
    ) -> Result<PageRange, AccessError> {
        let range = self.find_free(len).ok_or(AccessError::BadRange)?;
        self.insert_vma(Vma::new(range, perms, kind));
        Ok(range)
    }

    /// `mmap(addr, len, ..., MAP_FIXED)`: maps exactly `range`, failing on
    /// any overlap with an existing mapping.
    pub fn mmap_fixed(
        &mut self,
        range: PageRange,
        perms: Perms,
        kind: VmaKind,
    ) -> Result<(), AccessError> {
        if range.is_empty() {
            return Err(AccessError::BadRange);
        }
        if self.overlaps_any(range) {
            return Err(AccessError::BadRange);
        }
        self.insert_vma(Vma::new(range, perms, kind));
        Ok(())
    }

    fn overlaps_any(&self, range: PageRange) -> bool {
        self.vmas
            .range(..range.end.0)
            .next_back()
            .is_some_and(|(_, v)| v.range.overlaps(range))
            || self.vmas.range(range.start.0..range.end.0).next().is_some()
    }

    /// Inserts a VMA, merging with adjacent compatible anonymous VMAs.
    fn insert_vma(&mut self, mut vma: Vma) {
        // Merge with predecessor.
        if let Some((&start, prev)) = self.vmas.range(..vma.range.start.0).next_back() {
            if prev.range.end == vma.range.start && prev.can_merge_with(&vma) {
                vma.range.start = prev.range.start;
                self.vmas.remove(&start);
            }
        }
        // Merge with successor.
        if let Some((&start, next)) = self.vmas.range(vma.range.end.0..).next() {
            if next.range.start == vma.range.end && vma.can_merge_with(next) {
                vma.range.end = next.range.end;
                self.vmas.remove(&start);
            }
        }
        self.vmas.insert(vma.range.start.0, vma);
    }

    /// `munmap(range)`: removes all mappings in `range`, splitting VMAs
    /// that straddle the boundary and releasing frames of present pages.
    pub fn munmap(&mut self, range: PageRange, frames: &mut FrameTable) -> Result<(), AccessError> {
        if range.is_empty() {
            return Err(AccessError::BadRange);
        }
        // Collect affected VMAs.
        let affected: Vec<u64> = self
            .vmas
            .range(..range.end.0)
            .filter(|(_, v)| v.range.overlaps(range))
            .map(|(&s, _)| s)
            .collect();
        for start in affected {
            let vma = self.vmas.remove(&start).expect("collected key");
            let cut = vma.range.intersect(range);
            // Left remainder.
            if vma.range.start.0 < cut.start.0 {
                let left = Vma::new(
                    PageRange::new(vma.range.start, cut.start),
                    vma.perms,
                    vma.kind.clone(),
                );
                self.vmas.insert(left.range.start.0, left);
            }
            // Right remainder.
            if cut.end.0 < vma.range.end.0 {
                let right = Vma::new(PageRange::new(cut.end, vma.range.end), vma.perms, vma.kind);
                self.vmas.insert(right.range.start.0, right);
            }
        }
        self.drop_pages_in(range, frames);
        Ok(())
    }

    /// `mprotect(range, perms)`: changes permissions, splitting VMAs.
    pub fn mprotect(&mut self, range: PageRange, perms: Perms) -> Result<(), AccessError> {
        if range.is_empty() {
            return Err(AccessError::BadRange);
        }
        // Every page of the range must be mapped (POSIX ENOMEM otherwise).
        let mut cursor = range.start;
        while cursor.0 < range.end.0 {
            let vma = self.vma_at(cursor).ok_or(AccessError::Unmapped(cursor))?;
            cursor = vma.range.end;
        }
        let affected: Vec<u64> = self
            .vmas
            .range(..range.end.0)
            .filter(|(_, v)| v.range.overlaps(range))
            .map(|(&s, _)| s)
            .collect();
        // Remove every affected VMA before inserting pieces: `insert_vma`
        // may merge a piece with an adjacent affected VMA, which would
        // invalidate keys still pending in the loop.
        let removed: Vec<Vma> = affected
            .iter()
            .map(|s| self.vmas.remove(s).expect("collected key"))
            .collect();
        for vma in removed {
            let cut = vma.range.intersect(range);
            if vma.range.start.0 < cut.start.0 {
                self.vmas.insert(
                    vma.range.start.0,
                    Vma::new(
                        PageRange::new(vma.range.start, cut.start),
                        vma.perms,
                        vma.kind.clone(),
                    ),
                );
            }
            self.insert_vma(Vma::new(cut, perms, vma.kind.clone()));
            if cut.end.0 < vma.range.end.0 {
                self.vmas.insert(
                    cut.end.0,
                    Vma::new(PageRange::new(cut.end, vma.range.end), vma.perms, vma.kind),
                );
            }
        }
        Ok(())
    }

    /// `brk(new_brk)`: grows or shrinks the heap. Returns the new break.
    pub fn set_brk(&mut self, new_brk: Vpn, frames: &mut FrameTable) -> Result<Vpn, AccessError> {
        if new_brk.0 < self.cfg.heap_base.0 {
            return Err(AccessError::BadRange);
        }
        let old = self.brk;
        if new_brk.0 > old.0 {
            // Grow: extend or create the heap VMA.
            let grow = PageRange::new(old, new_brk);
            if self.overlaps_any(grow) {
                return Err(AccessError::BadRange);
            }
            // Find existing heap VMA ending at `old`.
            let existing = self
                .vmas
                .iter()
                .find(|(_, v)| matches!(v.kind, VmaKind::Heap) && v.range.end == old)
                .map(|(&s, _)| s);
            if let Some(s) = existing {
                let mut v = self.vmas.remove(&s).expect("heap vma");
                v.range.end = new_brk;
                self.vmas.insert(v.range.start.0, v);
            } else {
                self.vmas
                    .insert(grow.start.0, Vma::new(grow, Perms::RW, VmaKind::Heap));
            }
        } else if new_brk.0 < old.0 {
            let shrink = PageRange::new(new_brk, old);
            // Heap VMA must cover the released range.
            let existing = self
                .vmas
                .iter()
                .find(|(_, v)| matches!(v.kind, VmaKind::Heap) && v.range.end == old)
                .map(|(&s, _)| s);
            let Some(s) = existing else {
                return Err(AccessError::BadRange);
            };
            let mut v = self.vmas.remove(&s).expect("heap vma");
            if new_brk.0 <= v.range.start.0 {
                // Whole heap VMA released.
            } else {
                v.range.end = new_brk;
                self.vmas.insert(v.range.start.0, v);
            }
            self.drop_pages_in(shrink, frames);
        }
        self.brk = new_brk;
        Ok(self.brk)
    }

    /// `madvise(range, MADV_DONTNEED)`: releases frames; contents are lost
    /// and the next touch takes a fresh minor fault.
    pub fn madvise_dontneed(
        &mut self,
        range: PageRange,
        frames: &mut FrameTable,
    ) -> Result<(), AccessError> {
        if range.is_empty() {
            return Err(AccessError::BadRange);
        }
        self.drop_pages_in(range, frames);
        Ok(())
    }

    fn drop_pages_in(&mut self, range: PageRange, frames: &mut FrameTable) {
        self.pt.remove_range(range, |_, frame| frames.decref(frame));
        self.dirty.clear_range(range);
        self.tainted.clear_range(range);
        // A dropped mapping takes its deferred-restore obligation with it
        // (matching eager semantics: post-restore madvise/munmap loses
        // the restored contents; the *next* restore re-arms the page via
        // its snapshot ∖ present term).
        if !self.lazy_pending.is_empty() {
            let doomed: Vec<u64> = self
                .lazy_pending
                .range(range.start.0..range.end.0)
                .map(|(&v, _)| v)
                .collect();
            for v in doomed {
                self.lazy_pending.remove(&v);
                self.lazy_dropped += 1;
            }
        }
    }

    // ---------------------------------------------------------------
    // Fault paths
    // ---------------------------------------------------------------

    /// Pattern seed of a VMA's fresh pages: `Some(base)` for file
    /// mappings (page `vpn` reads as `Pattern(base ^ vpn)`), `None` for
    /// zero-filled. The single source of fresh-content truth for both
    /// the per-page and batched fault paths.
    fn fresh_base(vma: &Vma) -> Option<u64> {
        match &vma.kind {
            VmaKind::File(name) => {
                // Deterministic per (file, page) pattern standing in for
                // file contents (FNV-1a over the name).
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                Some(h)
            }
            _ => None,
        }
    }

    /// Fresh contents of page `vpn` given a VMA's pattern base.
    fn fresh_from_base(base: Option<u64>, vpn: Vpn) -> FrameData {
        match base {
            Some(h) => FrameData::Pattern(h ^ vpn.0),
            None => FrameData::Zero,
        }
    }

    /// Initial contents of a fresh page in `vma`.
    fn fresh_data(vma: &Vma, vpn: Vpn) -> FrameData {
        Self::fresh_from_base(Self::fresh_base(vma), vpn)
    }

    /// Ensures `vpn` is present for a read; takes faults as needed.
    fn page_read_access(&mut self, vpn: Vpn, frames: &mut FrameTable) -> Result<(), AccessError> {
        let vma = self.vma_at(vpn).ok_or(AccessError::Unmapped(vpn))?;
        if !vma.perms.r {
            return Err(AccessError::PermissionDenied(vpn));
        }
        if self.lazy_pending.contains_key(&vpn.0) {
            // Deferred restoration: one fault installs the snapshot
            // contents and services the read.
            self.counters.lazy += 1;
            self.fault_in_lazy(vpn, false, frames);
            return Ok(());
        }
        let fresh = Self::fresh_data(vma, vpn);
        match self.pt.get(vpn) {
            None => {
                // Minor fault. Linux marks every newly installed PTE
                // soft-dirty (Documentation/admin-guide/mm/soft-dirty.rst:
                // "the kernel always marks new memory regions ... as soft
                // dirty") so that unmap/remap churn cannot hide changes —
                // Groundhog's restore correctness depends on this.
                self.counters.minor += 1;
                let frame = frames.alloc(fresh, Taint::Clean);
                self.pt
                    .insert(vpn, frame, PteFlags::PRESENT.with(PteFlags::SOFT_DIRTY));
                self.dirty.set(vpn);
            }
            Some(pte) => {
                if pte.flags.contains(PteFlags::TLB_COLD) {
                    self.counters.tlb_cold += 1;
                    self.pt
                        .set_flags(vpn, pte.flags.without(PteFlags::TLB_COLD));
                } else {
                    self.counters.warm += 1;
                }
            }
        }
        Ok(())
    }

    /// Ensures `vpn` is present and privately writable; takes faults as
    /// needed and maintains soft-dirty state.
    fn page_write_access(&mut self, vpn: Vpn, frames: &mut FrameTable) -> Result<(), AccessError> {
        let vma = self.vma_at(vpn).ok_or(AccessError::Unmapped(vpn))?;
        if !vma.perms.w {
            return Err(AccessError::PermissionDenied(vpn));
        }
        if self.lazy_pending.contains_key(&vpn.0) {
            // Deferred restoration: the same single #PF installs the
            // snapshot contents and resolves the tracking write-protect
            // (no separate SD/UFFD fault is charged).
            self.counters.lazy += 1;
            self.fault_in_lazy(vpn, true, frames);
            return Ok(());
        }
        let fresh = Self::fresh_data(vma, vpn);
        match self.pt.get(vpn) {
            None => {
                // Write minor fault: page born soft-dirty.
                self.counters.minor += 1;
                let frame = frames.alloc(fresh, Taint::Clean);
                self.pt
                    .insert(vpn, frame, PteFlags::PRESENT.with(PteFlags::SOFT_DIRTY));
                self.dirty.set(vpn);
            }
            Some(pte) => {
                let mut frame = pte.frame;
                let mut flags = pte.flags;
                let mut faulted = false;
                if flags.contains(PteFlags::TLB_COLD) {
                    self.counters.tlb_cold += 1;
                    flags = flags.without(PteFlags::TLB_COLD);
                    faulted = true;
                }
                if flags.contains(PteFlags::COW) {
                    self.counters.cow += 1;
                    if frames.is_shared(frame) {
                        frame = frames.cow_copy(frame);
                    }
                    flags = flags.without(PteFlags::COW);
                    faulted = true;
                }
                if flags.contains(PteFlags::UFFD_WP) {
                    self.counters.uffd_wp += 1;
                    self.uffd_log.set(vpn);
                    flags = flags.without(PteFlags::UFFD_WP).with(PteFlags::SOFT_DIRTY);
                    faulted = true;
                } else if flags.contains(PteFlags::SD_WP) {
                    // One hardware #PF resolves CoW and soft-dirty arming
                    // together: don't double-count when a CoW fault
                    // already fired for this write.
                    if !faulted {
                        self.counters.sd_wp += 1;
                    }
                    flags = flags.without(PteFlags::SD_WP).with(PteFlags::SOFT_DIRTY);
                    faulted = true;
                } else {
                    flags |= PteFlags::SOFT_DIRTY;
                }
                if !faulted {
                    self.counters.warm += 1;
                }
                // A frame shared *without* a CoW arming is structural
                // sharing only (an eager snapshot's run capture): the
                // write silently unshares it — real page-copy work on the
                // host, but no fault is charged, exactly like the eager
                // full-copy snapshot it stands in for.
                if frames.is_shared(frame) {
                    frame = frames.cow_copy(frame);
                }
                if frame != pte.frame {
                    self.pt.set_frame(vpn, frame);
                }
                if flags != pte.flags {
                    self.pt.set_flags(vpn, flags);
                }
                if flags.contains(PteFlags::SOFT_DIRTY) {
                    self.dirty.set(vpn);
                }
            }
        }
        Ok(())
    }

    /// Syncs the tainted-page index bit of `vpn` with its frame's taint.
    fn sync_taint_bit(&mut self, vpn: Vpn, taint: Taint) {
        if taint.is_tainted() {
            self.tainted.set(vpn);
        } else {
            self.tainted.clear(vpn);
        }
    }

    /// Performs a page-granular touch (the unit of work function
    /// behaviours are built from).
    pub fn touch(
        &mut self,
        vpn: Vpn,
        touch: Touch,
        taint: Taint,
        frames: &mut FrameTable,
    ) -> Result<(), AccessError> {
        match touch {
            Touch::Read => self.page_read_access(vpn, frames),
            Touch::WriteWord(val) => {
                self.page_write_access(vpn, frames)?;
                let pte = self.pt.get(vpn).expect("just faulted in");
                // The fault path guarantees a private frame for writes.
                let (data, t) = frames.data_mut(pte.frame);
                data.write_word(1, val);
                *t = t.merge(taint);
                let merged = *t;
                self.sync_taint_bit(vpn, merged);
                Ok(())
            }
        }
    }

    /// Applies a whole [`TouchBatch`] — bit-identical to calling
    /// [`AddressSpace::touch`] once per item in item order with per-item
    /// errors ignored, but resolved in **one ordered cursor walk** over
    /// the extent map and frame chunks: `O(batch + touched extents +
    /// touched chunks)` instead of `O(batch × log extents)`. Returns the
    /// batch's aggregate fault counters (also accumulated into
    /// [`AddressSpace::counters`] exactly like per-page touches) plus
    /// the number of items that errored (unmapped / permission-denied —
    /// the items a `let _ = touch(..)` loop would silently skip;
    /// callers that used to `expect` every touch assert `failed == 0`).
    ///
    /// Pages with a pending lazy-restore obligation take the single-page
    /// fault path (their install order relative to neighbouring touches
    /// is semantically significant), so lazy batches cost `O(fast items
    /// + lazy hits × log)` — identical counters either way.
    pub fn touch_batch(&mut self, batch: &TouchBatch, frames: &mut FrameTable) -> BatchOutcome {
        let before = self.counters;
        let items = batch.items();
        let mut failed = 0u64;
        if !batch.is_sorted() {
            // Correctness fallback: the definitionally-equivalent loop.
            for it in items {
                failed += self.touch(it.vpn, it.touch, it.taint, frames).is_err() as u64;
            }
            return BatchOutcome {
                faults: self.counters.since(before),
                failed,
            };
        }
        let mut i = 0;
        while i < items.len() {
            // Fast segment: items up to (excluding) the next page with a
            // pending lazy obligation.
            let seg_end = if self.lazy_pending.is_empty() {
                items.len()
            } else {
                let mut j = i;
                while j < items.len() && !self.lazy_pending.contains_key(&items[j].vpn.0) {
                    j += 1;
                }
                j
            };
            if seg_end > i {
                failed += self.touch_batch_fast(&items[i..seg_end], frames);
                i = seg_end;
            }
            if i < items.len() {
                // Lazy hit: the ordinary fault path installs the
                // snapshot contents and services the access.
                let it = &items[i];
                failed += self.touch(it.vpn, it.touch, it.taint, frames).is_err() as u64;
                i += 1;
            }
        }
        BatchOutcome {
            faults: self.counters.since(before),
            failed,
        }
    }

    /// The cursor-walk core of [`AddressSpace::touch_batch`]: items are
    /// sorted and none has a pending lazy obligation. Returns the count
    /// of errored (skipped) items. Mirrors
    /// `page_read_access`/`page_write_access` decision-for-decision; the
    /// only intentional deltas are *redundant* index writes skipped when
    /// a bit provably already holds its value (`dirty.set` on an
    /// already-dirty page, taint-bit syncs that don't change the bit) —
    /// no-ops by the `check_invariants` index⇔flag agreement.
    fn touch_batch_fast(
        &mut self,
        items: &[crate::batch::TouchItem],
        frames: &mut FrameTable,
    ) -> u64 {
        let AddressSpace {
            vmas,
            pt,
            dirty,
            tainted,
            counters,
            uffd_log,
            ..
        } = self;
        // VMA cursor: (range, perms, fresh-pattern base) of the current
        // VMA — one map probe per distinct VMA touched. The base mirrors
        // `fresh_data`: `Some(h)` for file mappings, `None` for zero.
        let mut cur_vma: Option<(PageRange, Perms, Option<u64>)> = None;
        let mut failed = 0u64;
        pt.touch_walk(items, |it, cur| {
            use crate::extent::BatchDecision as D;
            let vpn = it.vpn;
            let (perms, fresh_base) = match cur_vma {
                Some((range, perms, base)) if range.contains(vpn) => (perms, base),
                _ => {
                    let Some(vma) = vmas
                        .range(..=vpn.0)
                        .next_back()
                        .map(|(_, v)| v)
                        .filter(|v| v.range.contains(vpn))
                    else {
                        failed += 1;
                        return D::Skip; // unmapped: `let _ = touch(..)`
                    };
                    let base = Self::fresh_base(vma);
                    cur_vma = Some((vma.range, vma.perms, base));
                    (vma.perms, base)
                }
            };
            let fresh = || Self::fresh_from_base(fresh_base, vpn);
            match it.touch {
                Touch::Read => {
                    if !perms.r {
                        failed += 1;
                        return D::Skip;
                    }
                    match cur {
                        None => {
                            // Minor fault: fresh PTE born soft-dirty.
                            counters.minor += 1;
                            let frame = frames.alloc(fresh(), Taint::Clean);
                            dirty.set(vpn);
                            D::Insert {
                                frame,
                                flags: PteFlags::PRESENT.with(PteFlags::SOFT_DIRTY),
                            }
                        }
                        Some((_, flags)) => {
                            if flags.contains(PteFlags::TLB_COLD) {
                                counters.tlb_cold += 1;
                                D::Update {
                                    frame: None,
                                    flags: flags.without(PteFlags::TLB_COLD),
                                }
                            } else {
                                counters.warm += 1;
                                D::Update { frame: None, flags }
                            }
                        }
                    }
                }
                Touch::WriteWord(val) => {
                    if !perms.w {
                        failed += 1;
                        return D::Skip;
                    }
                    match cur {
                        None => {
                            // Write minor fault, then the word write —
                            // the same alloc-then-patch sequence as the
                            // per-page path.
                            counters.minor += 1;
                            let frame = frames.alloc(fresh(), Taint::Clean);
                            let (data, t) = frames.data_mut(frame);
                            data.write_word(1, val);
                            *t = t.merge(it.taint);
                            if t.is_tainted() {
                                tainted.set(vpn);
                            }
                            dirty.set(vpn);
                            D::Insert {
                                frame,
                                flags: PteFlags::PRESENT.with(PteFlags::SOFT_DIRTY),
                            }
                        }
                        Some((old_frame, old_flags)) => {
                            let mut frame = old_frame;
                            let mut flags = old_flags;
                            let mut faulted = false;
                            if flags.contains(PteFlags::TLB_COLD) {
                                counters.tlb_cold += 1;
                                flags = flags.without(PteFlags::TLB_COLD);
                                faulted = true;
                            }
                            if flags.contains(PteFlags::COW) {
                                counters.cow += 1;
                                if frames.is_shared(frame) {
                                    frame = frames.cow_copy(frame);
                                }
                                flags = flags.without(PteFlags::COW);
                                faulted = true;
                            }
                            if flags.contains(PteFlags::UFFD_WP) {
                                counters.uffd_wp += 1;
                                uffd_log.set(vpn);
                                flags = flags.without(PteFlags::UFFD_WP).with(PteFlags::SOFT_DIRTY);
                                faulted = true;
                            } else if flags.contains(PteFlags::SD_WP) {
                                if !faulted {
                                    counters.sd_wp += 1;
                                }
                                flags = flags.without(PteFlags::SD_WP).with(PteFlags::SOFT_DIRTY);
                                faulted = true;
                            } else {
                                flags |= PteFlags::SOFT_DIRTY;
                            }
                            if !faulted {
                                counters.warm += 1;
                            }
                            // Structural sharing (eager snapshot run):
                            // silent unshare, no fault charged.
                            if frames.is_shared(frame) {
                                frame = frames.cow_copy(frame);
                            }
                            if flags.contains(PteFlags::SOFT_DIRTY)
                                && !old_flags.contains(PteFlags::SOFT_DIRTY)
                            {
                                dirty.set(vpn);
                            }
                            let (data, t) = frames.data_mut(frame);
                            data.write_word(1, val);
                            let was_tainted = t.is_tainted();
                            *t = t.merge(it.taint);
                            if t.is_tainted() != was_tainted {
                                if was_tainted {
                                    tainted.clear(vpn);
                                } else {
                                    tainted.set(vpn);
                                }
                            }
                            D::Update {
                                frame: (frame != old_frame).then_some(frame),
                                flags,
                            }
                        }
                    }
                }
            }
        });
        failed
    }

    /// Reads `buf.len()` bytes at `addr`, crossing pages as needed.
    pub fn read_bytes(
        &mut self,
        addr: VirtAddr,
        buf: &mut [u8],
        frames: &mut FrameTable,
    ) -> Result<(), AccessError> {
        let mut pos = 0usize;
        let mut cur = addr;
        while pos < buf.len() {
            let vpn = cur.vpn();
            self.page_read_access(vpn, frames)?;
            let off = cur.page_offset() as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
            let pte = self.pt.get(vpn).expect("present after access");
            frames
                .data(pte.frame)
                .read_bytes(off, &mut buf[pos..pos + n]);
            pos += n;
            cur = cur.add(n as u64);
        }
        Ok(())
    }

    /// Writes `data` at `addr` with taint, crossing pages as needed.
    pub fn write_bytes(
        &mut self,
        addr: VirtAddr,
        data: &[u8],
        taint: Taint,
        frames: &mut FrameTable,
    ) -> Result<(), AccessError> {
        let mut pos = 0usize;
        let mut cur = addr;
        while pos < data.len() {
            let vpn = cur.vpn();
            self.page_write_access(vpn, frames)?;
            let off = cur.page_offset() as usize;
            let n = ((PAGE_SIZE as usize) - off).min(data.len() - pos);
            let pte = self.pt.get(vpn).expect("present after access");
            let (fd, t) = frames.data_mut(pte.frame);
            fd.write_bytes(off, &data[pos..pos + n]);
            *t = t.merge(taint);
            let merged = *t;
            self.sync_taint_bit(vpn, merged);
            pos += n;
            cur = cur.add(n as u64);
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Lazy (on-demand) restoration
    // ---------------------------------------------------------------

    /// Arms pages for on-demand restoration: the restorer's `DeferArm`
    /// pass registers the restore set here instead of writing it back.
    /// Entries merge with any still-pending pages from earlier armings
    /// (a page that was never touched keeps its obligation; its source
    /// still denotes the same snapshot contents).
    pub fn arm_lazy(&mut self, pages: BTreeMap<u64, LazyPageSource>) {
        self.lazy_pending.extend(pages);
    }

    /// Number of pages still awaiting on-demand restoration.
    pub fn lazy_pending_len(&self) -> usize {
        self.lazy_pending.len()
    }

    /// Pages still awaiting on-demand restoration, ascending.
    pub fn lazy_pending_vpns(&self) -> Vec<Vpn> {
        self.lazy_pending.keys().map(|&v| Vpn(v)).collect()
    }

    /// Still-pending pages coalesced into maximal runs, ascending
    /// (`O(pending)`).
    pub fn lazy_pending_runs(&self) -> Vec<PageRange> {
        crate::runs::runs_from_sorted(self.lazy_pending.keys().copied())
    }

    /// Returns (and resets) the count of obligations discarded by
    /// mapping drops since the last harvest.
    pub fn take_lazy_dropped(&mut self) -> u64 {
        std::mem::take(&mut self.lazy_dropped)
    }

    /// The unharvested dropped-obligation count, non-destructively.
    pub fn lazy_dropped(&self) -> u64 {
        self.lazy_dropped
    }

    /// Services the fault of a pending page: installs the snapshot
    /// contents, leaving the page in exactly the state an eager restore
    /// plus tracker re-arm would have left it (clean + write-protect
    /// armed after a read; soft-dirty after a write — the single #PF
    /// resolves content install and tracking together).
    fn fault_in_lazy(&mut self, vpn: Vpn, for_write: bool, frames: &mut FrameTable) {
        let src = self.lazy_pending.remove(&vpn.0).expect("pending entry");
        let armed = if self.uffd_armed {
            PteFlags::UFFD_WP
        } else {
            PteFlags::SD_WP
        };
        // Read of a CoW-snapshot page: install the snapshot's own frame
        // shared (the §5.5 memory win carried into the fault path); a
        // later write takes the normal CoW copy.
        if let (false, LazyPageSource::Frame(id)) = (for_write, &src) {
            let id = *id;
            frames.incref(id);
            if let Some(old) = self.pt.remove(vpn) {
                frames.decref(old);
            }
            self.pt
                .insert(vpn, id, PteFlags::PRESENT.with(PteFlags::COW.with(armed)));
            self.dirty.clear(vpn);
            self.sync_taint_bit(vpn, frames.taint(id));
            return;
        }
        let data = src.resolve(frames);
        let flags = if for_write {
            if self.uffd_armed {
                self.uffd_log.set(vpn);
            }
            PteFlags::SOFT_DIRTY
        } else {
            armed
        };
        self.install_private(vpn, data, flags, frames);
    }

    /// Writes back up to `limit` pending pages in address order (the
    /// background-drain path: the manager copies pages back during idle
    /// time, so no fault is counted). Returns the number drained.
    pub fn drain_lazy(&mut self, limit: u64, frames: &mut FrameTable) -> u64 {
        let mut drained = 0u64;
        while drained < limit {
            let Some((&vpn, _)) = self.lazy_pending.iter().next() else {
                break;
            };
            let src = self.lazy_pending.remove(&vpn).expect("just observed");
            let data = src.resolve(frames);
            let armed = if self.uffd_armed {
                PteFlags::UFFD_WP
            } else {
                PteFlags::SD_WP
            };
            self.install_private(Vpn(vpn), data, armed, frames);
            drained += 1;
        }
        drained
    }

    /// Installs `data` at `vpn` in a private frame with exactly the
    /// given flags, clearing taint (both the fault-in and drain paths
    /// end here). The CoW-break/alloc mechanics are
    /// [`AddressSpace::restore_page`]'s — one installer for the eager
    /// and lazy restore paths.
    fn install_private(
        &mut self,
        vpn: Vpn,
        data: FrameData,
        flags: PteFlags,
        frames: &mut FrameTable,
    ) {
        self.restore_page(vpn, &data, Taint::Clean, frames)
            .expect("pending pages always lie in a VMA");
        self.pt.set_flags(vpn, PteFlags::PRESENT.with(flags));
        if flags.contains(PteFlags::SOFT_DIRTY) {
            self.dirty.set(vpn);
        } else {
            self.dirty.clear(vpn);
        }
    }

    // ---------------------------------------------------------------
    // Tracking: soft-dirty and userfaultfd
    // ---------------------------------------------------------------

    /// Marks every present page copy-on-write (a CoW snapshot sharing
    /// frames with an observer; the next write to each page copies it).
    /// The caller is responsible for holding references to the frames.
    /// `O(extents)`.
    pub fn mark_all_cow(&mut self) {
        self.pt.transform_flags(|f| f.with(PteFlags::COW));
    }

    /// `echo 4 > /proc/pid/clear_refs`: clears all soft-dirty bits and
    /// write-protects present pages so the next write faults.
    /// `O(extents)` — the steady state after a request that dirtied `D`
    /// pages holds `O(initial extents + D)` extents, so re-arming costs
    /// `O(extents + D)`, never `O(present)`.
    pub fn clear_soft_dirty(&mut self) {
        self.pt
            .transform_flags(|f| f.without(PteFlags::SOFT_DIRTY).with(PteFlags::SD_WP));
        self.dirty.clear_all();
    }

    /// Arms userfaultfd write-protection on all present pages and starts a
    /// fresh event log (the UFFD tracking backend of §4.3). `O(extents)`.
    pub fn arm_uffd_wp(&mut self) {
        self.uffd_armed = true;
        self.uffd_log.clear_all();
        self.pt
            .transform_flags(|f| f.with(PteFlags::UFFD_WP).without(PteFlags::SOFT_DIRTY));
        self.dirty.clear_all();
    }

    /// Disarms userfaultfd mode, returning the logged dirty pages
    /// (ascending). `O(extents + logged)`.
    pub fn disarm_uffd(&mut self) -> Vec<Vpn> {
        self.uffd_armed = false;
        self.pt.transform_flags(|f| f.without(PteFlags::UFFD_WP));
        let log = self.uffd_log.to_vec();
        self.uffd_log.clear_all();
        log
    }

    /// True if userfaultfd mode is armed.
    pub fn uffd_armed(&self) -> bool {
        self.uffd_armed
    }

    /// The soft-dirty pages in ascending order — an `O(dirty)` index
    /// scan, not a pagemap walk.
    pub fn soft_dirty_pages(&self) -> Vec<Vpn> {
        self.dirty.to_vec()
    }

    /// The soft-dirty pages coalesced into maximal runs, ascending.
    /// `O(dirty)`.
    pub fn soft_dirty_runs(&self) -> Vec<PageRange> {
        self.dirty.runs()
    }

    /// Work units a [`AddressSpace::soft_dirty_pages`] scan performs
    /// (index groups + leaves + set bits). Depends only on the dirty set
    /// and its spread — **never** on the mapped or present page count;
    /// the O(dirty) counter tests assert on this.
    pub fn soft_dirty_scan_work(&self) -> u64 {
        self.dirty.scan_work()
    }

    /// Iterates `(vpn, pte)` over present pages in ascending order.
    pub fn pagemap(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.pt.iter()
    }

    /// Iterates the page-table extents as `(range, flags)` in address
    /// order. `O(extents)`.
    pub fn extents(&self) -> impl Iterator<Item = (PageRange, PteFlags)> + '_ {
        self.pt.extents()
    }

    /// Present pages coalesced into maximal runs irrespective of flags.
    /// `O(extents)`.
    pub fn present_runs(&self) -> Vec<PageRange> {
        self.pt.present_runs()
    }

    /// Looks up the PTE of `vpn`.
    pub fn pte(&self, vpn: Vpn) -> Option<Pte> {
        self.pt.get(vpn)
    }

    // ---------------------------------------------------------------
    // Privileged operations (manager via ptrace / kernel)
    // ---------------------------------------------------------------

    /// Reads one word from a present page without fault accounting (the
    /// manager reading memory via `process_vm_readv`/ptrace).
    pub fn peek_word(&self, vpn: Vpn, word_index: usize, frames: &FrameTable) -> Option<u64> {
        self.pt
            .get(vpn)
            .map(|pte| frames.data(pte.frame).read_word(word_index))
    }

    /// The present pages as `(run start, frames)` runs, **without**
    /// taking references — the read-only view store interning captures
    /// from. `O(extents)` run metadata plus one id copy per page.
    pub fn present_frame_runs(&self) -> Vec<(Vpn, Vec<FrameId>)> {
        self.pt
            .present_runs()
            .into_iter()
            .map(|range| {
                let mut ids = Vec::new();
                self.pt.frames_in_into(range, &mut ids);
                (range.start, ids)
            })
            .collect()
    }

    /// Captures the present pages as refcounted frame runs: one incref
    /// per page, `O(extents)` run metadata, **no content copies** — the
    /// snapshotter's run-based capture path. The caller owns the
    /// returned references and must decref them when the capture is
    /// released.
    pub fn capture_frame_runs(&self, frames: &mut FrameTable) -> Vec<(Vpn, Vec<FrameId>)> {
        let out = self.present_frame_runs();
        for (_, run) in &out {
            for &id in run {
                frames.incref(id);
            }
        }
        out
    }

    /// Overwrites a whole page with `data`, bypassing fault accounting
    /// (the restorer writing via ptrace). Creates the PTE if necessary.
    ///
    /// Returns an error if the page is outside any VMA.
    pub fn restore_page(
        &mut self,
        vpn: Vpn,
        data: &FrameData,
        taint: Taint,
        frames: &mut FrameTable,
    ) -> Result<(), AccessError> {
        if self.vma_at(vpn).is_none() {
            return Err(AccessError::Unmapped(vpn));
        }
        match self.pt.get(vpn) {
            Some(pte) => {
                if frames.is_shared(pte.frame) {
                    // The whole page is being overwritten: allocate the
                    // private frame directly instead of CoW-copying
                    // contents the overwrite would immediately discard.
                    // Hot since eager snapshots structurally share every
                    // captured frame — this fires once per restored page.
                    frames.decref(pte.frame);
                    let frame = frames.alloc(data.clone(), taint);
                    self.pt.set_frame(vpn, frame);
                    self.pt.set_flags(vpn, pte.flags.without(PteFlags::COW));
                } else {
                    frames.overwrite(pte.frame, data.clone(), taint);
                }
            }
            None => {
                let frame = frames.alloc(data.clone(), taint);
                self.pt.insert(vpn, frame, PteFlags::PRESENT);
            }
        }
        self.sync_taint_bit(vpn, taint);
        Ok(())
    }

    /// Overwrites a whole contiguous run with `data` (one [`FrameData`]
    /// per page of `range`), bypassing fault accounting — the batched
    /// restore-writeback path. State outcomes (page table, frame table
    /// including frame-id allocation order, taint index) are identical to
    /// calling [`AddressSpace::restore_page`] once per page in ascending
    /// order; the cost is one VMA probe per overlapped VMA, one chunk
    /// probe per 512-page window and one extent edit fold per run,
    /// instead of a map probe-and-splice per page.
    ///
    /// Errors with [`AccessError::Unmapped`] — before mutating anything —
    /// if any page of `range` lies outside every VMA.
    pub fn restore_run(
        &mut self,
        range: PageRange,
        data: &[FrameData],
        taint: Taint,
        frames: &mut FrameTable,
    ) -> Result<(), AccessError> {
        debug_assert_eq!(range.len() as usize, data.len(), "one FrameData per page");
        // Whole-run VMA coverage: one probe per overlapped VMA. Unlike the
        // per-page loop this rejects the run before any write, but the
        // restorer aborts on the first error either way.
        let mut v = range.start;
        while v < range.end {
            let vma = self.vma_at(v).ok_or(AccessError::Unmapped(v))?;
            v = Vpn(vma.range.end.0.min(range.end.0));
        }
        self.pt.restore_walk(range, |offset, cur| {
            let page = &data[offset as usize];
            match cur {
                Some((frame, flags)) => {
                    if frames.is_shared(frame) {
                        // Same decref-then-alloc order as `restore_page`,
                        // page-ascending, so frame-id reuse matches the
                        // per-page path bit for bit.
                        frames.decref(frame);
                        let fresh = frames.alloc(page.clone(), taint);
                        BatchDecision::Update {
                            frame: Some(fresh),
                            flags: flags.without(PteFlags::COW),
                        }
                    } else {
                        frames.overwrite(frame, page.clone(), taint);
                        BatchDecision::Update { frame: None, flags }
                    }
                }
                None => BatchDecision::Insert {
                    frame: frames.alloc(page.clone(), taint),
                    flags: PteFlags::PRESENT,
                },
            }
        });
        for vpn in range.iter() {
            self.sync_taint_bit(vpn, taint);
        }
        Ok(())
    }

    /// Removes the PTE of `vpn`, releasing its frame (restorer dropping a
    /// newly paged page via `madvise`).
    pub fn evict_page(&mut self, vpn: Vpn, frames: &mut FrameTable) {
        if let Some(frame) = self.pt.remove(vpn) {
            frames.decref(frame);
            self.dirty.clear(vpn);
            self.tainted.clear(vpn);
        }
    }

    /// Zeroes a page in place (stack zeroing during restore).
    pub fn zero_page(&mut self, vpn: Vpn, frames: &mut FrameTable) -> Result<(), AccessError> {
        self.restore_page(vpn, &FrameData::Zero, Taint::Clean, frames)
    }

    /// Releases every frame (process teardown). The space is unusable
    /// afterwards.
    pub fn release_all(&mut self, frames: &mut FrameTable) {
        for (_, pte) in self.pt.iter() {
            frames.decref(pte.frame);
        }
        self.pt = PageTable::new();
        self.dirty.clear_all();
        self.tainted.clear_all();
        self.vmas.clear();
        // Teardown discards outstanding obligations like any other
        // mapping drop, keeping the page-work conservation law exact
        // for stats read after the process is gone.
        self.lazy_dropped += self.lazy_pending.len() as u64;
        self.lazy_pending.clear();
    }

    // ---------------------------------------------------------------
    // fork
    // ---------------------------------------------------------------

    /// Duplicates the address space for `fork`: VMAs are copied, present
    /// pages become shared CoW in **both** parent and child, and the child
    /// is fully TLB-cold.
    pub fn fork(&mut self, frames: &mut FrameTable) -> AddressSpace {
        // Writable private pages become CoW on both sides. (Read-only
        // pages can stay shared without COW, but marking them is
        // harmless: the write path checks VMA perms first.)
        self.pt.transform_flags(|f| f.with(PteFlags::COW));
        let mut child_pt = self.pt.clone();
        child_pt.transform_flags(|f| f.with(PteFlags::TLB_COLD));
        for (_, pte) in child_pt.iter() {
            frames.incref(pte.frame);
        }
        AddressSpace {
            cfg: self.cfg,
            vmas: self.vmas.clone(),
            pt: child_pt,
            dirty: self.dirty.clone(),
            tainted: self.tainted.clone(),
            brk: self.brk,
            counters: FaultCounters::default(),
            uffd_armed: false,
            uffd_log: VpnIndex::new(),
            // Lazy arming is per-manager state; a forked child starts
            // with no pending restorations (FORK isolation never layers
            // on a Groundhog manager).
            lazy_pending: BTreeMap::new(),
            lazy_dropped: 0,
        }
    }

    // ---------------------------------------------------------------
    // Taint scanning (test support)
    // ---------------------------------------------------------------

    /// Pages whose taint may contain `req` — an `O(tainted)` index scan:
    /// only pages whose frames carry *any* request data are visited.
    pub fn tainted_pages(&self, req: crate::taint::RequestId, frames: &FrameTable) -> Vec<Vpn> {
        self.tainted
            .iter()
            .filter(|vpn| {
                self.pt
                    .get(*vpn)
                    .is_some_and(|pte| frames.taint(pte.frame).may_contain(req))
            })
            .collect()
    }

    /// Debug invariant check: VMAs are sorted, non-overlapping and
    /// non-empty; the extent table is structurally sound (sorted,
    /// disjoint, *maximal* — no adjacent mergeable extents — with chunk
    /// occupancy matching coverage); every present page lies in some
    /// VMA; and the dirty/taint indices agree bit-for-bit with the page
    /// state they cache.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end = 0u64;
        for (&start, vma) in &self.vmas {
            if start != vma.range.start.0 {
                return Err(format!("vma key {start:#x} != range start {:?}", vma.range));
            }
            if vma.range.is_empty() {
                return Err(format!("empty vma at {start:#x}"));
            }
            if vma.range.start.0 < prev_end {
                return Err(format!("overlapping vmas at {start:#x}"));
            }
            prev_end = vma.range.end.0;
        }
        self.pt.check()?;
        for (range, flags) in self.pt.extents() {
            for vpn in range.iter() {
                if self.vma_at(vpn).is_none() {
                    return Err(format!("present page {:#x} outside any vma", vpn.0));
                }
                // Index ⇔ flag agreement, both directions.
                if flags.contains(PteFlags::SOFT_DIRTY) != self.dirty.contains(vpn) {
                    return Err(format!(
                        "dirty index bit for {:#x} disagrees with SOFT_DIRTY flag",
                        vpn.0
                    ));
                }
            }
        }
        for vpn in self.dirty.iter() {
            if !self.pt.contains(vpn) {
                return Err(format!("dirty index bit for absent page {:#x}", vpn.0));
            }
        }
        for vpn in self.tainted.iter() {
            if !self.pt.contains(vpn) {
                return Err(format!("tainted index bit for absent page {:#x}", vpn.0));
            }
        }
        for &vpn in self.lazy_pending.keys() {
            if self.vma_at(Vpn(vpn)).is_none() {
                return Err(format!("lazy-pending page {vpn:#x} outside any vma"));
            }
        }
        Ok(())
    }

    /// Like [`AddressSpace::check_invariants`], but additionally verifies
    /// the taint index against the frame table (bit set ⇔ frame taint
    /// non-clean). Separate because it needs the frame table.
    pub fn check_invariants_with_frames(&self, frames: &FrameTable) -> Result<(), String> {
        self.check_invariants()?;
        for (vpn, pte) in self.pt.iter() {
            if frames.taint(pte.frame).is_tainted() != self.tainted.contains(vpn) {
                return Err(format!(
                    "tainted index bit for {:#x} disagrees with frame taint",
                    vpn.0
                ));
            }
        }
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::RequestId;

    fn setup() -> (AddressSpace, FrameTable) {
        let mut frames = FrameTable::new();
        let space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        (space, frames)
    }

    #[test]
    fn new_space_has_stack_only() {
        let (s, _) = setup();
        assert_eq!(s.vma_count(), 1);
        assert_eq!(s.mapped_pages(), SpaceConfig::default().stack_pages);
        assert_eq!(s.present_pages(), 0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn mmap_allocates_top_down_and_munmap_releases() {
        let (mut s, mut f) = setup();
        let a = s.mmap(10, Perms::RW, VmaKind::Anon).unwrap();
        let b = s.mmap(5, Perms::RW, VmaKind::Anon).unwrap();
        assert!(b.end.0 <= a.start.0, "second mapping below first");
        // Merging: adjacent same-perm anon mappings coalesce.
        assert_eq!(s.vma_count(), 2, "stack + merged anon block");
        s.munmap(a, &mut f).unwrap();
        assert_eq!(s.vma_count(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn mmap_fixed_rejects_overlap() {
        let (mut s, _) = setup();
        let r = s.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
        let err = s.mmap_fixed(r, Perms::RW, VmaKind::Anon);
        assert_eq!(err, Err(AccessError::BadRange));
    }

    #[test]
    fn munmap_splits_vma() {
        let (mut s, mut f) = setup();
        let r = s.mmap(10, Perms::RW, VmaKind::Anon).unwrap();
        // Unmap the middle 2 pages.
        let mid = PageRange::at(Vpn(r.start.0 + 4), 2);
        s.munmap(mid, &mut f).unwrap();
        assert_eq!(s.vma_count(), 3, "stack + two fragments");
        assert!(s.vma_at(Vpn(r.start.0 + 4)).is_none());
        assert!(s.vma_at(Vpn(r.start.0 + 3)).is_some());
        assert!(s.vma_at(Vpn(r.start.0 + 6)).is_some());
        s.check_invariants().unwrap();
    }

    #[test]
    fn munmap_drops_frames() {
        let (mut s, mut f) = setup();
        let r = s.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            s.touch(vpn, Touch::WriteWord(1), Taint::Clean, &mut f)
                .unwrap();
        }
        assert_eq!(f.live(), 4);
        s.munmap(r, &mut f).unwrap();
        assert_eq!(f.live(), 0);
        assert_eq!(s.present_pages(), 0);
    }

    #[test]
    fn mprotect_splits_and_denies() {
        let (mut s, mut f) = setup();
        let r = s.mmap(6, Perms::RW, VmaKind::Anon).unwrap();
        let ro = PageRange::at(Vpn(r.start.0 + 2), 2);
        s.mprotect(ro, Perms::R).unwrap();
        assert_eq!(s.vma_count(), 4, "stack + 3 fragments");
        let err = s.touch(ro.start, Touch::WriteWord(1), Taint::Clean, &mut f);
        assert_eq!(err, Err(AccessError::PermissionDenied(ro.start)));
        s.touch(ro.start, Touch::Read, Taint::Clean, &mut f)
            .unwrap();
        s.check_invariants().unwrap();
    }

    #[test]
    fn mprotect_unmapped_fails() {
        let (mut s, _) = setup();
        let err = s.mprotect(PageRange::at(Vpn(0x500), 1), Perms::R);
        assert!(matches!(err, Err(AccessError::Unmapped(_))));
    }

    #[test]
    fn brk_grow_and_shrink() {
        let (mut s, mut f) = setup();
        let base = s.config().heap_base;
        s.set_brk(Vpn(base.0 + 100), &mut f).unwrap();
        assert_eq!(s.brk(), Vpn(base.0 + 100));
        assert!(s.vma_at(Vpn(base.0 + 50)).is_some());
        // Touch a heap page then shrink past it: frame released.
        s.touch(Vpn(base.0 + 80), Touch::WriteWord(7), Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(f.live(), 1);
        s.set_brk(Vpn(base.0 + 50), &mut f).unwrap();
        assert_eq!(f.live(), 0);
        assert!(s.vma_at(Vpn(base.0 + 80)).is_none());
        // Shrink to zero-size heap removes the VMA.
        s.set_brk(base, &mut f).unwrap();
        assert!(s.vma_at(base).is_none());
        s.check_invariants().unwrap();
    }

    #[test]
    fn brk_below_base_fails() {
        let (mut s, mut f) = setup();
        let base = s.config().heap_base;
        assert_eq!(
            s.set_brk(Vpn(base.0 - 1), &mut f),
            Err(AccessError::BadRange)
        );
    }

    #[test]
    fn demand_paging_counts_minor_faults() {
        let (mut s, mut f) = setup();
        let r = s.mmap(3, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        let c = s.counters();
        assert_eq!(c.minor, 1, "second read is warm");
        assert_eq!(c.warm, 1);
        assert_eq!(s.present_pages(), 1);
    }

    #[test]
    fn every_new_pte_is_born_soft_dirty() {
        // Linux semantics: both read- and write-faulted fresh PTEs carry
        // the soft-dirty bit, so remap churn cannot hide modifications.
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::WriteWord(1), Taint::Clean, &mut f)
            .unwrap();
        s.touch(r.start.next(), Touch::Read, Taint::Clean, &mut f)
            .unwrap();
        assert!(s.pte(r.start).unwrap().soft_dirty());
        assert!(s.pte(r.start.next()).unwrap().soft_dirty());
        assert_eq!(s.soft_dirty_pages(), vec![r.start, r.start.next()]);
        // After a clear, re-reading a *present* page stays clean.
        s.clear_soft_dirty();
        s.touch(r.start.next(), Touch::Read, Taint::Clean, &mut f)
            .unwrap();
        assert!(!s.pte(r.start.next()).unwrap().soft_dirty());
    }

    #[test]
    fn clear_soft_dirty_arms_wp_faults() {
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::WriteWord(1), Taint::Clean, &mut f)
            .unwrap();
        s.clear_soft_dirty();
        assert!(s.soft_dirty_pages().is_empty());
        let before = s.counters();
        s.touch(r.start, Touch::WriteWord(2), Taint::Clean, &mut f)
            .unwrap();
        let after = s.counters();
        assert_eq!(
            after.sd_wp - before.sd_wp,
            1,
            "armed write takes an SD fault"
        );
        assert_eq!(s.soft_dirty_pages(), vec![r.start]);
        // A second write to the same page is warm.
        s.touch(r.start, Touch::WriteWord(3), Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(s.counters().sd_wp, after.sd_wp);
    }

    #[test]
    fn untracked_write_sets_soft_dirty_without_fault() {
        let (mut s, mut f) = setup();
        let r = s.mmap(1, Perms::RW, VmaKind::Anon).unwrap();
        // A restorer-written page is present, clean, and unarmed — the
        // only way to reach that state.
        s.restore_page(r.start, &FrameData::Zero, Taint::Clean, &mut f)
            .unwrap();
        assert!(!s.pte(r.start).unwrap().soft_dirty());
        let c0 = s.counters();
        s.touch(r.start, Touch::WriteWord(9), Taint::Clean, &mut f)
            .unwrap();
        assert!(s.pte(r.start).unwrap().soft_dirty());
        assert_eq!(s.counters().sd_wp, c0.sd_wp, "no SD fault when not armed");
    }

    #[test]
    fn uffd_logs_dirty_pages() {
        let (mut s, mut f) = setup();
        let r = s.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            s.touch(vpn, Touch::WriteWord(1), Taint::Clean, &mut f)
                .unwrap();
        }
        s.arm_uffd_wp();
        s.touch(r.start, Touch::WriteWord(2), Taint::Clean, &mut f)
            .unwrap();
        s.touch(
            Vpn(r.start.0 + 2),
            Touch::WriteWord(2),
            Taint::Clean,
            &mut f,
        )
        .unwrap();
        assert_eq!(s.counters().uffd_wp, 2);
        let log = s.disarm_uffd();
        assert_eq!(log, vec![r.start, Vpn(r.start.0 + 2)]);
        assert!(!s.uffd_armed());
    }

    #[test]
    fn file_pages_have_deterministic_content() {
        let (mut s, mut f) = setup();
        let r = s
            .mmap(2, Perms::RX, VmaKind::File("libpython.so".into()))
            .unwrap();
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        let w1 = s.peek_word(r.start, 0, &f).unwrap();
        assert_ne!(w1, 0, "file pages are not zero");
        // Re-fault the same page in a fresh space: identical contents.
        let (mut s2, mut f2) = setup();
        let r2 = s2
            .mmap(2, Perms::RX, VmaKind::File("libpython.so".into()))
            .unwrap();
        // Same kind and same vpn layout → same pattern.
        assert_eq!(r.start, r2.start);
        s2.touch(r2.start, Touch::Read, Taint::Clean, &mut f2)
            .unwrap();
        assert_eq!(s2.peek_word(r2.start, 0, &f2).unwrap(), w1);
    }

    #[test]
    fn madvise_dontneed_loses_contents() {
        let (mut s, mut f) = setup();
        let r = s.mmap(1, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::WriteWord(0xAA), Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(s.peek_word(r.start, 1, &f), Some(0xAA));
        s.madvise_dontneed(r, &mut f).unwrap();
        assert_eq!(s.present_pages(), 0);
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        assert_eq!(s.peek_word(r.start, 1, &f), Some(0), "fresh zero page");
    }

    #[test]
    fn read_write_bytes_cross_page() {
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        let addr = VirtAddr(r.start.addr().0 + PAGE_SIZE - 3);
        s.write_bytes(addr, b"abcdef", Taint::Clean, &mut f)
            .unwrap();
        let mut buf = [0u8; 6];
        s.read_bytes(addr, &mut buf, &mut f).unwrap();
        assert_eq!(&buf, b"abcdef");
        assert_eq!(s.present_pages(), 2);
    }

    #[test]
    fn unmapped_access_errors() {
        let (mut s, mut f) = setup();
        let err = s.touch(Vpn(0x4242), Touch::Read, Taint::Clean, &mut f);
        assert_eq!(err, Err(AccessError::Unmapped(Vpn(0x4242))));
    }

    #[test]
    fn fork_cow_semantics() {
        let (mut parent, mut f) = setup();
        let r = parent.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        parent
            .touch(r.start, Touch::WriteWord(0x11), Taint::Clean, &mut f)
            .unwrap();
        let mut child = parent.fork(&mut f);
        assert_eq!(f.refcount(parent.pte(r.start).unwrap().frame), 2);

        // Child write takes CoW fault and does not affect parent.
        child
            .touch(r.start, Touch::WriteWord(0x22), Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(child.counters().cow, 1);
        assert_eq!(parent.peek_word(r.start, 1, &f), Some(0x11));
        assert_eq!(child.peek_word(r.start, 1, &f), Some(0x22));

        // Parent's subsequent write also CoW-faults (its PTE was marked).
        parent
            .touch(r.start, Touch::WriteWord(0x33), Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(parent.counters().cow, 1);
        assert_eq!(child.peek_word(r.start, 1, &f), Some(0x22));
    }

    #[test]
    fn fork_child_is_tlb_cold() {
        let (mut parent, mut f) = setup();
        let r = parent.mmap(3, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            parent
                .touch(vpn, Touch::Read, Taint::Clean, &mut f)
                .unwrap();
        }
        let mut child = parent.fork(&mut f);
        for vpn in r.iter() {
            child.touch(vpn, Touch::Read, Taint::Clean, &mut f).unwrap();
        }
        assert_eq!(child.counters().tlb_cold, 3, "every first access is cold");
        // Parent stays warm.
        let before = parent.counters().tlb_cold;
        parent
            .touch(r.start, Touch::Read, Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(parent.counters().tlb_cold, before);
        child.release_all(&mut f);
    }

    #[test]
    fn taint_merge_on_write() {
        let (mut s, mut f) = setup();
        let r = s.mmap(1, Perms::RW, VmaKind::Anon).unwrap();
        let r1 = RequestId(1);
        let r2 = RequestId(2);
        s.touch(r.start, Touch::WriteWord(1), Taint::One(r1), &mut f)
            .unwrap();
        assert_eq!(s.tainted_pages(r1, &f), vec![r.start]);
        assert!(s.tainted_pages(r2, &f).is_empty());
        s.touch(r.start, Touch::WriteWord(2), Taint::One(r2), &mut f)
            .unwrap();
        // Frame now carries both requests' data (Many).
        assert_eq!(s.tainted_pages(r1, &f), vec![r.start]);
        assert_eq!(s.tainted_pages(r2, &f), vec![r.start]);
    }

    #[test]
    fn restore_page_is_untracked_and_untainted() {
        let (mut s, mut f) = setup();
        let r = s.mmap(1, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(
            r.start,
            Touch::WriteWord(5),
            Taint::One(RequestId(1)),
            &mut f,
        )
        .unwrap();
        s.clear_soft_dirty();
        let c0 = s.counters();
        s.restore_page(r.start, &FrameData::Zero, Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(s.counters(), c0, "restore takes no accounted faults");
        assert_eq!(s.peek_word(r.start, 1, &f), Some(0));
        assert!(s.tainted_pages(RequestId(1), &f).is_empty());
    }

    #[test]
    fn restore_page_outside_vma_fails() {
        let (mut s, mut f) = setup();
        let err = s.restore_page(Vpn(0x1), &FrameData::Zero, Taint::Clean, &mut f);
        assert!(matches!(err, Err(AccessError::Unmapped(_))));
    }

    #[test]
    fn evict_and_zero_page() {
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::WriteWord(5), Taint::Clean, &mut f)
            .unwrap();
        s.evict_page(r.start, &mut f);
        assert_eq!(s.present_pages(), 0);
        assert_eq!(f.live(), 0);
        s.touch(r.start, Touch::WriteWord(6), Taint::Clean, &mut f)
            .unwrap();
        s.zero_page(r.start, &mut f).unwrap();
        assert_eq!(s.peek_word(r.start, 1, &f), Some(0));
    }

    #[test]
    fn release_all_frees_everything() {
        let (mut s, mut f) = setup();
        let r = s.mmap(8, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            s.touch(vpn, Touch::WriteWord(1), Taint::Clean, &mut f)
                .unwrap();
        }
        assert_eq!(f.live(), 8);
        s.release_all(&mut f);
        assert_eq!(f.live(), 0);
        assert_eq!(s.vma_count(), 0);
    }

    #[test]
    fn fork_then_teardown_is_leak_free() {
        let (mut parent, mut f) = setup();
        let r = parent.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            parent
                .touch(vpn, Touch::WriteWord(1), Taint::Clean, &mut f)
                .unwrap();
        }
        let mut child = parent.fork(&mut f);
        child
            .touch(r.start, Touch::WriteWord(2), Taint::Clean, &mut f)
            .unwrap();
        child.release_all(&mut f);
        // Parent frames intact.
        assert_eq!(parent.peek_word(r.start, 1, &f), Some(1));
        parent.release_all(&mut f);
        assert_eq!(f.live(), 0);
    }

    #[test]
    fn pagemap_iterates_in_order() {
        let (mut s, mut f) = setup();
        let r = s.mmap(5, Perms::RW, VmaKind::Anon).unwrap();
        // Touch out of order.
        s.touch(Vpn(r.start.0 + 3), Touch::Read, Taint::Clean, &mut f)
            .unwrap();
        s.touch(Vpn(r.start.0 + 1), Touch::Read, Taint::Clean, &mut f)
            .unwrap();
        let vpns: Vec<u64> = s.pagemap().map(|(v, _)| v.0).collect();
        assert_eq!(vpns, vec![r.start.0 + 1, r.start.0 + 3]);
    }

    #[test]
    fn render_maps_contains_stack() {
        let (s, _) = setup();
        let maps = s.render_maps();
        assert!(maps.contains("[stack]"));
        assert!(maps.contains("rw-p"));
    }
}

#[cfg(test)]
mod lazy_tests {
    use super::*;
    use crate::store::SnapshotStore;
    use crate::taint::RequestId;

    fn setup() -> (AddressSpace, FrameTable) {
        let mut frames = FrameTable::new();
        let space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        (space, frames)
    }

    /// A region with dirty contents and an armed lazy set mapping every
    /// page back to a distinct snapshot pattern.
    fn armed_region(s: &mut AddressSpace, f: &mut FrameTable, pages: u64) -> PageRange {
        let r = s.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            s.touch(
                vpn,
                Touch::WriteWord(0xD1127 ^ vpn.0),
                Taint::One(RequestId(1)),
                f,
            )
            .unwrap();
        }
        s.clear_soft_dirty();
        let set: BTreeMap<u64, LazyPageSource> = r
            .iter()
            .map(|v| (v.0, LazyPageSource::Data(FrameData::Pattern(v.0))))
            .collect();
        s.arm_lazy(set);
        r
    }

    #[test]
    fn read_fault_installs_snapshot_content_armed() {
        let (mut s, mut f) = setup();
        let r = armed_region(&mut s, &mut f, 4);
        assert_eq!(s.lazy_pending_len(), 4);
        let c0 = s.counters();
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        assert_eq!(s.counters().lazy - c0.lazy, 1);
        assert_eq!(s.lazy_pending_len(), 3);
        // Snapshot content visible, stale content and taint gone.
        assert!(f
            .data(s.pte(r.start).unwrap().frame)
            .logical_eq(&FrameData::Pattern(r.start.0)));
        assert!(s.tainted_pages(RequestId(1), &f).len() < 4);
        // Clean and armed, like an eager restore + re-arm.
        let pte = s.pte(r.start).unwrap();
        assert!(!pte.soft_dirty());
        assert!(pte.flags.contains(PteFlags::SD_WP));
        // A second read is warm (one fault per deferred page).
        let c1 = s.counters();
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        assert_eq!(s.counters().lazy, c1.lazy);
        assert_eq!(s.counters().warm - c1.warm, 1);
    }

    #[test]
    fn write_fault_installs_then_dirties_in_one_fault() {
        let (mut s, mut f) = setup();
        let r = armed_region(&mut s, &mut f, 2);
        let c0 = s.counters();
        s.touch(
            r.start,
            Touch::WriteWord(0xFF),
            Taint::One(RequestId(2)),
            &mut f,
        )
        .unwrap();
        let c1 = s.counters();
        assert_eq!(c1.lazy - c0.lazy, 1);
        assert_eq!(c1.sd_wp, c0.sd_wp, "single #PF resolves install + WP");
        let pte = s.pte(r.start).unwrap();
        assert!(pte.soft_dirty());
        // The write landed on top of the snapshot contents.
        assert_eq!(s.peek_word(r.start, 1, &f), Some(0xFF));
        assert_eq!(
            f.data(pte.frame).read_word(0),
            FrameData::Pattern(r.start.0).read_word(0)
        );
    }

    #[test]
    fn untouched_pages_stay_pending_and_drain_restores_them() {
        let (mut s, mut f) = setup();
        let r = armed_region(&mut s, &mut f, 6);
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        assert_eq!(s.lazy_pending_len(), 5);
        let c = s.counters();
        assert_eq!(s.drain_lazy(2, &mut f), 2);
        assert_eq!(s.counters(), c, "drain counts no faults");
        assert_eq!(s.lazy_pending_len(), 3);
        assert_eq!(s.drain_lazy(u64::MAX, &mut f), 3);
        assert_eq!(s.lazy_pending_len(), 0);
        for vpn in r.iter() {
            assert!(f
                .data(s.pte(vpn).unwrap().frame)
                .logical_eq(&FrameData::Pattern(vpn.0)));
        }
        assert!(s.tainted_pages(RequestId(1), &f).is_empty());
    }

    #[test]
    fn frame_source_shares_on_read_and_copies_on_write() {
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            s.touch(vpn, Touch::WriteWord(9), Taint::Clean, &mut f)
                .unwrap();
        }
        // A "snapshot" holding CoW references to both frames.
        let snap: Vec<FrameId> = r.iter().map(|v| s.pte(v).unwrap().frame).collect();
        for &id in &snap {
            f.incref(id);
        }
        s.mark_all_cow();
        // Dirty both pages (CoW copies them), then arm lazily from the
        // snapshot's frames.
        for vpn in r.iter() {
            s.touch(
                vpn,
                Touch::WriteWord(0xBAD),
                Taint::One(RequestId(3)),
                &mut f,
            )
            .unwrap();
        }
        s.clear_soft_dirty();
        let set: BTreeMap<u64, LazyPageSource> = r
            .iter()
            .zip(&snap)
            .map(|(v, &id)| (v.0, LazyPageSource::Frame(id)))
            .collect();
        s.arm_lazy(set);
        // Read fault: the PTE points at the snapshot's own frame.
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        assert_eq!(s.pte(r.start).unwrap().frame, snap[0], "shared frame");
        assert_eq!(f.refcount(snap[0]), 2);
        assert_eq!(s.peek_word(r.start, 1, &f), Some(9));
        // Write fault on the other page: private copy, snapshot intact.
        s.touch(r.start.next(), Touch::WriteWord(0x22), Taint::Clean, &mut f)
            .unwrap();
        assert_ne!(s.pte(r.start.next()).unwrap().frame, snap[1]);
        assert_eq!(f.data(snap[1]).read_word(1), 9, "snapshot unchanged");
        for &id in &snap {
            f.decref(id);
        }
    }

    #[test]
    fn store_source_faults_in_from_shared_store() {
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            s.touch(vpn, Touch::WriteWord(7), Taint::One(RequestId(4)), &mut f)
                .unwrap();
        }
        let store = SnapshotStore::new_handle();
        let image: BTreeMap<u64, FrameData> = r
            .iter()
            .map(|v| (v.0, FrameData::Pattern(0x57025 ^ v.0)))
            .collect();
        let refs = store.lock().unwrap().intern("f", &image);
        let live_before = store.lock().unwrap().live_frames();
        let set: BTreeMap<u64, LazyPageSource> = refs
            .iter()
            .map(|(&vpn, &frame)| {
                (
                    vpn,
                    LazyPageSource::Store {
                        store: store.clone(),
                        frame,
                    },
                )
            })
            .collect();
        s.arm_lazy(set);
        // Arming copied nothing; the store still holds the only image.
        assert_eq!(store.lock().unwrap().live_frames(), live_before);
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        assert!(f
            .data(s.pte(r.start).unwrap().frame)
            .logical_eq(&FrameData::Pattern(0x57025 ^ r.start.0)));
        // Fault-in copies out of the store, never into it.
        assert_eq!(store.lock().unwrap().live_frames(), live_before);
    }

    #[test]
    fn unmap_drops_pending_obligations() {
        let (mut s, mut f) = setup();
        let r = armed_region(&mut s, &mut f, 8);
        let mid = PageRange::at(Vpn(r.start.0 + 2), 3);
        s.munmap(mid, &mut f).unwrap();
        assert_eq!(s.lazy_pending_len(), 5);
        s.check_invariants().unwrap();
        // madvise drops obligations too: the touch must see a fresh zero
        // page, exactly as it would after an eager restore + madvise.
        let tail = PageRange::at(Vpn(r.start.0 + 6), 1);
        s.madvise_dontneed(tail, &mut f).unwrap();
        assert_eq!(s.lazy_pending_len(), 4);
        s.touch(tail.start, Touch::Read, Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(s.peek_word(tail.start, 1, &f), Some(0));
    }

    #[test]
    fn missing_page_faults_in_from_snapshot() {
        // A page that was madvised away *before* arming (snapshot ∖
        // present): the entry has no PTE, and the fault installs one.
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::WriteWord(1), Taint::Clean, &mut f)
            .unwrap();
        s.madvise_dontneed(PageRange::at(r.start, 1), &mut f)
            .unwrap();
        assert!(s.pte(r.start).is_none());
        let mut set = BTreeMap::new();
        set.insert(r.start.0, LazyPageSource::Data(FrameData::Pattern(42)));
        s.arm_lazy(set);
        let c0 = s.counters();
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        assert_eq!(s.counters().lazy - c0.lazy, 1);
        assert_eq!(s.counters().minor, c0.minor, "lazy fault, not minor");
        assert!(f
            .data(s.pte(r.start).unwrap().frame)
            .logical_eq(&FrameData::Pattern(42)));
    }

    #[test]
    fn uffd_armed_lazy_write_logs_dirty_page() {
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            s.touch(vpn, Touch::WriteWord(3), Taint::Clean, &mut f)
                .unwrap();
        }
        s.arm_uffd_wp();
        let set: BTreeMap<u64, LazyPageSource> = r
            .iter()
            .map(|v| (v.0, LazyPageSource::Data(FrameData::Zero)))
            .collect();
        s.arm_lazy(set);
        s.touch(r.start, Touch::WriteWord(5), Taint::Clean, &mut f)
            .unwrap();
        s.touch(r.start.next(), Touch::Read, Taint::Clean, &mut f)
            .unwrap();
        let log = s.disarm_uffd();
        assert_eq!(log, vec![r.start], "write logged, read not");
        let c = s.counters();
        assert_eq!(c.lazy, 2);
        assert_eq!(c.uffd_wp, 0, "lazy faults subsume the WP notification");
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    fn setup() -> (AddressSpace, FrameTable) {
        let mut frames = FrameTable::new();
        let space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        (space, frames)
    }

    #[test]
    fn mmap_exhaustion_is_bad_range() {
        let (mut s, _) = setup();
        // Far larger than the whole mmap area.
        let err = s.mmap(u64::MAX / 2, Perms::RW, VmaKind::Anon);
        assert_eq!(err, Err(AccessError::BadRange));
        // Zero-length mappings are rejected too.
        assert_eq!(
            s.mmap(0, Perms::RW, VmaKind::Anon),
            Err(AccessError::BadRange)
        );
    }

    #[test]
    fn guard_pages_deny_all_access() {
        let (mut s, mut f) = setup();
        let r = s.mmap(1, Perms::NONE, VmaKind::Guard).unwrap();
        assert_eq!(
            s.touch(r.start, Touch::Read, Taint::Clean, &mut f),
            Err(AccessError::PermissionDenied(r.start))
        );
        assert_eq!(
            s.touch(r.start, Touch::WriteWord(1), Taint::Clean, &mut f),
            Err(AccessError::PermissionDenied(r.start))
        );
    }

    #[test]
    fn mmap_fills_gaps_top_down() {
        let (mut s, mut f) = setup();
        let a = s.mmap(10, Perms::RW, VmaKind::Anon).unwrap();
        let b = s.mmap(10, Perms::RW, VmaKind::Anon).unwrap();
        // Free the upper region; a smaller request should reuse that gap.
        s.munmap(a, &mut f).unwrap();
        let c = s.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
        assert!(c.start.0 >= a.start.0, "gap above {b:?} reused: {c:?}");
        s.check_invariants().unwrap();
    }

    #[test]
    fn mark_all_cow_makes_next_write_copy() {
        let (mut s, mut f) = setup();
        let r = s.mmap(2, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::WriteWord(1), Taint::Clean, &mut f)
            .unwrap();
        let frame = s.pte(r.start).unwrap().frame;
        f.incref(frame); // an observer (snapshot) holds a reference
        s.mark_all_cow();
        s.touch(r.start, Touch::WriteWord(2), Taint::Clean, &mut f)
            .unwrap();
        assert_eq!(s.counters().cow, 1);
        let new_frame = s.pte(r.start).unwrap().frame;
        assert_ne!(frame, new_frame, "write copied the shared frame");
        assert_eq!(f.data(frame).read_word(1), 1, "observer's copy unchanged");
        assert_eq!(f.data(new_frame).read_word(1), 2);
        f.decref(frame);
    }

    #[test]
    fn cow_plus_armed_sd_counts_single_fault() {
        let (mut s, mut f) = setup();
        let r = s.mmap(1, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::WriteWord(1), Taint::Clean, &mut f)
            .unwrap();
        let frame = s.pte(r.start).unwrap().frame;
        f.incref(frame);
        s.mark_all_cow();
        s.clear_soft_dirty();
        s.touch(r.start, Touch::WriteWord(2), Taint::Clean, &mut f)
            .unwrap();
        let c = s.counters();
        assert_eq!(c.cow, 1);
        assert_eq!(c.sd_wp, 0, "one #PF resolves CoW + soft-dirty arming");
        assert!(s.pte(r.start).unwrap().soft_dirty());
        f.decref(frame);
    }

    #[test]
    fn munmap_whole_space_then_remap() {
        let (mut s, mut f) = setup();
        let r = s.mmap(8, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            s.touch(vpn, Touch::WriteWord(9), Taint::Clean, &mut f)
                .unwrap();
        }
        s.munmap(r, &mut f).unwrap();
        // Remap the exact range; contents must be fresh zeroes.
        s.mmap_fixed(r, Perms::RW, VmaKind::Anon).unwrap();
        s.touch(r.start, Touch::Read, Taint::Clean, &mut f).unwrap();
        assert_eq!(s.peek_word(r.start, 1, &f), Some(0));
        // And the new PTE is born soft-dirty (Linux remap semantics).
        assert!(s.pte(r.start).unwrap().soft_dirty());
    }
}
