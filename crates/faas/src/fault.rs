//! Seeded, deterministic fault injection.
//!
//! Groundhog's rollback makes *requests* safe from each other; this
//! module makes the platform itself unreliable in a reproducible way so
//! the fleet, cluster, and workflow layers can be tested against
//! container death mid-request, restore (snapshot writeback) failure,
//! and node loss. Every draw is a **pure function** of
//! `(seed, request-or-node id, attempt)` through a splitmix64 hash on
//! dedicated streams — no RNG state is threaded through the event
//! loops, so:
//!
//! - fault-*disabled* runs are byte-identical to runs of a build
//!   without this module (no streams are advanced, no events added);
//! - node-parallel cluster execution stays byte-identical to serial
//!   (any node can evaluate any other node's draws without
//!   coordination);
//! - two [`FaultPlan`]s built from the same seed agree on every draw
//!   (the purity property test in this module).
//!
//! Retry semantics are bounded-attempt exponential backoff in virtual
//! time ([`RetryPolicy::backoff`]); the event loops choose
//! retry-after-restore (same container) or retry-on-other-container /
//! node via [`RetryPolicy::reroute`]. Per-fault accounting lands in
//! [`FaultStats`], nested in `FleetStats` / `ClusterResult`.

use gh_sim::Nanos;

/// Stream tags XORed into the seed so the three fault families draw
/// from independent hash streams (same idiom as the trace generator's
/// `0x7AC3_*` streams).
const STREAM_DEATH: u64 = 0xFA17_0001;
const STREAM_DEATH_FRAC: u64 = 0xFA17_0002;
const STREAM_RESTORE: u64 = 0xFA17_0003;
const STREAM_NODE: u64 = 0xFA17_0004;
const STREAM_COMMIT: u64 = 0xFA17_0005;

/// splitmix64 finalizer — the same bijective mix the placer and cache
/// use, duplicated here so fault draws do not depend on either.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Uniform in `[0, 1)` from a hash input (53 mantissa bits).
fn unit(h: u64) -> f64 {
    (mix(h) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Bounded-attempt retry with exponential backoff in virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first; a request whose last attempt
    /// faults is abandoned.
    pub max_attempts: u32,
    /// Backoff before attempt 2 (doubling-style growth after that).
    pub backoff_base: Nanos,
    /// Multiplier applied per additional failed attempt.
    pub backoff_factor: f64,
    /// `true`: retry on another container / node (the router or placer
    /// is asked to avoid the faulted one). `false`: retry on the same
    /// container once it has restored (retry-after-restore).
    pub reroute: bool,
}

impl RetryPolicy {
    /// 3 attempts, 5 ms base, doubling, retry-after-restore.
    pub fn bounded() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Nanos::from_millis(5),
            backoff_factor: 2.0,
            reroute: false,
        }
    }

    /// Same bounds, but retries move to another container / node.
    pub fn rerouting() -> RetryPolicy {
        RetryPolicy {
            reroute: true,
            ..RetryPolicy::bounded()
        }
    }

    /// Backoff to wait after failed attempt `attempt` (1-based):
    /// `base × factor^(attempt-1)`. Strictly increasing in `attempt`
    /// whenever `factor ≥ 1`, which is what keeps a retry from ever
    /// being scheduled ahead of an earlier retry of the same request
    /// (property-tested below).
    pub fn backoff(&self, attempt: u32) -> Nanos {
        self.backoff_base
            .scale(self.backoff_factor.powi(attempt.saturating_sub(1) as i32))
    }

    /// Short label for sweep tables (`a3-same`, `a5-move`, …).
    pub fn label(&self) -> String {
        format!(
            "a{}-{}",
            self.max_attempts,
            if self.reroute { "move" } else { "same" }
        )
    }
}

/// Fault-injection knobs. All rates are probabilities per draw
/// (per attempt for deaths / restore failures, per `(node, window)`
/// for node loss); zero rates make the plan inert.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault streams. Deliberately separate from the
    /// workload seed so the same traffic can replay under different
    /// fault schedules.
    pub seed: u64,
    /// Probability a given attempt's container dies mid-request.
    pub death_rate: f64,
    /// Probability an attempt's off-path snapshot writeback aborts, in
    /// which case the container must cold-start before its next
    /// admission (readiness extended by the container's init time).
    pub restore_failure_rate: f64,
    /// Probability a node is down for a whole outage window.
    pub node_loss_rate: f64,
    /// Outage-window length for node loss (virtual time).
    pub node_loss_window: Nanos,
    /// Retry semantics for faulted attempts.
    pub retry: RetryPolicy,
}

impl FaultConfig {
    /// All rates zero — an inert plan (draws never fire).
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            death_rate: 0.0,
            restore_failure_rate: 0.0,
            node_loss_rate: 0.0,
            node_loss_window: Nanos::from_secs(1),
            retry: RetryPolicy::bounded(),
        }
    }

    /// Container-death-only plan at `death_rate` with bounded retries.
    pub fn deaths(seed: u64, death_rate: f64) -> FaultConfig {
        FaultConfig {
            death_rate,
            ..FaultConfig::none(seed)
        }
    }

    /// True when any fault family can fire. Event loops use this to
    /// stay on the exact fault-free code path when false.
    pub fn is_active(&self) -> bool {
        self.death_rate > 0.0 || self.restore_failure_rate > 0.0 || self.node_loss_rate > 0.0
    }
}

/// The deterministic fault schedule: a stateless view over a
/// [`FaultConfig`] answering "does fault X hit attempt A of request R"
/// as a pure hash of its arguments.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Builds the plan. Cheap (no allocation, no RNG state).
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan { cfg }
    }

    /// The configuration behind this plan.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True when any fault family can fire.
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    fn draw(&self, stream: u64, a: u64, b: u64) -> f64 {
        unit(mix(self.cfg.seed ^ stream) ^ mix(a) ^ b)
    }

    /// Does attempt `attempt` (1-based) of request `request` die
    /// mid-execution? Returns the fraction of the nominal execution
    /// completed before the crash (in `[0.05, 0.95]`), or `None`.
    pub fn death(&self, request: u64, attempt: u32) -> Option<f64> {
        if self.draw(STREAM_DEATH, request, attempt as u64) < self.cfg.death_rate {
            Some(0.05 + 0.9 * self.draw(STREAM_DEATH_FRAC, request, attempt as u64))
        } else {
            None
        }
    }

    /// For an attempt that dies: did the crash land *after* the
    /// attempt's state commit? Post-commit deaths make the retry a
    /// duplicate execution, which the workflow layer's idempotent
    /// commit must suppress.
    pub fn death_after_commit(&self, request: u64, attempt: u32) -> bool {
        self.draw(STREAM_COMMIT, request, attempt as u64) < 0.5
    }

    /// Does attempt `attempt` of request `request` suffer a restore
    /// failure (snapshot writeback abort) after responding?
    pub fn restore_failure(&self, request: u64, attempt: u32) -> bool {
        self.draw(STREAM_RESTORE, request, attempt as u64) < self.cfg.restore_failure_rate
    }

    /// Is `node` down at virtual time `at`? Outages are whole windows
    /// of `node_loss_window`, drawn independently per
    /// `(node, window-index)` — pure, so every node in a parallel run
    /// can evaluate every other node's availability.
    pub fn node_down(&self, node: usize, at: Nanos) -> bool {
        if self.cfg.node_loss_rate <= 0.0 {
            return false;
        }
        let window = at.as_nanos() / self.cfg.node_loss_window.as_nanos().max(1);
        self.draw(STREAM_NODE, node as u64, window) < self.cfg.node_loss_rate
    }

    /// Backoff in virtual time after failed attempt `attempt`.
    pub fn backoff(&self, attempt: u32) -> Nanos {
        self.cfg.retry.backoff(attempt)
    }

    /// Max attempts per request under this plan's retry policy.
    pub fn max_attempts(&self) -> u32 {
        self.cfg.retry.max_attempts.max(1)
    }
}

/// Per-fault accounting, nested in `FleetStats` / `ClusterResult`.
/// Everything is a plain count so node-level stats merge by addition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Container deaths injected (attempts that crashed mid-request).
    pub deaths: u64,
    /// Restore failures injected (writeback aborts forcing cold-start).
    pub restore_failures: u64,
    /// Arrivals that found their placed node down and were re-routed
    /// (or abandoned when every replica was down).
    pub node_losses: u64,
    /// Retry attempts scheduled after a fault.
    pub retries: u64,
    /// Attempts whose crash landed after the state commit — the retry
    /// re-executes work whose effects already applied (the workflow
    /// layer's idempotent commit must absorb these).
    pub duplicates: u64,
    /// Requests dropped after exhausting `max_attempts`.
    pub abandoned: u64,
    /// In-flight workflow hops re-dispatched to a *different* node
    /// after their executing node was lost (cross-node migration,
    /// carrying only the workflow's KV snapshot version).
    pub migrations: u64,
    /// In-flight hops whose executing node died under them — each is
    /// either migrated, retried in place, or (attempts exhausted)
    /// abandoned with its workflow.
    pub orphaned_hops: u64,
    /// Orphaned hops whose commit had already landed before the node
    /// was lost — the re-dispatched execution is a duplicate and its
    /// re-commit is suppressed by the KV's idempotence (this counter
    /// must equal the KV-side `duplicates_suppressed` delta).
    pub duplicate_commits_absorbed: u64,
}

impl FaultStats {
    /// True when no fault was injected (fault-free run).
    pub fn is_empty(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Folds `other` into `self` (node-level merge).
    pub fn merge(&mut self, other: &FaultStats) {
        self.deaths += other.deaths;
        self.restore_failures += other.restore_failures;
        self.node_losses += other.node_losses;
        self.retries += other.retries;
        self.duplicates += other.duplicates;
        self.abandoned += other.abandoned;
        self.migrations += other.migrations;
        self.orphaned_hops += other.orphaned_hops;
        self.duplicate_commits_absorbed += other.duplicate_commits_absorbed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_pure_function_of_seed() {
        // Two plans built from the same config agree on every draw —
        // the ISSUE's purity property.
        let cfg = FaultConfig {
            death_rate: 0.3,
            restore_failure_rate: 0.2,
            node_loss_rate: 0.1,
            ..FaultConfig::none(0xDEAD)
        };
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        for req in 0..500u64 {
            for attempt in 1..=4u32 {
                assert_eq!(a.death(req, attempt), b.death(req, attempt));
                assert_eq!(
                    a.restore_failure(req, attempt),
                    b.restore_failure(req, attempt)
                );
                assert_eq!(
                    a.death_after_commit(req, attempt),
                    b.death_after_commit(req, attempt)
                );
            }
            let at = Nanos::from_millis(req * 37);
            for node in 0..8 {
                assert_eq!(a.node_down(node, at), b.node_down(node, at));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(FaultConfig::deaths(1, 0.5));
        let b = FaultPlan::new(FaultConfig::deaths(2, 0.5));
        let diff = (0..1000u64)
            .filter(|&r| a.death(r, 1).is_some() != b.death(r, 1).is_some())
            .count();
        assert!(diff > 100, "schedules barely differ: {diff}/1000");
    }

    #[test]
    fn death_rate_is_respected() {
        let plan = FaultPlan::new(FaultConfig::deaths(7, 0.1));
        let hits = (0..20_000u64)
            .filter(|&r| plan.death(r, 1).is_some())
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.08..0.12).contains(&rate), "rate {rate:.3}");
        // Fractions stay inside the documented band.
        for r in 0..20_000u64 {
            if let Some(f) = plan.death(r, 1) {
                assert!((0.05..=0.95).contains(&f));
            }
        }
    }

    #[test]
    fn inert_plan_never_fires() {
        let plan = FaultPlan::new(FaultConfig::none(99));
        assert!(!plan.is_active());
        for r in 0..1000u64 {
            assert!(plan.death(r, 1).is_none());
            assert!(!plan.restore_failure(r, 1));
            assert!(!plan.node_down(r as usize % 16, Nanos::from_millis(r)));
        }
    }

    #[test]
    fn backoff_is_monotonic_in_attempts() {
        // Exponential backoff never schedules attempt k+1's retry
        // before attempt k's: the per-attempt delay is strictly
        // increasing, so cumulative retry times are too.
        let policies = [
            RetryPolicy::bounded(),
            RetryPolicy::rerouting(),
            RetryPolicy {
                max_attempts: 8,
                backoff_base: Nanos::from_micros(250),
                backoff_factor: 1.5,
                reroute: false,
            },
        ];
        for p in policies {
            let mut prev = Nanos::ZERO;
            let mut cum_prev = Nanos::ZERO;
            let mut cum = Nanos::ZERO;
            for attempt in 1..=p.max_attempts {
                let b = p.backoff(attempt);
                assert!(b > prev, "{}: backoff({attempt}) not increasing", p.label());
                cum += b;
                assert!(cum > cum_prev, "retry times must advance");
                prev = b;
                cum_prev = cum;
            }
        }
    }

    #[test]
    fn node_loss_windows_are_stable_within_a_window() {
        let plan = FaultPlan::new(FaultConfig {
            node_loss_rate: 0.5,
            node_loss_window: Nanos::from_secs(1),
            ..FaultConfig::none(5)
        });
        // All instants inside one window agree.
        for node in 0..8usize {
            let w0 = plan.node_down(node, Nanos::from_millis(10));
            for ms in [0u64, 250, 500, 999] {
                assert_eq!(w0, plan.node_down(node, Nanos::from_millis(ms)));
            }
        }
        // Across many windows the rate shows up.
        let downs = (0..2000u64)
            .filter(|&w| plan.node_down(3, Nanos::from_secs(w)))
            .count();
        assert!((800..1200).contains(&downs), "downs {downs}/2000");
    }
}
