//! Fig. 8 — restoration overhead deconstructed into its thirteen phases,
//! plus restore/snapshot absolutes, for the 14 representative benchmarks.
//!
//! ```text
//! cargo run --release -p gh-bench --bin fig8
//! ```

use gh_bench::micro_harness::{MicroMode, MicroRig};
use gh_bench::{fmt_ms, smoke, write_csv};
use gh_faas::{Container, Request};
use gh_functions::catalog::representative_14;
use gh_functions::FunctionSpec;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::breakdown::{ALL_PHASES, NUM_PHASES};
use groundhog_core::GroundhogConfig;

/// The benchmark set, trimmed under `GH_BENCH_SMOKE`.
fn benches() -> Vec<FunctionSpec> {
    let mut all = representative_14();
    if smoke() {
        all.truncate(4);
    }
    all
}

fn main() {
    println!("== Fig. 8 — restoration breakdown (% of restore) + snapshot cost ==\n");
    let mut headers: Vec<&str> = vec![
        "benchmark",
        "restore ms",
        "pages K",
        "restored K",
        "snapshot ms",
    ];
    let labels: Vec<String> = ALL_PHASES.iter().map(|p| p.label().to_string()).collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut table = TextTable::new(&headers);
    let mut csv = TextTable::new(&headers);

    for spec in benches() {
        let mut c = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 8)
            .expect("gh container");
        // Warm-up + measured requests; average the phase fractions.
        let mut sum = groundhog_core::Breakdown::new();
        let mut restored = 0u64;
        let reqs = 4;
        for i in 0..reqs + 1 {
            let out = c
                .invoke(&Request::new(i + 1, "client", spec.input_kb))
                .unwrap();
            if i == 0 {
                continue; // warm-up
            }
            let post = c.stats.last_post.as_ref().unwrap();
            let report = post.restore.as_ref().expect("GH restores");
            sum.absorb(&report.breakdown);
            restored += report.pages_restored;
            let _ = out;
        }
        let total_ms = sum.total().as_millis_f64() / reqs as f64;
        let fracs: [f64; NUM_PHASES] = sum.fractions();
        let mapped = c.kernel.process(c.fproc.pid).unwrap().mem.mapped_pages();
        let snapshot_ms = c
            .stats
            .prepare
            .as_ref()
            .map(|p| p.duration.as_millis_f64())
            .unwrap_or(0.0);
        let mut row = vec![
            spec.name.to_string(),
            fmt_ms(total_ms),
            format!("{:.2}", mapped as f64 / 1000.0),
            format!("{:.2}", restored as f64 / reqs as f64 / 1000.0),
            fmt_ms(snapshot_ms),
        ];
        row.extend(fracs.iter().map(|f| format!("{:.1}%", f * 100.0)));
        table.row_owned(row.clone());
        csv.row_owned(row);
        println!(
            "  {:18} restore {:>8}ms  (paper: {:>7}ms)   snapshot {:>8}ms",
            spec.name,
            fmt_ms(total_ms),
            fmt_ms(spec.paper_restore_ms),
            fmt_ms(snapshot_ms),
        );
    }
    println!("\n{}", table.render());
    write_csv("fig8", &csv);
    println!(
        "Expected shapes (paper §5.4/§5.5): memory restoration dominates write-heavy \
         functions (base64(n), img-resize(n)); scanning page metadata dominates \
         large-address-space Node.js functions; interrupting/registers/detach dominate \
         tiny C restores; snapshot cost scales with resident pages."
    );

    lanes_sweep();
    lazy_sweep();
}

/// Restore-lanes sweep: the same restore work executed with the page
/// writeback split over 1/2/4/8 parallel copy lanes. Only the writeback
/// pass parallelizes; ptrace-serialized phases bound the speedup
/// (Amdahl), so scan-dominated Node.js functions gain least.
fn lanes_sweep() {
    const LANES: [usize; 4] = [1, 2, 4, 8];
    println!("\n== restore_lanes sweep — mean restore ms over 4 requests ==\n");
    let headers: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(LANES.iter().map(|l| format!("lanes={l}")))
        .chain(std::iter::once("speedup@8".to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);
    let mut csv = TextTable::new(&header_refs);

    for spec in benches() {
        let mut row = vec![spec.name.to_string()];
        let mut totals = Vec::new();
        for &lanes in &LANES {
            let cfg = GroundhogConfig::with_lanes(lanes);
            let mut c =
                Container::cold_start(&spec, StrategyKind::Gh, cfg, 8).expect("gh container");
            let reqs = 4;
            let mut sum_ms = 0.0;
            for i in 0..reqs + 1 {
                c.invoke(&Request::new(i + 1, "client", spec.input_kb))
                    .unwrap();
                if i == 0 {
                    continue; // warm-up
                }
                let post = c.stats.last_post.as_ref().unwrap();
                sum_ms += post.restore.as_ref().unwrap().total.as_millis_f64();
            }
            let mean = sum_ms / reqs as f64;
            totals.push(mean);
            row.push(fmt_ms(mean));
        }
        row.push(format!("{:.2}x", totals[0] / totals[3].max(1e-9)));
        table.row_owned(row.clone());
        csv.row_owned(row);
    }
    println!("{}", table.render());
    write_csv("fig8_lanes", &csv);
    println!(
        "Writeback-heavy restores (base64(n), img-resize(n)) approach the lane count; \
         scan-dominated restores (get-time(n)) stay flat — the pagemap scan is serial."
    );
}

/// Eager-vs-lazy sweep across write-set densities on the §5.2
/// microbenchmark (ISSUE 3): the same dirty set restored eagerly (page
/// writeback on the inter-request critical path) versus lazily
/// (`DeferArm` + first-touch fault-in during the next request). The
/// microbenchmark reads *every* mapped page each invocation, so every
/// deferred page faults back — the worst case for lazy's total work —
/// yet the critical-path restore must shrink at every density.
fn lazy_sweep() {
    const PAGES: u64 = 4_000;
    let densities: &[f64] = if smoke() {
        &[0.05, 0.25, 0.75]
    } else {
        &[0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9]
    };
    let reqs = if smoke() { 3 } else { 6 };
    println!("\n== eager vs lazy restore — critical-path restore ms by write-set density ==\n");
    let headers = [
        "dirty %",
        "eager restore ms",
        "lazy restore ms",
        "restore cut",
        "eager exec ms",
        "lazy exec ms",
        "fault overhead ms",
    ];
    let mut table = TextTable::new(&headers);
    let mut csv = TextTable::new(&headers);
    // Density cells are independent (each builds two fresh rigs) —
    // sharded across worker threads with an ordered merge.
    let rows = gh_bench::harness::run_cells(
        densities,
        gh_bench::harness::serial_requested(),
        |&density| {
            let eager = MicroRig::build_cfg(PAGES, MicroMode::Gh, GroundhogConfig::gh())
                .measure(density, reqs);
            let lazy = MicroRig::build_cfg(PAGES, MicroMode::Gh, GroundhogConfig::lazy())
                .measure(density, reqs);
            let e_restore = eager.cycle_ms - eager.exec_ms;
            let l_restore = lazy.cycle_ms - lazy.exec_ms;
            assert!(
                l_restore < e_restore,
                "lazy must cut the critical-path restore at density {density}: \
                 {l_restore:.3} !< {e_restore:.3}"
            );
            vec![
                format!("{:.0}%", density * 100.0),
                fmt_ms(e_restore),
                fmt_ms(l_restore),
                format!("{:.2}x", e_restore / l_restore.max(1e-9)),
                fmt_ms(eager.exec_ms),
                fmt_ms(lazy.exec_ms),
                fmt_ms(lazy.exec_ms - eager.exec_ms),
            ]
        },
    );
    for row in rows {
        table.row_owned(row.clone());
        csv.row_owned(row);
    }
    println!("{}", table.render());
    // `results/fig8_lazy.csv` is checked in as the recorded full sweep;
    // the truncated smoke run must not clobber it.
    write_csv(
        if smoke() {
            "fig8_lazy_smoke"
        } else {
            "fig8_lazy"
        },
        &csv,
    );
    println!(
        "Lazy restoration cuts the critical-path restore at every density; the deferred \
         pages come back as first-touch faults inside the next request (the exec delta). \
         With an idle-time drain (GroundhogConfig::lazy_drain) and sparse writers, that \
         delta moves into idle gaps instead — see tests/lazy_restore.rs."
    );
}
