//! Table 3 — restoration statistics per benchmark (sorted by restore
//! time), next to the paper's reported values.
//!
//! ```text
//! cargo run --release -p gh-bench --bin table3
//! ```

use gh_bench::{fmt_ms, latency_requests, write_csv};
use gh_faas::{Container, Request};
use gh_functions::catalog::catalog;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

struct Row {
    name: String,
    base_inv_ms: f64,
    gh_inv_ms: f64,
    restore_ms: f64,
    pages_k: f64,
    faults_k: f64,
    restored_k: f64,
    paper_restore_ms: f64,
    paper_pages_k: f64,
    paper_restored_k: f64,
}

fn main() {
    let n = latency_requests().min(8);
    println!("== Table 3 — restoration statistics (sorted by restore time) ==\n");
    let mut rows = Vec::new();
    for spec in catalog() {
        // Base invoker latency from a short latency run.
        let base = gh_bench::run_latency(&spec, StrategyKind::Base, n, 30).expect("base");
        // GH detail from a driven container.
        let mut c = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 30)
            .expect("gh container");
        let mut inv_ms = 0.0;
        let mut restore_ms = 0.0;
        let mut faults = 0u64;
        let mut restored = 0u64;
        for i in 0..n as u64 {
            let out = c
                .invoke(&Request::new(i + 1, "client", spec.input_kb))
                .unwrap();
            inv_ms += out.invoker_latency.as_millis_f64();
            restore_ms += out.off_path.as_millis_f64();
            faults += out.exec.faults.total_faults();
            let rep = c
                .stats
                .last_post
                .as_ref()
                .unwrap()
                .restore
                .as_ref()
                .unwrap();
            restored += rep.pages_restored;
        }
        let mapped = c.kernel.process(c.fproc.pid).unwrap().mem.mapped_pages();
        rows.push(Row {
            name: spec.name.to_string(),
            base_inv_ms: base.invoker_mean_ms(),
            gh_inv_ms: inv_ms / n as f64,
            restore_ms: restore_ms / n as f64,
            pages_k: mapped as f64 / 1000.0,
            faults_k: faults as f64 / n as f64 / 1000.0,
            restored_k: restored as f64 / n as f64 / 1000.0,
            paper_restore_ms: spec.paper_restore_ms,
            paper_pages_k: spec.total_kpages,
            paper_restored_k: spec.written_kpages,
        });
    }
    rows.sort_by(|a, b| a.restore_ms.partial_cmp(&b.restore_ms).unwrap());

    let mut table = TextTable::new(&[
        "benchmark",
        "base inv ms",
        "GH inv ms",
        "restore ms",
        "pages K",
        "faults K",
        "restored K",
        "paper restore",
        "paper pages",
        "paper restored",
    ]);
    for r in &rows {
        table.row_owned(vec![
            r.name.clone(),
            fmt_ms(r.base_inv_ms),
            fmt_ms(r.gh_inv_ms),
            format!("{:.2}", r.restore_ms),
            format!("{:.2}", r.pages_k),
            format!("{:.2}", r.faults_k),
            format!("{:.2}", r.restored_k),
            format!("{:.2}", r.paper_restore_ms),
            format!("{:.2}", r.paper_pages_k),
            format!("{:.2}", r.paper_restored_k),
        ]);
    }
    println!("{}", table.render());
    write_csv("table3", &table);
    println!(
        "Expected shape: restore time ordered by (restored pages, address-space size); \
         C benchmarks sub-millisecond, Python a few ms, Node.js 12–160 ms."
    );
}
