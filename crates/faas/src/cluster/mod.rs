//! Cluster-scale simulation: N worker nodes, each an independent fleet
//! on its own virtual timeline, behind a deterministic placement
//! front-end.
//!
//! `run_fleet` drives one pool on one host; the paper's setting is a
//! cloud. This module models the next level up:
//!
//! - every **node** hosts a pool per function deployed to it (its
//!   replica set, see [`place`]) and drives all of its pools through
//!   one node-local [`gh_sim::event::EventQueue`] — restore-aware
//!   scheduling, admission queues and overlap accounting all work
//!   per-node exactly as in [`crate::fleet`];
//! - the **front-end** ([`Placer`]) assigns each trace event to a node
//!   using only deterministic coordinator state (cursors, expected
//!   work), never node progress;
//! - the **workload** is a seeded [`TraceGen`] stream shared by
//!   construction: every node re-runs the generator + placer locally
//!   and keeps the arrivals placed on it, so no materialized trace or
//!   cross-node channel exists and trace memory is O(1) even at 10⁷
//!   requests.
//!
//! # Host-parallel execution
//!
//! Because placement never reads node state, a node's entire timeline
//! is a pure function of `(trace config, catalog, cluster config, node
//! index)`. Node timelines are therefore *embarrassingly* parallel —
//! the PR 6 plan/shard/merge discipline with the sharding moved up one
//! level: workers on [`std::thread::scope`] claim node indices from an
//! atomic cursor (same work-stealing as `gh_bench::harness::run_cells`)
//! and the coordinator merges per-node results **in node-index order**.
//! Per-node stats live in exact-merge [`QuantileSketch`]es, so the
//! merged result is independent of completion order and bit-identical
//! to the serial reference — enforced by `tests/cluster_oracle.rs`
//! across seeds × policies × node counts.
//!
//! Stats memory is sketch-bounded: each node carries two fixed-size
//! sketches (~30 KiB each) regardless of request count
//! ([`ClusterResult::stats_bytes`]).
//!
//! # Failure-aware autoscaling
//!
//! [`scale`] adds a pure virtual-time controller over the node count:
//! armed via [`ClusterConfig::with_autoscale`], every node folds the
//! same [`NodeScaler`] over the full backend-bound arrival stream
//! (exactly like the placer), growing the active set under queue
//! pressure or observed loss and cordoning + draining the top node in
//! quiet windows. Because the fold reads only the trace prefix and the
//! deterministic fault schedule, autoscaled placement remains
//! coordinator-pure and host-parallel runs stay bit-identical to
//! serial. Redeploy schedules fold into the gateway front the same way
//! ([`ClusterConfig::with_redeploys`]): generation bumps invalidate
//! cached results at pure points of the trace clock.

pub mod front;
pub mod place;
pub mod scale;

use gh_functions::FunctionSpec;
use gh_gateway::{GatewayConfig, GatewayStats};
use gh_isolation::{StrategyError, StrategyKind};
use gh_sim::event::EventQueue;
use gh_sim::stats::throughput_rps;
use gh_sim::{Nanos, QuantileSketch};
use groundhog_core::GroundhogConfig;

use crate::fault::{FaultConfig, FaultPlan, FaultStats};
use crate::fleet::{par, DepthTracker, ExecMode, Pending, Pool, RoutePolicy, Router};
use crate::trace::{TraceConfig, TraceGen};

use std::cell::Cell;
use std::rc::Rc;

pub use front::{FrontDecision, GatewayFront};
pub use place::{PlacePolicy, Placer};
pub use scale::{NodeScaleConfig, NodeScaler, ScaleStats};

/// Cluster topology and per-node pool shape.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Simulated worker nodes.
    pub nodes: usize,
    /// Candidate nodes per function (`1..=nodes`).
    pub replicas: usize,
    /// Containers per (node, function) pool.
    pub slots_per_pool: usize,
    /// Front-end placement policy.
    pub policy: PlacePolicy,
    /// Isolation strategy every container runs.
    pub kind: StrategyKind,
    /// Seed for deployment hashing and per-pool container seeds (the
    /// trace carries its own seed).
    pub seed: u64,
    /// Fault injection, if armed (see [`ClusterConfig::with_faults`]).
    /// `None` keeps the run byte-identical to the fault-free reference.
    pub faults: Option<FaultConfig>,
    /// Failure-aware node autoscaling, if armed. Each node folds the
    /// same [`NodeScaler`] over the full backend-bound arrival stream
    /// (like the placer), so the active set is coordinator-pure; `None`
    /// keeps placement byte-identical to the unscaled reference.
    pub autoscale: Option<NodeScaleConfig>,
    /// Time-ordered `(instant, fn)` redeploy schedule folded into the
    /// gateway front's result cache (generation bumps drop cached
    /// results; see [`GatewayFront::with_redeploys`]). Ignored without
    /// a gateway; empty keeps the front byte-identical to
    /// [`GatewayFront::new`].
    pub redeploys: Vec<(Nanos, u32)>,
}

impl ClusterConfig {
    /// `nodes` nodes under `policy`, two replicas per function (one
    /// when the cluster has a single node), two containers per pool.
    pub fn new(nodes: usize, policy: PlacePolicy, kind: StrategyKind, seed: u64) -> ClusterConfig {
        assert!(nodes > 0, "need at least one node");
        ClusterConfig {
            nodes,
            replicas: 2.min(nodes),
            slots_per_pool: 2,
            policy,
            kind,
            seed,
            faults: None,
            autoscale: None,
            redeploys: Vec::new(),
        }
    }

    /// Arms fault injection on every node. Inert configs (all rates
    /// zero) are dropped so a disabled plan can never perturb the run.
    pub fn with_faults(mut self, cfg: FaultConfig) -> ClusterConfig {
        self.faults = cfg.is_active().then_some(cfg);
        self
    }

    /// Arms the failure-aware autoscaler on the placement fold.
    pub fn with_autoscale(mut self, cfg: NodeScaleConfig) -> ClusterConfig {
        self.autoscale = Some(cfg);
        self
    }

    /// Sets the redeploy schedule the gateway front folds into its
    /// result cache (must be time-ordered).
    pub fn with_redeploys(mut self, schedule: Vec<(Nanos, u32)>) -> ClusterConfig {
        self.redeploys = schedule;
        self
    }
}

/// Per-node load figures in the merged result.
#[derive(Clone, Copy, Debug)]
pub struct NodeLoad {
    /// Requests this node served.
    pub completed: u64,
    /// Containers the node hosted (pools × slots).
    pub containers: u32,
    /// Total busy time across the node's containers, ms.
    pub busy_ms: f64,
}

/// Outcome of one cluster run (all nodes merged, node-index order).
#[derive(Clone, Debug)]
pub struct ClusterResult {
    /// Nodes simulated.
    pub nodes: usize,
    /// Placement policy label.
    pub policy: &'static str,
    /// Requests offered by the trace.
    pub requests: u64,
    /// Requests completed (equals `requests`: queues drain).
    pub completed: u64,
    /// Completions per second of trace span.
    pub goodput_rps: f64,
    /// Mean sojourn (arrival → response, queueing included), ms. Exact.
    pub mean_ms: f64,
    /// Median sojourn, ms (sketch, ≤1.6% quantization).
    pub p50_ms: f64,
    /// 95th-percentile sojourn, ms.
    pub p95_ms: f64,
    /// 99th-percentile sojourn, ms.
    pub p99_ms: f64,
    /// Mean aggregate queue depth over node scheduling events.
    pub queue_mean: f64,
    /// 99th-percentile aggregate queue depth.
    pub queue_p99: f64,
    /// Total restore time charged across the cluster, ms.
    pub restore_total_ms: f64,
    /// Fraction of restore time hidden in idle gaps.
    pub restore_overlap_ratio: f64,
    /// First-touch lazy-restore faults across the cluster.
    pub lazy_faults: u64,
    /// Mean container utilization over the trace span.
    pub utilization: f64,
    /// Max over mean per-node completions (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Containers across all nodes.
    pub containers: u32,
    /// Fault-injection accounting, summed across nodes (all zero on a
    /// fault-free run). `node_losses` counts arrivals failed over to
    /// another replica because their placed node was down; `abandoned`
    /// includes requests dropped because every replica was down.
    pub faults: FaultStats,
    /// Autoscaler counters, when [`ClusterConfig::autoscale`] is armed.
    /// Every node computes the identical fold, so this is node 0's copy
    /// (not a sum).
    pub scale: Option<ScaleStats>,
    /// Per-node breakdown, node-index order.
    pub per_node: Vec<NodeLoad>,
    /// Bytes of percentile-tracking state across all nodes — constant
    /// in the request count (two fixed-size sketches per node).
    pub stats_bytes: usize,
}

/// One node's raw outcome, before the cluster merge.
struct NodeResult {
    completed: u64,
    sojourns: QuantileSketch,
    depth: DepthTracker,
    restore_total: Nanos,
    restore_hidden: Nanos,
    lazy_faults: u64,
    busy: Nanos,
    containers: u32,
    span_end: Nanos,
    faults: FaultStats,
    scale: Option<ScaleStats>,
}

/// Node-local events: a trace arrival reaching the node, a container
/// (pool, slot) finishing its restore, or a parked retry (token into
/// the node's park table) coming due after its backoff.
enum NodeEv {
    Arrival,
    Ready(u32, u32),
    Retry(u32),
}

/// Runs node `node`'s entire timeline: re-generates the trace, filters
/// it through the placer, and drives the node's pools through one local
/// event queue. Pure: no shared state, so serial and parallel callers
/// get identical results.
fn run_node(
    node: usize,
    trace_cfg: &TraceConfig,
    catalog: &[FunctionSpec],
    ccfg: &ClusterConfig,
    gh: &GroundhogConfig,
    gcfg: Option<&GatewayConfig>,
) -> Result<NodeResult, StrategyError> {
    let nf = trace_cfg.functions as usize;
    assert!(
        catalog.len() >= nf,
        "catalog must cover every trace function"
    );
    let mut placer = Placer::new(
        ccfg.policy,
        ccfg.nodes,
        ccfg.replicas,
        &catalog[..nf],
        ccfg.seed,
    );

    // Pools for the functions deployed here, ascending fn id. Each pool
    // seeds its containers from the (cluster seed, node, fn) hash so
    // node timelines are independent of which host thread runs them.
    let mut pools: Vec<Pool> = Vec::new();
    let mut routers: Vec<Router> = Vec::new();
    let mut restore_cost: Vec<Nanos> = Vec::new();
    let mut pool_of: Vec<Option<u32>> = vec![None; nf];
    for (f, spec) in catalog.iter().enumerate().take(nf) {
        if !placer.hosts(node, f) {
            continue;
        }
        let seed = place::mix(ccfg.seed ^ ((node as u64) << 32) ^ f as u64);
        pool_of[f] = Some(pools.len() as u32);
        pools.push(Pool::build(
            spec,
            ccfg.kind,
            gh.clone(),
            ccfg.slots_per_pool,
            seed,
        )?);
        routers.push(Router::new(RoutePolicy::RoundRobin));
        restore_cost.push(Nanos::from_millis_f64(spec.paper_restore_ms));
    }
    let containers: u32 = pools.iter().map(|p| p.slots.len() as u32).sum();
    let principals: Vec<String> = (0..trace_cfg.principals)
        .map(|p| format!("user-{p}"))
        .collect();

    // Fault plan, if armed. Draws are pure hashes of (seed, request,
    // attempt) / (seed, node, window), so every node computes identical
    // failover decisions and a node's own faults stay node-pure.
    let plan = ccfg.faults.filter(|c| c.is_active()).map(FaultPlan::new);
    let reroute = plan.map(|p| p.config().retry.reroute).unwrap_or(false);

    // The node's trace slice: fold *every* global event through the
    // gateway front (if any), step the placer over every backend-bound
    // event (its cursors/loads depend on the full prefix), keep ours.
    // Front and placer are both pure folds over the trace, so every
    // node replays identical decision sequences. Under node loss the
    // fold also replays the failover scan: an arrival placed on a down
    // node moves to the first up candidate in replica order (counted by
    // the receiving node), or is dropped at the front when every
    // replica is down (counted once, by node 0's replay).
    let mut front = gcfg.map(|g| GatewayFront::with_redeploys(g, &ccfg.redeploys));
    let mut gen = TraceGen::new(trace_cfg);
    let feed_plan = plan;
    let failovers = Rc::new(Cell::new(0u64));
    let all_down = Rc::new(Cell::new(0u64));
    let (nl, ad) = (failovers.clone(), all_down.clone());
    // Autoscaler, if armed: folded over every backend-bound arrival
    // (like the placer), so each node replays the identical active-set
    // history. Stats are exported through a cell because the fold lives
    // inside the closure; every node's copy is identical, merge keeps
    // node 0's.
    let mut scaler = ccfg
        .autoscale
        .map(|sc| NodeScaler::new(sc, ccfg.nodes, trace_cfg.origin));
    let scale_out = Rc::new(Cell::new(None::<ScaleStats>));
    let scale_cell = scale_out.clone();
    let mut next_local = move || {
        gen.by_ref().find(|ev| {
            let backend = match &mut front {
                None => true,
                Some(f) => {
                    f.decide(ev, catalog[ev.fn_id as usize].output_kb) == FrontDecision::Backend
                }
            };
            if !backend {
                return false;
            }
            let f = ev.fn_id as usize;
            let base = placer.place(f);
            // The scaler observes the placed node's load (and whether it
            // was lost) and may redirect away from a cordoned node.
            let target = match &mut scaler {
                None => base,
                Some(s) => {
                    let lost = feed_plan
                        .as_ref()
                        .map(|pl| pl.node_down(base, ev.at))
                        .unwrap_or(false);
                    let cost = Nanos::from_millis_f64(catalog[f].base_e2e_ms);
                    s.observe(ev.at, base, cost, lost);
                    let t = if s.placeable(base) {
                        base
                    } else {
                        match placer.candidates(f).find(|&n| s.placeable(n)) {
                            Some(c) => {
                                s.note_redirect();
                                c
                            }
                            None => base,
                        }
                    };
                    scale_cell.set(Some(s.stats()));
                    t
                }
            };
            let Some(pl) = &feed_plan else {
                return target == node;
            };
            if !pl.node_down(target, ev.at) {
                return target == node;
            }
            // Failover scan: first up replica, preferring nodes the
            // scaler still places on (a cordoned node is a last resort,
            // not a dead one).
            let up: Vec<usize> = placer
                .candidates(f)
                .filter(|&n| !pl.node_down(n, ev.at))
                .collect();
            let pick = match &scaler {
                Some(s) => up
                    .iter()
                    .copied()
                    .find(|&n| s.placeable(n))
                    .or_else(|| up.first().copied()),
                None => up.first().copied(),
            };
            match pick {
                Some(n) if n == node => {
                    nl.set(nl.get() + 1);
                    true
                }
                Some(_) => false,
                None => {
                    if node == 0 {
                        ad.set(ad.get() + 1);
                    }
                    false
                }
            }
        })
    };

    let mut events: EventQueue<NodeEv> = EventQueue::new();
    let mut upcoming = next_local();
    if let Some(ev) = &upcoming {
        events.schedule(ev.at, NodeEv::Arrival);
    }
    let mut sojourns = QuantileSketch::new();
    let mut depth = DepthTracker::new();
    let mut completed = 0u64;
    let mut queued = 0usize;
    // Park table for killed requests awaiting their backoff: token →
    // (pending, pool, slot it died on). Retries stay on this node —
    // rerouting moves them to another container in the same pool, never
    // across nodes, so node timelines remain pure.
    let mut parked: Vec<Option<(Pending, usize, usize)>> = Vec::new();
    let mut parked_live = 0usize;
    let mut fstats = FaultStats::default();

    while let Some((now, ev)) = events.pop() {
        let (pi, si) = match ev {
            NodeEv::Arrival => {
                let a = upcoming.take().expect("arrival without a trace event");
                let pi = pool_of[a.fn_id as usize].expect("placed on a non-replica") as usize;
                let pool = &mut pools[pi];
                let si = routers[pi].route(
                    now,
                    &principals[a.principal as usize],
                    restore_cost[pi],
                    &pool.slots,
                );
                pool.slots[si].queue.push(Pending {
                    id: a.seq,
                    principal: principals[a.principal as usize].clone(),
                    input_kb: pool.spec.input_kb,
                    arrival: a.at,
                    payload_hash: a.payload_hash,
                    idempotent: a.idempotent,
                    attempt: 1,
                });
                queued += 1;
                depth.record(queued);
                upcoming = next_local();
                if let Some(next) = &upcoming {
                    events.schedule(next.at, NodeEv::Arrival);
                }
                (pi, si)
            }
            NodeEv::Ready(pi, si) => (pi as usize, si as usize),
            NodeEv::Retry(token) => {
                let (p, pi, died_si) = parked[token as usize]
                    .take()
                    .expect("retry token fired twice");
                parked_live -= 1;
                let si = if reroute {
                    routers[pi].route_avoiding(
                        now,
                        &p.principal,
                        restore_cost[pi],
                        &pools[pi].slots,
                        Some(died_si),
                    )
                } else {
                    died_si
                };
                pools[pi].slots[si].queue.push(p);
                queued += 1;
                depth.record(queued);
                (pi, si)
            }
        };
        match &plan {
            None => {
                if let Some(d) = pools[pi].slots[si].dispatch(now)? {
                    sojourns.record_nanos(d.sojourn);
                    completed += 1;
                    queued -= 1;
                    events.schedule(d.ready_at, NodeEv::Ready(pi as u32, si as u32));
                }
            }
            Some(pl) => {
                let slot = &mut pools[pi].slots[si];
                let head = if slot.idle_at(now) {
                    slot.queue.peek().map(|p| (p.id, p.attempt))
                } else {
                    None
                };
                if let Some((id, attempt)) = head {
                    if let Some(frac) = pl.death(id, attempt) {
                        let (mut pending, ready) =
                            slot.crash(now, frac).expect("idle slot with a queued head");
                        queued -= 1;
                        fstats.deaths += 1;
                        if pl.death_after_commit(id, attempt) {
                            fstats.duplicates += 1;
                        }
                        if attempt < pl.max_attempts() {
                            fstats.retries += 1;
                            pending.attempt += 1;
                            let backoff_at = now + pl.backoff(attempt);
                            let retry_at = if reroute {
                                backoff_at
                            } else {
                                backoff_at.max(ready)
                            };
                            let token = parked.len() as u32;
                            parked.push(Some((pending, pi, si)));
                            parked_live += 1;
                            events.schedule(retry_at, NodeEv::Retry(token));
                        } else {
                            fstats.abandoned += 1;
                        }
                        events.schedule(ready, NodeEv::Ready(pi as u32, si as u32));
                    } else if let Some(d) = slot.dispatch(now)? {
                        sojourns.record_nanos(d.sojourn);
                        completed += 1;
                        queued -= 1;
                        let ready = if pl.restore_failure(id, attempt) {
                            fstats.restore_failures += 1;
                            slot.fail_restore()
                        } else {
                            d.ready_at
                        };
                        events.schedule(ready, NodeEv::Ready(pi as u32, si as u32));
                    }
                }
            }
        }
        if matches!(ev, NodeEv::Ready(..)) {
            depth.record(queued);
        }
    }
    debug_assert_eq!(queued, 0, "queues must drain");
    debug_assert_eq!(parked_live, 0, "every parked retry must fire");
    fstats.node_losses = failovers.get();
    fstats.abandoned += all_down.get();

    let mut restore_total = Nanos::ZERO;
    let mut restore_hidden = Nanos::ZERO;
    let mut lazy_faults = 0u64;
    let mut busy = Nanos::ZERO;
    let mut span_end = trace_cfg.origin;
    for pool in &mut pools {
        for s in &mut pool.slots {
            s.settle();
            restore_total += s.restore_total;
            restore_hidden += s.restore_hidden;
            lazy_faults += s.lazy_faults;
            busy += s.busy;
            if s.served > 0 {
                span_end = span_end.max(s.container.now());
            }
        }
    }
    Ok(NodeResult {
        completed,
        sojourns,
        depth,
        restore_total,
        restore_hidden,
        lazy_faults,
        busy,
        containers,
        span_end,
        faults: fstats,
        scale: scale_out.get(),
    })
}

/// Front-side outcome of a gateway-wrapped run: requests that never
/// reached a node, plus the hit latencies to fold into the sojourn
/// sketch.
struct FrontOutcome {
    hits: u64,
    hit_sojourns: QuantileSketch,
}

/// Merges per-node outcomes (already in node-index order) into the
/// cluster result, folding in the gateway front's outcome when one ran.
/// Sketch merges are exact, so this is independent of how the nodes
/// were executed.
fn merge(
    nodes: Vec<NodeResult>,
    trace_cfg: &TraceConfig,
    ccfg: &ClusterConfig,
    front: Option<&FrontOutcome>,
) -> ClusterResult {
    let mut sojourns = QuantileSketch::new();
    let mut depth = DepthTracker::new();
    let mut completed = 0u64;
    let mut restore_total = Nanos::ZERO;
    let mut restore_hidden = Nanos::ZERO;
    let mut lazy_faults = 0u64;
    let mut busy = Nanos::ZERO;
    let mut containers = 0u32;
    let mut span_end = trace_cfg.origin;
    let mut faults = FaultStats::default();
    let mut per_node = Vec::with_capacity(nodes.len());
    for n in &nodes {
        sojourns.merge(&n.sojourns);
        depth.merge(&n.depth);
        faults.merge(&n.faults);
        completed += n.completed;
        restore_total += n.restore_total;
        restore_hidden += n.restore_hidden;
        lazy_faults += n.lazy_faults;
        busy += n.busy;
        containers += n.containers;
        span_end = span_end.max(n.span_end);
        per_node.push(NodeLoad {
            completed: n.completed,
            containers: n.containers,
            busy_ms: n.busy.as_millis_f64(),
        });
    }
    if let Some(f) = front {
        // Cache hits are served requests with front-side sojourns; the
        // span is untouched (hits never run on a node). With a disabled
        // gateway both counts are zero and the merge is the identity.
        completed += f.hits;
        sojourns.merge(&f.hit_sojourns);
    }
    let span = span_end - trace_cfg.origin;
    let utilization = if span.is_zero() || containers == 0 {
        0.0
    } else {
        (busy.as_secs_f64() / (containers as f64 * span.as_secs_f64())).min(1.0)
    };
    let imbalance = if completed == 0 {
        1.0
    } else {
        let max = per_node.iter().map(|n| n.completed).max().unwrap_or(0);
        max as f64 * nodes.len() as f64 / completed as f64
    };
    ClusterResult {
        nodes: nodes.len(),
        policy: ccfg.policy.label(),
        requests: trace_cfg.requests,
        completed,
        goodput_rps: throughput_rps(completed as usize, span),
        mean_ms: sojourns.mean_ms(),
        p50_ms: sojourns.quantile_ms(50.0),
        p95_ms: sojourns.quantile_ms(95.0),
        p99_ms: sojourns.quantile_ms(99.0),
        queue_mean: depth.mean(),
        queue_p99: depth.percentile(99.0),
        restore_total_ms: restore_total.as_millis_f64(),
        restore_overlap_ratio: if restore_total.is_zero() {
            1.0
        } else {
            restore_hidden.as_secs_f64() / restore_total.as_secs_f64()
        },
        lazy_faults,
        utilization,
        imbalance,
        containers,
        faults,
        scale: nodes.first().and_then(|n| n.scale),
        per_node,
        stats_bytes: nodes.len() * 2 * QuantileSketch::memory_bytes(),
    }
}

/// Runs the trace through the cluster in [`ExecMode::Auto`] (node-
/// parallel when ≥ 2 nodes and ≥ 2 threads; honors `--serial`,
/// `GH_SERIAL=1` and `GH_THREADS` like the fleet).
pub fn run_cluster(
    trace_cfg: &TraceConfig,
    catalog: &[FunctionSpec],
    ccfg: &ClusterConfig,
    gh: GroundhogConfig,
) -> Result<ClusterResult, StrategyError> {
    run_cluster_with(trace_cfg, catalog, ccfg, gh, ExecMode::Auto)
}

/// [`run_cluster`] with an explicit [`ExecMode`] — the entry point of
/// the cluster differential oracle and the determinism CI job. The
/// parallel path is bit-identical to serial: node timelines are pure
/// functions of their inputs and the merge runs in node-index order.
///
/// ```
/// use gh_faas::cluster::{run_cluster_with, ClusterConfig, PlacePolicy};
/// use gh_faas::fleet::ExecMode;
/// use gh_faas::trace::{synthetic_catalog, TraceConfig};
/// use gh_isolation::StrategyKind;
/// use groundhog_core::GroundhogConfig;
///
/// let catalog = synthetic_catalog(8, 7);
/// let trace = TraceConfig::new(8, 200, 500.0, 7);
/// let ccfg = ClusterConfig::new(2, PlacePolicy::LeastLoaded, StrategyKind::Gh, 7);
/// let serial = run_cluster_with(&trace, &catalog, &ccfg, GroundhogConfig::gh(), ExecMode::Serial)?;
/// let par = run_cluster_with(
///     &trace, &catalog, &ccfg, GroundhogConfig::gh(), ExecMode::Parallel { threads: 2 },
/// )?;
/// assert_eq!(format!("{serial:?}"), format!("{par:?}"), "node-parallelism is invisible");
/// # Ok::<(), gh_isolation::StrategyError>(())
/// ```
pub fn run_cluster_with(
    trace_cfg: &TraceConfig,
    catalog: &[FunctionSpec],
    ccfg: &ClusterConfig,
    gh: GroundhogConfig,
    mode: ExecMode,
) -> Result<ClusterResult, StrategyError> {
    let nodes = run_nodes(trace_cfg, catalog, ccfg, &gh, mode, None)?;
    Ok(merge(nodes, trace_cfg, ccfg, None))
}

/// Runs every node timeline, serial or work-stealing parallel, and
/// returns the results in node-index order. With `gcfg` set, each node
/// replays the deterministic [`GatewayFront`] in front of placement.
fn run_nodes(
    trace_cfg: &TraceConfig,
    catalog: &[FunctionSpec],
    ccfg: &ClusterConfig,
    gh: &GroundhogConfig,
    mode: ExecMode,
    gcfg: Option<&GatewayConfig>,
) -> Result<Vec<NodeResult>, StrategyError> {
    let threads = match mode {
        ExecMode::Serial => 1,
        ExecMode::Parallel { threads } => threads,
        ExecMode::Auto => {
            if par::serial_requested() {
                1
            } else {
                par::configured_threads()
            }
        }
    };
    let n = ccfg.nodes;
    let results: Vec<NodeResult> = if threads >= 2 && n >= 2 {
        // Work-stealing over node indices; merge order is fixed by
        // index, so completion order is irrelevant.
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = threads.min(n);
        let mut collected: Vec<Vec<(usize, Result<NodeResult, StrategyError>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if i >= n {
                                    break local;
                                }
                                local.push((i, run_node(i, trace_cfg, catalog, ccfg, gh, gcfg)));
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("node worker panicked"))
                    .collect()
            });
        let mut slots: Vec<Option<Result<NodeResult, StrategyError>>> =
            (0..n).map(|_| None).collect();
        for (i, r) in collected.drain(..).flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every node index claimed"))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        (0..n)
            .map(|i| run_node(i, trace_cfg, catalog, ccfg, gh, gcfg))
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok(results)
}

/// Outcome of a gateway-wrapped cluster run.
#[derive(Clone, Debug)]
pub struct ClusterGatewayResult {
    /// The cluster outcome. `completed` counts cache hits served at the
    /// front as well as node completions; rejected requests are
    /// excluded (so `completed + gateway.rejected == requests`).
    pub cluster: ClusterResult,
    /// Front-side counters: cache traffic and rate-limit drops.
    pub gateway: GatewayStats,
}

/// Runs the trace through the [`GatewayFront`] and the cluster.
///
/// The front is coordinator-pure (see [`front`]): the result cache uses
/// arrival-reservation semantics, admission is per-principal rate
/// limiting only (the in-flight ceiling is stripped), and the
/// pre-warmer is ignored — cluster pools are fixed-size. Node
/// parallelism and bit-identical serial/parallel results are preserved;
/// with [`GatewayConfig::disabled`] the embedded [`ClusterResult`] is
/// byte-identical to [`run_cluster_with`] on the same inputs.
pub fn run_cluster_gateway(
    trace_cfg: &TraceConfig,
    catalog: &[FunctionSpec],
    ccfg: &ClusterConfig,
    gcfg: &GatewayConfig,
    gh: GroundhogConfig,
    mode: ExecMode,
) -> Result<ClusterGatewayResult, StrategyError> {
    // Coordinator stats pass: one pure fold over the trace, no pools.
    let nf = trace_cfg.functions as usize;
    assert!(
        catalog.len() >= nf,
        "catalog must cover every trace function"
    );
    let mut front = GatewayFront::with_redeploys(gcfg, &ccfg.redeploys);
    let hit_cost = front.hit_cost();
    let mut hit_sojourns = QuantileSketch::new();
    for ev in TraceGen::new(trace_cfg) {
        if front.decide(&ev, catalog[ev.fn_id as usize].output_kb) == FrontDecision::Hit {
            hit_sojourns.record_nanos(hit_cost);
        }
    }
    let outcome = FrontOutcome {
        hits: front.hits,
        hit_sojourns,
    };
    let nodes = run_nodes(trace_cfg, catalog, ccfg, &gh, mode, Some(gcfg))?;
    let cluster = merge(nodes, trace_cfg, ccfg, Some(&outcome));
    let mut gateway = GatewayStats {
        served: cluster.completed,
        rejected: front.rejected,
        cache_peak_bytes: front.cache_peak_bytes,
        ..GatewayStats::default()
    };
    gateway.absorb_cache(&front.cache_stats());
    Ok(ClusterGatewayResult { cluster, gateway })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::synthetic_catalog;

    fn small_trace(requests: u64, seed: u64) -> TraceConfig {
        TraceConfig {
            principals: 8,
            ..TraceConfig::new(24, requests, 2_000.0, seed)
        }
    }

    fn run(
        policy: PlacePolicy,
        nodes: usize,
        requests: u64,
        seed: u64,
        mode: ExecMode,
    ) -> ClusterResult {
        let catalog = synthetic_catalog(24, seed);
        let trace = small_trace(requests, seed);
        let mut ccfg = ClusterConfig::new(nodes, policy, StrategyKind::Gh, seed);
        ccfg.slots_per_pool = 1;
        run_cluster_with(&trace, &catalog, &ccfg, GroundhogConfig::gh(), mode).unwrap()
    }

    #[test]
    fn all_requests_complete_and_stats_cohere() {
        let r = run(PlacePolicy::LeastLoaded, 3, 400, 21, ExecMode::Serial);
        assert_eq!(r.completed, 400);
        assert_eq!(r.requests, 400);
        assert_eq!(r.nodes, 3);
        assert_eq!(
            r.per_node.iter().map(|n| n.completed).sum::<u64>(),
            400,
            "node loads partition the trace"
        );
        assert!(r.goodput_rps > 0.0);
        assert!(r.p99_ms >= r.p50_ms);
        assert!(r.p99_ms >= r.mean_ms * 0.9);
        assert!(r.imbalance >= 1.0);
        assert!((0.0..=1.0).contains(&r.utilization));
        assert!((0.0..=1.0).contains(&r.restore_overlap_ratio));
        assert!(r.restore_total_ms > 0.0, "GH restores after every request");
        assert!(r.containers > 0);
    }

    #[test]
    fn parallel_matches_serial_fingerprint() {
        let serial = run(PlacePolicy::RoundRobin, 4, 300, 5, ExecMode::Serial);
        let par = run(
            PlacePolicy::RoundRobin,
            4,
            300,
            5,
            ExecMode::Parallel { threads: 4 },
        );
        assert_eq!(format!("{serial:?}"), format!("{par:?}"));
    }

    #[test]
    fn zero_requests_is_a_clean_empty_run() {
        for mode in [ExecMode::Serial, ExecMode::Parallel { threads: 4 }] {
            let r = run(PlacePolicy::FunctionAffinity, 2, 0, 9, mode);
            assert_eq!(r.completed, 0);
            assert_eq!(r.goodput_rps, 0.0);
            assert_eq!(r.mean_ms, 0.0);
            assert_eq!(r.p99_ms, 0.0);
            assert_eq!(r.imbalance, 1.0);
            assert_eq!(r.utilization, 0.0);
        }
    }

    #[test]
    fn single_node_cluster_works() {
        let r = run(PlacePolicy::LeastLoaded, 1, 200, 3, ExecMode::Serial);
        assert_eq!(r.completed, 200);
        assert_eq!(r.per_node.len(), 1);
        assert_eq!(r.per_node[0].completed, 200);
        assert_eq!(r.imbalance, 1.0, "one node is trivially balanced");
    }

    #[test]
    fn least_loaded_balances_better_than_affinity_under_skew() {
        let ll = run(PlacePolicy::LeastLoaded, 4, 800, 31, ExecMode::Serial);
        let aff = run(PlacePolicy::FunctionAffinity, 4, 800, 31, ExecMode::Serial);
        assert!(
            ll.imbalance < aff.imbalance,
            "expected balance win under Zipf skew: {} vs {}",
            ll.imbalance,
            aff.imbalance
        );
    }

    #[test]
    fn faulty_cluster_accounts_and_matches_parallel() {
        let catalog = synthetic_catalog(24, 11);
        let trace = small_trace(500, 11);
        let mut ccfg = ClusterConfig::new(3, PlacePolicy::RoundRobin, StrategyKind::Gh, 11)
            .with_faults(FaultConfig::deaths(11, 0.05));
        ccfg.slots_per_pool = 2;
        let serial = run_cluster_with(
            &trace,
            &catalog,
            &ccfg,
            GroundhogConfig::gh(),
            ExecMode::Serial,
        )
        .unwrap();
        let par = run_cluster_with(
            &trace,
            &catalog,
            &ccfg,
            GroundhogConfig::gh(),
            ExecMode::Parallel { threads: 3 },
        )
        .unwrap();
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "faults keep node-parallelism invisible"
        );
        assert!(serial.faults.deaths > 0, "5% deaths over 500 requests");
        assert_eq!(
            serial.faults.retries,
            serial.faults.deaths - serial.faults.abandoned,
            "every death either retries or abandons"
        );
        assert_eq!(serial.completed + serial.faults.abandoned, 500);
    }

    #[test]
    fn node_loss_fails_over_to_up_replicas() {
        let catalog = synthetic_catalog(24, 7);
        let trace = small_trace(400, 7);
        let mut fc = FaultConfig::none(7);
        fc.node_loss_rate = 0.3;
        fc.node_loss_window = gh_sim::Nanos::from_millis(20);
        let ccfg =
            ClusterConfig::new(4, PlacePolicy::RoundRobin, StrategyKind::Gh, 7).with_faults(fc);
        let r = run_cluster_with(
            &trace,
            &catalog,
            &ccfg,
            GroundhogConfig::gh(),
            ExecMode::Serial,
        )
        .unwrap();
        assert!(r.faults.node_losses > 0, "outages reroute some arrivals");
        assert_eq!(r.faults.deaths, 0, "only node loss was armed");
        assert_eq!(
            r.completed + r.faults.abandoned,
            400,
            "failover serves everything except all-replicas-down drops"
        );
    }

    #[test]
    fn inert_fault_config_is_not_armed_at_cluster_level() {
        let plain = run(PlacePolicy::LeastLoaded, 2, 300, 17, ExecMode::Serial);
        let catalog = synthetic_catalog(24, 17);
        let trace = small_trace(300, 17);
        let mut ccfg = ClusterConfig::new(2, PlacePolicy::LeastLoaded, StrategyKind::Gh, 17)
            .with_faults(FaultConfig::none(17));
        ccfg.slots_per_pool = 1;
        let armed = run_cluster_with(
            &trace,
            &catalog,
            &ccfg,
            GroundhogConfig::gh(),
            ExecMode::Serial,
        )
        .unwrap();
        assert_eq!(format!("{plain:?}"), format!("{armed:?}"));
        assert!(armed.faults.is_empty());
    }

    #[test]
    fn autoscaled_faulty_cluster_matches_parallel_and_reports_scale() {
        let catalog = synthetic_catalog(24, 19);
        let trace = small_trace(600, 19);
        let mut fc = FaultConfig::deaths(19, 0.03);
        fc.node_loss_rate = 0.2;
        fc.node_loss_window = gh_sim::Nanos::from_millis(20);
        let ccfg = ClusterConfig::new(4, PlacePolicy::RoundRobin, StrategyKind::Gh, 19)
            .with_faults(fc)
            .with_autoscale(NodeScaleConfig::balanced(2));
        let serial = run_cluster_with(
            &trace,
            &catalog,
            &ccfg,
            GroundhogConfig::gh(),
            ExecMode::Serial,
        )
        .unwrap();
        let par = run_cluster_with(
            &trace,
            &catalog,
            &ccfg,
            GroundhogConfig::gh(),
            ExecMode::Parallel { threads: 4 },
        )
        .unwrap();
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "autoscaling keeps node-parallelism invisible"
        );
        let s = serial.scale.expect("scaler armed");
        assert!(s.windows > 0, "the fold must observe windows");
        assert!(s.peak_active >= s.min_active);
        assert!(s.final_active >= 2 && s.final_active <= 4);
        assert_eq!(serial.completed + serial.faults.abandoned, 600);
    }

    #[test]
    fn unarmed_autoscaler_is_invisible() {
        let plain = run(PlacePolicy::RoundRobin, 3, 300, 23, ExecMode::Serial);
        assert!(plain.scale.is_none(), "no scaler, no stats");
        // `run` never arms autoscaling, so this doubles as the
        // byte-identity baseline used by tests/cluster_oracle.rs.
    }

    #[test]
    fn stats_memory_is_request_count_independent() {
        let small = run(PlacePolicy::RoundRobin, 2, 100, 13, ExecMode::Serial);
        let large = run(PlacePolicy::RoundRobin, 2, 2_000, 13, ExecMode::Serial);
        assert_eq!(small.stats_bytes, large.stats_bytes);
        assert!(large.stats_bytes < 2 * 2 * 64 * 1024, "sketch-bounded");
    }
}
