//! Randomized test: the layout differ's plan is a fixpoint operator.
//!
//! For any snapshot layout and any sequence of layout-churning syscalls,
//! injecting the diff's plan must bring the layout back to (an
//! equivalent of) the snapshot layout — and re-diffing must be empty.
//!
//! Cases are generated with the workspace's own seeded [`DetRng`]
//! (crates.io is unavailable in the build environment, so `proptest`
//! cannot be used); every run replays the identical case set.

use gh_sim::DetRng;

use gh_mem::{PageRange, Perms, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession};
use groundhog_core::diff::LayoutDiff;

#[derive(Clone, Debug)]
enum Churn {
    Mmap(u64),
    MunmapAt(u64, u64),
    MprotectRo(u64, u64),
    BrkGrow(u64),
    BrkShrink(u64),
}

fn random_churn(rng: &mut DetRng) -> Churn {
    match rng.next_below(5) {
        0 => Churn::Mmap(1 + rng.next_below(23)),
        1 => Churn::MunmapAt(rng.next_below(64), 1 + rng.next_below(7)),
        2 => Churn::MprotectRo(rng.next_below(64), 1 + rng.next_below(5)),
        3 => Churn::BrkGrow(1 + rng.next_below(31)),
        _ => Churn::BrkShrink(1 + rng.next_below(31)),
    }
}

fn build_process(region_lens: &[u64]) -> (Kernel, Pid, Vec<PageRange>) {
    let mut kernel = Kernel::boot();
    let pid = kernel.spawn("diff-fuzz");
    let heap_base = kernel.process(pid).unwrap().mem.config().heap_base;
    let mut regions = Vec::new();
    kernel
        .run_charged(pid, |p, frames| {
            p.mem.set_brk(Vpn(heap_base.0 + 20), frames).unwrap();
            for &len in region_lens {
                regions.push(p.mem.mmap(len, Perms::RW, gh_mem::VmaKind::Anon).unwrap());
            }
        })
        .unwrap();
    (kernel, pid, regions)
}

#[test]
fn plan_restores_any_churned_layout() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0xD1FF ^ case);
        let region_lens: Vec<u64> = (0..1 + rng.next_below(5))
            .map(|_| 2 + rng.next_below(30))
            .collect();
        let churn: Vec<Churn> = (0..rng.next_below(24))
            .map(|_| random_churn(&mut rng))
            .collect();

        let (mut kernel, pid, regions) = build_process(&region_lens);
        let heap_base = kernel.process(pid).unwrap().mem.config().heap_base;
        let snap_vmas = kernel.process(pid).unwrap().mem.maps();
        let snap_brk = kernel.process(pid).unwrap().mem.brk();

        // Churn the layout arbitrarily (function-side syscalls).
        kernel
            .run_charged(pid, |p, frames| {
                for c in &churn {
                    match c {
                        Churn::Mmap(len) => {
                            let _ = p.mem.mmap(*len, Perms::RW, gh_mem::VmaKind::Anon);
                        }
                        Churn::MunmapAt(off, len) => {
                            if let Some(r) = regions.first() {
                                let start = Vpn(r.start.0 + off % r.len());
                                let _ = p.mem.munmap(PageRange::at(start, *len), frames);
                            }
                        }
                        Churn::MprotectRo(off, len) => {
                            if let Some(r) = regions.last() {
                                let start = Vpn(r.start.0 + off % r.len());
                                let _ = p.mem.mprotect(PageRange::at(start, *len), Perms::R);
                            }
                        }
                        Churn::BrkGrow(d) => {
                            let cur = p.mem.brk();
                            let _ = p.mem.set_brk(Vpn(cur.0 + d), frames);
                        }
                        Churn::BrkShrink(d) => {
                            let cur = p.mem.brk();
                            let new = cur.0.saturating_sub(*d).max(heap_base.0);
                            let _ = p.mem.set_brk(Vpn(new), frames);
                        }
                    }
                }
            })
            .unwrap();

        // Diff and inject the plan, exactly as the restorer does.
        let cur_vmas = kernel.process(pid).unwrap().mem.maps();
        let cur_brk = kernel.process(pid).unwrap().mem.brk();
        let diff = LayoutDiff::compute(&snap_vmas, snap_brk, &cur_vmas, cur_brk);
        let plan = diff.plan();
        assert_eq!(plan.len(), diff.syscall_count(), "case {case}");
        {
            let mut s = PtraceSession::attach(&mut kernel, pid).unwrap();
            s.interrupt_all().unwrap();
            for sc in plan {
                s.inject(sc).unwrap();
            }
            s.detach().unwrap();
        }

        // The layout must now be equivalent to the snapshot: an empty
        // re-diff (merging-equivalent layouts diff to nothing).
        let proc = kernel.process(pid).unwrap();
        proc.mem.check_invariants().unwrap();
        let re = LayoutDiff::compute(&snap_vmas, snap_brk, &proc.mem.maps(), proc.mem.brk());
        assert!(re.is_empty(), "case {case}: re-diff not empty: {re:?}");
    }
}
