//! Shared harness code for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index), printing a paper-style
//! rendering to stdout and writing CSV into `results/`.
//!
//! Request counts are scaled-down from the paper's 1,200 invocations
//! (virtual time makes more repetitions pointless — noise is modelled,
//! not physical); set `GH_REQUESTS` / `GH_XPUT_REQUESTS` to raise them.

pub mod cluster_scaling;
pub mod fleet_scaling;
pub mod gateway_scaling;
pub mod harness;
pub mod micro_harness;
pub mod scaling;
pub mod touch_scaling;

use std::fs;
use std::path::PathBuf;

use gh_faas::client::{self, LatencyRun};
use gh_functions::FunctionSpec;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

/// All configurations of §5.1, in Fig. 4's legend order.
pub const ALL_KINDS: [StrategyKind; 5] = [
    StrategyKind::Base,
    StrategyKind::GhNop,
    StrategyKind::Gh,
    StrategyKind::Fork,
    StrategyKind::Faasm,
];

/// Latency-run request count (paper: 1,200; default here: 14).
pub fn latency_requests() -> usize {
    env_usize("GH_REQUESTS", 14)
}

/// Throughput-run requests per core (paper: ≥1.5 min; default here: 30).
pub fn xput_requests() -> usize {
    env_usize("GH_XPUT_REQUESTS", 30)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when `GH_BENCH_SMOKE` is set (to anything but `0`): the figure
/// binaries trim their sweeps to a seeded, small-N subset so CI can run
/// them on every push (the `bench-smoke` job) and diff their CSVs for
/// determinism.
pub fn smoke() -> bool {
    std::env::var("GH_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

/// Whether `kind` can run `spec` at all (§5: fork cannot handle Node.js's
/// threads; FAASM needs wasm compatibility).
pub fn supported(spec: &FunctionSpec, kind: StrategyKind) -> bool {
    match kind {
        StrategyKind::Fork => spec.runtime != gh_runtime::RuntimeKind::NodeJs,
        StrategyKind::Faasm => spec.faasm.is_some(),
        _ => true,
    }
}

/// Runs the low-load latency workload; `None` when unsupported.
pub fn run_latency(
    spec: &FunctionSpec,
    kind: StrategyKind,
    n: usize,
    seed: u64,
) -> Option<LatencyRun> {
    if !supported(spec, kind) {
        return None;
    }
    Some(
        client::closed_loop_latency(spec, kind, GroundhogConfig::gh(), n, seed)
            .expect("supported configuration must run"),
    )
}

/// Runs the saturated-throughput workload (4 cores); `None` when
/// unsupported.
pub fn run_throughput(
    spec: &FunctionSpec,
    kind: StrategyKind,
    requests_per_core: usize,
    seed: u64,
) -> Option<f64> {
    if !supported(spec, kind) {
        return None;
    }
    Some(
        client::peak_throughput(spec, kind, GroundhogConfig::gh(), requests_per_core, seed)
            .expect("supported configuration must run"),
    )
}

/// The `results/` output directory (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes a table as CSV into `results/<name>.csv`.
pub fn write_csv(name: &str, table: &TextTable) {
    let path = results_dir().join(format!("{name}.csv"));
    fs::write(&path, table.to_csv()).expect("write csv");
    println!("[written {}]", path.display());
}

/// Formats a relative value like the Fig. 4/5 bar labels.
pub fn fmt_rel(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{v:.2}"),
        None => "-".to_string(),
    }
}

/// Formats milliseconds adaptively.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.0}", ms)
    } else if ms >= 10.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gh_functions::catalog::by_name;

    #[test]
    fn support_matrix() {
        let node = by_name("json (n)").unwrap();
        let c = by_name("atax (c)").unwrap();
        let py_fp = by_name("sentiment (p)").unwrap();
        assert!(!supported(&node, StrategyKind::Fork));
        assert!(!supported(&node, StrategyKind::Faasm));
        assert!(supported(&c, StrategyKind::Fork));
        assert!(supported(&c, StrategyKind::Faasm));
        assert!(supported(&py_fp, StrategyKind::Fork));
        assert!(
            !supported(&py_fp, StrategyKind::Faasm),
            "FaaSProfiler not wasm-ported"
        );
        for kind in [StrategyKind::Base, StrategyKind::GhNop, StrategyKind::Gh] {
            assert!(supported(&node, kind));
        }
    }

    #[test]
    fn unsupported_runs_yield_none() {
        let node = by_name("get-time (n)").unwrap();
        assert!(run_latency(&node, StrategyKind::Fork, 2, 1).is_none());
        assert!(run_throughput(&node, StrategyKind::Faasm, 2, 1).is_none());
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_rel(Some(1.234)), "1.23");
        assert_eq!(fmt_rel(None), "-");
        assert_eq!(fmt_ms(12345.6), "12346");
        assert_eq!(fmt_ms(42.25), "42.2");
        assert_eq!(fmt_ms(1.234), "1.23");
    }
}
