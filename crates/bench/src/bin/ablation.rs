//! Ablations of Groundhog's design choices (DESIGN.md §7):
//!
//! 1. coalesced page restoration on/off (§4.4 / §5.2.2's slope change);
//! 2. soft-dirty bits vs. userfaultfd tracking (§4.3);
//! 3. skip-rollback for same-principal request streams (§4.4);
//! 4. the dummy warm-up request before snapshotting (§4.1).
//!
//! ```text
//! cargo run --release -p gh-bench --bin ablation
//! ```

use gh_bench::micro_harness::{MicroMode, MicroRig};
use gh_bench::write_csv;
use gh_functions::behavior::{Executor, RequestCtx};
use gh_functions::catalog::by_name;
use gh_proc::Kernel;
use gh_runtime::{FunctionProcess, RuntimeProfile};
use gh_sim::report::TextTable;
use groundhog_core::{GroundhogConfig, Manager, TrackerKind};

const PAGES: u64 = 50_000;
const REQS: usize = 4;

fn main() {
    coalescing();
    tracking_backends();
    skip_same_principal();
    dummy_warm();
    cow_snapshot();
    virtualized_time();
}

/// Ablation 5: §5.5's CoW snapshot — manager memory vs critical-path cost.
fn cow_snapshot() {
    println!("== Ablation 5: eager vs copy-on-write snapshot (§5.5) ==\n");
    let mut table = TextTable::new(&[
        "snapshot",
        "take ms",
        "manager MiB",
        "1st-req exec ms",
        "steady exec ms",
    ]);
    for (label, cow) in [("eager (paper)", false), ("CoW (proposed)", true)] {
        let cfg = GroundhogConfig {
            cow_snapshot: cow,
            ..GroundhogConfig::gh()
        };
        let mut rig = MicroRig::build_cfg(PAGES, MicroMode::Gh, cfg);
        let (snap_ms, mem_mib) = rig.snapshot_stats();
        let (first, _) = rig.request(0.3);
        let mut steady = 0.0;
        for _ in 0..3 {
            steady += rig.request(0.3).0.as_millis_f64();
        }
        table.row_owned(vec![
            label.to_string(),
            format!("{snap_ms:.2}"),
            format!("{mem_mib:.1}"),
            format!("{:.2}", first.as_millis_f64()),
            format!("{:.2}", steady / 3.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected (§5.5): CoW snapshotting is far cheaper in time and manager memory; \
         the first touch of each page pays a one-time CoW fault on the critical path, \
         after which steady-state behaviour matches the eager snapshot.\n"
    );
}

/// Ablation 6: time virtualization for GC-sensitive functions (§5.3.1).
fn virtualized_time() {
    use gh_faas::{Container, Request};
    println!("== Ablation 6: virtualizing time across restores (§5.3.1) ==\n");
    let spec = by_name("img-resize (n)").unwrap();
    let mut table = TextTable::new(&["config", "steady invoker ms", "GC pauses / 8 req"]);
    for (label, virt) in [
        ("GH (clock rewinds)", false),
        ("GH + virtualized time", true),
    ] {
        let cfg = GroundhogConfig {
            virtualize_time: virt,
            ..GroundhogConfig::gh()
        };
        let mut c = Container::cold_start(&spec, gh_isolation::StrategyKind::Gh, cfg, 31)
            .expect("container");
        // Let enough virtual time pass that the GC period elapses.
        c.kernel.charge(gh_sim::Nanos::from_secs(5));
        let mut inv = 0.0;
        let mut gcs = 0;
        let n = 8;
        for i in 0..n {
            let out = c
                .invoke(&Request::new(i + 1, "client", spec.input_kb))
                .unwrap();
            inv += out.invoker_latency.as_millis_f64();
            gcs += out.exec.gc_pause.is_some() as u32;
        }
        table.row_owned(vec![
            label.to_string(),
            format!("{:.1}", inv / n as f64),
            gcs.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected (§5.3.1): rewinding the in-memory clock makes V8 re-collect almost \
         every request; virtualizing time removes the re-triggered GC pauses."
    );
}

/// Ablation 1: coalescing contiguous dirty runs into single copies.
fn coalescing() {
    println!("== Ablation 1: restore coalescing (§5.2.2) ==\n");
    let mut table = TextTable::new(&[
        "dirtied %",
        "coalesced restore ms",
        "uncoalesced ms",
        "speedup",
    ]);
    for pct in [10u32, 30, 60, 90, 100] {
        let frac = pct as f64 / 100.0;
        let on =
            MicroRig::build_cfg(PAGES, MicroMode::Gh, GroundhogConfig::gh()).measure(frac, REQS);
        let cfg_off = GroundhogConfig {
            coalesce: false,
            ..GroundhogConfig::gh()
        };
        let off = MicroRig::build_cfg(PAGES, MicroMode::Gh, cfg_off).measure(frac, REQS);
        let r_on = on.cycle_ms - on.exec_ms;
        let r_off = off.cycle_ms - off.exec_ms;
        table.row_owned(vec![
            format!("{pct}"),
            format!("{r_on:.2}"),
            format!("{r_off:.2}"),
            format!("{:.2}x", r_off / r_on.max(1e-9)),
        ]);
    }
    println!("{}", table.render());
    println!("Expected: coalescing wins increasingly as density rises (runs merge).\n");
}

/// Ablation 2: SD-bits vs userfaultfd (§4.3).
fn tracking_backends() {
    println!("== Ablation 2: soft-dirty bits vs userfaultfd (§4.3) ==\n");
    let mut table = TextTable::new(&[
        "dirtied pages",
        "SD exec ms",
        "SD cycle ms",
        "UFFD exec ms",
        "UFFD cycle ms",
        "winner",
    ]);
    let mut csv = table.clone();
    for dirty in [0u64, 5, 50, 500, 5_000, 25_000] {
        let frac = dirty as f64 / PAGES as f64;
        let sd =
            MicroRig::build_cfg(PAGES, MicroMode::Gh, GroundhogConfig::gh()).measure(frac, REQS);
        let cfg_uffd = GroundhogConfig {
            tracker: TrackerKind::Uffd,
            ..GroundhogConfig::gh()
        };
        let uffd = MicroRig::build_cfg(PAGES, MicroMode::Gh, cfg_uffd).measure(frac, REQS);
        let winner = if uffd.cycle_ms < sd.cycle_ms {
            "UFFD"
        } else {
            "SD"
        };
        let row = vec![
            dirty.to_string(),
            format!("{:.2}", sd.exec_ms),
            format!("{:.2}", sd.cycle_ms),
            format!("{:.2}", uffd.exec_ms),
            format!("{:.2}", uffd.cycle_ms),
            winner.to_string(),
        ];
        table.row_owned(row.clone());
        csv.row_owned(row);
    }
    println!("{}", table.render());
    write_csv("ablation_tracking", &csv);
    println!(
        "Expected (§4.3): UFFD wins only when dirtied pages ≈ 0 (no scan at restore); \
         its per-write notifications lose everywhere else.\n"
    );
}

/// Ablation 3: skip-rollback between same-principal requests (§4.4).
fn skip_same_principal() {
    println!("== Ablation 3: skip-rollback for mutually trusting callers (§4.4) ==\n");
    let spec = by_name("md2html (p)").unwrap();
    let mut table = TextTable::new(&[
        "workload",
        "config",
        "requests",
        "restores",
        "skipped",
        "mean cycle ms",
    ]);
    for (workload, principals) in [
        ("same principal", vec!["alice"; 8]),
        (
            "alternating",
            vec![
                "alice", "bob", "alice", "bob", "alice", "bob", "alice", "bob",
            ],
        ),
    ] {
        for (label, skip) in [("GH", false), ("GH+skip", true)] {
            let cfg = GroundhogConfig {
                skip_same_principal: skip,
                ..GroundhogConfig::gh()
            };
            let mut kernel = Kernel::boot();
            let mut fproc = FunctionProcess::build(
                &mut kernel,
                spec.name,
                RuntimeProfile::for_kind(spec.runtime),
                spec.total_pages(),
            );
            Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::dummy(0));
            let mut mgr = Manager::new(fproc.pid, cfg);
            mgr.snapshot_now(&mut kernel).unwrap();
            let t0 = kernel.clock.now();
            for (i, p) in principals.iter().enumerate() {
                mgr.begin_request(&mut kernel, p).unwrap();
                Executor::invoke(
                    &mut kernel,
                    &mut fproc,
                    &spec,
                    &RequestCtx::new(i as u64 + 1, p, i as u64),
                );
                mgr.end_request(&mut kernel).unwrap();
            }
            let cycle = (kernel.clock.now() - t0).as_millis_f64() / principals.len() as f64;
            table.row_owned(vec![
                workload.to_string(),
                label.to_string(),
                principals.len().to_string(),
                mgr.stats.restores.to_string(),
                mgr.stats.skipped_restores.to_string(),
                format!("{cycle:.2}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Expected: with a single-principal stream, skip mode eliminates restores; with \
         alternating principals it degenerates to eager GH (restore forced on every \
         principal switch, now on the critical path).\n"
    );
}

/// Ablation 4: the dummy warm-up request before snapshotting (§4.1).
fn dummy_warm() {
    println!("== Ablation 4: dummy warm-up before snapshot (§4.1) ==\n");
    let spec = by_name("sentiment (p)").unwrap();
    let mut table = TextTable::new(&[
        "config",
        "steady-state invoker ms",
        "minor faults / request",
    ]);
    for (label, warm) in [
        ("with dummy warm-up", true),
        ("without (cold snapshot)", false),
    ] {
        let mut kernel = Kernel::boot();
        let mut fproc = FunctionProcess::build(
            &mut kernel,
            spec.name,
            RuntimeProfile::for_kind(spec.runtime),
            spec.total_pages(),
        );
        if warm {
            Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::dummy(0));
        }
        let mut mgr = Manager::new(fproc.pid, GroundhogConfig::gh());
        mgr.snapshot_now(&mut kernel).unwrap();
        let mut inv_ms = 0.0;
        let mut minor = 0u64;
        let n = 6u64;
        for i in 0..n {
            mgr.begin_request(&mut kernel, "client").unwrap();
            let t0 = kernel.clock.now();
            let rep = Executor::invoke(
                &mut kernel,
                &mut fproc,
                &spec,
                &RequestCtx::new(i + 1, "client", i),
            );
            inv_ms += (kernel.clock.now() - t0).as_millis_f64();
            minor += rep.faults.minor;
            mgr.end_request(&mut kernel).unwrap();
        }
        table.row_owned(vec![
            label.to_string(),
            format!("{:.2}", inv_ms / n as f64),
            format!("{}", minor / n),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected (§4.1): without the dummy request, lazily paged state is missing from \
         the snapshot, so every post-restore request re-pages it (minor faults on the \
         critical path) — 'these (expensive) operations ... happen again after every \
         state restoration'."
    );
}
