//! The pool-shared snapshot store (§5.5 taken fleet-wide).
//!
//! Every container of a function pool holds a clean-state snapshot, and
//! those snapshots are near-identical: the runtime image, the library
//! text, the warmed heap — everything except a handful of pages carrying
//! per-container state (the in-memory runtime clock, allocator
//! bookkeeping). A pool that gives each container a private eager
//! snapshot therefore pays `pool_size ×` the snapshot footprint for data
//! that is overwhelmingly shared.
//!
//! A [`SnapshotStore`] fixes that: it owns one [`FrameTable`] shared by
//! the whole pool. The first container of a function *interns* its
//! clean-state pages, which become the refcounted **base image** for that
//! function. Every subsequent container dedups against the base
//! page-by-page with [`FrameData::logical_eq`]: an equal page takes an
//! [`FrameTable::incref`] on the base frame (no new storage), a differing
//! page allocates a private delta frame. Pool memory then scales with
//! `base + Σ per-container deltas` instead of `pool_size × snapshot`.
//!
//! The store is handed around as a [`StoreHandle`]
//! (`Arc<Mutex<SnapshotStore>>`): containers live on separate simulated
//! kernels, so the store is the one deliberately shared piece of manager
//! state in a pool.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::frame::{FrameData, FrameId, FrameTable};
use crate::taint::Taint;

/// Shared handle to a pool's snapshot store.
pub type StoreHandle = Arc<Mutex<SnapshotStore>>;

/// Space-accounting counters of a [`SnapshotStore`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Pages referenced by all live interned snapshots (with multiplicity).
    pub logical_pages: u64,
    /// Pages that dedup'd against an existing base frame.
    pub dedup_hits: u64,
    /// Pages that needed their own frame (base establishment or delta).
    pub dedup_misses: u64,
}

/// A function's base image: the first interned snapshot's pages, kept
/// alive for the store's lifetime so later containers can dedup against
/// it even after the founding container retires.
#[derive(Debug)]
struct BaseImage {
    pages: BTreeMap<u64, FrameId>,
}

/// A deduplicating, refcounted page store shared by one container pool.
#[derive(Debug, Default)]
pub struct SnapshotStore {
    frames: FrameTable,
    bases: BTreeMap<String, BaseImage>,
    stats: StoreStats,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    /// Creates an empty store behind a shareable handle.
    pub fn new_handle() -> StoreHandle {
        Arc::new(Mutex::new(SnapshotStore::new()))
    }

    /// Interns one container's clean-state pages under the function key
    /// `key`, returning the per-container reference table (vpn → shared
    /// frame). The first call for a key establishes the base image; later
    /// calls dedup against it page-by-page by logical content.
    ///
    /// The returned references are owned by the caller and must be given
    /// back via [`SnapshotStore::release`].
    pub fn intern(
        &mut self,
        key: &str,
        pages: &BTreeMap<u64, FrameData>,
    ) -> BTreeMap<u64, FrameId> {
        self.stats.logical_pages += pages.len() as u64;
        let Some(base) = self.bases.get(key) else {
            // Founding container: its pages become the base image. The
            // base holds one reference for the store's lifetime; the
            // caller gets a second.
            let mut base_pages = BTreeMap::new();
            let mut refs = BTreeMap::new();
            for (&vpn, data) in pages {
                let id = self.frames.alloc(data.clone(), Taint::Clean);
                self.frames.incref(id);
                base_pages.insert(vpn, id);
                refs.insert(vpn, id);
            }
            self.stats.dedup_misses += pages.len() as u64;
            self.bases
                .insert(key.to_string(), BaseImage { pages: base_pages });
            return refs;
        };
        let mut refs = BTreeMap::new();
        let mut deltas: Vec<(u64, FrameData)> = Vec::new();
        for (&vpn, data) in pages {
            match base.pages.get(&vpn) {
                Some(&id) if self.frames.data(id).logical_eq(data) => {
                    refs.insert(vpn, id);
                }
                _ => deltas.push((vpn, data.clone())),
            }
        }
        self.stats.dedup_hits += refs.len() as u64;
        self.stats.dedup_misses += deltas.len() as u64;
        for &id in refs.values() {
            self.frames.incref(id);
        }
        for (vpn, data) in deltas {
            refs.insert(vpn, self.frames.alloc(data, Taint::Clean));
        }
        refs
    }

    /// Reads an interned page's contents.
    pub fn data(&self, id: FrameId) -> &FrameData {
        self.frames.data(id)
    }

    /// Releases one container's reference table (the inverse of
    /// [`SnapshotStore::intern`]). Base frames stay resident until the
    /// store itself drops.
    pub fn release(&mut self, refs: &BTreeMap<u64, FrameId>) {
        for &id in refs.values() {
            self.frames.decref(id);
        }
        self.stats.logical_pages = self.stats.logical_pages.saturating_sub(refs.len() as u64);
    }

    /// The shared frame table (for accounting/tests).
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }

    /// Space counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Unique resident frames across all interned snapshots.
    pub fn live_frames(&self) -> usize {
        self.frames.live()
    }

    /// Bytes of manager memory the unique frames occupy (one page each).
    pub fn resident_bytes(&self) -> u64 {
        self.frames.resident_bytes()
    }

    /// Deduplication ratio: logical pages referenced by live snapshots per
    /// unique resident frame. `1.0` for an empty store or a pool of one;
    /// approaches the pool size when containers share their whole image.
    pub fn dedup_ratio(&self) -> f64 {
        let live = self.frames.live();
        if live == 0 || self.stats.logical_pages == 0 {
            return 1.0;
        }
        self.stats.logical_pages as f64 / live as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;

    fn image(seed: u64, pages: u64) -> BTreeMap<u64, FrameData> {
        (0..pages)
            .map(|v| (v, FrameData::Pattern(seed ^ v)))
            .collect()
    }

    #[test]
    fn first_intern_establishes_base() {
        let mut s = SnapshotStore::new();
        let refs = s.intern("f", &image(7, 16));
        assert_eq!(refs.len(), 16);
        assert_eq!(s.live_frames(), 16, "base only, no duplicates");
        assert_eq!(s.stats().logical_pages, 16);
        assert_eq!(s.dedup_ratio(), 1.0, "a pool of one shares nothing");
    }

    #[test]
    fn identical_snapshots_dedup_fully() {
        let mut s = SnapshotStore::new();
        let a = s.intern("f", &image(7, 16));
        let b = s.intern("f", &image(7, 16));
        assert_eq!(s.live_frames(), 16, "second container adds no frames");
        assert_eq!(s.resident_bytes(), 16 * PAGE_SIZE);
        assert!((s.dedup_ratio() - 2.0).abs() < 1e-12);
        for (va, vb) in a.values().zip(b.values()) {
            assert_eq!(va, vb, "shared frames are the same ids");
        }
    }

    #[test]
    fn differing_pages_get_private_deltas() {
        let mut s = SnapshotStore::new();
        s.intern("f", &image(7, 16));
        let mut second = image(7, 16);
        second.insert(3, FrameData::Pattern(999));
        second.insert(20, FrameData::Zero); // page the base never had
        let refs = s.intern("f", &second);
        assert_eq!(refs.len(), 17);
        assert_eq!(s.live_frames(), 18, "base 16 + delta + new page");
        assert_eq!(s.stats().dedup_hits, 15);
    }

    #[test]
    fn distinct_functions_do_not_share() {
        let mut s = SnapshotStore::new();
        s.intern("f", &image(7, 8));
        s.intern("g", &image(7, 8));
        // Same contents but different keys: bases are separate.
        assert_eq!(s.live_frames(), 16);
    }

    #[test]
    fn release_drops_references_but_keeps_base() {
        let mut s = SnapshotStore::new();
        let a = s.intern("f", &image(7, 8));
        let b = s.intern("f", &image(7, 8));
        s.release(&a);
        s.release(&b);
        assert_eq!(s.live_frames(), 8, "the base image stays resident");
        assert_eq!(s.stats().logical_pages, 0);
        assert_eq!(s.dedup_ratio(), 1.0);
    }

    #[test]
    fn data_resolves_logical_contents() {
        let mut s = SnapshotStore::new();
        let refs = s.intern("f", &image(3, 4));
        for (&vpn, &id) in &refs {
            assert!(s.data(id).logical_eq(&FrameData::Pattern(3 ^ vpn)));
        }
    }
}
