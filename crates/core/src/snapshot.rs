//! Taking the clean-state snapshot (§4.2).
//!
//! The snapshot is taken once per container, after initialization and the
//! deployer-provided dummy request (§4.1), and *before* the first real
//! (secret-carrying) request — so its contents are guaranteed free of
//! request data. It stores, in the manager's memory: per-thread CPU state,
//! the memory layout, and the contents of every present page.
//!
//! # Run-based capture
//!
//! Capture is **run-based**: the page table hands over its extents as
//! contiguous frame runs ([`gh_mem::FrameRuns`]) with one refcount taken
//! per page — `O(extents)` metadata and **no content copies**. For the
//! eager mode this is structural sharing only: the process is *not*
//! write-protected against the snapshot (a write silently unshares the
//! frame, charging exactly the faults the paper's full-copy snapshot
//! would), the virtual-time charge stays the full-copy cost, and
//! [`Snapshot::memory_bytes`] still reports the full-copy footprint the
//! paper's implementation pays. §5.5's CoW mode additionally marks the
//! process copy-on-write, so first writes take charged CoW faults and
//! the reported footprint drops to the reference table. The shared mode
//! interns the runs into the pool store by reference, copying a page
//! only on a dedup miss.

use gh_mem::{FrameData, FrameRuns, FrameTable, PageRange, StoreHandle, Vma, VmaKind, Vpn};
use gh_proc::{Kernel, Pid, PtraceSession, Tid};
use gh_sim::clock::Stopwatch;
use gh_sim::{Nanos, ScanShape};
use std::collections::BTreeMap;

use crate::error::GhError;
use crate::track::MemoryTracker;

/// How the snapshot's page contents are captured.
#[derive(Clone, Debug, Default)]
pub enum SnapshotMode {
    /// Full private copies (the paper's implementation; captured as
    /// silently-unshared frame references, priced and accounted as full
    /// copies).
    #[default]
    Eager,
    /// §5.5's copy-on-write references into the process's frame table.
    Cow,
    /// Copies interned into a pool-shared, deduplicating
    /// [`SnapshotStore`](gh_mem::SnapshotStore) under the given function
    /// key: the first container's pages become the refcounted base image,
    /// later containers dedup page-by-page by logical content.
    Shared {
        /// The pool's store.
        store: StoreHandle,
        /// Dedup key (one base image per function).
        key: String,
    },
}

/// How page contents are held in the manager's memory.
#[derive(Clone, Debug)]
pub enum SnapshotPages {
    /// Refcounted frame runs with eager semantics (the paper's full-copy
    /// snapshot): the process is not write-protected, a function write
    /// silently unshares the frame, and accounting reports full pages.
    Eager(FrameRuns),
    /// Copy-on-write references into the frame table — §5.5's proposed
    /// optimization: manager memory stays proportional to the pages the
    /// function *modifies* over its lifetime, at the cost of one
    /// on-critical-path CoW fault per unique modified page.
    Cow(FrameRuns),
    /// References into a pool-shared [`SnapshotStore`](gh_mem::SnapshotStore):
    /// page contents deduplicated across all containers of the function,
    /// so pool memory scales with per-container deltas, not pool size.
    Shared {
        /// The owning store (shared by every container of the pool).
        store: StoreHandle,
        /// Captured runs referencing frames in the store's table.
        pages: FrameRuns,
    },
}

impl SnapshotPages {
    fn runs(&self) -> &FrameRuns {
        match self {
            SnapshotPages::Eager(r) | SnapshotPages::Cow(r) => r,
            SnapshotPages::Shared { pages, .. } => pages,
        }
    }
}

/// A clean-state process snapshot held in the manager's memory.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Virtual time the snapshot was completed.
    pub taken_at: Nanos,
    /// Per-thread register files.
    pub regs: Vec<(Tid, gh_proc::RegisterSet)>,
    /// The memory layout at snapshot time.
    pub vmas: Vec<Vma>,
    /// The program break at snapshot time.
    pub brk: Vpn,
    /// Contents of every present page, as frame runs.
    pub pages: SnapshotPages,
    /// The stack VMAs at snapshot time (precomputed; restored by
    /// zeroing, §4.4).
    pub stacks: Vec<PageRange>,
}

impl Snapshot {
    /// Present pages captured.
    pub fn present_pages(&self) -> u64 {
        self.pages.runs().total_pages()
    }

    /// Mapped pages at snapshot time.
    pub fn mapped_pages(&self) -> u64 {
        self.vmas.iter().map(|v| v.range.len()).sum()
    }

    /// True if `vpn` was present (and thus has saved contents).
    pub fn has_page(&self, vpn: Vpn) -> bool {
        self.pages.runs().contains(vpn)
    }

    /// The captured pages as sorted, maximal runs (`O(runs)`).
    pub fn page_runs(&self) -> Vec<PageRange> {
        self.pages.runs().ranges()
    }

    /// Number of captured runs.
    pub fn run_count(&self) -> usize {
        self.pages.runs().run_count()
    }

    /// Saved page numbers, ascending. Legacy per-page interface, kept
    /// for the differential oracles; production paths consume
    /// [`Snapshot::page_runs`].
    pub fn page_vpns(&self) -> Vec<u64> {
        self.pages.runs().iter().map(|(v, _)| v.0).collect()
    }

    /// Saved contents of `vpn` (cloned; eager/CoW snapshots resolve
    /// through the process's frame table, shared snapshots through the
    /// pool store).
    pub fn page_data(&self, vpn: Vpn, frames: &FrameTable) -> Option<FrameData> {
        match &self.pages {
            SnapshotPages::Eager(r) | SnapshotPages::Cow(r) => {
                r.get(vpn).map(|id| frames.data(id).clone())
            }
            SnapshotPages::Shared { store, pages } => pages
                .get(vpn)
                .map(|id| store.lock().expect("store poisoned").data(id).clone()),
        }
    }

    /// Resolves the saved contents of every page of `range` into
    /// `out` (cleared first) — the restorer's writeback resolves whole
    /// coalesced runs through here with one reusable scratch buffer and,
    /// for shared snapshots, one pool-store lock per run.
    ///
    /// # Panics
    ///
    /// Panics if any page of `range` was not captured (the restore set
    /// is a subset of the snapshot by construction).
    pub fn run_data_into(&self, range: PageRange, frames: &FrameTable, out: &mut Vec<FrameData>) {
        out.clear();
        match &self.pages {
            SnapshotPages::Eager(r) | SnapshotPages::Cow(r) => {
                out.extend(range.iter().map(|v| {
                    let id = r.get(v).expect("restore set ⊆ snapshot");
                    frames.data(id).clone()
                }));
            }
            SnapshotPages::Shared { store, pages } => {
                let st = store.lock().expect("store poisoned");
                out.extend(range.iter().map(|v| {
                    let id = pages.get(v).expect("restore set ⊆ snapshot");
                    st.data(id).clone()
                }));
            }
        }
    }

    /// Lazy-restore sources for every snapshot page of `runs`, keyed by
    /// vpn — what the `DeferArm` pass registers with the fault handler.
    /// Eager snapshots hand out page copies by value (resolved through
    /// the frame table at arming time, preserving eager install
    /// semantics at the fault); CoW snapshots hand out their frame
    /// references (a read fault installs the frame shared); shared
    /// snapshots point at the pool store, which keeps the only resident
    /// copy until the fault fires.
    ///
    /// The returned sources borrow this snapshot's frame/store
    /// references; the manager must keep the snapshot alive while any
    /// arming is pending (it does — the snapshot lives as long as the
    /// manager).
    pub fn lazy_sources(
        &self,
        runs: &[PageRange],
        frames: &FrameTable,
    ) -> BTreeMap<u64, gh_mem::LazyPageSource> {
        use gh_mem::LazyPageSource;
        let mut out = BTreeMap::new();
        for run in runs {
            for vpn in run.iter() {
                let src = match &self.pages {
                    SnapshotPages::Eager(r) => r
                        .get(vpn)
                        .map(|id| LazyPageSource::Data(frames.data(id).clone())),
                    SnapshotPages::Cow(r) => r.get(vpn).map(LazyPageSource::Frame),
                    SnapshotPages::Shared { store, pages } => {
                        pages.get(vpn).map(|id| LazyPageSource::Store {
                            store: store.clone(),
                            frame: id,
                        })
                    }
                };
                out.insert(vpn.0, src.expect("deferred set ⊆ snapshot"));
            }
        }
        out
    }

    /// The stack VMAs at snapshot time (restored by zeroing, §4.4).
    pub fn stack_ranges(&self) -> &[PageRange] {
        &self.stacks
    }

    /// Approximate bytes of manager memory the snapshot occupies (§5.5).
    /// Eager snapshots are accounted a full page per present page (the
    /// paper implementation's footprint, which they stand in for); CoW
    /// and shared snapshots only pay the reference table — the shared
    /// snapshot's page storage lives in the pool store and is accounted
    /// there
    /// ([`SnapshotStore::resident_bytes`](gh_mem::SnapshotStore::resident_bytes)).
    pub fn memory_bytes(&self) -> u64 {
        let meta = self.vmas.len() as u64 * 64;
        match &self.pages {
            SnapshotPages::Eager(r) => r.total_pages() * gh_mem::PAGE_SIZE + meta,
            SnapshotPages::Cow(r) => r.total_pages() * 16 + meta,
            SnapshotPages::Shared { pages, .. } => pages.total_pages() * 16 + meta,
        }
    }

    /// Releases the snapshot's frame references: eager/CoW references
    /// back into the process's frame table, shared references into the
    /// pool store. Must be called before dropping the snapshot if the
    /// backing table is to be reused leak-free.
    ///
    /// Cloning a snapshot does **not** duplicate frame ownership: clones
    /// share the same references and exactly one holder may release them.
    pub fn release(&mut self, frames: &mut FrameTable) {
        match &mut self.pages {
            SnapshotPages::Eager(r) | SnapshotPages::Cow(r) => r.release(frames),
            SnapshotPages::Shared { store, pages } => {
                store.lock().expect("store poisoned").release_runs(pages);
            }
        }
    }
}

/// Timing/size record of one snapshot operation.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotReport {
    /// Total virtual time the snapshot took (the "Snapshot (ms)" column of
    /// Fig. 8).
    pub duration: Nanos,
    /// Present pages copied.
    pub present_pages: u64,
    /// Mapped pages walked.
    pub mapped_pages: u64,
    /// VMAs recorded.
    pub vmas: usize,
    /// Threads whose registers were saved.
    pub threads: usize,
}

/// Takes snapshots.
pub struct Snapshotter;

impl Snapshotter {
    /// Takes an eager (full-copy) snapshot of `pid` (§4.2 steps a–d):
    /// save CPU state of all threads, collect memory layout + page
    /// contents into the manager's memory, arm the tracker, and resume
    /// the process.
    pub fn take(
        kernel: &mut Kernel,
        pid: Pid,
        tracker: &mut dyn MemoryTracker,
    ) -> Result<(Snapshot, SnapshotReport), GhError> {
        Self::take_mode(kernel, pid, tracker, SnapshotMode::Eager)
    }

    /// Takes a snapshot in the given [`SnapshotMode`]. [`SnapshotMode::Cow`]
    /// selects §5.5's copy-on-write variant, which shares frames with the
    /// process and write-protects it so the first modification of each
    /// page takes a CoW fault on the critical path. The shared mode
    /// interns the captured runs into the pool store (same virtual-time
    /// cost as the eager mode — the store either copies a page or
    /// dedups it against resident content, both one pass over 4 KiB),
    /// so pool memory deduplicates while the timeline stays identical
    /// to eager snapshotting.
    pub fn take_mode(
        kernel: &mut Kernel,
        pid: Pid,
        tracker: &mut dyn MemoryTracker,
        mode: SnapshotMode,
    ) -> Result<(Snapshot, SnapshotReport), GhError> {
        Self::take_mode_with(kernel, pid, tracker, mode, None)
    }

    /// Like [`Snapshotter::take_mode`], but when the caller already holds
    /// the pool store's lock it passes the guard as `locked` and the
    /// shared-mode intern goes through it instead of re-locking — the
    /// pool build path locks once for the whole fleet instead of once
    /// per container. `locked` (when `Some`) must guard the same store
    /// as `mode`'s handle.
    pub fn take_mode_with(
        kernel: &mut Kernel,
        pid: Pid,
        tracker: &mut dyn MemoryTracker,
        mode: SnapshotMode,
        locked: Option<&mut gh_mem::SnapshotStore>,
    ) -> Result<(Snapshot, SnapshotReport), GhError> {
        let mut sw = Stopwatch::start(&kernel.clock);
        let mut s = PtraceSession::attach(kernel, pid)?;
        // (a) Interrupt and store the CPU state of all threads.
        s.interrupt_all()?;
        let regs = s.save_regs_all()?;
        // (b) Scan /proc: memory-mapped regions and page metadata. The
        // metadata walk is charged per the kernel's charge model (full
        // pagemap walk under paper parity, per-extent under extent
        // charging); host-side the capture below walks extents only.
        let vmas = s.read_maps()?;
        let mapped_pages: u64 = vmas.iter().map(|v| v.range.len()).sum();
        let shape = {
            let proc = s.kernel().process(pid)?;
            ScanShape {
                mapped_pages,
                vmas: vmas.len(),
                extents: proc.mem.extent_count() as u64,
                dirty_pages: 0,
            }
        };
        let scan_cost = s.kernel().cost.dirty_scan_cost(shape);
        s.kernel().charge(scan_cost);
        // (c) Capture the contents of all present pages as refcounted
        // frame runs: full-copy semantics (eager), shared CoW references
        // (cow), or store-interned runs (shared).
        let (pages, present_pages, copy_cost) = match mode {
            SnapshotMode::Cow => {
                let runs = s.capture_frame_runs()?;
                let (proc, _) = s.kernel().mem_ctx(pid)?;
                proc.mem.mark_all_cow();
                let runs = FrameRuns::new(runs);
                let present = runs.total_pages();
                let cost = s.kernel().cost.snapshot_capture_cost(present, shape, true);
                (SnapshotPages::Cow(runs), present, cost)
            }
            SnapshotMode::Eager => {
                let runs = FrameRuns::new(s.capture_frame_runs()?);
                let present = runs.total_pages();
                let cost = s.kernel().cost.snapshot_capture_cost(present, shape, false);
                (SnapshotPages::Eager(runs), present, cost)
            }
            SnapshotMode::Shared { store, key } => {
                let (proc, frames) = s.kernel().mem_ctx(pid)?;
                let runs = proc.mem.present_frame_runs();
                let refs = match locked {
                    Some(st) => st.intern_refs(&key, &runs, frames),
                    None => store
                        .lock()
                        .expect("store poisoned")
                        .intern_refs(&key, &runs, frames),
                };
                let present = refs.total_pages();
                let cost = s.kernel().cost.snapshot_capture_cost(present, shape, false);
                (
                    SnapshotPages::Shared {
                        store: store.clone(),
                        pages: refs,
                    },
                    present,
                    cost,
                )
            }
        };
        s.kernel().charge(copy_cost);
        let brk = s.kernel().process(pid)?.mem.brk();
        // (d) Reset memory tracking for the first request.
        tracker.arm(&mut s)?;
        let threads = regs.len();
        let vma_count = vmas.len();
        s.detach()?;

        let duration = sw.lap();
        let stacks = vmas
            .iter()
            .filter(|v| matches!(v.kind, VmaKind::Stack))
            .map(|v| v.range)
            .collect();
        let snapshot = Snapshot {
            taken_at: kernel.clock.now(),
            regs,
            vmas,
            brk,
            pages,
            stacks,
        };
        let report = SnapshotReport {
            duration,
            present_pages,
            mapped_pages,
            vmas: vma_count,
            threads,
        };
        Ok((snapshot, report))
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrackerKind;
    use crate::track::make_tracker;
    use gh_mem::{Perms, Taint, Touch, VmaKind};
    use gh_proc::Kernel;

    fn machine(pages: u64) -> (Kernel, Pid) {
        let mut k = Kernel::boot();
        let pid = k.spawn("f");
        k.run_charged(pid, |p, frames| {
            let r = p.mem.mmap(pages, Perms::RW, VmaKind::Anon).unwrap();
            for vpn in r.iter() {
                p.mem
                    .touch(vpn, Touch::WriteWord(0xFEED), Taint::Clean, frames)
                    .unwrap();
            }
        })
        .unwrap();
        (k, pid)
    }

    #[test]
    fn snapshot_captures_full_state() {
        let (mut k, pid) = machine(32);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, report) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        assert_eq!(report.present_pages, 32);
        assert_eq!(snap.present_pages(), 32);
        assert_eq!(report.threads, 1);
        assert!(report.vmas >= 2, "stack + anon");
        assert_eq!(snap.vmas.len(), report.vmas);
        // Contents captured.
        let (vpn, _) = k.process(pid).unwrap().mem.pagemap().next().unwrap();
        assert_eq!(
            snap.page_data(vpn, k.frames()).unwrap().read_word(1),
            0xFEED
        );
        assert!(snap.has_page(vpn));
        // Tracking armed: no page is soft-dirty anymore.
        assert!(k.process(pid).unwrap().mem.soft_dirty_pages().is_empty());
        // Process resumed.
        assert!(k.process(pid).unwrap().is_runnable());
    }

    #[test]
    fn snapshot_duration_scales_with_pages() {
        let (mut k1, p1) = machine(16);
        let (mut k2, p2) = machine(256);
        let mut t1 = make_tracker(TrackerKind::SoftDirty);
        let mut t2 = make_tracker(TrackerKind::SoftDirty);
        let (_, r1) = Snapshotter::take(&mut k1, p1, t1.as_mut()).unwrap();
        let (_, r2) = Snapshotter::take(&mut k2, p2, t2.as_mut()).unwrap();
        assert!(r2.duration > r1.duration);
        assert!(r2.present_pages > r1.present_pages);
    }

    #[test]
    fn snapshot_is_a_deep_copy() {
        let (mut k, pid) = machine(4);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        let (vpn, _) = k.process(pid).unwrap().mem.pagemap().next().unwrap();
        // Mutate the live process: the snapshot must be unaffected.
        k.run_charged(pid, |p, frames| {
            p.mem
                .touch(vpn, Touch::WriteWord(0xBAD), Taint::Clean, frames)
                .unwrap();
        })
        .unwrap();
        assert_eq!(
            snap.page_data(vpn, k.frames()).unwrap().read_word(1),
            0xFEED
        );
    }

    #[test]
    fn memory_bytes_reports_full_pages() {
        let (mut k, pid) = machine(8);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        assert!(snap.memory_bytes() >= 8 * gh_mem::PAGE_SIZE);
    }

    #[test]
    fn shared_snapshots_dedup_across_containers() {
        let store = gh_mem::SnapshotStore::new_handle();
        let mode = |key: &str| SnapshotMode::Shared {
            store: store.clone(),
            key: key.into(),
        };
        let (mut k1, p1) = machine(16);
        let (mut k2, p2) = machine(16);
        let mut t1 = make_tracker(TrackerKind::SoftDirty);
        let mut t2 = make_tracker(TrackerKind::SoftDirty);
        let (s1, r1) = Snapshotter::take_mode(&mut k1, p1, t1.as_mut(), mode("f")).unwrap();
        let (s2, _) = Snapshotter::take_mode(&mut k2, p2, t2.as_mut(), mode("f")).unwrap();
        assert_eq!(s1.present_pages(), s2.present_pages());
        let st = store.lock().unwrap();
        assert_eq!(
            st.live_frames() as u64,
            s1.present_pages(),
            "identical images share every frame"
        );
        assert!((st.dedup_ratio() - 2.0).abs() < 1e-12);
        drop(st);
        // Contents resolve through the store.
        let (vpn, _) = k1.process(p1).unwrap().mem.pagemap().next().unwrap();
        assert_eq!(s1.page_data(vpn, k1.frames()).unwrap().read_word(1), 0xFEED);
        assert_eq!(s2.page_data(vpn, k2.frames()).unwrap().read_word(1), 0xFEED);
        // The per-container footprint is a reference table, not pages.
        assert!(s1.memory_bytes() < 16 * gh_mem::PAGE_SIZE / 10);
        assert!(r1.duration > Nanos::ZERO);
    }

    #[test]
    fn shared_snapshot_costs_like_eager() {
        // Dedup is a space optimization only: the virtual timeline of a
        // shared snapshot is identical to an eager one, so a pool of one
        // stays bit-identical to a lone container.
        let store = gh_mem::SnapshotStore::new_handle();
        let (mut k1, p1) = machine(64);
        let (mut k2, p2) = machine(64);
        let mut t1 = make_tracker(TrackerKind::SoftDirty);
        let mut t2 = make_tracker(TrackerKind::SoftDirty);
        let (_, eager) = Snapshotter::take(&mut k1, p1, t1.as_mut()).unwrap();
        let (_, shared) = Snapshotter::take_mode(
            &mut k2,
            p2,
            t2.as_mut(),
            SnapshotMode::Shared {
                store,
                key: "f".into(),
            },
        )
        .unwrap();
        assert_eq!(eager.duration, shared.duration);
        assert_eq!(eager.present_pages, shared.present_pages);
    }

    #[test]
    fn shared_snapshot_release_returns_references() {
        let store = gh_mem::SnapshotStore::new_handle();
        let (mut k, pid) = machine(8);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (mut snap, _) = Snapshotter::take_mode(
            &mut k,
            pid,
            tracker.as_mut(),
            SnapshotMode::Shared {
                store: store.clone(),
                key: "f".into(),
            },
        )
        .unwrap();
        assert_eq!(store.lock().unwrap().stats().logical_pages, 8);
        let (_, frames) = k.mem_ctx(pid).unwrap();
        snap.release(frames);
        let st = store.lock().unwrap();
        assert_eq!(st.stats().logical_pages, 0);
        assert_eq!(
            st.live_frames(),
            8,
            "base image stays for future containers"
        );
    }

    #[test]
    fn stack_ranges_found() {
        let (mut k, pid) = machine(4);
        let mut tracker = make_tracker(TrackerKind::SoftDirty);
        let (snap, _) = Snapshotter::take(&mut k, pid, tracker.as_mut()).unwrap();
        let stacks = snap.stack_ranges();
        assert_eq!(stacks.len(), 1);
        assert_eq!(
            stacks[0].len(),
            k.process(pid).unwrap().mem.config().stack_pages
        );
    }
}
