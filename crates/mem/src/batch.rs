//! Batched page touches.
//!
//! A [`TouchBatch`] is a reusable, pre-sorted plan of page touches —
//! the unit [`AddressSpace::touch_batch`](crate::AddressSpace::touch_batch)
//! resolves in one ordered cursor walk over the extent map and frame
//! chunks instead of one `BTreeMap` probe per page. Callers (function
//! behaviours replaying a cached write plan) fill the batch once per
//! invocation and keep the allocation alive across invocations.
//!
//! Semantics are defined by equivalence: applying a batch is
//! bit-identical — same fault counters, same dirty/taint state, same
//! page contents — to calling `touch` once per item in item order,
//! ignoring per-item errors (the hot loops do `let _ = touch(...)`).
//! The differential oracle in `crates/mem/tests/batch_oracle.rs` pins
//! this equivalence over seeded patterns.

use crate::addr::Vpn;
use crate::space::{FaultCounters, Touch};
use crate::taint::Taint;

/// What applying a batch did: the aggregate fault counters (identical
/// to the per-page loop's) and how many items errored — the touches a
/// `let _ = touch(..)` loop would have silently skipped. Callers that
/// used to `expect` every touch assert `failed == 0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Fault counters charged by this batch.
    pub faults: FaultCounters,
    /// Items skipped with an access error (unmapped, permission).
    pub failed: u64,
}

/// One page touch of a batch: where, what, and whose data.
#[derive(Clone, Copy, Debug)]
pub struct TouchItem {
    /// The page to touch.
    pub vpn: Vpn,
    /// Read or write-word.
    pub touch: Touch,
    /// Taint label merged into the frame on writes (ignored for reads,
    /// matching `touch`'s signature where reads pass `Taint::Clean`).
    pub taint: Taint,
}

/// A reusable batch of page touches, applied in item order.
///
/// The fast cursor walk requires items sorted by `vpn` (duplicates
/// allowed — they are processed in order, so a write followed by a read
/// of the same page behaves exactly like the equivalent `touch` calls).
/// An unsorted batch is still *correct*: `touch_batch` detects it in one
/// pass and falls back to the per-item path.
#[derive(Clone, Debug, Default)]
pub struct TouchBatch {
    items: Vec<TouchItem>,
    /// Tracks sortedness incrementally so `push`-built batches don't
    /// need a verification pass.
    sorted: bool,
}

impl TouchBatch {
    /// An empty batch.
    pub fn new() -> TouchBatch {
        TouchBatch {
            items: Vec::new(),
            sorted: true,
        }
    }

    /// An empty batch with room for `cap` items.
    pub fn with_capacity(cap: usize) -> TouchBatch {
        TouchBatch {
            items: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Appends one touch. Sortedness is tracked incrementally.
    #[inline]
    pub fn push(&mut self, vpn: Vpn, touch: Touch, taint: Taint) {
        if let Some(last) = self.items.last() {
            if last.vpn.0 > vpn.0 {
                self.sorted = false;
            }
        }
        self.items.push(TouchItem { vpn, touch, taint });
    }

    /// Clears the batch, keeping its allocation (the scratch-reuse path).
    pub fn clear(&mut self) {
        self.items.clear();
        self.sorted = true;
    }

    /// The items in application order.
    pub fn items(&self) -> &[TouchItem] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the batch holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when items are sorted by vpn (ties allowed) and the cursor
    /// walk applies.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_sortedness() {
        let mut b = TouchBatch::new();
        assert!(b.is_sorted() && b.is_empty());
        b.push(Vpn(5), Touch::Read, Taint::Clean);
        b.push(Vpn(5), Touch::WriteWord(1), Taint::Clean);
        b.push(Vpn(9), Touch::Read, Taint::Clean);
        assert!(b.is_sorted());
        assert_eq!(b.len(), 3);
        b.push(Vpn(2), Touch::Read, Taint::Clean);
        assert!(!b.is_sorted());
        b.clear();
        assert!(b.is_sorted() && b.is_empty());
    }
}
