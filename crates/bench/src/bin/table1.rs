//! Table 1 — absolute latency and throughput for all 58 benchmarks under
//! BASE, GH, GHNOP, FORK and FAASM.
//!
//! ```text
//! cargo run --release -p gh-bench --bin table1
//! ```

use gh_bench::{fmt_ms, latency_requests, run_latency, run_throughput, write_csv, xput_requests};
use gh_functions::catalog::catalog;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;

fn main() {
    let n = latency_requests();
    let reqs = xput_requests();
    println!("== Table 1 — absolute measurements (mean over {n} requests) ==\n");
    let mut table = TextTable::new(&[
        "benchmark",
        "config",
        "E2E ms",
        "±σ",
        "inv ms",
        "±σ",
        "xput r/s",
    ]);
    let kinds = [
        StrategyKind::Base,
        StrategyKind::Gh,
        StrategyKind::GhNop,
        StrategyKind::Fork,
        StrategyKind::Faasm,
    ];
    for spec in catalog() {
        for kind in kinds {
            let Some(lat) = run_latency(&spec, kind, n, 10) else {
                continue;
            };
            let xput = run_throughput(&spec, kind, reqs, 10).unwrap_or(0.0);
            let e2e = lat.e2e.summary_ms();
            let inv = lat.invoker.summary_ms();
            table.row_owned(vec![
                spec.name.to_string(),
                kind.label().to_string(),
                fmt_ms(e2e.mean),
                fmt_ms(e2e.std_dev),
                fmt_ms(inv.mean),
                fmt_ms(inv.std_dev),
                format!("{xput:.2}"),
            ]);
        }
    }
    println!("{}", table.render());
    write_csv("table1", &table);
}
