//! Differential oracle: `AddressSpace::touch_batch` vs the per-page
//! `touch` loop.
//!
//! Two address spaces receive identical histories; where one applies a
//! touch sequence page by page, the other applies the same sequence as
//! a [`TouchBatch`]. After every epoch the test pins *full* equivalence:
//! fault counters, extent structure, per-page flags, soft-dirty and
//! taint index contents, logical page bytes, uffd logs, lazy-pending
//! sets and live-frame counts. This is the contract the batched request
//! hot path (`gh_functions::Executor`) relies on for bit-identical
//! simulated timelines.

use std::collections::BTreeMap;

use gh_sim::DetRng;

use gh_mem::{
    AddressSpace, FrameData, FrameTable, LazyPageSource, PageRange, Perms, RequestId, SpaceConfig,
    Taint, Touch, TouchBatch, VmaKind, Vpn,
};

/// A pair of spaces driven in lockstep: `a` by per-page touches, `b` by
/// batches. All non-touch operations are mirrored verbatim.
struct Pair {
    a: AddressSpace,
    fa: FrameTable,
    b: AddressSpace,
    fb: FrameTable,
    batch: TouchBatch,
}

impl Pair {
    fn new() -> Pair {
        let mut fa = FrameTable::new();
        let a = AddressSpace::new(SpaceConfig::default(), &mut fa);
        let mut fb = FrameTable::new();
        let b = AddressSpace::new(SpaceConfig::default(), &mut fb);
        Pair {
            a,
            fa,
            b,
            fb,
            batch: TouchBatch::new(),
        }
    }

    fn mmap(&mut self, len: u64) -> PageRange {
        let ra = self.a.mmap(len, Perms::RW, VmaKind::Anon).unwrap();
        let rb = self.b.mmap(len, Perms::RW, VmaKind::Anon).unwrap();
        assert_eq!(ra, rb);
        ra
    }

    /// Applies the same touch sequence per-page to `a` and batched to
    /// `b`, then checks equivalence.
    fn apply(&mut self, touches: &[(Vpn, Touch, Taint)], ctx: &str) {
        self.batch.clear();
        let mut loop_failed = 0u64;
        for &(vpn, touch, taint) in touches {
            loop_failed += self.a.touch(vpn, touch, taint, &mut self.fa).is_err() as u64;
            self.batch.push(vpn, touch, taint);
        }
        let before = self.b.counters();
        let outcome = self.b.touch_batch(&self.batch, &mut self.fb);
        assert_eq!(
            self.b.counters().since(before),
            outcome.faults,
            "{ctx}: returned delta disagrees with the accumulator"
        );
        assert_eq!(
            outcome.failed, loop_failed,
            "{ctx}: failed-item count disagrees with the loop's errors"
        );
        self.assert_equiv(ctx);
    }

    fn assert_equiv(&self, ctx: &str) {
        assert_eq!(self.a.counters(), self.b.counters(), "{ctx}: counters");
        assert_eq!(
            self.a.present_pages(),
            self.b.present_pages(),
            "{ctx}: present"
        );
        assert_eq!(
            self.a.extent_count(),
            self.b.extent_count(),
            "{ctx}: extent structure"
        );
        let ea: Vec<_> = self.a.extents().collect();
        let eb: Vec<_> = self.b.extents().collect();
        assert_eq!(ea, eb, "{ctx}: extents");
        assert_eq!(
            self.a.soft_dirty_pages(),
            self.b.soft_dirty_pages(),
            "{ctx}: dirty set"
        );
        assert_eq!(
            self.a.lazy_pending_vpns(),
            self.b.lazy_pending_vpns(),
            "{ctx}: lazy pending"
        );
        assert_eq!(
            self.fa.live(),
            self.fb.live(),
            "{ctx}: live frame accounting"
        );
        for (vpn, pa) in self.a.pagemap() {
            let pb = self
                .b
                .pte(vpn)
                .unwrap_or_else(|| panic!("{ctx}: page {:#x} present in a, absent in b", vpn.0));
            assert_eq!(pa.flags, pb.flags, "{ctx}: flags of {:#x}", vpn.0);
            assert!(
                self.fa.data(pa.frame).logical_eq(self.fb.data(pb.frame)),
                "{ctx}: contents of {:#x}",
                vpn.0
            );
            assert_eq!(
                self.fa.taint(pa.frame),
                self.fb.taint(pb.frame),
                "{ctx}: taint of {:#x}",
                vpn.0
            );
        }
        self.a.check_invariants_with_frames(&self.fa).unwrap();
        self.b.check_invariants_with_frames(&self.fb).unwrap();
    }
}

/// The executor's shape: sorted strided writes then sorted strided
/// reads, over pages armed by a soft-dirty clear each epoch.
#[test]
fn strided_write_read_epochs_match() {
    let mut p = Pair::new();
    let r = p.mmap(4096);
    for epoch in 0..6u64 {
        let writes = 128 + epoch * 97;
        let stride = (r.len() / writes).max(1);
        let phase = epoch % stride;
        let mut touches = Vec::new();
        for i in 0..writes {
            let idx = i * stride + phase;
            if idx >= r.len() {
                break;
            }
            touches.push((
                Vpn(r.start.0 + idx),
                Touch::WriteWord(0x1000 ^ epoch ^ i),
                Taint::One(RequestId(epoch + 1)),
            ));
        }
        let reads = (2 * writes).min(r.len());
        let rstride = (r.len() / reads).max(1);
        for i in 0..reads {
            let idx = i * rstride;
            if idx >= r.len() {
                break;
            }
            touches.push((Vpn(r.start.0 + idx), Touch::Read, Taint::Clean));
        }
        // Writes then reads, each sub-sequence sorted — apply as two
        // batches exactly like the executor.
        let (w, rd) = touches.split_at(writes.min(r.len()) as usize);
        p.apply(w, &format!("epoch {epoch} writes"));
        p.apply(rd, &format!("epoch {epoch} reads"));
        p.a.clear_soft_dirty();
        p.b.clear_soft_dirty();
        p.assert_equiv(&format!("epoch {epoch} after clear"));
    }
}

/// Overlapping read/write including duplicate vpns within one batch,
/// mixed taints, and permission holes (skipped items).
#[test]
fn overlapping_and_denied_touches_match() {
    let mut p = Pair::new();
    let r = p.mmap(256);
    // Punch a read-only window and an unmapped hole.
    let ro = PageRange::at(Vpn(r.start.0 + 40), 8);
    p.a.mprotect(ro, Perms::R).unwrap();
    p.b.mprotect(ro, Perms::R).unwrap();
    let hole = PageRange::at(Vpn(r.start.0 + 100), 4);
    p.a.munmap(hole, &mut p.fa).unwrap();
    p.b.munmap(hole, &mut p.fb).unwrap();

    let mut rng = DetRng::new(0xBA7C);
    for round in 0..24u64 {
        let mut touches = Vec::new();
        let mut vpn = r.start.0;
        while vpn < r.end.0 {
            vpn += rng.next_below(5);
            if vpn >= r.end.0 {
                break;
            }
            let n = 1 + rng.next_below(3);
            for k in 0..n {
                let taint = match rng.next_below(3) {
                    0 => Taint::Clean,
                    t => Taint::One(RequestId(t)),
                };
                touches.push(if rng.next_below(2) == 0 {
                    (Vpn(vpn), Touch::WriteWord(round << 8 | k), taint)
                } else {
                    (Vpn(vpn), Touch::Read, Taint::Clean)
                });
            }
        }
        p.apply(&touches, &format!("round {round}"));
        if round % 5 == 0 {
            p.a.clear_soft_dirty();
            p.b.clear_soft_dirty();
        }
    }
}

/// Lazy-armed pages: pending obligations resolved mid-batch must
/// install the same contents, flags and counters, in the same order
/// relative to surrounding touches.
#[test]
fn lazy_armed_batches_match() {
    let mut p = Pair::new();
    let r = p.mmap(128);
    // Page everything in with tainted contents, arm tracking.
    let all: Vec<_> = r
        .iter()
        .map(|v| (v, Touch::WriteWord(0xD1127 ^ v.0), Taint::One(RequestId(1))))
        .collect();
    p.apply(&all, "page-in");
    p.a.clear_soft_dirty();
    p.b.clear_soft_dirty();
    // Arm a scattered lazy set in both.
    let set = |_: &AddressSpace| -> BTreeMap<u64, LazyPageSource> {
        r.iter()
            .filter(|v| v.0 % 3 == 0)
            .map(|v| (v.0, LazyPageSource::Data(FrameData::Pattern(v.0 ^ 0x5A))))
            .collect()
    };
    p.a.arm_lazy(set(&p.a));
    p.b.arm_lazy(set(&p.b));
    p.assert_equiv("after arming");
    // Mixed batch: reads and writes striding across pending and
    // non-pending pages, including duplicate touches of pending pages
    // (first one takes the lazy fault, second is warm).
    let mut touches = Vec::new();
    for v in r.iter().step_by(2) {
        touches.push((v, Touch::WriteWord(0xFF ^ v.0), Taint::One(RequestId(2))));
        if v.0 % 6 == 0 {
            touches.push((v, Touch::Read, Taint::Clean));
        }
    }
    p.apply(&touches, "lazy writes");
    let reads: Vec<_> = r.iter().map(|v| (v, Touch::Read, Taint::Clean)).collect();
    p.apply(&reads, "lazy reads");
    // Drain the stragglers identically.
    assert_eq!(
        p.a.drain_lazy(u64::MAX, &mut p.fa),
        p.b.drain_lazy(u64::MAX, &mut p.fb)
    );
    p.assert_equiv("after drain");
}

/// CoW snapshots: structurally shared frames unshare identically under
/// batched and per-page writes, with single-fault CoW+SD accounting.
#[test]
fn cow_snapshot_batches_match() {
    let mut p = Pair::new();
    let r = p.mmap(96);
    let all: Vec<_> = r
        .iter()
        .map(|v| (v, Touch::WriteWord(7), Taint::Clean))
        .collect();
    p.apply(&all, "page-in");
    // Snapshot observers hold every frame; mark CoW and arm SD — the
    // next write must take exactly one fault (CoW subsumes SD arming).
    let snap_a: Vec<_> = r.iter().map(|v| p.a.pte(v).unwrap().frame).collect();
    for &id in &snap_a {
        p.fa.incref(id);
    }
    let snap_b: Vec<_> = r.iter().map(|v| p.b.pte(v).unwrap().frame).collect();
    for &id in &snap_b {
        p.fb.incref(id);
    }
    p.a.mark_all_cow();
    p.b.mark_all_cow();
    p.a.clear_soft_dirty();
    p.b.clear_soft_dirty();
    let writes: Vec<_> = r
        .iter()
        .step_by(3)
        .map(|v| (v, Touch::WriteWord(0xC0), Taint::One(RequestId(9))))
        .collect();
    p.apply(&writes, "cow writes");
    assert!(p.b.counters().cow > 0, "CoW faults actually exercised");
    // Snapshot frames are untouched in both worlds.
    for (&ia, &ib) in snap_a.iter().zip(&snap_b) {
        assert!(p.fa.data(ia).logical_eq(p.fb.data(ib)));
        p.fa.decref(ia);
        p.fb.decref(ib);
    }
    p.assert_equiv("after cow");
}

/// Userfaultfd tracking: armed batches log the same dirty pages in the
/// same order and take the same uffd-wp fault counts.
#[test]
fn uffd_armed_batches_match() {
    let mut p = Pair::new();
    let r = p.mmap(200);
    let all: Vec<_> = r
        .iter()
        .map(|v| (v, Touch::WriteWord(1), Taint::Clean))
        .collect();
    p.apply(&all, "page-in");
    p.a.arm_uffd_wp();
    p.b.arm_uffd_wp();
    let mixed: Vec<_> = r
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if i % 4 == 0 {
                (v, Touch::WriteWord(i as u64), Taint::One(RequestId(3)))
            } else {
                (v, Touch::Read, Taint::Clean)
            }
        })
        .collect();
    p.apply(&mixed, "uffd epoch");
    assert_eq!(p.a.disarm_uffd(), p.b.disarm_uffd(), "uffd logs");
    p.assert_equiv("after disarm");
}

/// Minor-fault runs: batches over absent pages (first touch after mmap
/// or madvise) install identical fresh pages.
#[test]
fn minor_fault_runs_match() {
    let mut p = Pair::new();
    let r = p.mmap(512);
    // Touch a scattered subset first, then a full sweep: the batch
    // interleaves warm pages and absent runs.
    let scattered: Vec<_> = r
        .iter()
        .step_by(7)
        .map(|v| (v, Touch::WriteWord(v.0), Taint::One(RequestId(1))))
        .collect();
    p.apply(&scattered, "scattered");
    let sweep: Vec<_> = r.iter().map(|v| (v, Touch::Read, Taint::Clean)).collect();
    p.apply(&sweep, "sweep");
    // madvise a window away and re-touch.
    let win = PageRange::at(Vpn(r.start.0 + 64), 32);
    p.a.madvise_dontneed(win, &mut p.fa).unwrap();
    p.b.madvise_dontneed(win, &mut p.fb).unwrap();
    let again: Vec<_> = r
        .iter()
        .map(|v| (v, Touch::WriteWord(2), Taint::Clean))
        .collect();
    p.apply(&again, "post-madvise");
}

/// An unsorted batch falls back to the loop path and stays equivalent.
#[test]
fn unsorted_batch_falls_back() {
    let mut p = Pair::new();
    let r = p.mmap(64);
    let touches: Vec<_> = (0..r.len())
        .rev()
        .map(|i| {
            let v = Vpn(r.start.0 + i);
            (v, Touch::WriteWord(v.0), Taint::One(RequestId(5)))
        })
        .collect();
    p.apply(&touches, "reverse order");
    assert!(!p.batch.is_sorted());
}
