//! Fig. 7 — throughput scaling with the number of cores (1–4) for the 14
//! representative benchmarks, under BASE, GH-NOP and GH.
//!
//! ```text
//! cargo run --release -p gh-bench --bin fig7
//! ```
//! Env: `GH_FIG7_RUNS` (default 3), `GH_XPUT_REQUESTS` (default 30).

use gh_bench::{write_csv, xput_requests};
use gh_faas::client::throughput_scaling;
use gh_functions::catalog::representative_14;
use gh_isolation::StrategyKind;
use gh_sim::report::TextTable;
use groundhog_core::GroundhogConfig;

fn main() {
    let reqs = xput_requests();
    let runs: u32 = std::env::var("GH_FIG7_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let kinds = [StrategyKind::Base, StrategyKind::GhNop, StrategyKind::Gh];

    println!("== Fig. 7 — throughput scaling with cores (mean ± σ over {runs} runs) ==\n");
    let mut csv = TextTable::new(&["benchmark", "config", "cores", "xput_mean", "xput_std"]);
    for spec in representative_14() {
        let mut table = TextTable::new(&[
            "config", "1 core", "2 cores", "3 cores", "4 cores", "scaling",
        ]);
        for kind in kinds {
            let mut cells = vec![kind.label().to_string()];
            let mut per_core = Vec::new();
            for cores in 1..=4u32 {
                let (mean, std) = throughput_scaling(
                    &spec,
                    kind,
                    GroundhogConfig::gh(),
                    cores,
                    reqs,
                    runs,
                    0xF167 + cores as u64,
                )
                .expect("supported everywhere");
                per_core.push(mean);
                cells.push(format!("{mean:.2}±{std:.2}"));
                csv.row_owned(vec![
                    spec.name.to_string(),
                    kind.label().to_string(),
                    cores.to_string(),
                    format!("{mean:.3}"),
                    format!("{std:.3}"),
                ]);
            }
            let scaling = per_core[3] / per_core[0].max(1e-9);
            cells.push(format!("{scaling:.2}x"));
            table.row_owned(cells);
        }
        println!("-- {} --\n{}", spec.name, table.render());
    }
    write_csv("fig7", &csv);
    println!(
        "Expected shape (paper §5.3.4): nearly linear scaling (≈4x at 4 cores) for all \
         configurations — each core runs an independent container + Groundhog copy."
    );
}
