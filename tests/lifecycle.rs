//! Container and manager lifecycle behaviour across crates (Fig. 1, §4.1,
//! §4.5).

use groundhog::core::{GroundhogConfig, Manager, ManagerState};
use groundhog::faas::{Container, Request};
use groundhog::functions::behavior::{Executor, RequestCtx};
use groundhog::functions::catalog::by_name;
use groundhog::isolation::StrategyKind;
use groundhog::proc::Kernel;
use groundhog::runtime::{FunctionProcess, RuntimeKind, RuntimeProfile};
use groundhog::sim::Nanos;

/// Fig. 1: environment instantiation (100s of ms) + runtime init + data
/// init (dummy request) + snapshot — ordered and all accounted.
#[test]
fn cold_start_phase_structure() {
    let spec = by_name("go (p)").unwrap();
    let c = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 1).unwrap();
    let init = c.stats.init_time;
    // Env (300ms) + python init (350ms) + dummy (≈600ms for go) + snapshot.
    assert!(init > Nanos::from_millis(950), "init {init}");
    assert!(init < Nanos::from_secs(8), "init {init}");
    let prep = c.stats.prepare.as_ref().unwrap();
    assert!(prep.duration > Nanos::ZERO);
    assert!(prep.snapshot_pages.unwrap() > 1_000);
}

/// Node containers cold-start slower than C containers (runtime init +
/// much larger images).
#[test]
fn cold_start_ordering_across_runtimes() {
    let c_spec = by_name("trisolv (c)").unwrap();
    let n_spec = by_name("get-time (n)").unwrap();
    let c = Container::cold_start(&c_spec, StrategyKind::Base, GroundhogConfig::gh(), 2).unwrap();
    let n = Container::cold_start(&n_spec, StrategyKind::Base, GroundhogConfig::gh(), 2).unwrap();
    assert!(n.stats.init_time > c.stats.init_time);
}

/// The manager walks Initializing → Ready → (Executing → Ready)* and
/// refuses out-of-order transitions.
#[test]
fn manager_state_machine() {
    let mut kernel = Kernel::boot();
    let mut fproc = FunctionProcess::build(
        &mut kernel,
        "fsm",
        RuntimeProfile::for_kind(RuntimeKind::Python),
        3_000,
    );
    let spec = by_name("pickle (p)").unwrap();
    let mut mgr = Manager::new(fproc.pid, GroundhogConfig::gh());
    assert_eq!(mgr.state(), ManagerState::Initializing);
    assert!(!mgr.is_ready());
    assert!(
        mgr.begin_request(&mut kernel, "x").is_err(),
        "no requests before snapshot"
    );

    Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::dummy(0));
    mgr.snapshot_now(&mut kernel).unwrap();
    assert_eq!(mgr.state(), ManagerState::Ready);

    for i in 1..=3u64 {
        mgr.begin_request(&mut kernel, "x").unwrap();
        assert_eq!(mgr.state(), ManagerState::Executing);
        assert!(!mgr.is_ready(), "§4.5: no new request while executing");
        Executor::invoke(&mut kernel, &mut fproc, &spec, &RequestCtx::new(i, "x", i));
        mgr.end_request(&mut kernel).unwrap();
        assert_eq!(mgr.state(), ManagerState::Ready);
    }
    assert_eq!(mgr.stats.requests, 3);
    assert_eq!(mgr.stats.restores, 3);
}

/// Snapshots are one-time: repeated snapshotting is rejected, restores
/// reuse the single snapshot.
#[test]
fn snapshot_taken_once() {
    let mut kernel = Kernel::boot();
    let fproc = FunctionProcess::build(
        &mut kernel,
        "once",
        RuntimeProfile::for_kind(RuntimeKind::NativeC),
        1_000,
    );
    let mut mgr = Manager::new(fproc.pid, GroundhogConfig::gh());
    mgr.snapshot_now(&mut kernel).unwrap();
    assert!(mgr.snapshot_now(&mut kernel).is_err());
    assert!(mgr.stats.snapshot.is_some());
}

/// GHNOP containers never restore; GH containers restore after every
/// request; fork containers leave no children behind.
#[test]
fn per_strategy_cleanup_behaviour() {
    let spec = by_name("atax (c)").unwrap();
    for (kind, restores_expected) in [
        (StrategyKind::GhNop, false),
        (StrategyKind::Gh, true),
        (StrategyKind::Fork, false),
    ] {
        let mut c = Container::cold_start(&spec, kind, GroundhogConfig::gh(), 3).unwrap();
        for i in 1..=3u64 {
            let out = c.invoke(&Request::new(i, "t", 1)).unwrap();
            let restored = c
                .stats
                .last_post
                .as_ref()
                .and_then(|p| p.restore.as_ref())
                .is_some();
            assert_eq!(restored, restores_expected, "{kind:?}");
            let _ = out;
        }
        assert_eq!(
            c.kernel.process_count(),
            1,
            "{kind:?}: exactly the function process"
        );
    }
}

/// Virtual time advances monotonically through a container's life, and
/// invoker latency is the request's share of it.
#[test]
fn clock_discipline() {
    let spec = by_name("float (p)").unwrap();
    let mut c = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 4).unwrap();
    let mut last = c.now();
    for i in 1..=4u64 {
        let out = c.invoke(&Request::new(i, "t", 1)).unwrap();
        let now = c.now();
        assert!(now > last, "clock advances");
        assert!(
            out.invoker_latency + out.off_path <= now - last,
            "accounting is consistent"
        );
        last = now;
    }
}
