//! Quickstart: deploy a function under Groundhog and invoke it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use groundhog::faas::fleet::RoutePolicy;
use groundhog::faas::platform::{Platform, PlatformConfig};
use groundhog::functions::catalog;
use groundhog::isolation::StrategyKind;
use groundhog::mem::RequestId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A platform with default (paper-calibrated) configuration.
    let mut platform = Platform::new(PlatformConfig::default());

    // Pick a benchmark function from the paper's catalog and deploy it
    // in a Groundhog-isolated container. Cold start runs Fig. 1's phases:
    // environment instantiation → runtime init → dummy warm-up → snapshot.
    let spec = catalog::by_name("md2html (p)").ok_or("not in catalog")?;
    let container = platform.deploy(&spec, StrategyKind::Gh)?;
    println!("deployed {} under GH", spec.name);
    {
        let c = platform.container(container);
        let prep = c.stats.prepare.as_ref().ok_or("prepared at cold start")?;
        println!(
            "cold start: {} (snapshot captured {} pages)",
            c.stats.init_time,
            prep.snapshot_pages.unwrap_or(0),
        );
    }

    // Serve requests from differently privileged callers. Groundhog
    // restores the process between requests, off the critical path.
    for (i, principal) in ["alice", "bob", "alice", "carol"].iter().enumerate() {
        let out = platform.invoke_simple(container, principal, 0)?;
        println!(
            "request {} from {:7}: e2e {:>9}, invoker {:>9}, restore (off-path) {:>9}",
            i + 1,
            principal,
            out.e2e,
            out.invoker,
            out.off_path,
        );
    }

    // The security property, checked directly: no page of the process
    // carries any request's data after the restore.
    let c = platform.container(container);
    let proc = c.kernel.process(c.fproc.pid)?;
    for req in 1..=4 {
        assert!(
            proc.mem
                .tainted_pages(RequestId(req), c.kernel.frames())
                .is_empty(),
            "request {req} data must not survive"
        );
    }
    println!("post-restore scan: no request data survives in the function process ✓");

    // Scale out: the same function as a pool of 4 behind the fleet
    // scheduler, absorbing open-loop traffic.
    let pool = platform.deploy_pool(&spec, StrategyKind::Gh, 4)?;
    let fleet = platform.run_fleet(pool, RoutePolicy::RestoreAware, 40.0, 120)?;
    println!(
        "fleet of 4: {} requests at {:.0} r/s — mean {:.1}ms, p99 {:.1}ms, \
         {:.0}% of restore time hidden in idle gaps",
        fleet.completed,
        fleet.offered_rps,
        fleet.mean_ms,
        fleet.p99_ms,
        fleet.stats.restore_overlap_ratio * 100.0,
    );
    Ok(())
}
