//! The thirteen restore phases of Fig. 8 and their timing breakdown.

use gh_sim::Nanos;

/// One phase of the restore sequence, in execution order. The labels are
/// exactly Fig. 8's legend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum RestorePhase {
    /// Interrupting the function process.
    Interrupting = 0,
    /// Reading the process' memory mapped regions.
    ReadingMaps,
    /// Scanning all mapped pages to identify which are dirtied.
    ScanningPageMetadata,
    /// Diffing the memory layout to identify how it has changed.
    DiffingMemoryLayouts,
    /// Injected `brk`.
    Brk,
    /// Injected `mmap`s.
    Mmap,
    /// Injected `munmap`s.
    Munmap,
    /// Injected `madvise`s.
    Madvise,
    /// Injected `mprotect`s.
    Mprotect,
    /// Restoring the contents of modified and removed pages.
    RestoringMemory,
    /// Resetting the soft-dirty bits of all modified pages.
    ClearingSoftDirtyBits,
    /// Restoring registers.
    RestoringRegisters,
    /// Detaching from the process.
    Detaching,
}

/// Number of phases.
pub const NUM_PHASES: usize = 13;

/// All phases in execution order.
pub const ALL_PHASES: [RestorePhase; NUM_PHASES] = [
    RestorePhase::Interrupting,
    RestorePhase::ReadingMaps,
    RestorePhase::ScanningPageMetadata,
    RestorePhase::DiffingMemoryLayouts,
    RestorePhase::Brk,
    RestorePhase::Mmap,
    RestorePhase::Munmap,
    RestorePhase::Madvise,
    RestorePhase::Mprotect,
    RestorePhase::RestoringMemory,
    RestorePhase::ClearingSoftDirtyBits,
    RestorePhase::RestoringRegisters,
    RestorePhase::Detaching,
];

impl RestorePhase {
    /// The Fig. 8 legend label.
    pub fn label(self) -> &'static str {
        match self {
            RestorePhase::Interrupting => "interrupting",
            RestorePhase::ReadingMaps => "reading maps",
            RestorePhase::ScanningPageMetadata => "scanning page metadata",
            RestorePhase::DiffingMemoryLayouts => "diffing memory layouts",
            RestorePhase::Brk => "brk()",
            RestorePhase::Mmap => "mmap()",
            RestorePhase::Munmap => "munmap()",
            RestorePhase::Madvise => "madvise()",
            RestorePhase::Mprotect => "mprotect()",
            RestorePhase::RestoringMemory => "restoring memory",
            RestorePhase::ClearingSoftDirtyBits => "clearing soft-dirty bits",
            RestorePhase::RestoringRegisters => "restoring registers",
            RestorePhase::Detaching => "detaching",
        }
    }
}

/// Per-phase durations of one restore.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    phases: [Nanos; NUM_PHASES],
}

impl Breakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `dt` to a phase.
    pub fn add(&mut self, phase: RestorePhase, dt: Nanos) {
        self.phases[phase as usize] += dt;
    }

    /// Duration of one phase.
    pub fn get(&self, phase: RestorePhase) -> Nanos {
        self.phases[phase as usize]
    }

    /// Total restore duration.
    pub fn total(&self) -> Nanos {
        self.phases.iter().copied().sum()
    }

    /// Phase fractions of the total (sums to ~1.0); zero total yields
    /// all-zero fractions.
    pub fn fractions(&self) -> [f64; NUM_PHASES] {
        let total = self.total().as_nanos() as f64;
        let mut out = [0.0; NUM_PHASES];
        if total > 0.0 {
            for (i, p) in self.phases.iter().enumerate() {
                out[i] = p.as_nanos() as f64 / total;
            }
        }
        out
    }

    /// Merges another breakdown into this one (for averaging).
    pub fn absorb(&mut self, other: &Breakdown) {
        for i in 0..NUM_PHASES {
            self.phases[i] += other.phases[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cover_fig8_legend() {
        let labels: Vec<&str> = ALL_PHASES.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 13);
        assert!(labels.contains(&"interrupting"));
        assert!(labels.contains(&"restoring memory"));
        assert!(labels.contains(&"clearing soft-dirty bits"));
        assert!(labels.contains(&"detaching"));
        // Order: interrupt first, detach last (§4.4).
        assert_eq!(labels[0], "interrupting");
        assert_eq!(labels[12], "detaching");
    }

    #[test]
    fn accumulation_and_total() {
        let mut b = Breakdown::new();
        b.add(RestorePhase::Interrupting, Nanos::from_micros(100));
        b.add(RestorePhase::RestoringMemory, Nanos::from_micros(300));
        b.add(RestorePhase::RestoringMemory, Nanos::from_micros(100));
        assert_eq!(
            b.get(RestorePhase::RestoringMemory),
            Nanos::from_micros(400)
        );
        assert_eq!(b.total(), Nanos::from_micros(500));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = Breakdown::new();
        b.add(RestorePhase::Interrupting, Nanos::from_micros(1));
        b.add(RestorePhase::Detaching, Nanos::from_micros(3));
        let f = b.fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((f[RestorePhase::Detaching as usize] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        let b = Breakdown::new();
        assert!(b.fractions().iter().all(|&x| x == 0.0));
        assert_eq!(b.total(), Nanos::ZERO);
    }

    #[test]
    fn absorb_merges() {
        let mut a = Breakdown::new();
        a.add(RestorePhase::Brk, Nanos::from_nanos(10));
        let mut b = Breakdown::new();
        b.add(RestorePhase::Brk, Nanos::from_nanos(5));
        b.add(RestorePhase::Mmap, Nanos::from_nanos(7));
        a.absorb(&b);
        assert_eq!(a.get(RestorePhase::Brk), Nanos::from_nanos(15));
        assert_eq!(a.get(RestorePhase::Mmap), Nanos::from_nanos(7));
    }
}
