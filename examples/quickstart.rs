//! Quickstart: deploy a function under Groundhog and invoke it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use groundhog::faas::platform::{Platform, PlatformConfig};
use groundhog::functions::catalog;
use groundhog::isolation::StrategyKind;
use groundhog::mem::RequestId;

fn main() {
    // A platform with default (paper-calibrated) configuration.
    let mut platform = Platform::new(PlatformConfig::default());

    // Pick a benchmark function from the paper's catalog and deploy it
    // in a Groundhog-isolated container. Cold start runs Fig. 1's phases:
    // environment instantiation → runtime init → dummy warm-up → snapshot.
    let spec = catalog::by_name("md2html (p)").expect("in catalog");
    let container = platform.deploy(&spec, StrategyKind::Gh).expect("deploys");
    println!("deployed {} under GH", spec.name);
    {
        let c = platform.container(container);
        let prep = c.stats.prepare.as_ref().unwrap();
        println!(
            "cold start: {} (snapshot captured {} pages)",
            c.stats.init_time,
            prep.snapshot_pages.unwrap(),
        );
    }

    // Serve requests from differently privileged callers. Groundhog
    // restores the process between requests, off the critical path.
    for (i, principal) in ["alice", "bob", "alice", "carol"].iter().enumerate() {
        let out = platform.invoke_simple(container, principal, 0).expect("invokes");
        println!(
            "request {} from {:7}: e2e {:>9}, invoker {:>9}, restore (off-path) {:>9}",
            i + 1,
            principal,
            out.e2e,
            out.invoker,
            out.off_path,
        );
    }

    // The security property, checked directly: no page of the process
    // carries any request's data after the restore.
    let c = platform.container(container);
    let proc = c.kernel.process(c.fproc.pid).unwrap();
    for req in 1..=4 {
        assert!(
            proc.mem.tainted_pages(RequestId(req), c.kernel.frames()).is_empty(),
            "request {req} data must not survive"
        );
    }
    println!("post-restore scan: no request data survives in the function process ✓");
}
