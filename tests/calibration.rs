//! Validation of the reproduction against the paper's aggregate claims.
//!
//! We reproduce *shapes*, not silicon, so every assertion uses a band
//! around the paper's number; the bands are recorded in EXPERIMENTS.md.

use groundhog::core::GroundhogConfig;
use groundhog::faas::client::{closed_loop_latency, peak_throughput};
use groundhog::faas::{Container, Request};
use groundhog::functions::catalog::{by_name, catalog};
use groundhog::isolation::StrategyKind;
use groundhog::sim::stats::{median, overhead_percent, percentile};

const N: usize = 8;

/// The benchmark population for aggregate tests: the full 58 in release
/// builds; a stratified sample in debug builds (same bands apply — the
/// sample covers all runtimes and latency classes).
fn population() -> Vec<groundhog::functions::FunctionSpec> {
    let all = catalog();
    if cfg!(debug_assertions) {
        all.into_iter().step_by(3).collect()
    } else {
        all
    }
}

fn restore_ms(name: &str) -> f64 {
    let spec = by_name(name).unwrap();
    closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), N, 1)
        .unwrap()
        .restore_mean_ms()
}

/// §3: "reverts the process' state in a median of 3.7 ms" across the
/// benchmark suite (10p 0.7, 90p 13).
#[test]
fn restore_time_distribution() {
    let times: Vec<f64> = population().iter().map(|s| restore_ms(s.name)).collect();
    let med = median(&times);
    let p10 = percentile(&times, 10.0);
    let p90 = percentile(&times, 90.0);
    assert!(
        (1.2..7.0).contains(&med),
        "median restore {med:.2}ms vs paper 3.7ms"
    );
    assert!(p10 < 1.5, "10p restore {p10:.2}ms vs paper 0.7ms");
    assert!(
        (5.0..30.0).contains(&p90),
        "90p restore {p90:.2}ms vs paper 13ms"
    );
}

/// Abstract: GH end-to-end latency overhead "median: 1.5%, 95p: 7%".
#[test]
fn latency_overhead_headline() {
    let mut overheads = Vec::new();
    for spec in population() {
        if spec.behavior.leak {
            continue; // logging(p) is the negative-overhead anomaly
        }
        let base =
            closed_loop_latency(&spec, StrategyKind::Base, GroundhogConfig::gh(), N, 2).unwrap();
        let gh = closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), N, 2).unwrap();
        overheads.push(overhead_percent(base.e2e_mean_ms(), gh.e2e_mean_ms()));
    }
    let med = median(&overheads);
    let p95 = percentile(&overheads, 95.0);
    assert!(
        med.abs() < 5.0,
        "median E2E overhead {med:.2}% vs paper 1.5%"
    );
    assert!(p95 < 20.0, "95p E2E overhead {p95:.2}% vs paper 7%");
}

/// Abstract: throughput reduction "median: 2.5%, 95p: 49.6%".
#[test]
fn throughput_overhead_headline() {
    let mut drops = Vec::new();
    for spec in population() {
        if spec.behavior.leak {
            continue;
        }
        let base =
            peak_throughput(&spec, StrategyKind::Base, GroundhogConfig::gh(), 20, 3).unwrap();
        let gh = peak_throughput(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 20, 3).unwrap();
        drops.push(-overhead_percent(base, gh));
    }
    let med = median(&drops);
    let p95 = percentile(&drops, 95.0);
    assert!(
        (0.0..12.0).contains(&med),
        "median xput drop {med:.2}% vs paper 2.5%"
    );
    assert!(
        (25.0..90.0).contains(&p95),
        "95p xput drop {p95:.2}% vs paper 49.6%"
    );
}

/// Restore times must be ordered by runtime class: C ≪ Python ≪ Node
/// write-heavy (Table 3's structure).
#[test]
fn restore_ordering_by_runtime_class() {
    let c = restore_ms("cholesky (c)");
    let py = restore_ms("chaos (p)");
    let node = restore_ms("get-time (n)");
    let node_heavy = restore_ms("base64 (n)");
    assert!(c < py, "C ({c:.2}ms) < Python ({py:.2}ms)");
    assert!(py < node, "Python ({py:.2}ms) < Node ({node:.2}ms)");
    assert!(
        node < node_heavy,
        "sparse Node ({node:.2}ms) < write-heavy ({node_heavy:.2}ms)"
    );
    assert!(
        c < 1.0,
        "C hello-world-class restore sub-millisecond (§6: ~0.5ms)"
    );
    assert!(
        (50.0..260.0).contains(&node_heavy),
        "base64(n) restore {node_heavy:.1}ms vs paper 161.9ms"
    );
}

/// Per-benchmark restore times within a factor-3 band of Table 3.
#[test]
fn per_benchmark_restore_within_band() {
    for name in [
        "get-time (p)",
        "pyflate (p)",
        "img-resize (n)",
        "autocomplete (n)",
        "bicg (c)",
        "heat-3d (c)",
    ] {
        let spec = by_name(name).unwrap();
        let measured = restore_ms(name);
        let paper = spec.paper_restore_ms;
        let ratio = measured / paper;
        assert!(
            (0.33..3.0).contains(&ratio),
            "{name}: restore {measured:.2}ms vs paper {paper:.2}ms (ratio {ratio:.2})"
        );
    }
}

/// The logging(p) anomaly (§5.3.1): over a long run, GH outperforms the
/// baseline because rollback removes the function's memory leak.
#[test]
fn gh_fixes_the_logging_leak() {
    let spec = by_name("logging (p)").unwrap();
    let n = 40;
    let base = closed_loop_latency(&spec, StrategyKind::Base, GroundhogConfig::gh(), n, 4).unwrap();
    let gh = closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), n, 4).unwrap();
    assert!(
        gh.invoker_mean_ms() < base.invoker_mean_ms() * 0.95,
        "GH ({:.0}ms) must beat the leaking baseline ({:.0}ms)",
        gh.invoker_mean_ms(),
        base.invoker_mean_ms()
    );
}

/// §5.3.1: GC-sensitive Node functions pay a pronounced GH penalty
/// (restoration rewinds V8's GC clock).
#[test]
fn img_resize_gc_penalty() {
    let spec = by_name("img-resize (n)").unwrap();
    let base =
        closed_loop_latency(&spec, StrategyKind::Base, GroundhogConfig::gh(), 12, 5).unwrap();
    let gh = closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 12, 5).unwrap();
    let over = overhead_percent(base.invoker_mean_ms(), gh.invoker_mean_ms());
    assert!(
        over > 15.0,
        "img-resize GH invoker overhead {over:.1}% vs paper +62% (GC rewind)"
    );
    // Ordinary Node functions don't show it.
    let spec = by_name("ocr-img (n)").unwrap();
    let base = closed_loop_latency(&spec, StrategyKind::Base, GroundhogConfig::gh(), 8, 5).unwrap();
    let gh = closed_loop_latency(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 8, 5).unwrap();
    let over = overhead_percent(base.invoker_mean_ms(), gh.invoker_mean_ms());
    assert!(over < 8.0, "ocr-img GH overhead {over:.1}% vs paper +0.68%");
}

/// Snapshot is a one-time cost roughly proportional to resident pages
/// (§5.5), far larger than a single restore.
#[test]
fn snapshot_cost_structure() {
    for (name, lo_ms, hi_ms) in [
        ("bicg (c)", 1.0, 12.0),
        ("md2html (p)", 4.0, 40.0),
        ("get-time (n)", 40.0, 320.0),
    ] {
        let spec = by_name(name).unwrap();
        let c = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 6).unwrap();
        let prep = c.stats.prepare.as_ref().unwrap();
        let ms = prep.duration.as_millis_f64();
        assert!(
            (lo_ms..hi_ms).contains(&ms),
            "{name}: snapshot {ms:.1}ms outside [{lo_ms}, {hi_ms})"
        );
    }
}

/// Groundhog must not delay the response: off-path restore time does not
/// appear in invoker latency under low load.
#[test]
fn restore_is_off_the_critical_path() {
    let spec = by_name("fannkuch (p)").unwrap();
    let mut c = Container::cold_start(&spec, StrategyKind::Gh, GroundhogConfig::gh(), 7).unwrap();
    for i in 1..=4u64 {
        let out = c.invoke(&Request::new(i, "caller", 1)).unwrap();
        assert!(
            out.off_path.as_millis_f64() > 0.5,
            "restore runs and is accounted off-path"
        );
        assert!(
            out.invoker_latency.as_millis_f64() < spec.base_invoker_ms * 3.0,
            "response latency does not include the restore"
        );
    }
}
