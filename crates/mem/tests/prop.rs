//! Property-based tests of the virtual-memory substrate.
//!
//! These check the invariants Groundhog's correctness rests on:
//! soft-dirty tracking is *exact* (dirty set == written set), CoW never
//! leaks writes between fork relatives, frame refcounting is leak-free,
//! and page contents are representation-independent.

use proptest::prelude::*;

use gh_mem::{
    AddressSpace, FrameData, FrameTable, PageRange, Perms, SpaceConfig, Taint, Touch, VmaKind,
    Vpn,
};

/// Ops the fuzzer may perform against an address space.
#[derive(Clone, Debug)]
enum Op {
    Mmap(u64),
    MunmapAt(usize, u64),
    Brk(i64),
    TouchWrite(usize),
    TouchRead(usize),
    MprotectRo(usize, u64),
    Madvise(usize, u64),
    ClearSd,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..32).prop_map(Op::Mmap),
        (any::<usize>(), 1u64..8).prop_map(|(i, l)| Op::MunmapAt(i, l)),
        (-16i64..64).prop_map(Op::Brk),
        any::<usize>().prop_map(Op::TouchWrite),
        any::<usize>().prop_map(Op::TouchRead),
        (any::<usize>(), 1u64..4).prop_map(|(i, l)| Op::MprotectRo(i, l)),
        (any::<usize>(), 1u64..8).prop_map(|(i, l)| Op::Madvise(i, l)),
        Just(Op::ClearSd),
    ]
}

/// Picks an existing mapped page (if any) deterministically from an index.
fn pick_page(space: &AddressSpace, i: usize) -> Option<Vpn> {
    let maps = space.maps();
    if maps.is_empty() {
        return None;
    }
    let vma = &maps[i % maps.len()];
    let off = (i as u64 / maps.len().max(1) as u64) % vma.range.len();
    Some(Vpn(vma.range.start.0 + off))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any op sequence preserves structural invariants and never leaks or
    /// double-frees frames.
    #[test]
    fn invariants_hold_under_random_ops(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut frames = FrameTable::new();
        let mut space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let heap_base = space.config().heap_base;
        for op in ops {
            match op {
                Op::Mmap(len) => { let _ = space.mmap(len, Perms::RW, VmaKind::Anon); }
                Op::MunmapAt(i, len) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.munmap(PageRange::at(vpn, len), &mut frames);
                    }
                }
                Op::Brk(delta) => {
                    let cur = space.brk().0 as i64;
                    let new = (cur + delta).max(heap_base.0 as i64) as u64;
                    let _ = space.set_brk(Vpn(new), &mut frames);
                }
                Op::TouchWrite(i) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.touch(vpn, Touch::WriteWord(i as u64), Taint::Clean, &mut frames);
                    }
                }
                Op::TouchRead(i) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.touch(vpn, Touch::Read, Taint::Clean, &mut frames);
                    }
                }
                Op::MprotectRo(i, len) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.mprotect(PageRange::at(vpn, len), Perms::R);
                    }
                }
                Op::Madvise(i, len) => {
                    if let Some(vpn) = pick_page(&space, i) {
                        let _ = space.madvise_dontneed(PageRange::at(vpn, len), &mut frames);
                    }
                }
                Op::ClearSd => space.clear_soft_dirty(),
            }
            prop_assert!(space.check_invariants().is_ok(), "{:?}", space.check_invariants());
        }
        // Every live frame is referenced exactly by the page table.
        prop_assert_eq!(frames.live() as u64, space.present_pages());
        space.release_all(&mut frames);
        prop_assert_eq!(frames.live(), 0, "teardown must free all frames");
    }

    /// Soft-dirty tracking is exact: after a clear, the dirty set equals
    /// precisely the set of pages written afterwards.
    #[test]
    fn soft_dirty_is_exact(
        writes in prop::collection::btree_set(0u64..64, 0..32),
        reads in prop::collection::btree_set(0u64..64, 0..32),
    ) {
        let mut frames = FrameTable::new();
        let mut space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let r = space.mmap(64, Perms::RW, VmaKind::Anon).unwrap();
        // Page everything in first (mixed read/write history).
        for vpn in r.iter() {
            space.touch(vpn, Touch::WriteWord(1), Taint::Clean, &mut frames).unwrap();
        }
        space.clear_soft_dirty();
        for &off in &reads {
            space.touch(Vpn(r.start.0 + off), Touch::Read, Taint::Clean, &mut frames).unwrap();
        }
        for &off in &writes {
            space.touch(Vpn(r.start.0 + off), Touch::WriteWord(2), Taint::Clean, &mut frames).unwrap();
        }
        let dirty: Vec<u64> = space.soft_dirty_pages().iter().map(|v| v.0 - r.start.0).collect();
        let expected: Vec<u64> = writes.iter().copied().collect();
        prop_assert_eq!(dirty, expected);
    }

    /// Writes in a forked child are never visible to the parent, and vice
    /// versa, regardless of write order.
    #[test]
    fn fork_isolation(
        parent_writes in prop::collection::vec((0u64..32, any::<u64>()), 0..32),
        child_writes in prop::collection::vec((0u64..32, any::<u64>()), 0..32),
    ) {
        let mut frames = FrameTable::new();
        let mut parent = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let r = parent.mmap(32, Perms::RW, VmaKind::Anon).unwrap();
        for vpn in r.iter() {
            parent.touch(vpn, Touch::WriteWord(0xBA5E), Taint::Clean, &mut frames).unwrap();
        }
        let mut child = parent.fork(&mut frames);

        for &(off, val) in &child_writes {
            child.touch(Vpn(r.start.0 + off), Touch::WriteWord(val), Taint::Clean, &mut frames).unwrap();
        }
        for &(off, val) in &parent_writes {
            parent.touch(Vpn(r.start.0 + off), Touch::WriteWord(val | 1 << 63), Taint::Clean, &mut frames).unwrap();
        }

        // Replay expected values.
        for vpn in r.iter() {
            let off = vpn.0 - r.start.0;
            let expect_child = child_writes.iter().rev().find(|(o, _)| *o == off)
                .map(|&(_, v)| v).unwrap_or(0xBA5E);
            let expect_parent = parent_writes.iter().rev().find(|(o, _)| *o == off)
                .map(|&(_, v)| v | 1 << 63).unwrap_or(0xBA5E);
            prop_assert_eq!(child.peek_word(vpn, 1, &frames).unwrap(), expect_child);
            prop_assert_eq!(parent.peek_word(vpn, 1, &frames).unwrap(), expect_parent);
        }
        child.release_all(&mut frames);
        parent.release_all(&mut frames);
        prop_assert_eq!(frames.live(), 0);
    }

    /// FrameData representations are interchangeable: any write sequence
    /// applied to a compact page and to a materialized literal page yields
    /// logically equal contents.
    #[test]
    fn frame_representation_independence(
        seed in any::<u64>(),
        writes in prop::collection::vec((0usize..512, any::<u64>()), 0..40),
    ) {
        let mut compact = FrameData::Pattern(seed);
        let mut literal = FrameData::Literal(compact.materialize());
        for &(w, v) in &writes {
            compact.write_word(w, v);
            literal.write_word(w, v);
        }
        prop_assert!(compact.logical_eq(&literal));
        for &(w, _) in &writes {
            prop_assert_eq!(compact.read_word(w), literal.read_word(w));
        }
        // Materializing the compact page agrees byte-for-byte.
        let m = FrameData::Literal(compact.materialize());
        prop_assert!(m.logical_eq(&literal));
    }

    /// Byte-level writes round-trip across arbitrary offsets and lengths,
    /// including page-crossing accesses.
    #[test]
    fn byte_rw_roundtrip(
        offset in 0u64..8192,
        data in prop::collection::vec(any::<u8>(), 1..256),
    ) {
        let mut frames = FrameTable::new();
        let mut space = AddressSpace::new(SpaceConfig::default(), &mut frames);
        let r = space.mmap(4, Perms::RW, VmaKind::Anon).unwrap();
        let addr = gh_mem::VirtAddr(r.start.addr().0 + offset % (2 * 4096));
        space.write_bytes(addr, &data, Taint::Clean, &mut frames).unwrap();
        let mut buf = vec![0u8; data.len()];
        space.read_bytes(addr, &mut buf, &mut frames).unwrap();
        prop_assert_eq!(buf, data);
    }
}
