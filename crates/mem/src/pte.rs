//! Page table entries and their flags.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign, Not};

use crate::frame::FrameId;

/// Per-PTE flag bits.
///
/// The flags mirror the kernel state Groundhog depends on:
///
/// - [`PteFlags::SOFT_DIRTY`]: the page was written since the last
///   `clear_refs` (exposed in `/proc/pid/pagemap` bit 55).
/// - [`PteFlags::SD_WP`]: soft-dirty write protection is armed; set by
///   `clear_refs`, the next write takes a minor fault that sets
///   `SOFT_DIRTY` and clears this bit (§5.2.1's in-function overhead).
/// - [`PteFlags::COW`]: the frame is shared copy-on-write (after `fork`);
///   a write copies the frame first.
/// - [`PteFlags::UFFD_WP`]: userfaultfd write protection (§4.3's
///   alternative tracking backend).
/// - [`PteFlags::TLB_COLD`]: no TLB entry / lazily created PTE; the first
///   access after `fork` pays extra (§5.2.3's dTLB-miss effect).
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct PteFlags(pub u8);

impl PteFlags {
    /// Page has a frame mapped.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Written since the last soft-dirty clear.
    pub const SOFT_DIRTY: PteFlags = PteFlags(1 << 1);
    /// Soft-dirty write-protection armed (next write faults).
    pub const SD_WP: PteFlags = PteFlags(1 << 2);
    /// Frame shared copy-on-write.
    pub const COW: PteFlags = PteFlags(1 << 3);
    /// Userfaultfd write-protection armed.
    pub const UFFD_WP: PteFlags = PteFlags(1 << 4);
    /// First post-fork access pays a dTLB / lazy-PTE cost.
    pub const TLB_COLD: PteFlags = PteFlags(1 << 5);

    /// The empty flag set.
    pub const fn empty() -> PteFlags {
        PteFlags(0)
    }

    /// True if every bit of `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is set in `self`.
    #[inline]
    pub const fn intersects(self, other: PteFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `self` with the bits of `other` set.
    #[inline]
    #[must_use]
    pub const fn with(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 | other.0)
    }

    /// Returns `self` with the bits of `other` cleared.
    #[inline]
    #[must_use]
    pub const fn without(self, other: PteFlags) -> PteFlags {
        PteFlags(self.0 & !other.0)
    }
}

impl BitOr for PteFlags {
    type Output = PteFlags;
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 | rhs.0)
    }
}
impl BitOrAssign for PteFlags {
    fn bitor_assign(&mut self, rhs: PteFlags) {
        self.0 |= rhs.0;
    }
}
impl BitAnd for PteFlags {
    type Output = PteFlags;
    fn bitand(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 & rhs.0)
    }
}
impl Not for PteFlags {
    type Output = PteFlags;
    fn not(self) -> PteFlags {
        PteFlags(!self.0)
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.contains(PteFlags::PRESENT) {
            parts.push("P");
        }
        if self.contains(PteFlags::SOFT_DIRTY) {
            parts.push("SD");
        }
        if self.contains(PteFlags::SD_WP) {
            parts.push("SDWP");
        }
        if self.contains(PteFlags::COW) {
            parts.push("COW");
        }
        if self.contains(PteFlags::UFFD_WP) {
            parts.push("UFFDWP");
        }
        if self.contains(PteFlags::TLB_COLD) {
            parts.push("COLD");
        }
        write!(f, "PteFlags[{}]", parts.join("|"))
    }
}

/// One page table entry: a frame reference plus flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// The mapped frame.
    pub frame: FrameId,
    /// Flag bits.
    pub flags: PteFlags,
}

impl Pte {
    /// A present entry with the given extra flags.
    pub fn present(frame: FrameId, extra: PteFlags) -> Pte {
        Pte {
            frame,
            flags: PteFlags::PRESENT.with(extra),
        }
    }

    /// Whether the soft-dirty bit is set.
    pub fn soft_dirty(&self) -> bool {
        self.flags.contains(PteFlags::SOFT_DIRTY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_set_operations() {
        let f = PteFlags::PRESENT | PteFlags::SOFT_DIRTY;
        assert!(f.contains(PteFlags::PRESENT));
        assert!(f.contains(PteFlags::SOFT_DIRTY));
        assert!(!f.contains(PteFlags::COW));
        assert!(f.intersects(PteFlags::SOFT_DIRTY | PteFlags::COW));
        assert!(!f.intersects(PteFlags::COW | PteFlags::UFFD_WP));
        assert_eq!(f.without(PteFlags::SOFT_DIRTY), PteFlags::PRESENT);
        assert_eq!(PteFlags::empty().with(PteFlags::COW), PteFlags::COW);
    }

    #[test]
    fn pte_constructor() {
        let p = Pte::present(FrameId(3), PteFlags::SOFT_DIRTY);
        assert!(p.flags.contains(PteFlags::PRESENT));
        assert!(p.soft_dirty());
        assert_eq!(p.frame, FrameId(3));
    }

    #[test]
    fn debug_formatting() {
        let f = PteFlags::PRESENT | PteFlags::COW;
        let s = format!("{f:?}");
        assert!(s.contains('P'));
        assert!(s.contains("COW"));
    }
}
