//! The extent-based page table.
//!
//! Instead of one map entry per present page, [`PageTable`] keeps
//! *extents*: maximal runs of contiguous present pages sharing one
//! [`PteFlags`] value. Frames stay per-page (each page owns its
//! refcounted frame, exactly as before), stored in flat 512-page chunks
//! so extent splits and merges never copy frame arrays.
//!
//! Why it matters: between two tracker re-arms, the flag state of a
//! function process is "everything armed, except the D pages it
//! dirtied" — a handful of extents plus `O(D)` splits. Every whole-table
//! flag transform (`clear_refs`, uffd arm/disarm, CoW marking) is
//! therefore `O(extents)` instead of `O(present)`, and capture walks
//! `O(extents)` runs instead of `O(present)` map entries.
//!
//! Invariants (checked by `AddressSpace::check_invariants`):
//! - extents are sorted, non-empty and non-overlapping;
//! - no two adjacent extents have equal flags (maximality);
//! - every page inside an extent has a frame slot in its chunk, and
//!   chunk occupancy equals the number of covering extent pages.

use std::collections::{BTreeMap, HashMap};

use crate::addr::{PageRange, Vpn};
use crate::batch::TouchItem;
use crate::frame::FrameId;
use crate::pte::{Pte, PteFlags};

/// What [`PageTable::touch_walk`] should do with one batch item, decided
/// by the fault logic in `space.rs`.
pub(crate) enum BatchDecision {
    /// Leave the page untouched (the per-item error path: the caller's
    /// loop equivalent is `let _ = touch(...)` on an unmapped or
    /// permission-denied page).
    Skip,
    /// Install an absent page (minor fault) with this frame and flags.
    Insert { frame: FrameId, flags: PteFlags },
    /// Update a present page: optionally replace its frame (CoW copy /
    /// unshare) and set its flags (which may equal the old flags).
    Update {
        frame: Option<FrameId>,
        flags: PteFlags,
    },
}

/// Accumulates `(start, len, flags)` runs in address order, merging
/// adjacent equal-flag pushes so the output is maximal by construction.
#[derive(Default)]
struct RunBuilder {
    runs: Vec<(u64, ExtentMeta)>,
}

impl RunBuilder {
    #[inline]
    fn push(&mut self, start: u64, len: u64, flags: PteFlags) {
        if let Some((ls, lm)) = self.runs.last_mut() {
            debug_assert!(*ls + lm.len <= start, "out-of-order run push");
            if *ls + lm.len == start && lm.flags == flags {
                lm.len += len;
                return;
            }
        }
        self.runs.push((start, ExtentMeta { len, flags }));
    }

    /// Re-flags the most recently pushed page (a duplicate batch item
    /// revising its own earlier decision).
    fn amend_last_page(&mut self, flags: PteFlags) {
        let (ls, lm) = self.runs.last_mut().expect("amend on empty builder");
        if lm.flags == flags {
            return;
        }
        let vpn = *ls + lm.len - 1;
        if lm.len == 1 {
            self.runs.pop();
        } else {
            lm.len -= 1;
        }
        self.push(vpn, 1, flags);
    }
}

/// Pages per frame chunk.
const CHUNK_PAGES: u64 = 512;

/// Metadata of one extent (the frames live in the chunk store).
#[derive(Clone, Copy, Debug)]
struct ExtentMeta {
    /// Pages in the run.
    len: u64,
    /// Uniform flags of every page in the run.
    flags: PteFlags,
}

/// A 512-page frame chunk.
#[derive(Clone, Debug)]
struct Chunk {
    /// Occupied slots (pages covered by some extent).
    used: u32,
    /// Frame per page slot; slots outside extents are garbage.
    frames: Box<[FrameId; CHUNK_PAGES as usize]>,
}

impl Chunk {
    fn new() -> Chunk {
        Chunk {
            used: 0,
            frames: Box::new([FrameId(u64::MAX); CHUNK_PAGES as usize]),
        }
    }
}

/// Extent-based page table: flag extents + chunked per-page frames.
#[derive(Clone, Debug, Default)]
pub(crate) struct PageTable {
    /// Extents keyed by start vpn.
    extents: BTreeMap<u64, ExtentMeta>,
    /// Frame storage, keyed by `vpn / 512`.
    chunks: HashMap<u64, Chunk>,
    /// Present pages (Σ extent lens).
    present: u64,
}

impl PageTable {
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Present pages.
    pub fn len(&self) -> u64 {
        self.present
    }

    /// Number of extents.
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// The extent containing `vpn`, as `(start, len, flags)`.
    fn extent_at(&self, vpn: u64) -> Option<(u64, ExtentMeta)> {
        self.extents
            .range(..=vpn)
            .next_back()
            .map(|(&s, &m)| (s, m))
            .filter(|(s, m)| vpn < s + m.len)
    }

    /// Frame of `vpn`, assuming it is present.
    fn frame_slot(&self, vpn: u64) -> FrameId {
        self.chunks[&(vpn / CHUNK_PAGES)].frames[(vpn % CHUNK_PAGES) as usize]
    }

    fn set_slot(&mut self, vpn: u64, frame: FrameId, fresh: bool) {
        let chunk = self
            .chunks
            .entry(vpn / CHUNK_PAGES)
            .or_insert_with(Chunk::new);
        chunk.frames[(vpn % CHUNK_PAGES) as usize] = frame;
        if fresh {
            chunk.used += 1;
        }
    }

    fn clear_slot(&mut self, vpn: u64) -> FrameId {
        let key = vpn / CHUNK_PAGES;
        let chunk = self.chunks.get_mut(&key).expect("slot chunk");
        let frame = chunk.frames[(vpn % CHUNK_PAGES) as usize];
        chunk.used -= 1;
        if chunk.used == 0 {
            self.chunks.remove(&key);
        }
        frame
    }

    /// The PTE of `vpn`, by value.
    pub fn get(&self, vpn: Vpn) -> Option<Pte> {
        self.extent_at(vpn.0).map(|(_, m)| Pte {
            frame: self.frame_slot(vpn.0),
            flags: m.flags,
        })
    }

    /// True when `vpn` is present.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.extent_at(vpn.0).is_some()
    }

    /// Inserts a one-page extent, merging with equal-flag neighbors.
    /// Assumes the page is absent (splitting/removal happens first).
    fn insert_extent_merging(&mut self, vpn: u64, flags: PteFlags) {
        let mut start = vpn;
        let mut len = 1u64;
        // Merge with predecessor ending exactly at vpn.
        if let Some((&ps, &pm)) = self.extents.range(..vpn).next_back() {
            debug_assert!(ps + pm.len <= vpn, "insert into covered page");
            if ps + pm.len == vpn && pm.flags == flags {
                start = ps;
                len += pm.len;
                self.extents.remove(&ps);
            }
        }
        // Merge with successor starting exactly at vpn + 1.
        if let Some((&ns, &nm)) = self.extents.range(vpn + 1..).next() {
            if ns == vpn + 1 && nm.flags == flags {
                len += nm.len;
                self.extents.remove(&ns);
            }
        }
        self.extents.insert(start, ExtentMeta { len, flags });
    }

    /// Installs `vpn` with the given frame and flags. The page must be
    /// absent.
    pub fn insert(&mut self, vpn: Vpn, frame: FrameId, flags: PteFlags) {
        debug_assert!(!self.contains(vpn), "inserting a present page");
        self.set_slot(vpn.0, frame, true);
        self.insert_extent_merging(vpn.0, flags);
        self.present += 1;
    }

    /// Removes `vpn`, returning its frame.
    pub fn remove(&mut self, vpn: Vpn) -> Option<FrameId> {
        let (start, meta) = self.extent_at(vpn.0)?;
        self.extents.remove(&start);
        if vpn.0 > start {
            self.extents.insert(
                start,
                ExtentMeta {
                    len: vpn.0 - start,
                    flags: meta.flags,
                },
            );
        }
        let end = start + meta.len;
        if vpn.0 + 1 < end {
            self.extents.insert(
                vpn.0 + 1,
                ExtentMeta {
                    len: end - vpn.0 - 1,
                    flags: meta.flags,
                },
            );
        }
        self.present -= 1;
        Some(self.clear_slot(vpn.0))
    }

    /// Removes every present page in `range`, passing each freed frame to
    /// `f`. Work is `O(log E + affected extents + removed pages)`.
    pub fn remove_range(&mut self, range: PageRange, mut f: impl FnMut(Vpn, FrameId)) {
        if range.is_empty() {
            return;
        }
        // Find extents overlapping the range (the predecessor may lap in).
        let first = self
            .extents
            .range(..range.start.0)
            .next_back()
            .filter(|(&s, m)| s + m.len > range.start.0)
            .map(|(&s, _)| s)
            .into_iter()
            .chain(
                self.extents
                    .range(range.start.0..range.end.0)
                    .map(|(&s, _)| s),
            )
            .collect::<Vec<u64>>();
        for s in first {
            let meta = self.extents.remove(&s).expect("collected key");
            let ext = PageRange::new(Vpn(s), Vpn(s + meta.len));
            let cut = ext.intersect(range);
            if ext.start.0 < cut.start.0 {
                self.extents.insert(
                    ext.start.0,
                    ExtentMeta {
                        len: cut.start.0 - ext.start.0,
                        flags: meta.flags,
                    },
                );
            }
            if cut.end.0 < ext.end.0 {
                self.extents.insert(
                    cut.end.0,
                    ExtentMeta {
                        len: ext.end.0 - cut.end.0,
                        flags: meta.flags,
                    },
                );
            }
            for vpn in cut.iter() {
                let frame = self.clear_slot(vpn.0);
                f(vpn, frame);
            }
            self.present -= cut.len();
        }
    }

    /// Replaces the frame of a present page (CoW copy), flags unchanged.
    pub fn set_frame(&mut self, vpn: Vpn, frame: FrameId) {
        debug_assert!(self.contains(vpn), "set_frame on absent page");
        self.set_slot(vpn.0, frame, false);
    }

    /// Sets the flags of one present page, splitting and re-merging
    /// extents as needed. `O(log E)`.
    pub fn set_flags(&mut self, vpn: Vpn, flags: PteFlags) {
        let (start, meta) = self.extent_at(vpn.0).expect("set_flags on absent page");
        if meta.flags == flags {
            return;
        }
        self.extents.remove(&start);
        if vpn.0 > start {
            self.extents.insert(
                start,
                ExtentMeta {
                    len: vpn.0 - start,
                    flags: meta.flags,
                },
            );
        }
        let end = start + meta.len;
        if vpn.0 + 1 < end {
            self.extents.insert(
                vpn.0 + 1,
                ExtentMeta {
                    len: end - vpn.0 - 1,
                    flags: meta.flags,
                },
            );
        }
        self.insert_extent_merging(vpn.0, flags);
    }

    /// Applies `f` to every extent's flags, then restores maximality by
    /// merging adjacent equal-flag extents. `O(extents)`.
    pub fn transform_flags(&mut self, mut f: impl FnMut(PteFlags) -> PteFlags) {
        let old = std::mem::take(&mut self.extents);
        let mut rebuilt: BTreeMap<u64, ExtentMeta> = BTreeMap::new();
        let mut last: Option<(u64, ExtentMeta)> = None;
        for (start, mut meta) in old {
            meta.flags = f(meta.flags);
            match &mut last {
                Some((ls, lm)) if *ls + lm.len == start && lm.flags == meta.flags => {
                    lm.len += meta.len;
                }
                _ => {
                    if let Some((ls, lm)) = last.take() {
                        rebuilt.insert(ls, lm);
                    }
                    last = Some((start, meta));
                }
            }
        }
        if let Some((ls, lm)) = last {
            rebuilt.insert(ls, lm);
        }
        self.extents = rebuilt;
    }

    /// Iterates `(range, flags)` extents in address order.
    pub fn extents(&self) -> impl Iterator<Item = (PageRange, PteFlags)> + '_ {
        self.extents
            .iter()
            .map(|(&s, m)| (PageRange::new(Vpn(s), Vpn(s + m.len)), m.flags))
    }

    /// Present pages coalesced into maximal runs irrespective of flags.
    /// `O(extents)`.
    pub fn present_runs(&self) -> Vec<PageRange> {
        let mut out: Vec<PageRange> = Vec::new();
        for (range, _) in self.extents() {
            match out.last_mut() {
                Some(last) if last.end == range.start => last.end = range.end,
                _ => out.push(range),
            }
        }
        out
    }

    /// Iterates `(vpn, pte)` over present pages in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.extents.iter().flat_map(move |(&s, m)| {
            (s..s + m.len).map(move |v| {
                (
                    Vpn(v),
                    Pte {
                        frame: self.frame_slot(v),
                        flags: m.flags,
                    },
                )
            })
        })
    }

    /// Appends the frames of the present pages of `range` (which must be
    /// fully present) to `out`, in address order. Chunk-wise: one
    /// `HashMap` probe per touched 512-page window instead of one per
    /// page, and each window lands via `extend_from_slice`, so a
    /// 2 MiB-aligned window is one memcpy of a whole chunk slice — the
    /// capture fast path.
    pub fn frames_in_into(&self, range: PageRange, out: &mut Vec<FrameId>) {
        let (lo, hi) = (range.start.0, range.end.0);
        if hi <= lo {
            return;
        }
        out.reserve((hi - lo) as usize);
        for key in lo / CHUNK_PAGES..(hi - 1) / CHUNK_PAGES + 1 {
            let w_lo = (key * CHUNK_PAGES).max(lo);
            let w_hi = ((key + 1) * CHUNK_PAGES).min(hi);
            out.extend_from_slice(
                &self.chunks[&key].frames
                    [(w_lo % CHUNK_PAGES) as usize..((w_hi - 1) % CHUNK_PAGES + 1) as usize],
            );
        }
    }

    /// One ordered cursor walk resolving a sorted batch of page touches.
    ///
    /// For every item (in order) the walk determines the page's current
    /// `(frame, flags)` — `None` when absent — and asks `decide` what to
    /// do. Two phases keep the cost at `O(batch + changed extents)`
    /// instead of `O(batch × log extents)`:
    ///
    /// 1. a **read-only cursor walk** over the extent map (one forward
    ///    iterator, no per-item probe) resolving every item; frame slots
    ///    are written in place, chunk-grouped (one `HashMap` probe per
    ///    touched 512-page chunk); pages whose *flags* change (or are
    ///    inserted) are recorded as sorted edit runs;
    /// 2. an **edit fold**: no edits (warm batches — the steady-state
    ///    common case) mutate the extent map not at all; sparse edits
    ///    splice in-place; dense edits (a re-armed write set fragmenting
    ///    the armed extents) bulk-rebuild the map from one sorted
    ///    iterator, which `BTreeMap` builds bottom-up in `O(n)`.
    ///
    /// `items` must be sorted by vpn; duplicates are allowed and see the
    /// state left by the previous decision for the same page.
    pub(crate) fn touch_walk(
        &mut self,
        items: &[TouchItem],
        mut decide: impl FnMut(&TouchItem, Option<(FrameId, PteFlags)>) -> BatchDecision,
    ) {
        if items.is_empty() {
            return;
        }
        debug_assert!(
            items.windows(2).all(|w| w[0].vpn.0 <= w[1].vpn.0),
            "touch_walk requires vpn-sorted items"
        );
        let lo = items[0].vpn.0;

        let PageTable {
            extents,
            chunks,
            present,
        } = self;

        // ---- Phase 1: read-only resolution ----
        // Forward extent cursor: seeded at the predecessor of the first
        // item, advanced monotonically (items are sorted, so the walk
        // never looks back).
        let seed = extents
            .range(..=lo)
            .next_back()
            .map(|(&s, _)| s)
            .unwrap_or(lo);
        let mut ext_iter = extents.range(seed..).peekable();
        // (start, end, flags) of the most recently passed extent.
        let mut cur_ext: Option<(u64, u64, PteFlags)> = None;
        // Pages whose flags changed or that were inserted, as maximal
        // sorted runs. Everything else leaves the extent map untouched.
        let mut edits = RunBuilder::default();
        // Duplicate-vpn carry: the previous item's vpn, resulting page
        // state, and whether that page already has an edit run as the
        // builder's last page (drives `amend_last_page`).
        type DupCarry = (u64, Option<(FrameId, PteFlags)>, bool);
        let mut last: Option<DupCarry> = None;

        let mut i = 0usize;
        while i < items.len() {
            let key = items[i].vpn.0 / CHUNK_PAGES;
            let mut j = i + 1;
            while j < items.len() && items[j].vpn.0 / CHUNK_PAGES == key {
                j += 1;
            }
            // One chunk probe per touched 512-page window. A window of
            // pure reads over an absent chunk creates and removes an
            // empty chunk — rare (absent windows come from minor-fault
            // sweeps, which insert) and cheap.
            let existed = chunks.contains_key(&key);
            let chunk = chunks.entry(key).or_insert_with(Chunk::new);
            let window = &items[i..j];
            for (k, it) in window.iter().enumerate() {
                let vpn = it.vpn.0;
                let slot = (vpn % CHUNK_PAGES) as usize;
                // `last` only matters across duplicate-vpn neighbours
                // (same vpn ⇒ same chunk ⇒ same window), so it is
                // maintained only around them — the common all-distinct
                // batch never writes it.
                let next_same = window.get(k + 1).is_some_and(|n| n.vpn.0 == vpn);
                let (cur, was_edited) = match last {
                    Some((lv, state, edited)) if lv == vpn => (state, edited),
                    _ => {
                        // Hot path: the cached extent still covers vpn
                        // (typical for dense read sweeps) — no peek.
                        let flags = match cur_ext {
                            Some((s, e, f)) if vpn >= s && vpn < e => Some(f),
                            _ => {
                                // Advance the cursor to the last extent
                                // starting at or before vpn.
                                while let Some(&(&s, m)) = ext_iter.peek() {
                                    if s <= vpn {
                                        cur_ext = Some((s, s + m.len, m.flags));
                                        ext_iter.next();
                                    } else {
                                        break;
                                    }
                                }
                                cur_ext
                                    .filter(|&(s, e, _)| vpn >= s && vpn < e)
                                    .map(|(_, _, f)| f)
                            }
                        };
                        (flags.map(|f| (chunk.frames[slot], f)), false)
                    }
                };
                match decide(it, cur) {
                    BatchDecision::Skip => {
                        if next_same {
                            last = Some((vpn, cur, was_edited));
                        }
                    }
                    BatchDecision::Insert { frame, flags } => {
                        debug_assert!(cur.is_none(), "Insert over a present page");
                        chunk.frames[slot] = frame;
                        chunk.used += 1;
                        *present += 1;
                        edits.push(vpn, 1, flags);
                        if next_same {
                            last = Some((vpn, Some((frame, flags)), true));
                        }
                    }
                    BatchDecision::Update { frame, flags } => {
                        let (old_frame, old_flags) = cur.expect("Update on an absent page");
                        let frame = frame.unwrap_or(old_frame);
                        if frame != old_frame {
                            chunk.frames[slot] = frame;
                        }
                        let changed = flags != old_flags;
                        if was_edited {
                            // Duplicate revising its own earlier edit.
                            edits.amend_last_page(flags);
                        } else if changed {
                            edits.push(vpn, 1, flags);
                        }
                        if next_same {
                            last = Some((vpn, Some((frame, flags)), was_edited || changed));
                        }
                    }
                }
            }
            if chunk.used == 0 && !existed {
                chunks.remove(&key);
            }
            i = j;
        }
        drop(ext_iter);

        // ---- Phase 2: fold the edits back into the extent map ----
        if edits.runs.is_empty() {
            return; // warm batch: the extent map is untouched
        }
        Self::apply_edit_runs(extents, edits.runs);
    }

    /// One ordered walk resolving every page of a *contiguous* range —
    /// the run-granular restore path ([`touch_walk`]'s simpler sibling:
    /// no duplicate handling, no `TouchItem` batch to materialize).
    ///
    /// For every page of `range`, ascending, `decide` sees the page's
    /// offset within the range and its current `(frame, flags)` (`None`
    /// when absent) and returns a [`BatchDecision`]. Costs one chunk
    /// probe per 512-page window and one extent edit fold for the whole
    /// run, instead of a `BTreeMap` probe-and-splice per page; state
    /// outcomes are identical to applying the decisions page-at-a-time.
    ///
    /// [`touch_walk`]: PageTable::touch_walk
    pub(crate) fn restore_walk(
        &mut self,
        range: PageRange,
        mut decide: impl FnMut(u64, Option<(FrameId, PteFlags)>) -> BatchDecision,
    ) {
        if range.is_empty() {
            return;
        }
        let (lo, hi) = (range.start.0, range.end.0);

        let PageTable {
            extents,
            chunks,
            present,
        } = self;

        // Phase 1: forward extent cursor + per-window chunk probe, as in
        // `touch_walk` phase 1 (see there for the cursor invariants).
        let seed = extents
            .range(..=lo)
            .next_back()
            .map(|(&s, _)| s)
            .unwrap_or(lo);
        let mut ext_iter = extents.range(seed..).peekable();
        let mut cur_ext: Option<(u64, u64, PteFlags)> = None;
        let mut edits = RunBuilder::default();

        let mut vpn = lo;
        while vpn < hi {
            let key = vpn / CHUNK_PAGES;
            let w_hi = ((key + 1) * CHUNK_PAGES).min(hi);
            let existed = chunks.contains_key(&key);
            let chunk = chunks.entry(key).or_insert_with(Chunk::new);
            while vpn < w_hi {
                let slot = (vpn % CHUNK_PAGES) as usize;
                let flags = match cur_ext {
                    Some((s, e, f)) if vpn >= s && vpn < e => Some(f),
                    _ => {
                        while let Some(&(&s, m)) = ext_iter.peek() {
                            if s <= vpn {
                                cur_ext = Some((s, s + m.len, m.flags));
                                ext_iter.next();
                            } else {
                                break;
                            }
                        }
                        cur_ext
                            .filter(|&(s, e, _)| vpn >= s && vpn < e)
                            .map(|(_, _, f)| f)
                    }
                };
                let cur = flags.map(|f| (chunk.frames[slot], f));
                match decide(vpn - lo, cur) {
                    BatchDecision::Skip => {}
                    BatchDecision::Insert { frame, flags } => {
                        debug_assert!(cur.is_none(), "Insert over a present page");
                        chunk.frames[slot] = frame;
                        chunk.used += 1;
                        *present += 1;
                        edits.push(vpn, 1, flags);
                    }
                    BatchDecision::Update { frame, flags } => {
                        let (old_frame, old_flags) = cur.expect("Update on an absent page");
                        if let Some(f) = frame {
                            if f != old_frame {
                                chunk.frames[slot] = f;
                            }
                        }
                        if flags != old_flags {
                            edits.push(vpn, 1, flags);
                        }
                    }
                }
                vpn += 1;
            }
            if chunk.used == 0 && !existed {
                chunks.remove(&key);
            }
        }
        drop(ext_iter);

        // Phase 2: fold the edits back into the extent map.
        if edits.runs.is_empty() {
            return;
        }
        Self::apply_edit_runs(extents, edits.runs);
    }

    /// Replaces the flag coverage of every page in `edits` (sorted
    /// maximal runs; pages outside old coverage add new coverage),
    /// restoring extent maximality. Sparse edits splice in place
    /// (`O(edits × log E)`); dense edits rebuild the whole map from one
    /// sorted iterator (`O(E + edits)` with bottom-up bulk build).
    fn apply_edit_runs(extents: &mut BTreeMap<u64, ExtentMeta>, edits: Vec<(u64, ExtentMeta)>) {
        let w_lo = edits[0].0;
        let (le, lm) = *edits.last().expect("non-empty");
        let w_hi = le + lm.len; // exclusive end of the edit window

        // Old extents overlapping the window (predecessor may lap in).
        let first = extents
            .range(..w_lo)
            .next_back()
            .filter(|(&s, m)| s + m.len > w_lo)
            .map(|(&s, _)| s);
        let start_key = first.unwrap_or(w_lo);

        // Merge old coverage with the edit runs: edits win; old pages
        // (including parts lapping outside the window) copy through.
        let mut out = RunBuilder::default();
        {
            let mut olds = extents.range(start_key..w_hi).peekable();
            // Next uncopied page of the current old extent.
            let mut opos = olds.peek().map(|(&s, _)| s).unwrap_or(w_hi);
            let flush_old_below = |to: u64,
                                   olds: &mut std::iter::Peekable<
                std::collections::btree_map::Range<u64, ExtentMeta>,
            >,
                                   opos: &mut u64,
                                   out: &mut RunBuilder| {
                while let Some(&(&s, m)) = olds.peek() {
                    let end = s + m.len;
                    let from = (*opos).max(s);
                    if from >= to {
                        return;
                    }
                    let upto = end.min(to);
                    if from < upto {
                        out.push(from, upto - from, m.flags);
                    }
                    if upto == end {
                        olds.next();
                        *opos = olds.peek().map(|(&s, _)| s).unwrap_or(u64::MAX);
                    } else {
                        *opos = upto;
                        return;
                    }
                }
            };
            for &(es, em) in &edits {
                flush_old_below(es, &mut olds, &mut opos, &mut out);
                out.push(es, em.len, em.flags);
                // Skip old coverage the edit replaced.
                opos = opos.max(es + em.len);
                while let Some(&(&s, m)) = olds.peek() {
                    if s + m.len <= opos {
                        olds.next();
                        if let Some(&(&ns, _)) = olds.peek() {
                            opos = opos.max(ns);
                        }
                    } else {
                        break;
                    }
                }
            }
            flush_old_below(u64::MAX, &mut olds, &mut opos, &mut out);
        }
        let mut runs = out.runs;

        // Boundary maximality: merge with the untouched neighbours.
        let mut remove_pred = None;
        if let Some(&(fs, fm)) = runs.first() {
            if let Some((&ps, &pm)) = extents.range(..fs).next_back() {
                if ps + pm.len == fs && pm.flags == fm.flags && ps != start_key {
                    remove_pred = Some(ps);
                    runs[0] = (
                        ps,
                        ExtentMeta {
                            len: pm.len + fm.len,
                            flags: pm.flags,
                        },
                    );
                }
            }
        }
        let mut remove_succ = None;
        if let Some(&(ls, lm)) = runs.last() {
            let end = ls + lm.len;
            if let Some((&ns, &nm)) = extents.range(end..).next() {
                if ns == end && nm.flags == lm.flags {
                    remove_succ = Some(ns);
                    runs.last_mut().expect("non-empty").1.len += nm.len;
                }
            }
        }

        // Count the old entries being replaced.
        let replaced = extents.range(start_key..w_hi).count()
            + remove_pred.is_some() as usize
            + remove_succ.is_some() as usize;
        let churn = runs.len() + replaced;
        if churn * 8 >= extents.len() {
            // Dense: rebuild the whole map from one sorted iterator
            // (BTreeMap bulk-builds bottom-up). The window entries and
            // merged neighbours are skipped; `runs` splices in.
            let skip_lo = remove_pred.unwrap_or(start_key);
            let skip_hi = remove_succ.map(|s| s + 1).unwrap_or(w_hi);
            let rebuilt: BTreeMap<u64, ExtentMeta> = extents
                .range(..skip_lo)
                .map(|(&s, &m)| (s, m))
                .chain(runs.iter().copied())
                .chain(extents.range(skip_hi..).map(|(&s, &m)| (s, m)))
                .collect();
            *extents = rebuilt;
        } else {
            // Sparse: splice in place.
            let doomed: Vec<u64> = extents
                .range(start_key..w_hi)
                .map(|(&s, _)| s)
                .chain(remove_pred)
                .chain(remove_succ)
                .collect();
            for s in doomed {
                extents.remove(&s);
            }
            extents.extend(runs);
        }
    }

    /// Structural self-check: sorted, disjoint, non-empty, maximal
    /// extents; chunk occupancy matches extent coverage.
    pub fn check(&self) -> Result<(), String> {
        let mut prev: Option<(u64, ExtentMeta)> = None;
        let mut covered = 0u64;
        for (&start, meta) in &self.extents {
            if meta.len == 0 {
                return Err(format!("empty extent at {start:#x}"));
            }
            if let Some((ps, pm)) = prev {
                let pend = ps + pm.len;
                if start < pend {
                    return Err(format!("overlapping extents at {start:#x}"));
                }
                if start == pend && pm.flags == meta.flags {
                    return Err(format!(
                        "adjacent mergeable extents at {start:#x} ({:?})",
                        meta.flags
                    ));
                }
            }
            covered += meta.len;
            prev = Some((start, *meta));
        }
        if covered != self.present {
            return Err(format!(
                "present count {} != extent coverage {covered}",
                self.present
            ));
        }
        let chunk_used: u64 = self.chunks.values().map(|c| c.used as u64).sum();
        if chunk_used != self.present {
            return Err(format!(
                "chunk occupancy {chunk_used} != present {}",
                self.present
            ));
        }
        for (&start, meta) in &self.extents {
            for v in start..start + meta.len {
                let Some(chunk) = self.chunks.get(&(v / CHUNK_PAGES)) else {
                    return Err(format!("page {v:#x} has no frame chunk"));
                };
                if chunk.frames[(v % CHUNK_PAGES) as usize] == FrameId(u64::MAX) {
                    return Err(format!("page {v:#x} has no frame slot"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(bits: u8) -> PteFlags {
        PteFlags(bits).with(PteFlags::PRESENT)
    }

    #[test]
    fn insert_merges_into_maximal_extents() {
        let mut t = PageTable::new();
        for v in [10u64, 12, 11, 9, 13] {
            t.insert(Vpn(v), FrameId(v), flags(0));
            t.check().unwrap();
        }
        assert_eq!(t.extent_count(), 1);
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(Vpn(12)).unwrap().frame, FrameId(12));
        assert!(t.get(Vpn(14)).is_none());
    }

    #[test]
    fn differing_flags_do_not_merge() {
        let mut t = PageTable::new();
        t.insert(Vpn(5), FrameId(1), flags(0));
        t.insert(Vpn(6), FrameId(2), flags(2));
        t.insert(Vpn(7), FrameId(3), flags(0));
        assert_eq!(t.extent_count(), 3);
        t.check().unwrap();
    }

    #[test]
    fn set_flags_splits_and_remerges() {
        let mut t = PageTable::new();
        for v in 0..10u64 {
            t.insert(Vpn(v), FrameId(v), flags(0));
        }
        t.set_flags(Vpn(4), flags(2));
        assert_eq!(t.extent_count(), 3);
        t.check().unwrap();
        t.set_flags(Vpn(5), flags(2));
        assert_eq!(t.extent_count(), 3, "adjacent changed pages merge");
        t.check().unwrap();
        t.set_flags(Vpn(4), flags(0));
        t.set_flags(Vpn(5), flags(0));
        assert_eq!(t.extent_count(), 1, "restoring flags restores one run");
        t.check().unwrap();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn remove_splits() {
        let mut t = PageTable::new();
        for v in 0..8u64 {
            t.insert(Vpn(v), FrameId(v), flags(0));
        }
        assert_eq!(t.remove(Vpn(3)), Some(FrameId(3)));
        assert_eq!(t.extent_count(), 2);
        assert_eq!(t.len(), 7);
        assert!(t.get(Vpn(3)).is_none());
        t.check().unwrap();
        assert_eq!(t.remove(Vpn(3)), None);
    }

    #[test]
    fn remove_range_frees_exactly() {
        let mut t = PageTable::new();
        for v in 0..20u64 {
            if v != 10 {
                t.insert(Vpn(v), FrameId(v), flags(0));
            }
        }
        let mut freed = Vec::new();
        t.remove_range(PageRange::new(Vpn(5), Vpn(15)), |v, f| {
            freed.push((v.0, f.0))
        });
        assert_eq!(
            freed,
            (5..15)
                .filter(|&v| v != 10)
                .map(|v| (v, v))
                .collect::<Vec<_>>()
        );
        assert_eq!(t.len(), 10);
        t.check().unwrap();
    }

    #[test]
    fn transform_collapses_fragmentation() {
        let mut t = PageTable::new();
        for v in 0..100u64 {
            t.insert(Vpn(v), FrameId(v), flags(0));
        }
        for v in (0..100u64).step_by(7) {
            t.set_flags(Vpn(v), flags(2));
        }
        assert!(t.extent_count() > 20);
        t.transform_flags(|f| f.without(PteFlags(2)).with(PteFlags(4)));
        assert_eq!(t.extent_count(), 1, "uniform flags collapse to one run");
        t.check().unwrap();
    }

    #[test]
    fn iteration_and_runs() {
        let mut t = PageTable::new();
        for v in [1u64, 2, 3, 7, 8, 600] {
            t.insert(Vpn(v), FrameId(v * 10), flags(0));
        }
        t.set_flags(Vpn(2), flags(2));
        let vpns: Vec<u64> = t.iter().map(|(v, _)| v.0).collect();
        assert_eq!(vpns, vec![1, 2, 3, 7, 8, 600]);
        assert_eq!(
            t.present_runs(),
            vec![
                PageRange::new(Vpn(1), Vpn(4)),
                PageRange::new(Vpn(7), Vpn(9)),
                PageRange::new(Vpn(600), Vpn(601))
            ],
            "presence runs ignore flag splits"
        );
        let mut frames = Vec::new();
        t.frames_in_into(PageRange::new(Vpn(7), Vpn(9)), &mut frames);
        assert_eq!(frames.iter().map(|f| f.0).collect::<Vec<_>>(), vec![70, 80]);
    }
}
